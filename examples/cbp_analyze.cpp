// cbp_analyze — command-line front end for the detector substrate: runs
// a chosen benchmark replica (breakpoints off) under the chosen
// detectors and prints paper-style reports, i.e. the raw material of
// Methodology I (bug reports -> breakpoint insertions) and Methodology
// II (conflict lists -> candidate breakpoints).
//
// Usage: cbp_analyze [detector] [replica]
//   detector: eraser | fasttrack | contention | lockorder | all
//   replica:  cache | jigsaw | log4j | strbuf | collections

#include <cstdio>
#include <cstring>
#include <memory>
#include <functional>
#include <map>
#include <string>

#include "apps/cache/cache.h"
#include "apps/collections/sync_collections.h"
#include "apps/logging/async_appender.h"
#include "apps/strbuf/string_buffer.h"
#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "detect/contention.h"
#include "detect/eraser.h"
#include "detect/fasttrack.h"
#include "detect/lock_order.h"
#include "runtime/clock.h"

namespace {

using namespace cbp;

apps::RunOptions plain_options() {
  apps::RunOptions options;
  options.breakpoints = false;
  options.stall_after = std::chrono::milliseconds(500);
  return options;
}

void run_replica(const std::string& name) {
  const auto options = plain_options();
  if (name == "cache") {
    (void)apps::cache::run_race1(options);
  } else if (name == "jigsaw") {
    (void)apps::webserver::run_deadlock1(options);
    (void)apps::webserver::run_race2(options);
  } else if (name == "log4j") {
    apps::logging::MethodologyIIOptions m2;
    m2.breakpoints = false;
    m2.stall_after = std::chrono::milliseconds(500);
    (void)apps::logging::run_methodology2(m2);
  } else if (name == "strbuf") {
    (void)apps::strbuf::run_atomicity1(options);
  } else if (name == "collections") {
    (void)apps::collections::run_list_atomicity1(options);
    (void)apps::collections::run_list_deadlock1(options);
  } else {
    std::printf("unknown replica '%s'\n", name.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string detector = argc > 1 ? argv[1] : "all";
  const std::string replica = argc > 2 ? argv[2] : "jigsaw";
  rt::TimeScale::set(0.05);
  Config::set_enabled(false);

  const bool want_eraser = detector == "eraser" || detector == "all";
  const bool want_fasttrack = detector == "fasttrack" || detector == "all";
  const bool want_contention = detector == "contention" || detector == "all";
  const bool want_lockorder = detector == "lockorder" || detector == "all";

  detect::EraserDetector eraser;
  detect::FastTrackDetector fasttrack;
  detect::ContentionDetector contention;
  detect::LockOrderDetector lock_order;

  std::printf("analyzing replica '%s' with detector(s) '%s'\n\n",
              replica.c_str(), detector.c_str());
  {
    std::unique_ptr<instr::ScopedListener> l1, l2, l3, l4;
    if (want_eraser) l1 = std::make_unique<instr::ScopedListener>(eraser);
    if (want_fasttrack)
      l2 = std::make_unique<instr::ScopedListener>(fasttrack);
    if (want_contention)
      l3 = std::make_unique<instr::ScopedListener>(contention);
    if (want_lockorder)
      l4 = std::make_unique<instr::ScopedListener>(lock_order);
    run_replica(replica);
  }

  if (want_eraser) {
    std::printf("--- Eraser (lockset) ---\n");
    const auto races = eraser.races();
    if (races.empty()) std::printf("  no potential races\n");
    for (const auto& race : races) std::printf("%s\n", race.str().c_str());
    std::printf("\n");
  }
  if (want_fasttrack) {
    std::printf("--- FastTrack (happens-before) ---\n");
    const auto races = fasttrack.races();
    if (races.empty()) std::printf("  no races\n");
    for (const auto& race : races) std::printf("%s\n", race.str().c_str());
    std::printf("\n");
  }
  if (want_contention) {
    std::printf("--- Lock contention (Methodology II input) ---\n");
    const auto reports = contention.contentions();
    if (reports.empty()) std::printf("  no contended site pairs\n");
    for (const auto& report : reports) {
      std::printf("%s\n", report.str().c_str());
    }
    std::printf("\n");
  }
  if (want_lockorder) {
    std::printf("--- Lock-order graph (deadlock prediction) ---\n");
    const auto reports = lock_order.deadlocks();
    if (reports.empty()) {
      std::printf("  no crossed lock orders (%zu edges, cycle=%s)\n",
                  lock_order.edge_count(),
                  lock_order.has_cycle() ? "yes" : "no");
    }
    for (const auto& report : reports) {
      std::printf("%s\n", report.str().c_str());
    }
    std::printf("\n");
  }
  std::printf("Next step (Methodology I/II): turn each report into a "
              "ConflictTrigger / DeadlockTrigger pair at the listed "
              "sites — see examples/reproduce_data_race.\n");
  return 0;
}
