// Reproducing the Jigsaw deadlock (paper Figs. 2 and 9).
//
// The replica of org.w3c.jigsaw.http.socket.SocketClientFactory crosses
// its two monitors: clientConnectionFinished holds csList and calls the
// synchronized decrIdleCount (factory monitor), while killClients holds
// the factory monitor and acquires csList.  The DeadlockTrigger pair
// from Fig. 9 makes the crossing near-certain; without it, the window is
// sub-microsecond and stress runs sail through.
//
// Usage: reproduce_deadlock [runs]

#include <cstdio>
#include <cstdlib>

#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "runtime/clock.h"

int main(int argc, char** argv) {
  using namespace cbp;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 20;

  // Keep the demo snappy: nominal paper times at 1/10 speed.
  rt::ScopedTimeScale scale(0.1);

  std::printf("Jigsaw SocketClientFactory deadlock (paper Fig. 2)\n");
  std::printf("  thread A: synchronized(csList) -> decrIdleCount() "
              "[factory]\n");
  std::printf("  thread B: killClients() [factory] -> "
              "synchronized(csList)\n\n");

  for (const bool with_bp : {false, true}) {
    int stalls = 0;
    double detect_time = 0;
    for (int i = 0; i < runs; ++i) {
      Engine::instance().reset();
      apps::RunOptions options;
      options.breakpoints = with_bp;
      options.pause = std::chrono::milliseconds(100);
      options.stall_after = std::chrono::milliseconds(2000);
      options.seed = static_cast<std::uint64_t>(i + 1);
      const auto outcome = apps::webserver::run_deadlock1(options);
      if (outcome.artifact == rt::Artifact::kStall) {
        ++stalls;
        detect_time += outcome.runtime_seconds;
      }
    }
    std::printf("  %-22s deadlock in %2d/%d runs%s\n",
                with_bp ? "with DeadlockTrigger:" : "plain stress:", stalls,
                runs,
                stalls > 0
                    ? ("  (mean time to detect: " +
                       std::to_string(detect_time / stalls) + "s)")
                          .c_str()
                    : "");
  }

  std::printf("\nThe breakpoint pair from Fig. 9:\n"
              "  at line 623:  DeadlockTrigger(\"trigger2\", csList, this)"
              ".trigger_here(true)\n"
              "  at line 872:  DeadlockTrigger(\"trigger2\", this, csList)"
              ".trigger_here(false)\n"
              "match when the two threads' (held, wanted) lock pairs "
              "cross — exactly the deadlock state.\n");
  return 0;
}
