// Quickstart: the paper's Figure 4 program.
//
// Thread 1 runs foo(o): it does a long stretch of work under a lock and
// then checks `o->x == 0` — reaching that check late in the execution.
// Thread 2 runs bar(o): it writes `o->x = 1` as its very first action.
// The buggy state requires thread 1 to perform its check *before*
// thread 2's very first write — a schedule that essentially never occurs
// naturally.  The concurrent breakpoint (8, 10, t1.o1 == t2.o2) with
// thread 1 ordered first makes it nearly certain.
//
// Usage: quickstart [runs]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"

namespace {

struct XObject {
  // Relaxed atomic: the race is real at the logical level but is not
  // undefined behaviour in the replica.
  std::atomic<int> x{0};
};

volatile int sink = 0;  // defeats optimization of the filler work

void filler_work(int iterations) {
  for (int i = 0; i < iterations; ++i) sink = sink + 1;
}

// "line 8" of Fig. 4: the check at the end of foo.
bool foo(XObject* o1, bool with_breakpoint) {
  {
    // lines 1-7: f1()..f5() under the lock — a long prefix.
    filler_work(2'000'000);
  }
  if (with_breakpoint) {
    cbp::ConflictTrigger trigger("fig4", o1);
    trigger.trigger_here(/*is_first_action=*/true,
                         std::chrono::milliseconds(100));
  }
  if (o1->x.load(std::memory_order_relaxed) == 0) {
    return true;  // line 9: ERROR
  }
  return false;
}

// "line 10" of Fig. 4: the write at the start of bar.
void bar(XObject* o2, bool with_breakpoint) {
  if (with_breakpoint) {
    cbp::ConflictTrigger trigger("fig4", o2);
    trigger.trigger_here(/*is_first_action=*/false,
                         std::chrono::milliseconds(100));
  }
  o2->x.store(1, std::memory_order_relaxed);
  {
    filler_work(1'000);  // line 11-13: f6() under the lock
  }
}

int run_trials(int runs, bool with_breakpoint) {
  int errors = 0;
  for (int i = 0; i < runs; ++i) {
    XObject o;
    bool error = false;
    std::thread t1([&] { error = foo(&o, with_breakpoint); });
    std::thread t2([&] { bar(&o, with_breakpoint); });
    t1.join();
    t2.join();
    if (error) ++errors;
  }
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 50;

  std::printf("Figure 4 program, %d runs per configuration\n", runs);

  const int plain = run_trials(runs, /*with_breakpoint=*/false);
  std::printf("  without breakpoint: ERROR reached in %d/%d runs (%.0f%%)\n",
              plain, runs, 100.0 * plain / runs);

  const int with_bp = run_trials(runs, /*with_breakpoint=*/true);
  const auto stats = cbp::Engine::instance().stats("fig4");
  std::printf("  with breakpoint:    ERROR reached in %d/%d runs (%.0f%%), "
              "breakpoint hit %llu times\n",
              with_bp, runs, 100.0 * with_bp / runs,
              static_cast<unsigned long long>(stats.hits));
  return 0;
}
