// Methodology II, end to end (paper §5): from "the program stalls
// sometimes under stress" to a breakpoint that reproduces the stall on
// demand — on the log4j AsyncAppender replica.
//
//   Step 1: stress runs show a rare stall.
//   Step 2: a conflict detector lists the contended lock sites.
//   Step 3: breakpoints are inserted at each pair, both resolution
//           orders; stall rate and hit rate are tabulated.
//   Step 4: the pair whose forced order always stalls with the
//           breakpoint always hit is the bug.
//
// Usage: methodology2_walkthrough [runs]

#include <cstdio>
#include <cstdlib>

#include "apps/logging/async_appender.h"
#include "core/cbp.h"
#include "detect/contention.h"
#include "runtime/clock.h"

namespace {

using namespace cbp;
using apps::logging::MethodologyIIOptions;
using apps::logging::run_methodology2;
using apps::logging::Site;

const char* site_name(Site site) {
  switch (site) {
    case Site::kAppend: return "append (line 100)";
    case Site::kSetBufferSize: return "setBufferSize (line 236)";
    case Site::kClose: return "close (line 277)";
    case Site::kDispatch: return "dispatcher run (line 309)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 20;
  rt::ScopedTimeScale scale(0.05);

  // ---- Step 1: the Heisenbug under stress ---------------------------------
  std::printf("Step 1: stress testing the AsyncAppender replica\n");
  int natural = 0;
  const int stress_runs = runs * 3;
  for (int i = 0; i < stress_runs; ++i) {
    Engine::instance().reset();
    MethodologyIIOptions options;
    options.breakpoints = false;
    options.pause = std::chrono::milliseconds(0);
    options.jitter = std::chrono::microseconds(180'000);
    options.stall_after = std::chrono::milliseconds(2000);
    options.seed = static_cast<std::uint64_t>(i + 1);
    natural += run_methodology2(options).stalled ? 1 : 0;
  }
  std::printf("  the program stalled in %d out of %d executions — a "
              "Heisenbug\n\n",
              natural, stress_runs);

  // ---- Step 2: conflict detection -----------------------------------------
  std::printf("Step 2: running the lock-contention detector over a run\n");
  detect::ContentionDetector detector;
  {
    instr::ScopedListener registration(detector);
    Engine::instance().reset();
    MethodologyIIOptions options;
    options.breakpoints = false;
    options.jitter = std::chrono::microseconds(180'000);
    options.stall_after = std::chrono::milliseconds(2000);
    (void)run_methodology2(options);
  }
  const auto contentions = detector.contentions();
  std::printf("  %zu lock-contention pair(s) reported, e.g.:\n",
              contentions.size());
  if (!contentions.empty()) {
    std::printf("%s\n\n", contentions.front().str().c_str());
  }

  // ---- Step 3: breakpoints at each pair, both orders ----------------------
  std::printf("Step 3: concurrent breakpoints at each conflicting pair, "
              "resolved both ways (%d runs each)\n\n", runs);
  struct Probe {
    Site first;
    Site second;
  };
  const Probe probes[] = {
      {Site::kAppend, Site::kDispatch},
      {Site::kDispatch, Site::kAppend},
      {Site::kSetBufferSize, Site::kDispatch},
      {Site::kDispatch, Site::kSetBufferSize},
      {Site::kAppend, Site::kSetBufferSize},
      {Site::kSetBufferSize, Site::kAppend},
  };
  Site bug_first = Site::kAppend, bug_second = Site::kAppend;
  int best_stall = -1;
  for (const Probe& probe : probes) {
    int stalls = 0, hits = 0;
    for (int i = 0; i < runs; ++i) {
      Engine::instance().reset();
      MethodologyIIOptions options;
      options.first = probe.first;
      options.second = probe.second;
      options.pause = std::chrono::milliseconds(200);
      options.stall_after = std::chrono::milliseconds(2000);
      options.seed = static_cast<std::uint64_t>(i + 1);
      const auto outcome = run_methodology2(options);
      stalls += outcome.stalled ? 1 : 0;
      hits += outcome.breakpoint_hit ? 1 : 0;
    }
    std::printf("  %-26s -> %-26s  stall %3d%%  hit %3d%%\n",
                site_name(probe.first), site_name(probe.second),
                100 * stalls / runs, 100 * hits / runs);
    if (stalls > best_stall && hits == runs) {
      best_stall = stalls;
      bug_first = probe.first;
      bug_second = probe.second;
    }
  }

  // ---- Step 4: conclusion ---------------------------------------------------
  std::printf("\nStep 4: the pair that always stalls WITH the breakpoint "
              "always hit:\n  %s before %s\n",
              site_name(bug_first), site_name(bug_second));
  std::printf("Keep those two trigger_here calls in the codebase: the "
              "stall is now reproducible on demand (and they double as a "
              "regression test after the fix).\n");
  return 0;
}
