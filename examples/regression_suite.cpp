// Concurrent breakpoints as regression tests, and schedule pinning
// (paper §1 "breakpoints as regression test cases" and §8 "constrain the
// thread scheduler").
//
//   Part 1 — regression: a fixed bank-account class is re-checked under
//   the exact schedule that used to break the buggy version.  The same
//   breakpoint pair that reproduced the bug now demonstrates its
//   absence.
//
//   Part 2 — schedule pinning: cbp::schedule::pin* forces a chosen
//   interleaving of three threads, turning a nondeterministic test into
//   a deterministic one (including the k-thread generalization of §2).
//
// Usage: regression_suite [runs]

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "core/schedule.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace {

using namespace cbp;

// ---------------------------------------------------------------------------
// Part 1: a withdraw/deposit atomicity bug, buggy and fixed versions.
// ---------------------------------------------------------------------------

class Account {
 public:
  explicit Account(bool fixed) : fixed_(fixed) {}

  void deposit(int amount) {
    if (fixed_) {
      instr::TrackedLock lock(mu_);
      balance_.write(balance_.read() + amount);
      return;
    }
    // Buggy: read-modify-write with a breakpoint-widened window.
    const int value = balance_.read();
    AtomicityTrigger trigger("account-rmw", balance_.address());
    trigger.trigger_here(/*is_first_action=*/true);
    balance_.write(value + amount);
  }

  [[nodiscard]] int balance() const { return balance_.peek(); }

 private:
  bool fixed_;
  mutable instr::TrackedMutex mu_{"Account"};
  instr::SharedVar<int> balance_{0};
};

int lost_updates(bool fixed, int runs) {
  int lost_runs = 0;
  for (int i = 0; i < runs; ++i) {
    Engine::instance().reset();
    Account account(fixed);
    auto worker = [&] {
      for (int j = 0; j < 4; ++j) account.deposit(1);
    };
    std::thread a(worker), b(worker);
    a.join();
    b.join();
    if (account.balance() != 8) ++lost_runs;
  }
  return lost_runs;
}

// ---------------------------------------------------------------------------
// Part 2: deterministic three-thread interleaving via schedule pins.
// ---------------------------------------------------------------------------

std::vector<int> pinned_three_thread_order() {
  Engine::instance().reset();
  std::vector<int> order;
  instr::TrackedMutex order_mu;
  auto record = [&](int id) {
    instr::TrackedLock lock(order_mu);
    order.push_back(id);
  };
  std::vector<std::thread> threads;
  for (int id = 0; id < 3; ++id) {
    threads.emplace_back([&, id] {
      // Without the pin, the arrival order of these three appends is
      // arbitrary; the ranked pin makes it always 0, 1, 2.
      auto result = schedule::pin_ranked_scoped("abc-order", id, 3);
      record(id);
      result.guard.release();
    });
  }
  for (auto& t : threads) t.join();
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 25;
  Config::set_default_timeout(std::chrono::milliseconds(100));

  std::printf("Part 1: the breakpoint as a concurrency regression test\n");
  const int buggy = lost_updates(/*fixed=*/false, runs);
  std::printf("  buggy Account + breakpoint:  lost updates in %d/%d runs "
              "(the bug, on demand)\n", buggy, runs);
  const int fixed = lost_updates(/*fixed=*/true, runs);
  std::printf("  fixed Account + same breakpoint: lost updates in %d/%d "
              "runs (regression test passes)\n\n", fixed, runs);

  std::printf("Part 2: pinning a 3-thread schedule (§2 k-thread "
              "generalization + §8)\n");
  int deterministic = 0;
  for (int i = 0; i < runs; ++i) {
    const auto order = pinned_three_thread_order();
    if (order == std::vector<int>{0, 1, 2}) ++deterministic;
  }
  std::printf("  pinned order 0,1,2 observed in %d/%d runs\n", deterministic,
              runs);

  std::printf("\nOne mechanism, three uses: reproduce a bug, guard against "
              "its return, and pin schedules in concurrent unit tests.\n");
  return 0;
}
