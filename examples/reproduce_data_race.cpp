// Reproducing a data race end-to-end (paper Figs. 1 and 7 + §5
// Methodology I).
//
//   1. A buggy program: foo() writes p->x while bar() reads it, both on
//      the same Point, unsynchronized.
//   2. Phase 1 (detector): a FastTrack pass over one stress run reports
//      the race and its two sites — the CalFuzzer-style bug report.
//   3. Phase 2 (confirmer): the active tester confirms the race is
//      feasible and prints the breakpoint insertion recipe.
//   4. The recipe applied: ConflictTrigger calls before each access make
//      the racy state nearly 100% reproducible, resolved in a chosen
//      order — compare the "t=..." values with and without.
//
// Usage: reproduce_data_race [runs]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/cbp.h"
#include "fuzz/active.h"
#include "instrument/shared_var.h"

namespace {

using namespace cbp;

struct Point {
  instr::SharedVar<int> x{0};
};

// Fig. 1: void foo(Point p1) { ... p1.x = 10; ... }
void foo(Point* p1, bool with_breakpoint) {
  if (with_breakpoint) {
    // Fig. 7: (new ConflictTrigger("trigger1", p1))
    //             .triggerHere(false, Global.TIMEOUT);
    ConflictTrigger trigger("trigger1", p1);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  p1->x.write(10);
}

// Fig. 1: void bar(Point p2) { ... t = p2.x; ... }
int bar(Point* p2, bool with_breakpoint) {
  if (with_breakpoint) {
    // Fig. 7: the read side goes FIRST: the race resolves read-then-write.
    ConflictTrigger trigger("trigger1", p2);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  return p2->x.read();
}

}  // namespace

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 30;
  Config::set_default_timeout(std::chrono::milliseconds(100));

  std::printf("Step 1-2: detector pass over one run (Methodology I, "
              "phase 1)\n");
  Point shared;
  const auto candidates = fuzz::find_race_candidates([&] {
    std::thread t1([&] { foo(&shared, false); });
    t1.join();
    std::thread t2([&] { (void)bar(&shared, false); });
    t2.join();
  });
  if (candidates.empty()) {
    std::printf("  no race candidates found (unexpected)\n");
    return 1;
  }
  std::printf("  Data race detected between\n    access at %s, and\n"
              "    access at %s.\n",
              candidates[0].site_a.str().c_str(),
              candidates[0].site_b.str().c_str());

  std::printf("\nStep 3: active confirmation (Methodology I, phase 2)\n");
  fuzz::RaceConfirmer confirmer(candidates[0],
                                std::chrono::microseconds(200'000));
  {
    instr::ScopedListener registration(confirmer);
    Point fresh;
    std::thread t1([&] { foo(&fresh, false); });
    std::thread t2([&] { (void)bar(&fresh, false); });
    t1.join();
    t2.join();
  }
  for (const auto& bug : confirmer.confirmed()) {
    std::printf("  confirmed; breakpoint recipe:\n%s\n",
                bug.breakpoint_suggestion("trigger1").c_str());
  }

  std::printf("\nStep 4: the breakpoint in action (%d runs each)\n", runs);
  for (const bool with_bp : {false, true}) {
    int stale_reads = 0;
    for (int i = 0; i < runs; ++i) {
      Engine::instance().reset();
      Point p;
      int t = -1;
      std::thread t1([&] { foo(&p, with_bp); });
      std::thread t2([&] { t = bar(&p, with_bp); });
      t1.join();
      t2.join();
      // The race resolved read-first iff bar() observed the OLD value.
      if (t == 0) ++stale_reads;
    }
    std::printf("  %-18s race resolved read-before-write in %d/%d runs\n",
                with_bp ? "with breakpoint:" : "without:", stale_reads, runs);
  }
  std::printf("\nWith the breakpoint, the race is not only reached but "
              "resolved the SAME way every run — a reproducible "
              "Heisenbug.\n");
  return 0;
}
