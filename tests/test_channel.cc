// Close semantics of rt::Channel (runtime/channel.h), pinned down
// because the broker's match thread uses close() as its shutdown
// signal (src/broker/broker.cc): queued events must drain, blocked
// parties must wake exactly once, and a drained closed channel must be
// distinguishable from a timeout via closed().

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/channel.h"
#include "runtime/context.h"
#include "runtime/vclock.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

TEST(ChannelCloseTest, BlockedReceiverWakesWithNullopt) {
  rt::Channel<int> ch(4);
  std::atomic<bool> woke{false};
  std::thread receiver([&] {
    const std::optional<int> got = ch.receive();
    EXPECT_FALSE(got.has_value());
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);  // let the receiver park
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  ch.close();
  receiver.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(ChannelCloseTest, BlockedSenderWakesWithFalse) {
  rt::Channel<int> ch(1);
  ASSERT_TRUE(ch.send(1));  // fill to capacity
  std::atomic<bool> woke{false};
  std::thread sender([&] {
    EXPECT_FALSE(ch.send(2));  // blocks on the full channel, then fails
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  ch.close();
  sender.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(ChannelCloseTest, ItemsQueuedBeforeCloseDrainThenNullopt) {
  rt::Channel<int> ch(8);
  ASSERT_TRUE(ch.send(10));
  ASSERT_TRUE(ch.send(11));
  ASSERT_TRUE(ch.send(12));
  ch.close();
  // The broker relies on this: shutdown must not drop in-flight events.
  EXPECT_EQ(ch.receive(), std::optional<int>(10));
  EXPECT_EQ(ch.receive(), std::optional<int>(11));
  EXPECT_EQ(ch.receive(), std::optional<int>(12));
  EXPECT_EQ(ch.receive(), std::nullopt);
  EXPECT_EQ(ch.receive(), std::nullopt);  // stays empty, stays awake
}

TEST(ChannelCloseTest, SendAndTrySendFailAfterClose) {
  rt::Channel<int> ch(4);
  ch.close();
  EXPECT_FALSE(ch.send(1));
  EXPECT_FALSE(ch.try_send(2));
  EXPECT_EQ(ch.size(), 0u);
}

TEST(ChannelCloseTest, CloseIsIdempotent) {
  rt::Channel<int> ch(4);
  ASSERT_TRUE(ch.send(7));
  ch.close();
  ch.close();
  EXPECT_EQ(ch.receive(), std::optional<int>(7));
  EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(ChannelCloseTest, ReceiveForDistinguishesTimeoutFromCloseViaClosed) {
  rt::Channel<int> ch(4);
  // Timeout on an open channel: nullopt, closed() false.
  EXPECT_EQ(ch.receive_for(5ms), std::nullopt);
  EXPECT_FALSE(ch.closed());
  // Drained close: nullopt immediately (no 1-hour park), closed() true —
  // the exact check the broker's match loop makes to exit.
  ch.close();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.receive_for(3600s), std::nullopt);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 60s);
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelCloseTest, ReceiveForDrainsQueuedItemsAfterClose) {
  rt::Channel<int> ch(4);
  ASSERT_TRUE(ch.send(5));
  ch.close();
  EXPECT_EQ(ch.receive_for(10ms), std::optional<int>(5));
  EXPECT_EQ(ch.receive_for(10ms), std::nullopt);
}

TEST(ChannelCloseTest, CloseWakesEveryBlockedParty) {
  rt::Channel<int> full(1);
  rt::Channel<int> empty(1);
  ASSERT_TRUE(full.send(0));  // senders on `full` below will block
  std::atomic<int> woken{0};
  std::vector<std::thread> parties;
  for (int i = 0; i < 3; ++i) {
    parties.emplace_back([&] {
      EXPECT_FALSE(full.send(99));
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  for (int i = 0; i < 2; ++i) {
    parties.emplace_back([&] {
      EXPECT_FALSE(empty.receive().has_value());
      woken.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(woken.load(std::memory_order_acquire), 0);
  full.close();
  empty.close();
  for (auto& t : parties) t.join();
  EXPECT_EQ(woken.load(std::memory_order_acquire), 5);
  // The queued item survived the close: close never drops data.
  EXPECT_EQ(full.receive(), std::optional<int>(0));
}

// The same close semantics must hold under a virtual clock, where
// blocked senders/receivers are scheduled by the trial clock instead of
// parked in the kernel (runtime/vclock.h).
TEST(ChannelCloseTest, CloseWakesParkedPartiesUnderVirtualClock) {
  rt::VirtualClock vc;
  std::optional<int> got = 123;
  bool sent = true;
  {
    rt::ScopedClock bind(&vc);
    rt::Channel<int> empty_ch(1);
    rt::Channel<int> full_ch(1);
    ASSERT_TRUE(full_ch.send(1));
    rt::Thread receiver([&] { got = empty_ch.receive(); });
    rt::Thread sender([&] { sent = full_ch.send(2); });
    // Both children park in untimed waits (no deadline); this 10ms sleep
    // is the only deadline, so the clock fast-forwards here once both
    // are registered — a deterministic "let them block".
    rt::clock_sleep_for(10ms);
    empty_ch.close();
    full_ch.close();
    receiver.join();
    sender.join();
  }
  EXPECT_EQ(got, std::nullopt);
  EXPECT_FALSE(sent);
}

TEST(ChannelCloseTest, ReceiveForTimesOutInVirtualTimeNotRealTime) {
  rt::VirtualClock vc;
  const auto real_start = std::chrono::steady_clock::now();
  {
    rt::ScopedClock bind(&vc);
    rt::Channel<int> ch(4);
    EXPECT_EQ(ch.receive_for(10s), std::nullopt);  // ten *virtual* seconds
    EXPECT_FALSE(ch.closed());
  }
  EXPECT_GE(vc.now_ns(), 10'000'000'000);
  EXPECT_LT(std::chrono::steady_clock::now() - real_start, 5s);
}

}  // namespace
}  // namespace cbp
