// Property-style tests for the BTRIGGER engine: parameterized sweeps
// over arity / API / timeout, statistics invariants, stress, and failure
// injection (cancellation storms, guard leaks, noisy listeners).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/latch.h"
#include "runtime/rng.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class EnginePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_default_timeout(100ms);
    Config::set_order_delay(std::chrono::microseconds(500));
    Config::set_guard_wait_cap(3000ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
  }
};

// ---------------------------------------------------------------------------
// Sweep: arity x API — rendezvous and ordering hold for k = 2..5, both
// for the plain and scoped APIs.
// ---------------------------------------------------------------------------

using AritySweepParam = std::tuple<int /*arity*/, bool /*scoped*/>;

class AritySweep : public ::testing::TestWithParam<AritySweepParam> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::microseconds(500));
    Config::set_guard_wait_cap(3000ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override { Engine::instance().reset(); }
};

TEST_P(AritySweep, AllRanksHitAndReleaseInOrder) {
  const auto [arity, scoped] = GetParam();
  std::mutex order_mu;
  std::vector<int> order;
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int rank = 0; rank < arity; ++rank) {
    threads.emplace_back([&, rank, scoped_api = scoped] {
      OrderTrigger trigger("arity-sweep");
      if (scoped_api) {
        auto result = trigger.trigger_here_ranked_scoped(
            rank, static_cast<int>(arity), 3000ms);
        if (result.hit) {
          hits.fetch_add(1);
          std::scoped_lock lock(order_mu);
          order.push_back(rank);
        }
        result.guard.release();
      } else {
        if (trigger.trigger_here_ranked(rank, static_cast<int>(arity),
                                        3000ms)) {
          hits.fetch_add(1);
          std::scoped_lock lock(order_mu);
          order.push_back(rank);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), arity);
  const auto stats = Engine::instance().stats("arity-sweep");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, static_cast<std::uint64_t>(arity));
  if (scoped) {
    // Scoped ordering is exact: ranks release strictly in order.
    std::vector<int> expected;
    for (int rank = 0; rank < arity; ++rank) expected.push_back(rank);
    EXPECT_EQ(order, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AritySweep,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// Sweep: timeout is respected (within scheduling tolerance).
// ---------------------------------------------------------------------------

class TimeoutSweep : public ::testing::TestWithParam<int /*ms*/> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
    Config::set_enabled(true);
  }
  void TearDown() override { Engine::instance().reset(); }
};

TEST_P(TimeoutSweep, LoneArrivalWaitsRoughlyT) {
  const int timeout_ms = GetParam();
  int obj = 0;
  ConflictTrigger trigger("timeout-sweep", &obj);
  rt::Stopwatch clock;
  EXPECT_FALSE(
      trigger.trigger_here(true, std::chrono::milliseconds(timeout_ms)));
  const auto elapsed_ms = clock.elapsed_us() / 1000;
  EXPECT_GE(elapsed_ms, timeout_ms - 2);
  EXPECT_LE(elapsed_ms, timeout_ms * 4 + 50);  // generous upper bound
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimeoutSweep,
                         ::testing::Values(5, 20, 60, 150));

// ---------------------------------------------------------------------------
// Statistics invariants under randomized traffic.
// ---------------------------------------------------------------------------

TEST_F(EnginePropertyTest, StatisticsInvariantsUnderRandomTraffic) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 60;
  int objects[2] = {0, 0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rt::Rng rng(static_cast<std::uint64_t>(t) + 99);
      for (int i = 0; i < kIterations; ++i) {
        const void* obj = &objects[rng.next_below(2)];
        ConflictTrigger trigger("stats-traffic", obj);
        (void)trigger.trigger_here(rng.next_bool(0.5),
                                   std::chrono::milliseconds(3));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = Engine::instance().stats("stats-traffic");
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kThreads * kIterations));
  EXPECT_EQ(stats.calls, stats.arrivals + stats.local_rejects);
  // Binary breakpoints: every hit has exactly two participants.
  EXPECT_EQ(stats.participants, 2 * stats.hits);
  // Conservation: every postponed thread matched, timed out, or was
  // cancelled; every binary hit pairs one matched waiter with the
  // arriving matcher.
  const std::uint64_t matched_waiters =
      stats.postponed - stats.timeouts - stats.cancelled;
  EXPECT_EQ(stats.participants, matched_waiters + stats.hits);
  EXPECT_GE(stats.arrivals,
            stats.postponed + stats.ignored + stats.bounded);
}

// ---------------------------------------------------------------------------
// Stress: many names, many threads, mixed arities — terminates, no lost
// wakeups, engine stays consistent.
// ---------------------------------------------------------------------------

TEST_F(EnginePropertyTest, MixedStressTerminatesConsistently) {
  constexpr int kThreads = 6;
  constexpr int kIterations = 40;
  std::atomic<int> completed{0};
  int obj = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      rt::Rng rng(static_cast<std::uint64_t>(t) * 7 + 1);
      for (int i = 0; i < kIterations; ++i) {
        const std::string name = "stress-" + std::to_string(rng.next_below(3));
        if (rng.next_bool(0.3)) {
          OrderTrigger trigger(name);
          (void)trigger.trigger_here_ranked(
              static_cast<int>(rng.next_below(3)), 3,
              std::chrono::milliseconds(2));
        } else if (rng.next_bool(0.5)) {
          ConflictTrigger trigger(name, &obj);
          (void)trigger.trigger_here(rng.next_bool(0.5),
                                     std::chrono::milliseconds(2));
        } else {
          auto result = OrderTrigger(name).trigger_here_scoped(
              rng.next_bool(0.5), std::chrono::milliseconds(2));
          result.guard.release();
        }
      }
      completed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), kThreads);
  const auto total = Engine::instance().total_stats();
  EXPECT_EQ(total.calls,
            static_cast<std::uint64_t>(kThreads * kIterations));
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST_F(EnginePropertyTest, CancellationStormDuringTraffic) {
  std::atomic<bool> stop{false};
  int obj = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ConflictTrigger trigger("storm", &obj);
        (void)trigger.trigger_here(true, std::chrono::milliseconds(20));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    Engine::instance().cancel_all();
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  const auto stats = Engine::instance().stats("storm");
  EXPECT_GT(stats.calls, 0u);  // workers made progress throughout
}

TEST_F(EnginePropertyTest, GuardDroppedWithoutReleaseStillFrees) {
  // Destroying the TriggerResult without touching the guard must release
  // the peer (RAII, not manual protocol).
  int obj = 0;
  rt::Stopwatch clock;
  std::thread first([&] {
    ConflictTrigger trigger("raii-guard", &obj);
    auto result = trigger.trigger_here_scoped(true, 3000ms);
    ASSERT_TRUE(result.hit);
    // result (and its guard) destroyed at scope exit.
  });
  std::thread second([&] {
    ConflictTrigger trigger("raii-guard", &obj);
    ASSERT_TRUE(trigger.trigger_here(false, 3000ms));
  });
  first.join();
  second.join();
  EXPECT_LT(clock.elapsed_us(), 2'000'000);
}

TEST_F(EnginePropertyTest, MovedGuardReleasesExactlyOnce) {
  int obj = 0;
  std::atomic<bool> second_done{false};
  std::thread first([&] {
    ConflictTrigger trigger("move-guard", &obj);
    auto result = trigger.trigger_here_scoped(true, 3000ms);
    ASSERT_TRUE(result.hit);
    OrderingGuard moved = std::move(result.guard);
    EXPECT_TRUE(moved.active());
    EXPECT_FALSE(result.guard.active());
    moved.release();
    EXPECT_FALSE(moved.active());
    moved.release();  // double release is a no-op
  });
  std::thread second([&] {
    ConflictTrigger trigger("move-guard", &obj);
    ASSERT_TRUE(trigger.trigger_here(false, 3000ms));
    second_done = true;
  });
  first.join();
  second.join();
  EXPECT_TRUE(second_done.load());
}

TEST_F(EnginePropertyTest, ManyNamesDoNotInterfere) {
  constexpr int kNames = 16;
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int n = 0; n < kNames; ++n) {
    threads.emplace_back([&, n] {
      OrderTrigger trigger("iso-" + std::to_string(n));
      if (trigger.trigger_here(true, 3000ms)) hits.fetch_add(1);
    });
    threads.emplace_back([&, n] {
      OrderTrigger trigger("iso-" + std::to_string(n));
      if (trigger.trigger_here(false, 3000ms)) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 2 * kNames);
  EXPECT_EQ(Engine::instance().names().size(),
            static_cast<std::size_t>(kNames));
  for (const auto& name : Engine::instance().names()) {
    EXPECT_EQ(Engine::instance().stats(name).hits, 1u) << name;
  }
}

TEST_F(EnginePropertyTest, VerboseModeDoesNotBreakMatching) {
  Engine::instance().set_verbose(true);
  int obj = 0;
  ::testing::internal::CaptureStderr();
  std::thread a([&] {
    ConflictTrigger trigger("verbose", &obj);
    EXPECT_TRUE(trigger.trigger_here(true, 3000ms));
  });
  std::thread b([&] {
    ConflictTrigger trigger("verbose", &obj);
    EXPECT_TRUE(trigger.trigger_here(false, 3000ms));
  });
  a.join();
  b.join();
  const std::string log = ::testing::internal::GetCapturedStderr();
  Engine::instance().set_verbose(false);
  EXPECT_NE(log.find("[cbp] hit"), std::string::npos);
}

}  // namespace
}  // namespace cbp
