// Tests for the observability layer (src/obs): ring-buffer trace,
// log2 histograms, JSON/Chrome exporters, telemetry estimates, and the
// engine integration (events recorded along the trigger state machine).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/cbp.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;
using obs::Event;
using obs::EventKind;

Event make_event(std::uint64_t time_ns, std::uint32_t name_id,
                 rt::ThreadId tid, EventKind kind, int rank = -1,
                 std::uint16_t detail = 0) {
  Event e;
  e.time_ns = time_ns;
  e.name_id = name_id;
  e.tid = tid;
  e.kind = kind;
  e.rank = static_cast<std::int8_t>(rank);
  e.detail = detail;
  return e;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Trace::set_enabled(false);
    obs::Trace::set_hub_events(false);
    obs::Trace::clear();
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::microseconds(200));
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    obs::Trace::set_enabled(false);
    obs::Trace::set_hub_events(false);
    obs::Trace::clear();
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
  }
};

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, RecordsMeanMaxAndPercentiles) {
  obs::LogHistogram h;
  for (std::uint64_t v : {1u, 2u, 4u, 100u}) h.record(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 2.0 + 4.0 + 100.0) / 4.0);
  EXPECT_LE(h.percentile(0.50), 4u);
  // The tail percentile is clamped to the observed max, not the bucket
  // upper bound (which would be 127 for the value 100).
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(LogHistogram, ZeroAndHugeValuesLandInValidBuckets) {
  obs::LogHistogram h;
  h.record(0);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.max, ~std::uint64_t{0});
  EXPECT_EQ(h.percentile(0.0), 0u);
}

TEST(LogHistogram, MergeAddsCounts) {
  obs::LogHistogram a, b;
  a.record(10);
  b.record(1000);
  a += b;
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_EQ(a.sum, 1010u);
}

// ---------------------------------------------------------------------------
// Trace ring: collection, clearing, overwrite accounting
// ---------------------------------------------------------------------------

TEST_F(ObsTest, InjectedEventsComeBackSortedByTime) {
  obs::Trace::inject_for_test(make_event(300, 1, 9, EventKind::kArrival));
  obs::Trace::inject_for_test(make_event(100, 1, 9, EventKind::kArrival));
  obs::Trace::inject_for_test(make_event(200, 1, 9, EventKind::kPostpone, 0));
  const obs::TraceSnapshot snapshot = obs::Trace::collect();
  ASSERT_EQ(snapshot.events.size(), 3u);
  EXPECT_EQ(snapshot.events[0].time_ns, 100u);
  EXPECT_EQ(snapshot.events[1].time_ns, 200u);
  EXPECT_EQ(snapshot.events[2].time_ns, 300u);
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST_F(ObsTest, ClearForgetsRecordedEvents) {
  obs::Trace::inject_for_test(make_event(1, 1, 9, EventKind::kArrival));
  obs::Trace::clear();
  obs::Trace::inject_for_test(make_event(2, 1, 9, EventKind::kIgnore));
  const obs::TraceSnapshot snapshot = obs::Trace::collect();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].kind, EventKind::kIgnore);
  EXPECT_EQ(snapshot.dropped, 0u);  // cleared events are not "dropped"
}

TEST_F(ObsTest, OverwrittenEventsAreCountedAsDropped) {
  constexpr std::uint64_t kExtra = 100;
  const std::uint64_t total = obs::internal::Ring::kCapacity + kExtra;
  for (std::uint64_t i = 0; i < total; ++i) {
    obs::Trace::inject_for_test(make_event(i, 1, 9, EventKind::kArrival));
  }
  const obs::TraceSnapshot snapshot = obs::Trace::collect();
  EXPECT_EQ(snapshot.events.size(), obs::internal::Ring::kCapacity);
  EXPECT_EQ(snapshot.dropped, kExtra);
  // The retained window is the most recent events, not the oldest.
  EXPECT_EQ(snapshot.events.front().time_ns, kExtra);
}

TEST_F(ObsTest, NameRegistryResolvesAndFallsBack) {
  obs::Trace::set_name(42, "some-breakpoint");
  EXPECT_EQ(obs::Trace::name_of(42), "some-breakpoint");
  EXPECT_EQ(obs::Trace::name_of(43), "#43");
  EXPECT_EQ(obs::Trace::name_of(obs::kNoName), "<hub>");
}

// ---------------------------------------------------------------------------
// Engine integration: the trigger state machine emits events
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledTraceRecordsNothing) {
  int obj = 0;
  ConflictTrigger t("obs-off", &obj);
  EXPECT_FALSE(t.trigger_here(true, 1ms));
  EXPECT_TRUE(obs::Trace::collect().events.empty());
}

TEST_F(ObsTest, TwoThreadHitProducesTheExpectedEventSequence) {
#ifdef CBP_DISABLE_OBS
  GTEST_SKIP() << "obs layer compiled out";
#endif
  obs::Trace::set_enabled(true);
  int obj = 0;
  rt::Latch postponed(1);
  std::thread waiter([&] {
    ConflictTrigger t("obs-hit", &obj);
    postponed.count_down();
    EXPECT_TRUE(t.trigger_here(true, 2000ms));
  });
  postponed.wait();
  std::this_thread::sleep_for(20ms);
  ConflictTrigger t("obs-hit", &obj);
  EXPECT_TRUE(t.trigger_here(false, 2000ms));
  waiter.join();

  const auto events = obs::resolve(obs::Trace::collect());
  auto count = [&](EventKind kind) {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.name == "obs-hit" && e.event.kind == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(EventKind::kArrival), 2u);
  EXPECT_EQ(count(EventKind::kPostpone), 1u);
  EXPECT_EQ(count(EventKind::kMatch), 2u);  // one per rank
  EXPECT_EQ(count(EventKind::kRelease), 2u);
  EXPECT_EQ(count(EventKind::kTimeout), 0u);
}

TEST_F(ObsTest, TimeoutAndIgnoreAreRecorded) {
#ifdef CBP_DISABLE_OBS
  GTEST_SKIP() << "obs layer compiled out";
#endif
  obs::Trace::set_enabled(true);
  int obj = 0;
  {
    ConflictTrigger t("obs-timeout", &obj);
    EXPECT_FALSE(t.trigger_here(true, 2ms));
  }
  {
    ConflictTrigger t("obs-ignored", &obj);
    t.ignore_first(10);
    EXPECT_FALSE(t.trigger_here(true, 2ms));
  }
  const auto events = obs::resolve(obs::Trace::collect());
  bool saw_timeout = false, saw_ignore = false;
  for (const auto& e : events) {
    if (e.name == "obs-timeout" && e.event.kind == EventKind::kTimeout) {
      saw_timeout = true;
    }
    if (e.name == "obs-ignored" && e.event.kind == EventKind::kIgnore) {
      saw_ignore = true;
    }
  }
  EXPECT_TRUE(saw_timeout);
  EXPECT_TRUE(saw_ignore);
}

TEST_F(ObsTest, HistogramsFoldIntoBreakpointStats) {
  int obj = 0;
  ConflictTrigger t("obs-hist", &obj);
  EXPECT_FALSE(t.trigger_here(true, 5ms));
  const BreakpointStats stats = Engine::instance().stats("obs-hist");
  EXPECT_EQ(stats.wait_hist.count, 1u);
  // The recorded wait is the (scaled) postponement, ~5ms here.
  EXPECT_GE(stats.wait_hist.max, 2'000u);
  EXPECT_EQ(stats.order_hist.count, 0u);  // no hit, no ordering latency
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(ObsJson, ParsesNestedDocument) {
  std::string error;
  const auto root = obs::json::parse(
      R"({"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null})", error);
  ASSERT_NE(root, nullptr) << error;
  ASSERT_TRUE(root->is_object());
  const obs::json::Value* a = root->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1]->number, 2.5);
  const obs::json::Value* b = root->get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->get("c")->string, "x\ny");
}

TEST(ObsJson, RejectsMalformedInput) {
  std::string error;
  EXPECT_EQ(obs::json::parse("{\"a\":}", error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(obs::json::parse("[1,2", error), nullptr);
  EXPECT_EQ(obs::json::parse("{} trailing", error), nullptr);
}

TEST(ObsJson, DecodesUnicodeEscapesToUtf8) {
  std::string error;
  // Raw strings: the \uXXXX sequences below reach the parser verbatim.
  const auto root = obs::json::parse(
      R"({"ascii":"\u0041\u007a","nul":"\u0000x","latin":"\u00e9",)"
      R"("cjk":"\u4e2d","pair":"\ud83d\ude00"})",
      error);
  ASSERT_NE(root, nullptr) << error;
  EXPECT_EQ(root->get("ascii")->string, "Az");
  EXPECT_EQ(root->get("nul")->string, std::string("\0x", 2));
  EXPECT_EQ(root->get("latin")->string, "\xc3\xa9");        // 2-byte UTF-8
  EXPECT_EQ(root->get("cjk")->string, "\xe4\xb8\xad");      // 3-byte UTF-8
  EXPECT_EQ(root->get("pair")->string, "\xf0\x9f\x98\x80")  // 4-byte UTF-8
      << "surrogate pair must combine into one code point";
}

TEST(ObsJson, RejectsBadUnicodeEscapes) {
  std::string error;
  EXPECT_EQ(obs::json::parse(R"({"a":"\u12"})", error), nullptr);
  EXPECT_EQ(obs::json::parse(R"({"a":"\uzzzz"})", error), nullptr);
  // Unpaired surrogates in either direction.
  EXPECT_EQ(obs::json::parse(R"({"a":"\ud83d"})", error), nullptr);
  EXPECT_EQ(obs::json::parse(R"({"a":"\ud83dx"})", error), nullptr);
  EXPECT_EQ(obs::json::parse(R"({"a":"\ud83dA"})", error), nullptr);
  EXPECT_EQ(obs::json::parse(R"({"a":"\ude00"})", error), nullptr);
}

TEST(ObsJson, EscapeRoundTripsControlCharacters) {
  // The writer escapes control bytes as \u00XX; the reader must decode
  // them back to the identical string.
  const std::string raw("tab\t nul\0 bell\a quote\" back\\ nl\n", 33);
  std::string error;
  const auto root =
      obs::json::parse("{\"s\":\"" + obs::json::escape(raw) + "\"}", error);
  ASSERT_NE(root, nullptr) << error;
  EXPECT_EQ(root->get("s")->string, raw);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<obs::NamedEvent> sample_events() {
  std::vector<obs::NamedEvent> events;
  auto add = [&](std::uint64_t t, rt::ThreadId tid, EventKind kind,
                 int rank = -1, std::uint16_t detail = 0) {
    events.push_back(
        obs::NamedEvent{make_event(t, 7, tid, kind, rank, detail), "bp"});
  };
  add(1000, 1, EventKind::kArrival);
  add(2000, 1, EventKind::kPostpone, 0);
  add(3000, 2, EventKind::kArrival);
  add(4000, 1, EventKind::kMatch, 0, 2);
  add(4000, 2, EventKind::kMatch, 1, 2);
  add(5000, 1, EventKind::kRelease, 0);
  add(6000, 2, EventKind::kRelease, 1);
  return events;
}

TEST(ObsExport, JsonDumpRoundTrips) {
  const auto events = sample_events();
  std::ostringstream out;
  obs::write_json_dump(out, events, /*dropped=*/3);

  std::istringstream in(out.str());
  std::vector<obs::NamedEvent> back;
  std::uint64_t dropped = 0;
  std::string error;
  ASSERT_TRUE(obs::read_json_dump(in, back, dropped, error)) << error;
  EXPECT_EQ(dropped, 3u);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].event.time_ns, events[i].event.time_ns);
    EXPECT_EQ(back[i].event.tid, events[i].event.tid);
    EXPECT_EQ(back[i].event.kind, events[i].event.kind);
    EXPECT_EQ(back[i].event.rank, events[i].event.rank);
    EXPECT_EQ(back[i].event.detail, events[i].event.detail);
    EXPECT_EQ(back[i].name, events[i].name);
  }
}

TEST(ObsExport, ReadRejectsForeignJson) {
  std::istringstream in(R"({"events":[]})");  // missing the cbp tag
  std::vector<obs::NamedEvent> events;
  std::uint64_t dropped = 0;
  std::string error;
  EXPECT_FALSE(obs::read_json_dump(in, events, dropped, error));
  EXPECT_NE(error.find("cbp"), std::string::npos);
}

TEST(ObsExport, ChromeTraceIsValidJsonWithMonotonicTimestamps) {
  const auto events = sample_events();
  std::ostringstream out;
  obs::write_chrome_trace(out, events, /*dropped=*/0);

  std::string error;
  const auto root = obs::json::parse(out.str(), error);
  ASSERT_NE(root, nullptr) << error;
  const obs::json::Value* trace_events = root->get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_FALSE(trace_events->array.empty());
  double last_ts = 0.0;
  bool saw_span = false;
  for (const auto& record : trace_events->array) {
    ASSERT_TRUE(record->is_object());
    const obs::json::Value* ts = record->get("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    EXPECT_GE(ts->number, last_ts);
    last_ts = ts->number;
    const obs::json::Value* ph = record->get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      saw_span = true;
      ASSERT_NE(record->get("dur"), nullptr);
      EXPECT_EQ(record->get("args")->get("outcome")->string, "match");
    }
  }
  EXPECT_TRUE(saw_span);  // the postpone..match pair became a span
}

TEST(ObsExport, FilterKeepsOnlyTheNamedBreakpoint) {
  auto events = sample_events();
  events.push_back(
      obs::NamedEvent{make_event(7000, 8, 3, EventKind::kArrival), "other"});
  const auto filtered = obs::filter_by_name(std::move(events), "other");
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "other");
}

// ---------------------------------------------------------------------------
// Golden file: deterministic injected trace -> byte-stable Chrome export.
// Regenerate with: CBP_REGEN_GOLDEN=1 ./test_obs
//   --gtest_filter=ObsGolden.ChromeExportMatchesGoldenFile
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeExportMatchesGoldenFile) {
  obs::Trace::set_name(7, "golden-bp");
  auto inject = [&](std::uint64_t t, rt::ThreadId tid, EventKind kind,
                    int rank = -1, std::uint16_t detail = 0) {
    obs::Trace::inject_for_test(make_event(t, 7, tid, kind, rank, detail));
  };
  inject(800, 5, EventKind::kIgnore);
  inject(1000, 1, EventKind::kArrival);
  inject(1500, 3, EventKind::kArrival);
  inject(1600, 3, EventKind::kPostpone, 1);
  inject(2000, 1, EventKind::kPostpone, 0);
  inject(2500, 2, EventKind::kLocalReject);
  inject(3000, 2, EventKind::kArrival);
  inject(4000, 1, EventKind::kMatch, 0, 2);
  inject(4000, 2, EventKind::kMatch, 1, 2);
  inject(5000, 1, EventKind::kRelease, 0);
  inject(6000, 2, EventKind::kRelease, 1);
  inject(6500, 1, EventKind::kGuardAck, 0);
  inject(9000, 3, EventKind::kTimeout, 1);

  const obs::TraceSnapshot snapshot = obs::Trace::collect();
  std::ostringstream out;
  obs::write_chrome_trace(out, obs::resolve(snapshot), snapshot.dropped);

  const std::string golden_path =
      std::string(CBP_SOURCE_DIR) + "/tests/golden/trace_chrome.json";
  if (std::getenv("CBP_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(golden_path);
    ASSERT_TRUE(regen.is_open());
    regen << out.str();
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.is_open()) << "missing golden file " << golden_path;
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

TEST(ObsTelemetry, ObservedRatePrefersRunCounts) {
  obs::TelemetryInput input;
  input.name = "bp";
  input.runs = 10;
  input.runs_hit = 3;
  input.stats.calls = 1000;
  input.stats.arrivals = 100;
  input.stats.hits = 3;
  const auto row = obs::analyze(input, obs::TraceSnapshot{});
  EXPECT_TRUE(row.observed_from_runs);
  EXPECT_DOUBLE_EQ(row.observed, 0.3);
  EXPECT_GE(row.predicted.unaided, 0.0);
  EXPECT_LE(row.predicted.unaided, 1.0);
  // With the estimated T at its floor the model degenerates to the
  // unaided rate; allow for rounding in the closed form.
  EXPECT_GE(row.predicted.btrigger, row.predicted.unaided - 1e-9);
}

TEST(ObsTelemetry, FallsBackToPerArrivalRate) {
  obs::TelemetryInput input;
  input.name = "bp";
  input.stats.arrivals = 50;
  input.stats.ignored = 10;
  input.stats.participants = 8;
  const auto row = obs::analyze(input, obs::TraceSnapshot{});
  EXPECT_FALSE(row.observed_from_runs);
  EXPECT_DOUBLE_EQ(row.observed, 0.2);  // 8 / (50 - 10)
}

TEST(ObsTelemetry, PauseStepsEstimatedFromTraceGaps) {
  obs::TelemetryInput input;
  input.name = "bp";
  input.threads = 1;
  input.runs = 1;
  input.stats.calls = 4;
  input.stats.arrivals = 4;
  input.stats.postponed = 1;
  input.stats.total_wait_us = 10;  // 10'000 ns mean wait
  obs::TraceSnapshot trace;
  obs::Trace::set_name(3, "bp");
  // Same thread arrives every 1000 ns -> T = 10'000 / 1000 = 10 steps.
  for (std::uint64_t i = 0; i < 4; ++i) {
    trace.events.push_back(make_event(1000 * i, 3, 1, EventKind::kArrival));
  }
  const auto inputs = obs::estimate_inputs(input, trace);
  EXPECT_EQ(inputs.pause_steps, 10u);
  EXPECT_EQ(inputs.n_steps, 4u);
}

TEST(ObsTelemetry, ReportRendersOneRowPerBreakpoint) {
  obs::TelemetryInput input;
  input.name = "render-bp";
  input.runs = 4;
  input.runs_hit = 2;
  input.stats.calls = 400;
  input.stats.arrivals = 40;
  input.stats.hits = 2;
  const auto row = obs::analyze(input, obs::TraceSnapshot{});
  const std::string report = obs::render_report({row});
  EXPECT_NE(report.find("render-bp"), std::string::npos);
  EXPECT_NE(report.find("p(btrigger)"), std::string::npos);
  EXPECT_NE(report.find("2/4 runs"), std::string::npos);
}

}  // namespace
}  // namespace cbp
