// Tests for the detector substrate: vector clocks, Eraser locksets,
// FastTrack happens-before, lock contention, and the lock-order graph.
//
// Detector tests run worker threads *sequentially* (join between them):
// detectors consume event sequences tagged with thread ids, so sequential
// execution gives fully deterministic verdicts.

#include <gtest/gtest.h>

#include <thread>

#include "detect/atomicity.h"
#include "detect/contention.h"
#include "detect/eraser.h"
#include "detect/fasttrack.h"
#include "detect/lock_order.h"
#include "detect/vector_clock.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::detect {
namespace {

using instr::ScopedListener;
using instr::SharedVar;
using instr::SourceLoc;
using instr::TrackedLock;
using instr::TrackedMutex;

/// Runs `fn` on a fresh thread and joins (fresh dense thread id).
template <class Fn>
void on_thread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

// ---------------------------------------------------------------------------
// VectorClock
// ---------------------------------------------------------------------------

TEST(VectorClock, GetSetTick) {
  VectorClock vc;
  EXPECT_EQ(vc.get(3), 0u);
  vc.set(3, 7);
  EXPECT_EQ(vc.get(3), 7u);
  vc.tick(3);
  EXPECT_EQ(vc.get(3), 8u);
  vc.tick(5);
  EXPECT_EQ(vc.get(5), 1u);
}

TEST(VectorClock, JoinTakesPointwiseMax) {
  VectorClock a, b;
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 4u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, LeqIsPointwise) {
  VectorClock a, b;
  a.set(0, 1);
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, CoversEpoch) {
  VectorClock vc;
  vc.set(2, 10);
  EXPECT_TRUE(vc.covers(Epoch{2, 10}));
  EXPECT_TRUE(vc.covers(Epoch{2, 9}));
  EXPECT_FALSE(vc.covers(Epoch{2, 11}));
  EXPECT_FALSE(vc.covers(Epoch{4, 1}));
}

// ---------------------------------------------------------------------------
// EraserDetector
// ---------------------------------------------------------------------------

TEST(Eraser, NoRaceWhenConsistentlyLocked) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  TrackedMutex mu;
  for (int i = 0; i < 3; ++i) {
    on_thread([&] {
      TrackedLock lock(mu);
      x.write(x.read() + 1);
    });
  }
  EXPECT_TRUE(detector.races().empty());
}

TEST(Eraser, ReportsUnlockedWriteWriteRace) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { x.write(2); });
  const auto races = detector.races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].addr, x.address());
  EXPECT_TRUE(races[0].second_is_write);
  EXPECT_NE(races[0].first_tid, races[0].second_tid);
}

TEST(Eraser, ReadSharingAloneIsNotARace) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x(42);
  on_thread([&] { (void)x.read(); });
  on_thread([&] { (void)x.read(); });
  on_thread([&] { (void)x.read(); });
  EXPECT_TRUE(detector.races().empty());
}

TEST(Eraser, WriteAfterReadSharingIsARace) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x(42);
  on_thread([&] { (void)x.read(); });
  on_thread([&] { (void)x.read(); });
  on_thread([&] { x.write(1); });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(Eraser, SingleThreadNeverRaces) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  x.write(1);
  (void)x.read();
  x.write(2);
  EXPECT_TRUE(detector.races().empty());
  EXPECT_EQ(detector.tracked_addresses(), 1u);
}

TEST(Eraser, ReportsEachAddressOnce) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  for (int i = 0; i < 4; ++i) on_thread([&] { x.write(i); });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(Eraser, DistinctAddressesReportedSeparately) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x, y;
  on_thread([&] { x.write(1); y.write(1); });
  on_thread([&] { x.write(2); y.write(2); });
  EXPECT_EQ(detector.races().size(), 2u);
}

TEST(Eraser, LocksetShrinksWithInconsistentLocking) {
  // Thread 1 protects x with A, thread 2 with B.  The candidate set is
  // seeded at the first shared access ({B}) and intersected on the next
  // ({B} ∩ {A} = ∅), so classic Eraser reports on the *third* access.
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  TrackedMutex lock_a, lock_b;
  on_thread([&] {
    TrackedLock lock(lock_a);
    x.write(1);
  });
  on_thread([&] {
    TrackedLock lock(lock_b);
    x.write(2);
  });
  EXPECT_TRUE(detector.races().empty());  // candidate set still {B}
  on_thread([&] {
    TrackedLock lock(lock_a);
    x.write(3);
  });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(Eraser, ResetClearsState) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { x.write(2); });
  ASSERT_EQ(detector.races().size(), 1u);
  detector.reset();
  EXPECT_TRUE(detector.races().empty());
  EXPECT_EQ(detector.tracked_addresses(), 0u);
}

TEST(Eraser, ReportRendersPaperStyle) {
  EraserDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { x.write(2); });
  const auto races = detector.races();
  ASSERT_EQ(races.size(), 1u);
  const std::string text = races[0].str();
  EXPECT_NE(text.find("Data race detected between"), std::string::npos);
  EXPECT_NE(text.find("test_detect.cc:line"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FastTrackDetector
// ---------------------------------------------------------------------------

TEST(FastTrack, NoRaceWhenOrderedByLock) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  TrackedMutex mu;
  on_thread([&] {
    TrackedLock lock(mu);
    x.write(1);
  });
  on_thread([&] {
    TrackedLock lock(mu);
    x.write(2);
  });
  EXPECT_TRUE(detector.races().empty());
}

TEST(FastTrack, ReportsUnorderedWriteWrite) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { x.write(2); });
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].addr, x.address());
}

TEST(FastTrack, ReportsUnorderedWriteRead) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { (void)x.read(); });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(FastTrack, ReportsUnorderedReadWrite) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { (void)x.read(); });
  on_thread([&] { x.write(1); });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(FastTrack, ConcurrentReadsDoNotRace) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { (void)x.read(); });
  on_thread([&] { (void)x.read(); });
  EXPECT_TRUE(detector.races().empty());
}

TEST(FastTrack, LockOnOneSideOnlyIsStillARace) {
  // HB precision: Eraser would also flag this, but FastTrack flags it
  // because there is no release/acquire pair ordering the accesses.
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  TrackedMutex mu;
  on_thread([&] {
    TrackedLock lock(mu);
    x.write(1);
  });
  on_thread([&] { x.write(2); });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(FastTrack, DifferentLocksDoNotOrder) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  TrackedMutex lock_a, lock_b;
  on_thread([&] {
    TrackedLock lock(lock_a);
    x.write(1);
  });
  on_thread([&] {
    TrackedLock lock(lock_b);
    x.write(2);
  });
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(FastTrack, CondVarNotifyCreatesHappensBefore) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  instr::TrackedCondVar cv;
  // Simulate: t1 writes then notifies; t2 exits a wait on the same cv
  // then reads.  The notify/wait-exit pair must order the accesses.
  on_thread([&] {
    x.write(1);
    cv.notify_all();
  });
  on_thread([&] {
    instr::Hub::instance().sync(instr::SyncEvent::Kind::kWaitExit, &cv,
                                SourceLoc::current());
    (void)x.read();
  });
  EXPECT_TRUE(detector.races().empty());
}

TEST(FastTrack, EraserFalsePositiveIsNotFlagged) {
  // Classic Eraser FP: ownership transfer via a flag protected by a lock,
  // but the data itself accessed without a common lock.  With HB edges
  // through the lock, the accesses are ordered.
  FastTrackDetector ft;
  EraserDetector eraser;
  ScopedListener r1(ft), r2(eraser);
  SharedVar<int> data;
  TrackedMutex handoff;
  on_thread([&] {
    data.write(41);  // unprotected init
    {
      TrackedLock lock(handoff);  // release edge publishes the write
    }
  });
  on_thread([&] {
    {
      TrackedLock lock(handoff);  // acquire edge imports the write
    }
    data.write(42);  // ordered by the handoff: no HB race, but the
                     // accesses share no common lock -> lockset empty
  });
  EXPECT_TRUE(ft.races().empty());
  // The lockset heuristic (no common lock held at the accesses) flags it.
  EXPECT_EQ(eraser.races().size(), 1u);
}

TEST(FastTrack, ResetClearsState) {
  FastTrackDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] { x.write(1); });
  on_thread([&] { x.write(2); });
  ASSERT_EQ(detector.races().size(), 1u);
  detector.reset();
  EXPECT_TRUE(detector.races().empty());
}

// ---------------------------------------------------------------------------
// ContentionDetector
// ---------------------------------------------------------------------------

TEST(Contention, TwoThreadsTwoSitesOneLock) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  on_thread([&] { TrackedLock lock(mu); });  // site A
  on_thread([&] { TrackedLock lock(mu); });  // site B
  const auto reports = detector.contentions();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].lock, &mu);
  EXPECT_NE(reports[0].site_a, reports[0].site_b);
}

TEST(Contention, SingleThreadIsNotContention) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  on_thread([&] {
    for (int i = 0; i < 3; ++i) {
      TrackedLock lock(mu);
    }
  });
  EXPECT_TRUE(detector.contentions().empty());
}

TEST(Contention, SameSiteTwoThreadsCounts) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  auto body = [&] { TrackedLock lock(mu); };  // single shared site
  on_thread(body);
  on_thread(body);
  const auto reports = detector.contentions();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].site_a, reports[0].site_b);
}

TEST(Contention, DistinctLocksDoNotCrossContend) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b;
  on_thread([&] { TrackedLock lock(lock_a); });
  on_thread([&] { TrackedLock lock(lock_b); });
  EXPECT_TRUE(detector.contentions().empty());
}

TEST(Contention, FourSitePairShapeLikeLog4j) {
  // Three sites on one lock from three threads -> C(3,2)=3 pairs at
  // minimum (plus same-site pairs if threads repeat): the §5 list shape.
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  on_thread([&] { TrackedLock lock(mu); });
  on_thread([&] { TrackedLock lock(mu); });
  on_thread([&] { TrackedLock lock(mu); });
  EXPECT_EQ(detector.contentions().size(), 3u);
}

TEST(Contention, CondVarWaitNotifyContention) {
  // "Contentions over synchronization objects" (§5): one thread waits on
  // a condvar while another notifies it — the missed-notify candidate.
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  instr::TrackedCondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    TrackedLock lock(mu);
    cv.wait(mu, [&] { return ready; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    TrackedLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  const auto sync_reports = detector.sync_object_contentions();
  ASSERT_EQ(sync_reports.size(), 1u);
  EXPECT_EQ(sync_reports[0].lock, static_cast<const void*>(&cv));
  // The full list also contains the mutex contention.
  EXPECT_GT(detector.contentions().size(), sync_reports.size());
}

TEST(Contention, PlainLocksAreNotSyncObjectContentions) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  on_thread([&] { TrackedLock lock(mu); });
  on_thread([&] { TrackedLock lock(mu); });
  EXPECT_FALSE(detector.contentions().empty());
  EXPECT_TRUE(detector.sync_object_contentions().empty());
}

TEST(Contention, ReportRendersPaperStyle) {
  ContentionDetector detector;
  ScopedListener registration(detector);
  TrackedMutex mu;
  on_thread([&] { TrackedLock lock(mu); });
  on_thread([&] { TrackedLock lock(mu); });
  const auto reports = detector.contentions();
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports[0].str().find("Lock contention:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AtomicityCandidateDetector
// ---------------------------------------------------------------------------

TEST(AtomicityCandidates, FindsBlockPlusInterleaver) {
  AtomicityCandidateDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  const SourceLoc begin_site("blk.cc", 1);
  const SourceLoc end_site("blk.cc", 2);
  const SourceLoc other_site("oth.cc", 3);
  on_thread([&] {
    (void)x.read(begin_site);
    x.write(1, end_site);
  });
  on_thread([&] { x.write(2, other_site); });
  const auto candidates = detector.candidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].block_begin, begin_site);
  EXPECT_EQ(candidates[0].block_end, end_site);
  EXPECT_EQ(candidates[0].interleaver, other_site);
  EXPECT_NE(candidates[0].str().find("Potential atomicity violation"),
            std::string::npos);
}

TEST(AtomicityCandidates, SingleThreadHasNoInterleaver) {
  AtomicityCandidateDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] {
    (void)x.read(SourceLoc("blk.cc", 1));
    x.write(1, SourceLoc("blk.cc", 2));
    x.write(2, SourceLoc("oth.cc", 3));
  });
  EXPECT_TRUE(detector.candidates().empty());
}

TEST(AtomicityCandidates, DistinctAddressesDoNotMix) {
  AtomicityCandidateDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x, y;
  on_thread([&] {
    (void)x.read(SourceLoc("blk.cc", 1));
    x.write(1, SourceLoc("blk.cc", 2));
  });
  on_thread([&] { y.write(2, SourceLoc("oth.cc", 3)); });
  EXPECT_TRUE(detector.candidates().empty());
}

TEST(AtomicityCandidates, ResetClearsState) {
  AtomicityCandidateDetector detector;
  ScopedListener registration(detector);
  SharedVar<int> x;
  on_thread([&] {
    (void)x.read(SourceLoc("blk.cc", 1));
    x.write(1, SourceLoc("blk.cc", 2));
  });
  on_thread([&] { x.write(2, SourceLoc("oth.cc", 3)); });
  ASSERT_FALSE(detector.candidates().empty());
  detector.reset();
  EXPECT_TRUE(detector.candidates().empty());
}

// ---------------------------------------------------------------------------
// LockOrderDetector
// ---------------------------------------------------------------------------

TEST(LockOrder, CrossedOrdersAreAPotentialDeadlock) {
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex factory, cs_list;
  detector.tag_lock(&factory, "this");
  detector.tag_lock(&cs_list, "csList");
  on_thread([&] {
    TrackedLock outer(cs_list);
    TrackedLock inner(factory);
  });
  on_thread([&] {
    TrackedLock outer(factory);
    TrackedLock inner(cs_list);
  });
  const auto reports = detector.deadlocks();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(detector.has_cycle());
  const std::string text = reports[0].str();
  EXPECT_NE(text.find("Deadlock found:"), std::string::npos);
  EXPECT_NE(text.find("csList"), std::string::npos);
  EXPECT_NE(text.find("this"), std::string::npos);
}

TEST(LockOrder, ConsistentOrderIsClean) {
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b;
  for (int i = 0; i < 2; ++i) {
    on_thread([&] {
      TrackedLock outer(lock_a);
      TrackedLock inner(lock_b);
    });
  }
  EXPECT_TRUE(detector.deadlocks().empty());
  EXPECT_FALSE(detector.has_cycle());
  EXPECT_EQ(detector.edge_count(), 1u);
}

TEST(LockOrder, SameThreadCycleIsNotADeadlock) {
  // One thread alternating orders cannot deadlock with itself.
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b;
  on_thread([&] {
    {
      TrackedLock outer(lock_a);
      TrackedLock inner(lock_b);
    }
    {
      TrackedLock outer(lock_b);
      TrackedLock inner(lock_a);
    }
  });
  EXPECT_TRUE(detector.deadlocks().empty());
  EXPECT_TRUE(detector.has_cycle());  // the graph has a cycle...
  // ...but no 2-thread realization, so no report.
}

TEST(LockOrder, ThreeCycleDetectedByHasCycle) {
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b, lock_c;
  on_thread([&] {
    TrackedLock outer(lock_a);
    TrackedLock inner(lock_b);
  });
  on_thread([&] {
    TrackedLock outer(lock_b);
    TrackedLock inner(lock_c);
  });
  on_thread([&] {
    TrackedLock outer(lock_c);
    TrackedLock inner(lock_a);
  });
  EXPECT_TRUE(detector.has_cycle());
  EXPECT_TRUE(detector.deadlocks().empty());  // no 2-cycle
  EXPECT_EQ(detector.edge_count(), 3u);
}

TEST(LockOrder, NestedTripleBuildsTransitiveEdges) {
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b, lock_c;
  on_thread([&] {
    TrackedLock l1(lock_a);
    TrackedLock l2(lock_b);
    TrackedLock l3(lock_c);  // edges a->b, a->c, b->c
  });
  EXPECT_EQ(detector.edge_count(), 3u);
}

TEST(LockOrder, ResetClearsState) {
  LockOrderDetector detector;
  ScopedListener registration(detector);
  TrackedMutex lock_a, lock_b;
  on_thread([&] {
    TrackedLock outer(lock_a);
    TrackedLock inner(lock_b);
  });
  detector.reset();
  EXPECT_EQ(detector.edge_count(), 0u);
  EXPECT_FALSE(detector.has_cycle());
}

}  // namespace
}  // namespace cbp::detect
