// Unit tests for the trigger taxonomy: predicate semantics of each
// concrete BTrigger subclass, evaluated directly (no engine involved),
// plus the paper-idiom helper functions and macros.

#include <gtest/gtest.h>

#include <thread>

#include "core/cbp.h"
#include "runtime/latch.h"
#include "runtime/lock_tracker.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class TriggersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_default_timeout(100ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override { Engine::instance().reset(); }

  int obj_a_ = 0;
  int obj_b_ = 0;
};

// ---------------------------------------------------------------------------
// ConflictTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, ConflictMatchesSameObject) {
  ConflictTrigger t1("bp", &obj_a_);
  ConflictTrigger t2("bp", &obj_a_);
  EXPECT_TRUE(t1.predicate_global(t2));
  EXPECT_TRUE(t2.predicate_global(t1));
}

TEST_F(TriggersTest, ConflictRejectsDifferentObject) {
  ConflictTrigger t1("bp", &obj_a_);
  ConflictTrigger t2("bp", &obj_b_);
  EXPECT_FALSE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, ConflictRejectsOtherTriggerTypes) {
  ConflictTrigger conflict("bp", &obj_a_);
  OrderTrigger order("bp");
  EXPECT_FALSE(conflict.predicate_global(order));
}

TEST_F(TriggersTest, ConflictDescribeMentionsConflict) {
  ConflictTrigger t("bp", &obj_a_);
  EXPECT_NE(t.describe().find("Conflict"), std::string::npos);
}

TEST_F(TriggersTest, ConflictLocalPredicateDefaultsTrue) {
  ConflictTrigger t("bp", &obj_a_);
  EXPECT_TRUE(t.predicate_local());
}

// ---------------------------------------------------------------------------
// DeadlockTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, DeadlockMatchesCrossedLocks) {
  DeadlockTrigger t1("bp", /*held=*/&obj_a_, /*wanted=*/&obj_b_);
  DeadlockTrigger t2("bp", /*held=*/&obj_b_, /*wanted=*/&obj_a_);
  EXPECT_TRUE(t1.predicate_global(t2));
  EXPECT_TRUE(t2.predicate_global(t1));
}

TEST_F(TriggersTest, DeadlockRejectsSameOrderLocks) {
  DeadlockTrigger t1("bp", &obj_a_, &obj_b_);
  DeadlockTrigger t2("bp", &obj_a_, &obj_b_);
  EXPECT_FALSE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, DeadlockRejectsUnrelatedLocks) {
  int obj_c = 0, obj_d = 0;
  DeadlockTrigger t1("bp", &obj_a_, &obj_b_);
  DeadlockTrigger t2("bp", &obj_c, &obj_d);
  EXPECT_FALSE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, DeadlockAccessorsExposeLocks) {
  DeadlockTrigger t("bp", &obj_a_, &obj_b_);
  EXPECT_EQ(t.held(), &obj_a_);
  EXPECT_EQ(t.wanted(), &obj_b_);
}

TEST_F(TriggersTest, DeadlockDoesNotMatchConflictTrigger) {
  DeadlockTrigger dl("bp", &obj_a_, &obj_b_);
  ConflictTrigger cf("bp", &obj_a_);
  EXPECT_FALSE(dl.predicate_global(cf));
}

// ---------------------------------------------------------------------------
// AtomicityTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, AtomicityMatchesSameObject) {
  AtomicityTrigger t1("bp", &obj_a_);
  AtomicityTrigger t2("bp", &obj_a_);
  EXPECT_TRUE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, AtomicityDoesNotMatchConflictTrigger) {
  // Distinct bug classes do not cross-match even on the same object.
  AtomicityTrigger at("bp", &obj_a_);
  ConflictTrigger cf("bp", &obj_a_);
  EXPECT_FALSE(at.predicate_global(cf));
  EXPECT_FALSE(cf.predicate_global(at));
}

TEST_F(TriggersTest, AtomicityDescribeNamesBugClass) {
  AtomicityTrigger t("bp", &obj_a_);
  EXPECT_NE(t.describe().find("Atomicity"), std::string::npos);
}

// ---------------------------------------------------------------------------
// OrderTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, OrderMatchesAnySameNamePeer) {
  OrderTrigger t1("bp");
  OrderTrigger t2("bp");
  EXPECT_TRUE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, OrderRejectsOtherTypes) {
  OrderTrigger order("bp");
  ConflictTrigger conflict("bp", &obj_a_);
  EXPECT_FALSE(order.predicate_global(conflict));
}

// ---------------------------------------------------------------------------
// ValueTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, ValueTriggerMatchesEqualValues) {
  ValueTrigger<int> t1("bp", 42);
  ValueTrigger<int> t2("bp", 42);
  EXPECT_TRUE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, ValueTriggerRejectsUnequalValues) {
  ValueTrigger<int> t1("bp", 42);
  ValueTrigger<int> t2("bp", 43);
  EXPECT_FALSE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, ValueTriggerRejectsDifferentValueType) {
  ValueTrigger<int> t1("bp", 42);
  ValueTrigger<long> t2("bp", 42L);
  EXPECT_FALSE(t1.predicate_global(t2));
}

TEST_F(TriggersTest, ValueTriggerCustomComparator) {
  // Match when the two sides' values sum to zero (a relational phi).
  auto opposite = [](const int& a, const int& b) { return a + b == 0; };
  ValueTrigger<int> t1("bp", 5, opposite);
  ValueTrigger<int> t2("bp", -5, opposite);
  EXPECT_TRUE(t1.predicate_global(t2));
  ValueTrigger<int> t3("bp", 4, opposite);
  EXPECT_FALSE(t1.predicate_global(t3));
}

TEST_F(TriggersTest, ValueTriggerWithStrings) {
  ValueTrigger<std::string> t1("bp", "csList");
  ValueTrigger<std::string> t2("bp", "csList");
  EXPECT_TRUE(t1.predicate_global(t2));
}

// ---------------------------------------------------------------------------
// PredicateTrigger
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, PredicateTriggerEvaluatesCallables) {
  PredicateTrigger t1("bp", [](const BTrigger& other) {
    return other.name() == "bp";
  });
  PredicateTrigger t2("bp", [](const BTrigger&) { return false; });
  EXPECT_TRUE(t1.predicate_global(t2));
  EXPECT_FALSE(t2.predicate_global(t1));
}

TEST_F(TriggersTest, PredicateTriggerLocalCallable) {
  bool gate = false;
  PredicateTrigger t(
      "bp", [&] { return gate; }, [](const BTrigger&) { return true; });
  EXPECT_FALSE(t.predicate_local());
  gate = true;
  EXPECT_TRUE(t.predicate_local());
}

// ---------------------------------------------------------------------------
// LockTypeHeldRefinement (paper §6.3, Swing/BasicCaret)
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, LockTypeHeldGatesLocalPredicate) {
  LockTypeHeldRefinement<ConflictTrigger> t("BasicCaret", "bp", &obj_a_);
  EXPECT_FALSE(t.predicate_local());
  {
    rt::ScopedLockNote note(&obj_b_, "BasicCaret");
    EXPECT_TRUE(t.predicate_local());
  }
  EXPECT_FALSE(t.predicate_local());
}

TEST_F(TriggersTest, LockTypeHeldRequiresMatchingTag) {
  LockTypeHeldRefinement<ConflictTrigger> t("BasicCaret", "bp", &obj_a_);
  rt::ScopedLockNote note(&obj_b_, "RepaintManager");
  EXPECT_FALSE(t.predicate_local());
}

TEST_F(TriggersTest, LockTypeHeldGlobalPredicateUnchanged) {
  LockTypeHeldRefinement<ConflictTrigger> t("tag", "bp", &obj_a_);
  ConflictTrigger peer("bp", &obj_a_);
  EXPECT_TRUE(t.predicate_global(peer));
}

// ---------------------------------------------------------------------------
// Helper functions and macros (end-to-end through the engine)
// ---------------------------------------------------------------------------

TEST_F(TriggersTest, ConflictHelperHitsAcrossThreads) {
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    hit_a = conflict_trigger_here("helper-bp", &obj_a_, true, 2000ms);
  });
  std::thread b([&] {
    hit_b = conflict_trigger_here("helper-bp", &obj_a_, false, 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST_F(TriggersTest, DeadlockHelperHitsAcrossThreads) {
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    hit_a = deadlock_trigger_here("dl-bp", &obj_a_, &obj_b_, true, 2000ms);
  });
  std::thread b([&] {
    hit_b = deadlock_trigger_here("dl-bp", &obj_b_, &obj_a_, false, 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST_F(TriggersTest, OrderHelperHitsAcrossThreads) {
  bool hit_a = false, hit_b = false;
  std::thread a([&] { hit_a = order_trigger_here("ord-bp", true, 2000ms); });
  std::thread b([&] { hit_b = order_trigger_here("ord-bp", false, 2000ms); });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST_F(TriggersTest, MacrosCompileAndRun) {
  Config::set_default_timeout(10ms);
  // Alone, each macro call times out and reports no hit.
  EXPECT_FALSE(CBP_CONFLICT("macro-bp", &obj_a_, true));
  EXPECT_FALSE(CBP_DEADLOCK("macro-dl", &obj_a_, &obj_b_, true));
  EXPECT_FALSE(CBP_ORDER("macro-ord", true));
  EXPECT_EQ(Engine::instance().stats("macro-bp").calls, 1u);
}

TEST_F(TriggersTest, ValueTriggerHitsThroughEngine) {
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    ValueTrigger<std::string> t("vt-bp", "csList");
    hit_a = t.trigger_here(true, 2000ms);
  });
  std::thread b([&] {
    ValueTrigger<std::string> t("vt-bp", "csList");
    hit_b = t.trigger_here(false, 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

}  // namespace
}  // namespace cbp
