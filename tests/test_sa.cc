// Tests for the static breakpoint-candidate analyzer (src/sa): the
// tokenizer, the site extractor (scopes, locksets, tricky syntax), the
// lockset / lock-graph / contention passes, ranking, and the emitted
// spec's round-trip through BreakpointSpec::parse.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/spec.h"
#include "sa/analyzer.h"
#include "sa/call_graph.h"
#include "sa/lock_graph_pass.h"
#include "sa/lockset_pass.h"
#include "sa/rank.h"
#include "sa/tokenizer.h"

namespace cbp::sa {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(Tokenizer, KindsAndLineNumbers) {
  const auto tokens = tokenize("int x = 10'000;\n// gone\ncall(\"str\");\n");
  ASSERT_EQ(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].is_ident("int"));
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_TRUE(tokens[1].is_ident("x"));
  EXPECT_TRUE(tokens[2].is_punct("="));
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[3].text, "10'000");
  EXPECT_TRUE(tokens[4].is_punct(";"));
  EXPECT_TRUE(tokens[5].is_ident("call"));
  EXPECT_EQ(tokens[5].line, 3u);
  EXPECT_EQ(tokens[7].kind, TokKind::kString);
  EXPECT_EQ(tokens[7].text, "str");
}

TEST(Tokenizer, BlockCommentsCountLines) {
  const auto tokens = tokenize("a /* one\ntwo\nthree */ b\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 3u);
}

TEST(Tokenizer, PreprocessorDirectivesSkippedWithContinuations) {
  const auto tokens = tokenize(
      "#include <mutex>\n"
      "#define M(x) \\\n  do_thing(x)\n"
      "real;\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_ident("real"));
  EXPECT_EQ(tokens[0].line, 4u);
}

TEST(Tokenizer, CharLiteralsAndDigitSeparatorsDoNotConfuse) {
  // The separator in 1'000 must not open a char literal.
  const auto tokens = tokenize("f(1'000, 'x', s.find('/'));\n");
  const auto chars = std::count_if(
      tokens.begin(), tokens.end(),
      [](const Token& t) { return t.kind == TokKind::kChar; });
  EXPECT_EQ(chars, 2);
  EXPECT_EQ(tokens[2].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[2].text, "1'000");
}

TEST(Tokenizer, RawStringsConsumedWhole) {
  const auto tokens = tokenize("auto s = R\"(no \" tokens { here)\"; next;\n");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokKind::kString);
  EXPECT_EQ(tokens[3].text, "no \" tokens { here");
  EXPECT_TRUE(tokens[5].is_ident("next"));
}

TEST(Tokenizer, ScopeAndArrowAreFused) {
  const auto tokens = tokenize("a::b->c < d > e\n");
  EXPECT_TRUE(tokens[1].is_punct("::"));
  EXPECT_TRUE(tokens[3].is_punct("->"));
  EXPECT_TRUE(tokens[5].is_punct("<"));
}

// ---------------------------------------------------------------------------
// Extractor
// ---------------------------------------------------------------------------

UnitModel extract_snippet(const std::string& code) {
  return extract_unit("unit", {{"snippet.cc", code}});
}

const Access* find_access(const UnitModel& m, const std::string& var,
                          std::uint32_t line, bool is_write) {
  for (const Access& a : m.accesses) {
    if (a.var == var && a.site.line == line && a.is_write == is_write) {
      return &a;
    }
  }
  return nullptr;
}

TEST(Extractor, DeclarationsAndAccesses) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::SharedVar<std::int64_t> count_{0};
  instr::TrackedMutex mu_{"table"};
};
void touch(S& s) {
  const auto v = s.count_.read();
  s.count_.write(v + 1);
}
)cpp");
  ASSERT_EQ(m.vars.size(), 1u);
  EXPECT_EQ(m.vars[0].name, "count_");
  ASSERT_EQ(m.mutexes.size(), 1u);
  EXPECT_EQ(m.mutexes[0].name, "mu_");
  EXPECT_EQ(m.mutexes[0].tag, "table");
  ASSERT_NE(find_access(m, "count_", 7, false), nullptr);
  ASSERT_NE(find_access(m, "count_", 8, true), nullptr);
  EXPECT_TRUE(find_access(m, "count_", 7, false)->lockset.empty());
}

TEST(Extractor, SharedVarReferenceParameterIsADeclaration) {
  const UnitModel m = extract_snippet(R"cpp(
void bump(instr::SharedVar<int>& counter) {
  counter.racy_update([](int v) { return v + 1; });
}
)cpp");
  ASSERT_EQ(m.vars.size(), 1u);
  EXPECT_EQ(m.vars[0].name, "counter");
  // racy_update is one read and one write at the same site.
  EXPECT_NE(find_access(m, "counter", 3, false), nullptr);
  EXPECT_NE(find_access(m, "counter", 3, true), nullptr);
}

TEST(Extractor, HeaderDeclarationsResolveRegardlessOfFileOrder) {
  // The access lives in the .cc, the declaration in the .h; the .cc
  // sorts first alphabetically, so this exercises the two-phase scan.
  const UnitModel m = extract_unit(
      "unit", {{"a.cc", "void f(S& s) { s.flag_.write(true); }\n"},
               {"b.h", "struct S { instr::SharedVar<bool> flag_; };\n"}});
  ASSERT_EQ(m.accesses.size(), 1u);
  EXPECT_EQ(m.accesses[0].var, "flag_");
  EXPECT_EQ(m.accesses[0].site.basename(), "a.cc");
}

TEST(Extractor, NestedTrackedLockScopes) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex outer_{"outer"};
  instr::TrackedMutex inner_{"inner"};
  instr::SharedVar<int> v_;
};
void f(S& s) {
  instr::TrackedLock a(s.outer_);
  s.v_.write(1);
  {
    instr::TrackedLock b(s.inner_);
    s.v_.write(2);
  }
  s.v_.write(3);
}
void g(S& s) {
  s.v_.write(4);
}
)cpp");
  const Access* first = find_access(m, "v_", 9, true);
  const Access* nested = find_access(m, "v_", 12, true);
  const Access* after = find_access(m, "v_", 14, true);
  const Access* outside = find_access(m, "v_", 17, true);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(after, nullptr);
  ASSERT_NE(outside, nullptr);
  EXPECT_EQ(first->lockset, (std::vector<std::string>{"outer_"}));
  EXPECT_EQ(nested->lockset, (std::vector<std::string>{"inner_", "outer_"}));
  EXPECT_EQ(after->lockset, (std::vector<std::string>{"outer_"}));
  EXPECT_TRUE(outside->lockset.empty());
}

TEST(Extractor, EarlyAliasUnlockReleasesTheLock) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void f(S& s) {
  instr::TrackedLock lock(s.mu_);
  s.v_.write(1);
  lock.unlock();
  s.v_.write(2);
}
)cpp");
  ASSERT_NE(find_access(m, "v_", 8, true), nullptr);
  ASSERT_NE(find_access(m, "v_", 10, true), nullptr);
  EXPECT_EQ(find_access(m, "v_", 8, true)->lockset.size(), 1u);
  EXPECT_TRUE(find_access(m, "v_", 10, true)->lockset.empty());
}

TEST(Extractor, ManualLockOrStallAndUnlock) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
};
void f(S& s) {
  instr::TrackedLock hold(s.a_);
  s.b_.lock_or_stall(timeout);
  s.b_.unlock();
}
)cpp");
  ASSERT_EQ(m.acquires.size(), 2u);
  EXPECT_EQ(m.acquires[0].mutex, "a_");
  EXPECT_TRUE(m.acquires[0].held.empty());
  EXPECT_EQ(m.acquires[1].mutex, "b_");
  EXPECT_EQ(m.acquires[1].held, (std::vector<std::string>{"a_"}));
}

TEST(Extractor, LambdaBracesDoNotCorruptTheLockset) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void f(S& s) {
  instr::TrackedLock lock(s.mu_);
  auto fn = [&] { return 1; };
  s.v_.write(fn());
}
)cpp");
  const Access* access = find_access(m, "v_", 9, true);
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->lockset, (std::vector<std::string>{"mu_"}));
}

TEST(Extractor, MultiLineCallsUseTheMethodTokenLine) {
  const UnitModel m = extract_snippet(R"cpp(
struct S { instr::SharedVar<int> v_; };
void f(S& s) {
  s.v_
      .write(
          42);
}
)cpp");
  ASSERT_EQ(m.accesses.size(), 1u);
  EXPECT_EQ(m.accesses[0].site.line, 5u);
}

TEST(Extractor, CondVarWaitSitesRecordTheMutex) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::TrackedCondVar cv_;
};
void f(S& s, StartGate& gate) {
  gate.wait();
  instr::TrackedLock lock(s.mu_);
  s.cv_.wait_or_stall(s.mu_, timeout, [&] { return true; });
}
)cpp");
  ASSERT_EQ(m.waits.size(), 1u);  // gate.wait() has no mutex argument
  EXPECT_EQ(m.waits[0].condvar, "cv_");
  EXPECT_EQ(m.waits[0].mutex, "mu_");
  EXPECT_EQ(m.waits[0].site.line, 9u);
}

TEST(Extractor, AnnotationsFromTriggersAndMacros) {
  const UnitModel m = extract_snippet(R"cpp(
void f() {
  ConflictTrigger trigger("cache4j-race1", addr);
  trigger.trigger_here(true);
  if (CBP_DEADLOCK(kDeadlock1, &a, &b, true)) {}
}
)cpp");
  ASSERT_EQ(m.annotations.size(), 2u);
  EXPECT_EQ(m.annotations[0].kind, "conflict");
  EXPECT_EQ(m.annotations[0].name, "cache4j-race1");
  EXPECT_EQ(m.annotations[1].kind, "deadlock");
  EXPECT_EQ(m.annotations[1].name, "kDeadlock1");
}

// ---------------------------------------------------------------------------
// Lockset pass
// ---------------------------------------------------------------------------

TEST(LocksetPass, DisjointLocksetsWithAWriteConflict) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void reader(S& s) {
  instr::TrackedLock lock(s.mu_);
  (void)s.v_.read();
}
void writer(S& s) {
  s.v_.write(1);
}
)cpp");
  const auto candidates = lockset_pass(m);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].subject, "v_");
  EXPECT_EQ(candidates[0].site_a.line, 8u);
  EXPECT_EQ(candidates[0].site_b.line, 11u);
  EXPECT_FALSE(candidates[0].a_is_write);
  EXPECT_TRUE(candidates[0].b_is_write);
}

TEST(LocksetPass, CommonLockSuppressesThePair) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void reader(S& s) {
  instr::TrackedLock lock(s.mu_);
  (void)s.v_.read();
}
void writer(S& s) {
  instr::TrackedLock lock(s.mu_);
  s.v_.write(1);
}
)cpp");
  EXPECT_TRUE(lockset_pass(m).empty());
}

TEST(LocksetPass, ReadReadPairsAreNotConflicts) {
  const UnitModel m = extract_snippet(R"cpp(
struct S { instr::SharedVar<int> v_; };
void a(S& s) { (void)s.v_.read(); }
void b(S& s) { (void)s.v_.read(); }
)cpp");
  EXPECT_TRUE(lockset_pass(m).empty());
}

TEST(LocksetPass, RacyUpdateAloneIsASelfRace) {
  const UnitModel m = extract_snippet(R"cpp(
void bump(instr::SharedVar<int>& counter) {
  counter.racy_update([](int v) { return v + 1; });
}
)cpp");
  const auto candidates = lockset_pass(m);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].site_a.line, candidates[0].site_b.line);
  EXPECT_NE(candidates[0].a_is_write, candidates[0].b_is_write);
}

// ---------------------------------------------------------------------------
// Lock-graph pass
// ---------------------------------------------------------------------------

constexpr const char* kCrossedLocks = R"cpp(
struct S {
  instr::TrackedMutex a_{"lockA"};
  instr::TrackedMutex b_{"lockB"};
};
void leg1(S& s, ms t) {
  instr::TrackedLock first(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void leg2(S& s, ms t) {
  instr::TrackedLock first(s.b_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
)cpp";

TEST(LockGraphPass, CrossedAcquisitionOrderIsACandidate) {
  const UnitModel m = extract_snippet(kCrossedLocks);
  const auto candidates = lock_graph_pass(m);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].subject, "lockA <-> lockB");
  EXPECT_EQ(candidates[0].site_a.line, 8u);   // b_ wanted while holding a_
  EXPECT_EQ(candidates[0].site_b.line, 13u);  // a_ wanted while holding b_
  EXPECT_TRUE(lock_graph_has_cycle(m));
}

TEST(LockGraphPass, ConsistentOrderIsClean) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
};
void f(S& s, ms t) {
  instr::TrackedLock first(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void g(S& s, ms t) {
  instr::TrackedLock first(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
)cpp");
  EXPECT_TRUE(lock_graph_pass(m).empty());
  EXPECT_FALSE(lock_graph_has_cycle(m));
}

TEST(LockGraphPass, ThreeCycleHasCycleButNoPairCandidate) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
  instr::TrackedMutex c_;
};
void f(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void g(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  s.c_.lock_or_stall(t);
  s.c_.unlock();
}
void h(S& s, ms t) {
  instr::TrackedLock l(s.c_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
)cpp");
  EXPECT_TRUE(lock_graph_pass(m).empty());
  EXPECT_TRUE(lock_graph_has_cycle(m));
}

TEST(LockGraphPass, TryLockDoesNotCreateEdges) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
};
void f(S& s) {
  instr::TrackedLock l(s.a_);
  if (s.b_.try_lock()) { s.b_.unlock(); }
}
void g(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
)cpp");
  EXPECT_TRUE(lock_graph_pass(m).empty());
}

// ---------------------------------------------------------------------------
// Contention pass
// ---------------------------------------------------------------------------

TEST(ContentionPass, PairsOnlyForCondvarGuardingMutexes) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex waited_{"buffer"};
  instr::TrackedMutex plain_;
  instr::TrackedCondVar cv_;
};
void a(S& s, ms t) {
  instr::TrackedLock lock(s.waited_);
  s.cv_.wait_or_stall(s.waited_, t, [&] { return true; });
}
void b(S& s) {
  instr::TrackedLock lock(s.waited_);
}
void c(S& s) {
  instr::TrackedLock lock(s.plain_);
}
void d(S& s) {
  instr::TrackedLock lock(s.plain_);
}
)cpp");
  const auto candidates = contention_pass(m);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].subject, "buffer");
  EXPECT_EQ(candidates[0].site_a.line, 8u);
  EXPECT_EQ(candidates[0].site_b.line, 12u);
}

// ---------------------------------------------------------------------------
// Ranking + emitters
// ---------------------------------------------------------------------------

TEST(Rank, WriteWriteOutranksWriteReadAndGuardedPairs) {
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> ww_;
  instr::SharedVar<int> wr_;
  instr::SharedVar<int> guarded_;
};
void a(S& s) { s.ww_.write(1); }
void b(S& s) { s.ww_.write(2); }
void c(S& s) { (void)s.wr_.read(); }
void d(S& s) { s.wr_.write(1); }
void e(S& s) {
  instr::TrackedLock lock(s.mu_);
  s.guarded_.write(1);
}
void f(S& s) { s.guarded_.write(2); }
)cpp"}});
  ASSERT_EQ(result.candidates.size(), 3u);
  EXPECT_EQ(result.candidates[0].subject, "ww_");       // write/write, no locks
  EXPECT_EQ(result.candidates[1].subject, "guarded_");  // write/write, 1 lock
  EXPECT_EQ(result.candidates[2].subject, "wr_");       // write/read
  EXPECT_GT(result.candidates[0].score, result.candidates[1].score);
  EXPECT_GT(result.candidates[1].score, result.candidates[2].score);
}

TEST(Rank, NearbyAnnotationIsAttached) {
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S { instr::SharedVar<int> v_; };
void a(S& s) {
  ConflictTrigger trigger("known-race", s.v_.address());
  trigger.trigger_here(true);
  s.v_.write(1);
}
void b(S& s) { (void)s.v_.read(); }
)cpp"}});
  ASSERT_EQ(result.candidates.size(), 1u);
  EXPECT_EQ(result.candidates[0].existing, "known-race");
}

TEST(Rank, SpecNamesAreUnique) {
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::SharedVar<int> v_;
  instr::SharedVar<int> w_;
};
void a(S& s) { s.v_.write(1); s.w_.write(1); }
void b(S& s) { (void)s.v_.read(); (void)s.w_.read(); }
)cpp"}});
  ASSERT_GE(result.candidates.size(), 2u);
  std::vector<std::string> names;
  for (const Candidate& c : result.candidates) names.push_back(c.spec_name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Emit, SpecRoundTripsThroughBreakpointSpecParse) {
  const AnalysisResult result =
      analyze_sources("unit", {{"r.cc", kCrossedLocks},
                               {"s.cc", R"cpp(
struct T { instr::SharedVar<int> v_; };
void a(T& t) { t.v_.write(1); }
void b(T& t) { (void)t.v_.read(); }
)cpp"}});
  ASSERT_GE(result.candidates.size(), 2u);
  const std::string spec_text = render_spec(result.candidates, 0);
  EXPECT_NE(spec_text.find("# candidate:"), std::string::npos);
  const BreakpointSpec spec = BreakpointSpec::parse(spec_text);
  EXPECT_EQ(spec.size(), result.candidates.size());
  for (const Candidate& c : result.candidates) {
    const SpecOverride* entry = spec.find(c.spec_name);
    ASSERT_NE(entry, nullptr) << c.spec_name;
    EXPECT_EQ(entry->from, SpecOrigin::kStatic);
  }
}

TEST(Emit, ReportRendersCandidateReportShapes) {
  const AnalysisResult result =
      analyze_sources("unit", {{"r.cc", kCrossedLocks}});
  ASSERT_EQ(result.candidates.size(), 1u);
  const auto reports = to_reports(result.candidates);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, detect::CandidateReport::Kind::kDeadlock);
  const std::string text = reports[0].str();
  EXPECT_NE(text.find("Deadlock candidate (static)"), std::string::npos);
  EXPECT_NE(text.find("r.cc:line 8"), std::string::npos);
  EXPECT_NE(text.find("r.cc:line 13"), std::string::npos);
  const std::string rendered = render_report(result.candidates, 0);
  EXPECT_NE(rendered.find("1 breakpoint candidate"), std::string::npos);
}

TEST(Emit, ListOutputIsStable) {
  const AnalysisResult once =
      analyze_sources("unit", {{"r.cc", kCrossedLocks}});
  const AnalysisResult twice =
      analyze_sources("unit", {{"r.cc", kCrossedLocks}});
  EXPECT_EQ(render_list(once.candidates), render_list(twice.candidates));
  EXPECT_NE(render_list(once.candidates).find("deadlock"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tokenizer line-start rule: '#' opens a directive only at line start
// ---------------------------------------------------------------------------

TEST(Tokenizer, HashMidLineIsNotADirective) {
  // Before the line-start rule, the '#' swallowed the rest of the line —
  // including real code after a block comment.
  const auto tokens = tokenize("a /* note */ #define X 1\nreal;\n");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_TRUE(tokens[0].is_ident("a"));
  EXPECT_TRUE(tokens[1].is_punct("#"));
  EXPECT_TRUE(tokens[2].is_ident("define"));
  EXPECT_TRUE(tokens[5].is_ident("real"));
  EXPECT_EQ(tokens[5].line, 2u);
}

TEST(Tokenizer, IndentedDirectivesStillSkip) {
  const auto tokens = tokenize("  #pragma once\n\t#endif\nreal;\n");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_ident("real"));
  EXPECT_EQ(tokens[0].line, 3u);
}

// ---------------------------------------------------------------------------
// Extractor: functions, call sites, string constants
// ---------------------------------------------------------------------------

TEST(Extractor, FunctionsCallSitesAndConsts) {
  const UnitModel m = extract_snippet(R"cpp(
constexpr const char* kName = "unit-race1";
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void helper(S& s) { s.v_.write(1); }
void outer(S& s) {
  instr::TrackedLock l(s.mu_);
  helper(s);
}
)cpp");
  EXPECT_TRUE(m.has_function("helper"));
  EXPECT_TRUE(m.has_function("outer"));
  ASSERT_EQ(m.calls.size(), 1u);
  EXPECT_EQ(m.calls[0].caller, "outer");
  EXPECT_EQ(m.calls[0].callee, "helper");
  EXPECT_EQ(m.calls[0].site.line, 10u);
  EXPECT_EQ(m.calls[0].locks_held, std::vector<std::string>{"mu_"});
  ASSERT_EQ(m.consts.count("kName"), 1u);
  EXPECT_EQ(m.consts.at("kName"), "unit-race1");
  // Accesses know the function they sit in.
  const Access* write = find_access(m, "v_", 7, /*is_write=*/true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->function, "helper");
}

TEST(Extractor, MethodCallsAndControlKeywordsAreNotCallSites) {
  const UnitModel m = extract_snippet(R"cpp(
struct S { instr::SharedVar<int> v_; };
void target(S& s) { s.v_.write(1); }
void f(S& s) {
  if (true) { while (false) {} }
  s.v_.read();
  return target(s);
}
)cpp");
  ASSERT_EQ(m.calls.size(), 1u);
  EXPECT_EQ(m.calls[0].callee, "target");
  EXPECT_EQ(m.calls[0].caller, "f");
}

// ---------------------------------------------------------------------------
// Call graph + interprocedural lockset propagation
// ---------------------------------------------------------------------------

constexpr const char* kHelperChain = R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
  instr::SharedVar<int> v_;
};
void leaf(S& s) { s.v_.write(1); }
void mid(S& s) { leaf(s); }
void top1(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  mid(s);
}
void top2(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  s.b_.lock_or_stall(t);
  mid(s);
  s.b_.unlock();
}
)cpp";

TEST(CallGraph, EntryLocksetsSolveTheIntersectionFixpoint) {
  const UnitModel m = extract_snippet(kHelperChain);
  const CallGraph graph = build_call_graph(m);
  // mid is called holding {a_} (top1) and {a_, b_} (top2): meet = {a_}.
  ASSERT_EQ(graph.entry_locks.count("mid"), 1u);
  EXPECT_EQ(graph.entry_locks.at("mid"), std::vector<std::string>{"a_"});
  // leaf inherits transitively through mid's entry lockset.
  ASSERT_EQ(graph.entry_locks.count("leaf"), 1u);
  EXPECT_EQ(graph.entry_locks.at("leaf"), std::vector<std::string>{"a_"});
  // top1/top2 have no in-unit callers: no entry lockset.
  EXPECT_EQ(graph.entry_locks.count("top1"), 0u);
  EXPECT_EQ(graph.entry_locks.count("top2"), 0u);
}

TEST(CallGraph, MixedCallersYieldEmptyEntryLockset) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::SharedVar<int> v_;
};
void touch(S& s) { s.v_.write(1); }
void locked(S& s) {
  instr::TrackedLock l(s.a_);
  touch(s);
}
void unlocked(S& s) { touch(s); }
)cpp");
  const CallGraph graph = build_call_graph(m);
  const auto it = graph.entry_locks.find("touch");
  EXPECT_TRUE(it == graph.entry_locks.end() || it->second.empty());
}

TEST(CallGraph, PropagationSuppressesAllCallersHoldConflicts) {
  // Both writers of v_ run under a_ once entry locksets flow in, so the
  // conflict pair disappears under --interproc but exists without it.
  const char* code = R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::SharedVar<int> v_;
};
void touch(S& s) { s.v_.write(1); }
void locked1(S& s) {
  instr::TrackedLock l(s.a_);
  touch(s);
}
void direct(S& s) {
  instr::TrackedLock l(s.a_);
  s.v_.write(2);
}
)cpp";
  AnalysisOptions interproc;
  interproc.interprocedural = true;
  const AnalysisResult without =
      analyze_sources("unit", {{"r.cc", code}});
  const AnalysisResult with =
      analyze_sources("unit", {{"r.cc", code}}, interproc);
  EXPECT_FALSE(without.candidates.empty());
  EXPECT_TRUE(with.candidates.empty()) << render_list(with.candidates);
}

TEST(CallGraph, PropagationRevealsCrossFunctionDeadlock) {
  // take_a/take_b each acquire one lock — no intraprocedural edge — but
  // their callers hold the opposite lock: the crossed order appears only
  // after propagation.
  const char* code = R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
};
void take_b(S& s, ms t) {
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void take_a(S& s, ms t) {
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
void cross1(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  take_b(s, t);
}
void cross2(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  take_a(s, t);
}
)cpp";
  AnalysisOptions interproc;
  interproc.interprocedural = true;
  const AnalysisResult without =
      analyze_sources("unit", {{"r.cc", code}});
  const AnalysisResult with =
      analyze_sources("unit", {{"r.cc", code}}, interproc);
  EXPECT_TRUE(without.candidates.empty()) << render_list(without.candidates);
  EXPECT_FALSE(without.lock_graph_has_cycle);
  ASSERT_EQ(with.candidates.size(), 1u) << render_list(with.candidates);
  EXPECT_EQ(with.candidates[0].kind, Candidate::Kind::kDeadlock);
  EXPECT_TRUE(with.lock_graph_has_cycle);
  ASSERT_EQ(with.cycles.size(), 1u);
  EXPECT_EQ(with.cycles[0].length(), 2u);
}

// ---------------------------------------------------------------------------
// Ranked cycle enumeration (--deadlock)
// ---------------------------------------------------------------------------

TEST(LockCycles, ThreeNodeCycleCarriesWitnessChain) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
  instr::TrackedMutex c_;
};
void f(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void g(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  s.c_.lock_or_stall(t);
  s.c_.unlock();
}
void h(S& s, ms t) {
  instr::TrackedLock l(s.c_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
)cpp");
  const auto cycles = find_lock_cycles(m);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].length(), 3u);
  EXPECT_EQ(cycles[0].score, 90);  // 100 - 10*(3-2)
  ASSERT_EQ(cycles[0].locks.size(), 3u);
  EXPECT_EQ(cycles[0].locks[0], "a_");  // starts at the smallest lock
  ASSERT_EQ(cycles[0].sites.size(), 3u);
  // sites[i]: where locks[i+1] is acquired while locks[i] is held.
  EXPECT_EQ(cycles[0].sites[0].line, 9u);   // b_ wanted under a_
  EXPECT_EQ(cycles[0].sites[1].line, 14u);  // c_ wanted under b_
  EXPECT_EQ(cycles[0].sites[2].line, 19u);  // a_ wanted under c_
  const std::string rendered = render_cycles(cycles);
  EXPECT_NE(rendered.find("a_ -> b_ -> c_ -> a_"), std::string::npos)
      << rendered;
}

TEST(LockCycles, TwoCycleOutranksThreeCycle) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
  instr::TrackedMutex x_;
  instr::TrackedMutex y_;
  instr::TrackedMutex z_;
};
void f(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  s.b_.lock_or_stall(t);
  s.b_.unlock();
}
void g(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
void p(S& s, ms t) {
  instr::TrackedLock l(s.x_);
  s.y_.lock_or_stall(t);
  s.y_.unlock();
}
void q(S& s, ms t) {
  instr::TrackedLock l(s.y_);
  s.z_.lock_or_stall(t);
  s.z_.unlock();
}
void r(S& s, ms t) {
  instr::TrackedLock l(s.z_);
  s.x_.lock_or_stall(t);
  s.x_.unlock();
}
)cpp");
  const auto cycles = find_lock_cycles(m);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].length(), 2u);
  EXPECT_EQ(cycles[0].score, 100);
  EXPECT_EQ(cycles[1].length(), 3u);
  EXPECT_EQ(cycles[1].score, 90);
}

TEST(LockCycles, TryLockAndSelfAcquireFormNoCycles) {
  const UnitModel m = extract_snippet(R"cpp(
struct S {
  instr::TrackedMutex a_;
  instr::TrackedMutex b_;
};
void f(S& s) {
  instr::TrackedLock l(s.a_);
  if (s.b_.try_lock()) { s.b_.unlock(); }
}
void g(S& s, ms t) {
  instr::TrackedLock l(s.b_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
void recursive(S& s, ms t) {
  instr::TrackedLock l(s.a_);
  s.a_.lock_or_stall(t);
  s.a_.unlock();
}
)cpp");
  EXPECT_TRUE(find_lock_cycles(m).empty());
}

// ---------------------------------------------------------------------------
// Atomicity pass
// ---------------------------------------------------------------------------

TEST(AtomicityPass, ReleasedLockBetweenReadAndWriteIsACandidate) {
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
int check_then_act(S& s) {
  s.mu_.lock();
  const int seen = s.v_.read();
  s.mu_.unlock();
  s.mu_.lock();
  s.v_.write(seen + 1);
  s.mu_.unlock();
  return seen;
}
)cpp"}});
  ASSERT_EQ(result.candidates.size(), 1u) << render_list(result.candidates);
  const Candidate& c = result.candidates[0];
  EXPECT_EQ(c.kind, Candidate::Kind::kAtomicity);
  EXPECT_EQ(c.subject, "v_");
  EXPECT_EQ(c.site_a.line, 8u);   // the read
  EXPECT_EQ(c.site_b.line, 11u);  // the write it feeds
  EXPECT_FALSE(c.a_is_write);
  EXPECT_TRUE(c.b_is_write);
}

TEST(AtomicityPass, SingleCriticalSectionIsNotACandidate) {
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void atomic_update(S& s) {
  instr::TrackedLock l(s.mu_);
  const int seen = s.v_.read();
  s.v_.write(seen + 1);
}
)cpp"}});
  EXPECT_TRUE(result.candidates.empty()) << render_list(result.candidates);
}

TEST(AtomicityPass, InheritedCallerLockDoesNotSplit) {
  // Under --interproc the helper's read and write both inherit mu_ from
  // the caller, but the inherited hold is ONE acquisition spanning the
  // whole callee — not a release/re-acquire.
  AnalysisOptions interproc;
  interproc.interprocedural = true;
  const AnalysisResult result = analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
void helper(S& s) {
  const int seen = s.v_.read();
  s.v_.write(seen + 1);
}
void caller(S& s) {
  instr::TrackedLock l(s.mu_);
  helper(s);
}
)cpp"}},
                                               interproc);
  for (const Candidate& c : result.candidates) {
    EXPECT_NE(c.kind, Candidate::Kind::kAtomicity) << render_list({c});
  }
}

TEST(AtomicityPass, NoAtomicityOptionSuppresses) {
  const char* code = R"cpp(
struct S {
  instr::TrackedMutex mu_;
  instr::SharedVar<int> v_;
};
int f(S& s) {
  s.mu_.lock();
  const int seen = s.v_.read();
  s.mu_.unlock();
  s.mu_.lock();
  s.v_.write(seen + 1);
  s.mu_.unlock();
  return seen;
}
)cpp";
  AnalysisOptions options;
  options.include_atomicity = false;
  const AnalysisResult result =
      analyze_sources("unit", {{"r.cc", code}}, options);
  EXPECT_TRUE(result.candidates.empty()) << render_list(result.candidates);
}

}  // namespace
}  // namespace cbp::sa
