// Unit tests for the runtime substrate: clocks, RNG, thread registry,
// lock tracker, latches/barriers, and the bounded channel.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "runtime/channel.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/lock_tracker.h"
#include "runtime/rng.h"
#include "runtime/sim_crash.h"
#include "runtime/thread_registry.h"

namespace cbp::rt {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// TimeScale / Stopwatch
// ---------------------------------------------------------------------------

TEST(TimeScale, DefaultIsIdentity) {
  ScopedTimeScale scale(1.0);
  EXPECT_EQ(TimeScale::apply(100ms), 100ms);
}

TEST(TimeScale, ScalesDown) {
  ScopedTimeScale scale(0.01);
  EXPECT_EQ(TimeScale::apply(100ms), 1ms);
}

TEST(TimeScale, ScalesUp) {
  ScopedTimeScale scale(3.0);
  EXPECT_EQ(TimeScale::apply(10ms), 30ms);
}

TEST(TimeScale, ScopedRestoresPrevious) {
  TimeScale::set(1.0);
  {
    ScopedTimeScale scale(0.5);
    EXPECT_DOUBLE_EQ(TimeScale::get(), 0.5);
  }
  EXPECT_DOUBLE_EQ(TimeScale::get(), 1.0);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(20ms);
  EXPECT_GE(sw.elapsed_us(), 15'000);
  sw.restart();
  EXPECT_LT(sw.elapsed_us(), 15'000);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  // Parent continues; child does not replay parent's outputs.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(9);
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

// ---------------------------------------------------------------------------
// Thread registry
// ---------------------------------------------------------------------------

TEST(ThreadRegistry, IdsAreStablePerThread) {
  const ThreadId a = this_thread_id();
  const ThreadId b = this_thread_id();
  EXPECT_EQ(a, b);
}

TEST(ThreadRegistry, DistinctThreadsGetDistinctIds) {
  const ThreadId mine = this_thread_id();
  ThreadId theirs = mine;
  std::thread t([&] { theirs = this_thread_id(); });
  t.join();
  EXPECT_NE(mine, theirs);
}

TEST(ThreadRegistry, NamesRoundTrip) {
  set_this_thread_name("main-test-thread");
  EXPECT_EQ(this_thread_name(), "main-test-thread");
  EXPECT_EQ(thread_name(this_thread_id()), "main-test-thread");
}

TEST(ThreadRegistry, UnnamedThreadGetsSyntheticName) {
  std::string name;
  std::thread t([&] { name = this_thread_name(); });
  t.join();
  EXPECT_FALSE(name.empty());
  EXPECT_EQ(name[0], 'T');
}

TEST(ThreadRegistry, ResetEpochBlockedInsideParallelRegion) {
  EXPECT_FALSE(ParallelRegion::active());
  EXPECT_TRUE(reset_thread_epoch());
  {
    ParallelRegion region;
    EXPECT_TRUE(ParallelRegion::active());
    EXPECT_FALSE(reset_thread_epoch());  // no-op while trials in flight
    {
      ParallelRegion nested;
      EXPECT_FALSE(reset_thread_epoch());
    }
    EXPECT_FALSE(reset_thread_epoch());  // outer region still live
  }
  EXPECT_FALSE(ParallelRegion::active());
  EXPECT_TRUE(reset_thread_epoch());
}

// ---------------------------------------------------------------------------
// Thread-bound context
// ---------------------------------------------------------------------------

TEST(Context, DefaultsToNull) { EXPECT_EQ(bound_context(), nullptr); }

TEST(Context, ScopedContextBindsAndRestores) {
  int marker = 0;
  {
    ScopedContext outer(&marker);
    EXPECT_EQ(bound_context(), &marker);
    int inner_marker = 0;
    {
      ScopedContext inner(&inner_marker);
      EXPECT_EQ(bound_context(), &inner_marker);
    }
    EXPECT_EQ(bound_context(), &marker);
  }
  EXPECT_EQ(bound_context(), nullptr);
}

TEST(Context, RtThreadInheritsCreatorContext) {
  int marker = 0;
  void* seen_by_child = nullptr;
  void* seen_by_grandchild = nullptr;
  {
    ScopedContext scope(&marker);
    Thread child([&] {
      seen_by_child = bound_context();
      Thread grandchild([&] { seen_by_grandchild = bound_context(); });
      grandchild.join();
    });
    child.join();
  }
  EXPECT_EQ(seen_by_child, &marker);
  EXPECT_EQ(seen_by_grandchild, &marker);
}

TEST(Context, RtThreadSnapshotsContextAtCreation) {
  // The context captured is the creator's at spawn time, not at join
  // time, and plain std::thread children see no context at all.
  int marker = 0;
  void* seen = reinterpret_cast<void*>(1);
  Thread child;
  {
    ScopedContext scope(&marker);
    child = Thread([&] { seen = bound_context(); });
  }
  child.join();
  EXPECT_EQ(seen, &marker);

  void* plain_seen = reinterpret_cast<void*>(1);
  ScopedContext scope(&marker);
  std::thread plain([&] { plain_seen = bound_context(); });
  plain.join();
  EXPECT_EQ(plain_seen, nullptr);
}

TEST(Context, RtThreadPassesArguments) {
  int result = 0;
  Thread t([](int a, int b, int* out) { *out = a + b; }, 20, 22, &result);
  t.join();
  EXPECT_EQ(result, 42);
}

// ---------------------------------------------------------------------------
// Lock tracker
// ---------------------------------------------------------------------------

TEST(LockTracker, TracksNestedHolds) {
  int lock_a = 0, lock_b = 0;
  EXPECT_EQ(held_lock_count(), 0u);
  {
    ScopedLockNote note_a(&lock_a, "A");
    EXPECT_TRUE(is_lock_held(&lock_a));
    EXPECT_TRUE(is_lock_type_held("A"));
    EXPECT_FALSE(is_lock_type_held("B"));
    {
      ScopedLockNote note_b(&lock_b, "B");
      EXPECT_EQ(held_lock_count(), 2u);
      EXPECT_TRUE(is_lock_type_held("B"));
    }
    EXPECT_FALSE(is_lock_held(&lock_b));
  }
  EXPECT_EQ(held_lock_count(), 0u);
}

TEST(LockTracker, HandOverHandRelease) {
  int lock_a = 0, lock_b = 0;
  note_lock_acquired(&lock_a, "A");
  note_lock_acquired(&lock_b, "B");
  note_lock_released(&lock_a);  // release outer first
  EXPECT_FALSE(is_lock_held(&lock_a));
  EXPECT_TRUE(is_lock_held(&lock_b));
  note_lock_released(&lock_b);
  EXPECT_EQ(held_lock_count(), 0u);
}

TEST(LockTracker, PerThreadIsolation) {
  int lock_a = 0;
  ScopedLockNote note(&lock_a, "A");
  bool other_thread_sees_it = true;
  std::thread t([&] { other_thread_sees_it = is_lock_held(&lock_a); });
  t.join();
  EXPECT_FALSE(other_thread_sees_it);
}

TEST(LockTracker, HeldLocksSnapshotOrdered) {
  int lock_a = 0, lock_b = 0;
  ScopedLockNote na(&lock_a, "A");
  ScopedLockNote nb(&lock_b, "B");
  const auto snapshot = held_locks();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].lock, &lock_a);
  EXPECT_EQ(snapshot[1].lock, &lock_b);
}

// ---------------------------------------------------------------------------
// Latch / Barrier / StartGate
// ---------------------------------------------------------------------------

TEST(Latch, ReleasesAfterCountDown) {
  Latch latch(2);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // returns immediately
}

TEST(Latch, WaitForTimesOut) {
  Latch latch(1);
  EXPECT_FALSE(latch.wait_for(10ms));
  latch.count_down();
  EXPECT_TRUE(latch.wait_for(10ms));
}

TEST(Latch, CrossThreadRelease) {
  Latch latch(1);
  std::thread t([&] { latch.count_down(); });
  latch.wait();
  t.join();
  SUCCEED();
}

TEST(Barrier, SynchronizesParties) {
  constexpr int kParties = 4;
  constexpr int kRounds = 5;
  Barrier barrier(kParties);
  std::atomic<int> in_round{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  threads.reserve(kParties);
  for (int p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        in_round.fetch_add(1);
        barrier.arrive_and_wait();
        // Everyone has arrived for round r.
        if (in_round.load() < kParties * (r + 1)) violation = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(StartGate, HoldsUntilOpen) {
  StartGate gate;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      gate.wait();
      started.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(started.load(), 0);
  gate.open();
  for (auto& t : threads) t.join();
  EXPECT_EQ(started.load(), 3);
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

TEST(Channel, SendReceiveFifo) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  EXPECT_EQ(ch.receive(), std::optional<int>(1));
  EXPECT_EQ(ch.receive(), std::optional<int>(2));
}

TEST(Channel, TrySendFullFails) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_FALSE(ch.try_send(2));
}

TEST(Channel, ReceiveForTimesOut) {
  Channel<int> ch(1);
  EXPECT_EQ(ch.receive_for(10ms), std::nullopt);
}

TEST(Channel, CloseDrainsThenEnds) {
  Channel<int> ch(4);
  ASSERT_TRUE(ch.send(7));
  ch.close();
  EXPECT_FALSE(ch.send(8));
  EXPECT_EQ(ch.receive(), std::optional<int>(7));
  EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(Channel, CloseWakesBlockedReceiver) {
  Channel<int> ch(1);
  std::optional<int> got = 99;
  std::thread t([&] { got = ch.receive(); });
  std::this_thread::sleep_for(10ms);
  ch.close();
  t.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(Channel, BlockedSenderUnblocksOnReceive) {
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(1));
  std::thread t([&] { EXPECT_TRUE(ch.send(2)); });
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(ch.receive(), std::optional<int>(1));
  t.join();
  EXPECT_EQ(ch.receive(), std::optional<int>(2));
}

TEST(Channel, MpmcStress) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  Channel<int> ch(8);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.send(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.receive()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  ch.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<size_t>(kProducers + c)].join();
  }
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  long expected = 0;
  for (int i = 0; i < total; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

// ---------------------------------------------------------------------------
// SimulatedCrash / Artifact
// ---------------------------------------------------------------------------

TEST(SimCrash, IsARuntimeError) {
  try {
    throw SimulatedCrash("null pointer dereference");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "null pointer dereference");
  }
}

TEST(Artifact, NamesMatchPaperVocabulary) {
  EXPECT_STREQ(artifact_name(Artifact::kStall), "stall");
  EXPECT_STREQ(artifact_name(Artifact::kWrongResult), "test fail");
  EXPECT_STREQ(artifact_name(Artifact::kException), "exception");
  EXPECT_STREQ(artifact_name(Artifact::kCrash), "crash");
  EXPECT_STREQ(artifact_name(Artifact::kLogCorruption), "log corruption");
  EXPECT_STREQ(artifact_name(Artifact::kLogOmission), "log omission");
  EXPECT_STREQ(artifact_name(Artifact::kLogDisorder), "log disorder");
}

}  // namespace
}  // namespace cbp::rt
