// Integration tests for the C/C++ program replicas (Table 2): pbzip2,
// Apache httpd, and the three MySQL versions.

#include <gtest/gtest.h>

#include "apps/compress/pbzip2.h"
#include "apps/httpdlike/httpd.h"
#include "apps/minidb/minidb.h"
#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::apps {
namespace {

using namespace std::chrono_literals;

class NativeReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(2ms);
    Config::set_guard_wait_cap(2000ms);
    rt::TimeScale::set(0.2);
    options_.breakpoints = true;
    options_.pause = 300ms;
    options_.stall_after = 1200ms;
  }

  void TearDown() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }

  RunOptions options_;
};

// ---------------------------------------------------------------------------
// pbzip2
// ---------------------------------------------------------------------------

TEST_F(NativeReplicaTest, Pbzip2CrashManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = compress::run_crash(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kCrash) << outcome.detail;
    EXPECT_NE(outcome.detail.find("null pointer dereference"),
              std::string::npos);
  }
}

TEST_F(NativeReplicaTest, Pbzip2DormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(compress::run_crash(plain).buggy());
  }
}

// ---------------------------------------------------------------------------
// httpd
// ---------------------------------------------------------------------------

TEST_F(NativeReplicaTest, HttpdLogCorruptionManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = httpdlike::run_log_corruption(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kLogCorruption)
        << outcome.detail;
  }
}

TEST_F(NativeReplicaTest, HttpdLogCleanWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(httpdlike::run_log_corruption(plain).buggy());
  }
}

TEST_F(NativeReplicaTest, HttpdBufferOverflowManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = httpdlike::run_buffer_overflow(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kCrash) << outcome.detail;
    EXPECT_NE(outcome.detail.find("buffer overflow"), std::string::npos);
  }
}

TEST_F(NativeReplicaTest, HttpdOverflowDormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(httpdlike::run_buffer_overflow(plain).buggy());
  }
}

TEST_F(NativeReplicaTest, AccessLogParsesCleanLines) {
  httpdlike::AccessLog log;
  log.log_request(1, /*armed=*/false);
  log.log_request(2, /*armed=*/false);
  EXPECT_EQ(log.lines().size(), 2u);
  EXPECT_EQ(log.corrupt_lines(), 0);
}

// ---------------------------------------------------------------------------
// MySQL
// ---------------------------------------------------------------------------

TEST_F(NativeReplicaTest, MysqlLogOmissionManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = minidb::run_log_omission(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kLogOmission)
        << outcome.detail;
  }
}

TEST_F(NativeReplicaTest, MysqlLogOmissionDormant) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(minidb::run_log_omission(plain).buggy());
  }
}

TEST_F(NativeReplicaTest, MysqlLogDisorderManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = minidb::run_log_disorder(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kLogDisorder)
        << outcome.detail;
  }
}

TEST_F(NativeReplicaTest, MysqlLogDisorderDormant) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(minidb::run_log_disorder(plain).buggy());
  }
}

TEST_F(NativeReplicaTest, MysqlCrashManifests) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = minidb::run_crash(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kCrash) << outcome.detail;
    EXPECT_NE(outcome.detail.find("THD"), std::string::npos);
  }
}

TEST_F(NativeReplicaTest, MysqlCrashDormant) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(minidb::run_crash(plain).buggy());
  }
}

// ---------------------------------------------------------------------------
// 3-ary breakpoint extension (paper §2 generalization)
// ---------------------------------------------------------------------------

TEST_F(NativeReplicaTest, GroupCommitRaceNeedsThreeThreads) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome = minidb::run_group_commit_race(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kLogOmission)
        << outcome.detail;
  }
  // The 3-ary rendezvous registered exactly one hit per run.
  EXPECT_EQ(Engine::instance().stats(minidb::kGroupCommitBp).hits, 1u);
}

TEST_F(NativeReplicaTest, GroupCommitDormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(minidb::run_group_commit_race(plain).buggy());
  }
}

// ---------------------------------------------------------------------------
// Binlog unit behaviour
// ---------------------------------------------------------------------------

TEST_F(NativeReplicaTest, BinlogCountsAcrossRotations) {
  minidb::Binlog binlog;
  EXPECT_TRUE(binlog.write_event(1, /*armed=*/false));
  EXPECT_TRUE(binlog.write_event(2, /*armed=*/false));
  binlog.rotate(/*armed=*/false);
  EXPECT_TRUE(binlog.write_event(3, /*armed=*/false));
  EXPECT_EQ(binlog.logged_total(), 3);
  EXPECT_EQ(binlog.current().size(), 1u);
}

}  // namespace
}  // namespace cbp::apps
