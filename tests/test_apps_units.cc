// Unit tests for the replica data structures' CORRECT behaviour — the
// non-buggy paths (breakpoints disabled throughout).  The integration
// suites cover the seeded bugs; these cover the substrate semantics a
// downstream user of the replicas relies on.

#include <gtest/gtest.h>

#include <thread>

#include "apps/cache/cache.h"
#include "apps/collections/sync_collections.h"
#include "apps/httpdlike/httpd.h"
#include "apps/logging/async_appender.h"
#include "apps/pool/object_pool.h"
#include "apps/strbuf/string_buffer.h"
#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::apps {
namespace {

using namespace std::chrono_literals;

class ReplicaUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(false);  // substrate semantics only
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Config::set_enabled(true);
    Engine::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// StringBuffer
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, StringBufferLengthAndStr) {
  strbuf::StringBuffer buffer("abc");
  EXPECT_EQ(buffer.length(), 3);
  EXPECT_EQ(buffer.str(), "abc");
}

TEST_F(ReplicaUnitTest, StringBufferAppendChar) {
  strbuf::StringBuffer buffer;
  buffer.append('x');
  buffer.append('y');
  EXPECT_EQ(buffer.str(), "xy");
}

TEST_F(ReplicaUnitTest, StringBufferAppendBuffer) {
  strbuf::StringBuffer source("def");
  strbuf::StringBuffer target("abc");
  target.append(source);
  EXPECT_EQ(target.str(), "abcdef");
}

TEST_F(ReplicaUnitTest, StringBufferSetLengthTruncatesAndExtends) {
  strbuf::StringBuffer buffer("hello");
  buffer.set_length(2);
  EXPECT_EQ(buffer.str(), "he");
  buffer.set_length(4);
  EXPECT_EQ(buffer.length(), 4);
  buffer.set_length(-3);  // clamped to empty
  EXPECT_EQ(buffer.length(), 0);
}

TEST_F(ReplicaUnitTest, StringBufferGetCharsBounds) {
  strbuf::StringBuffer buffer("hello");
  std::string out;
  buffer.get_chars(1, 4, out);
  EXPECT_EQ(out, "ell");
  EXPECT_THROW(buffer.get_chars(0, 6, out), std::out_of_range);
  EXPECT_THROW(buffer.get_chars(-1, 2, out), std::out_of_range);
  EXPECT_THROW(buffer.get_chars(3, 2, out), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, SyncListBasicOps) {
  collections::SyncList list;
  EXPECT_EQ(list.size(), 0);
  list.add(7);
  list.add(8);
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(list.get(0), 7);
  EXPECT_EQ(list.get(1), 8);
  EXPECT_THROW(list.get(2), std::out_of_range);
  list.clear();
  EXPECT_EQ(list.size(), 0);
}

TEST_F(ReplicaUnitTest, SyncListAddAllCopiesSource) {
  collections::SyncList a, b;
  a.add(1);
  b.add(2);
  b.add(3);
  a.add_all(b, 1000ms);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(b.size(), 2);  // source unchanged
  EXPECT_EQ(a.get(2), 3);
}

TEST_F(ReplicaUnitTest, SyncMapBasicOps) {
  collections::SyncMap map;
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.get_or(1, -1), -1);
  map.put(1, 10);
  EXPECT_TRUE(map.contains(1));
  EXPECT_EQ(map.get_or(1, -1), 10);
  map.put(1, 20);  // overwrite
  EXPECT_EQ(map.get_or(1, -1), 20);
  EXPECT_EQ(map.size(), 1);
}

TEST_F(ReplicaUnitTest, SyncMapPutAllMerges) {
  collections::SyncMap a, b;
  a.put(1, 1);
  b.put(2, 2);
  a.put_all(b, 1000ms);
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.contains(2));
}

TEST_F(ReplicaUnitTest, SyncSetRejectsDuplicates) {
  collections::SyncSet set;
  set.add(5);
  EXPECT_TRUE(set.contains(5));
  EXPECT_EQ(set.size(), 1);
  EXPECT_THROW(set.add(5), std::logic_error);
}

TEST_F(ReplicaUnitTest, SyncSetAddAllIsIdempotent) {
  collections::SyncSet a, b;
  a.add(1);
  b.add(1);
  b.add(2);
  a.add_all(b, 1000ms);  // bulk copy tolerates duplicates
  EXPECT_EQ(a.size(), 2);
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, CachePutGetRoundTrip) {
  cache::Cache store(16);
  store.put(1, 100);
  EXPECT_EQ(store.get(1), 100);
  EXPECT_EQ(store.get(2), -1);  // miss
  store.put(1, 200);            // replace
  EXPECT_EQ(store.get(1), 200);
}

TEST_F(ReplicaUnitTest, CacheCountsSizeHitsEvictions) {
  cache::Cache store(4);
  for (int i = 0; i < 4; ++i) store.put(i, i);
  EXPECT_EQ(store.approx_size(), 4);
  EXPECT_EQ(store.eviction_count(), 0);
  (void)store.get(3);
  EXPECT_EQ(store.hit_count(), 1);
  store.put(100, 100);  // exceeds capacity
  EXPECT_EQ(store.eviction_count(), 1);
}

// ---------------------------------------------------------------------------
// AsyncAppender (correct drain path)
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, AsyncAppenderDrainsInOrder) {
  logging::AsyncAppender appender(4);
  std::thread dispatcher([&] {
    while (appender.dispatch_one()) {
    }
  });
  for (int i = 0; i < 3; ++i) appender.append(i, 2000ms);
  appender.close();
  dispatcher.join();
  EXPECT_EQ(appender.dispatched(), (std::vector<int>{0, 1, 2}));
}

TEST_F(ReplicaUnitTest, AsyncAppenderCloseUnblocksDispatcher) {
  logging::AsyncAppender appender(2);
  rt::Stopwatch clock;
  std::thread dispatcher([&] { EXPECT_FALSE(appender.dispatch_one()); });
  std::this_thread::sleep_for(10ms);
  appender.close();
  dispatcher.join();
  EXPECT_LT(clock.elapsed_us(), 2'000'000);
}

TEST_F(ReplicaUnitTest, AsyncAppenderRejectsAppendsAfterClose) {
  logging::AsyncAppender appender(2);
  appender.close();
  appender.append(1, 100ms);  // silently dropped (closed)
  EXPECT_FALSE(appender.dispatch_one());
  EXPECT_TRUE(appender.dispatched().empty());
}

// ---------------------------------------------------------------------------
// ObjectPool (correct borrow/return path)
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, ObjectPoolBorrowFromStock) {
  pool::ObjectPool objects(2);
  EXPECT_EQ(objects.idle(), 2);
  (void)objects.borrow(1000ms, /*armed=*/false);
  EXPECT_EQ(objects.idle(), 1);
}

TEST_F(ReplicaUnitTest, ObjectPoolReturnWakesRegisteredWaiter) {
  pool::ObjectPool objects(0);
  std::thread borrower([&] {
    (void)objects.borrow(2000ms, /*armed=*/false);
  });
  std::this_thread::sleep_for(20ms);  // borrower registers as waiter
  objects.return_object(/*armed=*/false);
  borrower.join();
  EXPECT_EQ(objects.idle(), 0);
}

// ---------------------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------------------

TEST_F(ReplicaUnitTest, AccessLogSequentialLinesAreClean) {
  httpdlike::AccessLog log;
  for (int i = 0; i < 5; ++i) log.log_request(i, /*armed=*/false);
  EXPECT_EQ(log.lines().size(), 5u);
  EXPECT_EQ(log.corrupt_lines(), 0);
}

TEST_F(ReplicaUnitTest, AccessLogDetectsGarbledLine) {
  // A hand-garbled buffer shape: interleaved halves.
  httpdlike::AccessLog log;
  log.log_request(1, false);
  const auto clean = log.corrupt_lines();
  EXPECT_EQ(clean, 0);
}

}  // namespace
}  // namespace cbp::apps
