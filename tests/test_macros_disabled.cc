// Verifies the compile-time kill switch (paper §4: breakpoints "can be
// turned on or off like traditional assertions").  This binary is built
// with -DCBP_DISABLE_BREAKPOINTS: the CBP_* macros must compile to
// constant-false expressions that never touch the engine, even while
// the runtime switch says "enabled".

#include <gtest/gtest.h>

#include "core/cbp.h"
#include "runtime/clock.h"

#ifndef CBP_DISABLE_BREAKPOINTS
#error "this test must be compiled with -DCBP_DISABLE_BREAKPOINTS"
#endif

namespace cbp {
namespace {

TEST(MacrosDisabled, ConflictMacroIsConstantFalse) {
  Config::set_enabled(true);  // runtime switch must be irrelevant
  int obj = 0;
  rt::Stopwatch clock;
  EXPECT_FALSE(CBP_CONFLICT("compiled-out", &obj, true));
  EXPECT_LT(clock.elapsed_us(), 50'000);
  EXPECT_EQ(Engine::instance().stats("compiled-out").calls, 0u);
}

TEST(MacrosDisabled, DeadlockMacroIsConstantFalse) {
  int lock_a = 0, lock_b = 0;
  EXPECT_FALSE(CBP_DEADLOCK("compiled-out-dl", &lock_a, &lock_b, true));
  EXPECT_EQ(Engine::instance().stats("compiled-out-dl").calls, 0u);
}

TEST(MacrosDisabled, OrderMacroIsConstantFalse) {
  EXPECT_FALSE(CBP_ORDER("compiled-out-ord", false));
  EXPECT_EQ(Engine::instance().stats("compiled-out-ord").calls, 0u);
}

TEST(MacrosDisabled, MacrosUsableInConditions) {
  // The macros must remain valid expressions in ordinary control flow.
  int obj = 0;
  if (CBP_CONFLICT("cond", &obj, true)) {
    FAIL() << "compiled-out breakpoint reported a hit";
  }
  const bool hit = CBP_ORDER("cond2", true) || CBP_ORDER("cond3", false);
  EXPECT_FALSE(hit);
}

TEST(MacrosDisabled, DirectApiStillWorksWhenWanted) {
  // Only the macros are compiled out; explicit library calls remain
  // available (and governed by the runtime switch).
  Config::set_enabled(false);
  int obj = 0;
  ConflictTrigger trigger("direct-api", &obj);
  EXPECT_FALSE(trigger.trigger_here(true, std::chrono::milliseconds(100)));
  EXPECT_EQ(Engine::instance().stats("direct-api").calls, 0u);
  Config::set_enabled(true);
}

}  // namespace
}  // namespace cbp
