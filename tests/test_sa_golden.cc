// Golden tests for cbp-sa over the repo's own replica apps: the static
// analyzer must rediscover the seeded cache4j races, the Jigsaw Fig. 2
// crossed-lock deadlock, and the log4j AsyncAppender contention pair —
// and its candidate sites must agree with what the dynamic detectors
// report when the same code actually runs.  Detector cross-checks run
// worker threads sequentially (join between them) for deterministic
// verdicts, same as test_detect.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/cache/cache.h"
#include "apps/logging/async_appender.h"
#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "core/spec.h"
#include "detect/contention.h"
#include "detect/eraser.h"
#include "detect/lock_order.h"
#include "instrument/hub.h"
#include "sa/analyzer.h"
#include "sa/rank.h"

namespace cbp::sa {
namespace {

using namespace std::chrono_literals;

std::string src_path(const std::string& rel) {
  return std::string(CBP_SOURCE_DIR) + "/" + rel;
}

std::string basename_of(std::string_view path) {
  const auto slash = path.rfind('/');
  return std::string(slash == std::string_view::npos
                         ? path
                         : path.substr(slash + 1));
}

/// Runs `fn` on a fresh thread and joins (fresh dense thread id).
template <class Fn>
void on_thread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

const Candidate* find_candidate(const AnalysisResult& result,
                                Candidate::Kind kind,
                                const std::string& subject,
                                std::uint32_t line_a, std::uint32_t line_b) {
  for (const Candidate& c : result.candidates) {
    if (c.kind == kind && c.subject == subject && c.site_a.line == line_a &&
        c.site_b.line == line_b) {
      return &c;
    }
  }
  return nullptr;
}

class SaGoldenTest : public ::testing::Test {
 protected:
  // The replicas never arm their triggers here, but disable breakpoints
  // anyway so no engine state from other suites can perturb timing.
  void SetUp() override { Config::set_enabled(false); }
  void TearDown() override { Config::set_enabled(true); }
};

// ---------------------------------------------------------------------------
// cache4j: the racy_increment read/write pair and the publish-before-init
// payload/ready accesses (race1/2/3 + atomicity1 sites).
// ---------------------------------------------------------------------------

TEST_F(SaGoldenTest, CacheStaticCandidates) {
  const AnalysisResult result = analyze_paths({src_path("src/apps/cache")});
  const Candidate* counter = find_candidate(
      result, Candidate::Kind::kConflict, "counter", 23, 28);
  ASSERT_NE(counter, nullptr) << render_list(result.candidates);
  EXPECT_FALSE(counter->a_is_write);
  EXPECT_TRUE(counter->b_is_write);
  EXPECT_TRUE(counter->locks_a.empty());
  EXPECT_TRUE(counter->locks_b.empty());
  // The ConflictTrigger two lines above the read: the analyzer
  // rediscovered a bug Methodology I already annotated.
  EXPECT_FALSE(counter->existing.empty());

  // The atomicity1 shape: payload written after publication, read by a
  // concurrent get.
  EXPECT_NE(find_candidate(result, Candidate::Kind::kConflict, "payload",
                           60, 85),
            nullptr)
      << render_list(result.candidates);
  EXPECT_NE(
      find_candidate(result, Candidate::Kind::kConflict, "ready", 61, 84),
      nullptr)
      << render_list(result.candidates);
}

TEST_F(SaGoldenTest, CacheStaticCandidatesMatchEraser) {
  const AnalysisResult result = analyze_paths({src_path("src/apps/cache")});
  std::set<std::uint32_t> static_lines;
  for (const Candidate& c : result.candidates) {
    if (c.kind == Candidate::Kind::kConflict && c.subject == "counter") {
      static_lines.insert(c.site_a.line);
      static_lines.insert(c.site_b.line);
    }
  }
  ASSERT_FALSE(static_lines.empty());

  // Two puts of distinct keys from two threads both run the
  // unsynchronized size-counter increment: Eraser's SharedModified
  // empty-lockset report, at exactly the sites the analyzer mined.
  apps::cache::Cache cache(64);
  detect::EraserDetector eraser;
  {
    instr::ScopedListener registration(eraser);
    on_thread([&] { cache.put(1, 10); });
    on_thread([&] { cache.put(2, 20); });
  }
  const auto races = eraser.races();
  ASSERT_FALSE(races.empty());
  for (const auto& race : races) {
    EXPECT_EQ(basename_of(race.first.file), "cache.cc");
    EXPECT_EQ(basename_of(race.second.file), "cache.cc");
    EXPECT_TRUE(static_lines.count(race.first.line) != 0)
        << "dynamic race site " << race.first.str()
        << " not among static candidate sites";
    EXPECT_TRUE(static_lines.count(race.second.line) != 0)
        << "dynamic race site " << race.second.str()
        << " not among static candidate sites";
  }
}

// ---------------------------------------------------------------------------
// Jigsaw: the Fig. 2 crossed lock order (deadlock1), the second crossing
// (deadlock2), and the stopping/request_count races.
// ---------------------------------------------------------------------------

TEST_F(SaGoldenTest, JigsawStaticCandidates) {
  const AnalysisResult result =
      analyze_paths({src_path("src/apps/webserver")});
  const Candidate* fig2 = find_candidate(
      result, Candidate::Kind::kDeadlock, "csList <-> this", 68, 81);
  ASSERT_NE(fig2, nullptr) << render_list(result.candidates);
  EXPECT_FALSE(fig2->existing.empty());  // DeadlockTrigger sits nearby
  EXPECT_TRUE(result.lock_graph_has_cycle);

  EXPECT_NE(find_candidate(result, Candidate::Kind::kDeadlock,
                           "config <-> status", 92, 104),
            nullptr)
      << render_list(result.candidates);
  EXPECT_NE(find_candidate(result, Candidate::Kind::kConflict, "stopping_",
                           112, 135),
            nullptr)
      << render_list(result.candidates);
  EXPECT_NE(find_candidate(result, Candidate::Kind::kConflict,
                           "request_count_", 143, 148),
            nullptr)
      << render_list(result.candidates);
}

TEST_F(SaGoldenTest, JigsawStaticCandidateMatchesLockOrderDetector) {
  const AnalysisResult result =
      analyze_paths({src_path("src/apps/webserver")});
  const Candidate* fig2 = find_candidate(
      result, Candidate::Kind::kDeadlock, "csList <-> this", 68, 81);
  ASSERT_NE(fig2, nullptr);
  const std::set<std::uint32_t> static_lines{fig2->site_a.line,
                                             fig2->site_b.line};

  // Sequential legs: no real deadlock is possible, but the detector
  // still sees both crossing edges and predicts the 2-cycle.
  apps::webserver::SocketClientFactory factory;
  detect::LockOrderDetector lock_order;
  {
    instr::ScopedListener registration(lock_order);
    on_thread([&] { factory.client_connection_finished(2000ms); });
    on_thread([&] { factory.kill_clients(2000ms); });
  }
  const auto deadlocks = lock_order.deadlocks();
  ASSERT_EQ(deadlocks.size(), 1u);
  std::set<std::uint32_t> dynamic_lines;
  for (const auto& leg : deadlocks[0].legs) {
    EXPECT_EQ(basename_of(leg.site.file), "jigsaw.cc");
    dynamic_lines.insert(leg.site.line);
  }
  EXPECT_EQ(dynamic_lines, static_lines);
}

// ---------------------------------------------------------------------------
// log4j AsyncAppender: the §5 contention pairs on the buffer lock —
// including the (setBufferSize, dispatch) pair whose resolution order
// reproduces the missed-notification stall.
// ---------------------------------------------------------------------------

TEST_F(SaGoldenTest, LoggingStaticCandidates) {
  const AnalysisResult result = analyze_paths({src_path("src/apps/logging")});
  // The paper's (236, 309) pair: set_buffer_size's acquisition vs the
  // dispatcher's.
  EXPECT_NE(find_candidate(result, Candidate::Kind::kContention,
                           "AsyncAppender.buffer", 37, 52),
            nullptr)
      << render_list(result.candidates);
  // loggers.cc contributes crossed-lock candidates too.
  const bool any_deadlock = std::any_of(
      result.candidates.begin(), result.candidates.end(),
      [](const Candidate& c) {
        return c.kind == Candidate::Kind::kDeadlock;
      });
  EXPECT_TRUE(any_deadlock) << render_list(result.candidates);
}

TEST_F(SaGoldenTest, LoggingStaticCandidatesMatchContentionDetector) {
  const AnalysisResult result = analyze_paths({src_path("src/apps/logging")});
  std::set<std::pair<std::uint32_t, std::uint32_t>> static_pairs;
  for (const Candidate& c : result.candidates) {
    if (c.kind == Candidate::Kind::kContention &&
        c.subject == "AsyncAppender.buffer") {
      static_pairs.insert({std::min(c.site_a.line, c.site_b.line),
                           std::max(c.site_a.line, c.site_b.line)});
    }
  }
  ASSERT_FALSE(static_pairs.empty());

  // Three threads exercise append / set_buffer_size / dispatch_one once
  // each; every dynamic contention pair on the buffer lock must be a
  // statically mined candidate.
  apps::logging::AsyncAppender appender(4);
  detect::ContentionDetector contention;
  {
    instr::ScopedListener registration(contention);
    on_thread([&] { appender.append(1, 2000ms); });
    on_thread([&] { appender.set_buffer_size(8); });
    on_thread([&] { EXPECT_TRUE(appender.dispatch_one()); });
  }
  std::size_t checked = 0;
  for (const auto& report : contention.contentions()) {
    if (report.lock != appender.lock_id()) continue;
    EXPECT_EQ(basename_of(report.site_a.file), "async_appender.cc");
    const auto pair =
        std::make_pair(std::min(report.site_a.line, report.site_b.line),
                       std::max(report.site_a.line, report.site_b.line));
    EXPECT_TRUE(static_pairs.count(pair) != 0)
        << "dynamic contention pair (" << pair.first << ", " << pair.second
        << ") not among static candidates";
    ++checked;
  }
  EXPECT_EQ(checked, 3u);  // {append, set_buffer_size, dispatch} pairs
}

// ---------------------------------------------------------------------------
// Spec round-trip: the emitted candidate spec for ALL replica apps loads
// into the engine unchanged.
// ---------------------------------------------------------------------------

TEST_F(SaGoldenTest, AppsCandidateSpecRoundTripsThroughEngine) {
  const AnalysisResult result = analyze_paths({src_path("src/apps")});
  ASSERT_GE(result.candidates.size(), 6u);
  const std::string spec_text = render_spec(result.candidates, 0);
  const BreakpointSpec spec = BreakpointSpec::parse(spec_text);
  EXPECT_EQ(spec.size(), result.candidates.size());
  for (const Candidate& c : result.candidates) {
    const SpecOverride* entry = spec.find(c.spec_name);
    ASSERT_NE(entry, nullptr) << c.spec_name;
    EXPECT_EQ(entry->from, SpecOrigin::kStatic);
  }
  spec.install();
  BreakpointSpec::clear_installed();
}

// ---------------------------------------------------------------------------
// Golden candidate lists (the CI self-lint contract): the analyzer's
// --list output over each app is byte-stable.  Regenerate with
//   build/tools/cbp-sa --list src/apps/<app> > tests/golden/<app>.list
// ---------------------------------------------------------------------------

class SaGoldenListTest : public SaGoldenTest,
                         public ::testing::WithParamInterface<
                             std::pair<const char*, const char*>> {};

TEST_P(SaGoldenListTest, ListMatchesGolden) {
  const auto [golden_name, app_dir] = GetParam();
  const std::string golden_path =
      src_path(std::string("tests/golden/") + golden_name + ".list");
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " — regenerate with: cbp-sa --list " << app_dir;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const AnalysisResult result = analyze_paths({src_path(app_dir)});
  EXPECT_EQ(render_list(result.candidates), buffer.str())
      << "candidate list drifted from " << golden_path
      << " — regenerate with: cbp-sa --list " << app_dir;
}

// The interprocedural fixture exercises lockset propagation end to end
// (helper deadlock revealed, all-callers-hold suppression, mixed-caller
// conflict kept, check-then-act atomicity); its --interproc --list
// output is pinned the same way.  Regenerate with
//   build/tools/cbp-sa --interproc --list tests/sa_fixtures/interproc
TEST_F(SaGoldenTest, InterprocFixtureListMatchesGolden) {
  const std::string golden_path = src_path("tests/golden/interproc.list");
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  AnalysisOptions options;
  options.interprocedural = true;
  const AnalysisResult result =
      analyze_paths({src_path("tests/sa_fixtures/interproc")}, options);
  EXPECT_EQ(render_list(result.candidates), buffer.str())
      << "candidate list drifted from " << golden_path
      << " — regenerate with: cbp-sa --interproc --list "
         "tests/sa_fixtures/interproc";

  // The fixture's crossed helper locks also surface as a ranked cycle.
  ASSERT_EQ(result.cycles.size(), 1u);
  EXPECT_EQ(result.cycles[0].length(), 2u);
  EXPECT_EQ(result.cycles[0].locks,
            (std::vector<std::string>{"mu_a", "mu_b"}));
}

INSTANTIATE_TEST_SUITE_P(
    Apps, SaGoldenListTest,
    ::testing::Values(
        std::make_pair("cache", "src/apps/cache"),
        std::make_pair("jigsaw", "src/apps/webserver"),
        std::make_pair("logging", "src/apps/logging")),
    [](const ::testing::TestParamInfo<SaGoldenListTest::ParamType>& info) {
      return std::string(info.param.first);
    });

}  // namespace
}  // namespace cbp::sa
