// The sharded-KV high-traffic replica (DESIGN.md §5i): Zipfian workload
// generator properties, store unit behaviour (open addressing,
// tombstones, resize), the session-pool workload's mode wiring, and the
// two seeded races — each must manifest when its breakpoint is armed
// and stay dormant in plain runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "apps/kvstore/kvstore.h"
#include "apps/kvstore/zipfian.h"
#include "core/cbp.h"
#include "runtime/clock.h"

// The dormant-control assertions are probability claims about the
// *uninstrumented* binary; TSan's ~10x slowdown of instrumented atomics
// widens the natural race window by an order of magnitude and the
// unarmed races start firing on their own.  Under TSan those tests
// still run the workload (race-cleanliness coverage) but skip the
// near-zero count check.
#if defined(__SANITIZE_THREAD__)
#define CBP_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CBP_TSAN_ACTIVE 1
#endif
#endif
#ifndef CBP_TSAN_ACTIVE
#define CBP_TSAN_ACTIVE 0
#endif

namespace cbp::apps::kvstore {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Zipfian generator
// ---------------------------------------------------------------------------

TEST(Zipfian, DeterministicUnderFixedSeed) {
  const ZipfianGenerator zipf(100'000, 0.99);
  rt::Rng a(42);
  rt::Rng b(42);
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(zipf.next(a), zipf.next(b)) << "draw " << i;
  }
  // A different seed gives a different stream.
  rt::Rng c(43);
  int diff = 0;
  for (int i = 0; i < 2'000; ++i) {
    if (zipf.next(a) != zipf.next(c)) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(Zipfian, RanksStayInRange) {
  const ZipfianGenerator zipf(1'000, 0.99);
  rt::Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    EXPECT_LT(zipf.next(rng), 1'000u);
  }
}

TEST(Zipfian, TopOnePercentMassMatchesAnalytic) {
  // P(rank < k) = zeta(k)/zeta(n); for theta=0.99 the top 1% of a
  // 100k-rank keyspace should carry the majority of the traffic — the
  // hot-key skew the high-traffic bench depends on.
  constexpr std::uint64_t n = 100'000;
  constexpr double theta = 0.99;
  const ZipfianGenerator zipf(n, theta);
  const double analytic =
      ZipfianGenerator::zeta(n / 100, theta) / zipf.zetan();
  EXPECT_GT(analytic, 0.5);  // sanity: this workload is genuinely skewed

  rt::Rng rng(12345);
  constexpr int draws = 200'000;
  int top = 0;
  for (int i = 0; i < draws; ++i) {
    if (zipf.next(rng) < n / 100) ++top;
  }
  const double empirical = static_cast<double>(top) / draws;
  EXPECT_NEAR(empirical, analytic, 0.02)
      << "empirical top-1% mass drifted from the analytic zeta ratio";
}

TEST(Zipfian, SessionStreamsIndependentOfWorkerPartitioning) {
  // The workload derives one Rng stream per (seed, session), not per
  // worker: however sessions are sharded over threads — or over harness
  // --trial-jobs workers — the aggregate key-frequency histogram is a
  // function of the seed alone.  Emulate two partitionings and compare.
  const ZipfianGenerator zipf(4'096, 0.99);
  constexpr std::uint64_t kSeed = 99;
  constexpr std::size_t kSessions = 64;
  constexpr int kDrawsPerSession = 50;

  const auto histogram = [&](int workers) {
    std::map<std::uint64_t, int> counts;
    for (int w = 0; w < workers; ++w) {
      const auto first = kSessions * static_cast<std::size_t>(w) /
                         static_cast<std::size_t>(workers);
      const auto last = kSessions * static_cast<std::size_t>(w + 1) /
                        static_cast<std::size_t>(workers);
      for (std::size_t s = first; s < last; ++s) {
        rt::Rng rng = session_rng(kSeed, s);
        for (int i = 0; i < kDrawsPerSession; ++i) ++counts[zipf.next(rng)];
      }
    }
    return counts;
  };

  const auto one = histogram(1);
  EXPECT_EQ(one, histogram(4));
  EXPECT_EQ(one, histogram(7));
}

TEST(Zipfian, RankToKeyIsInjectiveOnPrefix) {
  std::vector<std::uint64_t> keys;
  keys.reserve(100'000);
  for (std::uint64_t r = 0; r < 100'000; ++r) keys.push_back(rank_to_key(r));
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  // Top two bits clear: keys can never collide with slot sentinels.
  for (std::uint64_t r = 0; r < 1'000; ++r) {
    EXPECT_LT(rank_to_key(r), 1ULL << 62);
  }
}

// ---------------------------------------------------------------------------
// KvStore units (single-threaded, unarmed)
// ---------------------------------------------------------------------------

StoreOptions tiny_store() {
  StoreOptions options;
  options.shard_count = 4;
  options.initial_capacity = 64;
  options.max_load = 0.5;
  options.armed = false;
  return options;
}

TEST(KvStoreUnit, PutGetRoundtrip) {
  KvStore store(tiny_store());
  EXPECT_EQ(store.get(rank_to_key(1)), kMiss);
  store.put(rank_to_key(1), 111);
  store.put(rank_to_key(2), 222);
  EXPECT_EQ(store.get(rank_to_key(1)), 111);
  EXPECT_EQ(store.get(rank_to_key(2)), 222);
  store.put(rank_to_key(1), 112);  // update in place
  EXPECT_EQ(store.get(rank_to_key(1)), 112);
  EXPECT_EQ(store.size(), 2u);
}

TEST(KvStoreUnit, EvictionRespectsHotFlagAndReusesTombstones) {
  KvStore store(tiny_store());
  store.put(rank_to_key(5), 5);
  // A just-put entry is hot: the (correctly sampled) check refuses.
  EXPECT_FALSE(store.evict_if_cold(rank_to_key(5)));
  store.age_all();
  EXPECT_TRUE(store.evict_if_cold(rank_to_key(5)));
  EXPECT_EQ(store.get(rank_to_key(5)), kMiss);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.lost_updates(), 0u);  // a legit eviction is not a loss
  // Re-insert lands on the tombstone and reads back.
  store.put(rank_to_key(5), 55);
  EXPECT_EQ(store.get(rank_to_key(5)), 55);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreUnit, ResizePreservesAllEntries) {
  KvStore store(tiny_store());
  constexpr int kKeys = 600;  // far past 4 shards * 64 slots * 0.5
  for (int i = 0; i < kKeys; ++i) {
    store.put(rank_to_key(static_cast<std::uint64_t>(i)), i);
  }
  EXPECT_GT(store.resizes(), 0u);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(store.get(rank_to_key(static_cast<std::uint64_t>(i))), i);
  }
  // No reader ever touched a retired table here.
  EXPECT_EQ(store.poisoned_reads(), 0u);
}

// ---------------------------------------------------------------------------
// Workload modes
// ---------------------------------------------------------------------------

WorkloadOptions small_workload(Mode mode) {
  WorkloadOptions options;
  options.mode = mode;
  options.threads = 2;
  options.keys = 4'096;
  options.sessions = 256;
  options.ops_per_thread = 20'000;
  options.work_per_op = 4;
  options.pause = 10ms;
  options.seed = 3;
  return options;
}

TEST(Workload, OffModeNeverTouchesTheEngine) {
  Engine::instance().reset();
  const WorkloadResult result = run_workload(small_workload(Mode::kOff));
  EXPECT_EQ(result.ops, 40'000u);
  EXPECT_EQ(result.trigger_calls, 0u);
  EXPECT_EQ(result.hits, 0u);
  EXPECT_EQ(result.poisoned_reads, 0u);
  EXPECT_EQ(result.lost_updates, 0u);
}

TEST(Workload, SpecsDisabledInsertsProbesButCountsNothing) {
  Engine::instance().reset();
  const WorkloadResult result =
      run_workload(small_workload(Mode::kSpecsDisabled));
  // The spec-disabled fast path returns before any accounting: probes
  // are in the binary, the engine records no calls.
  EXPECT_EQ(result.trigger_calls, 0u);
  EXPECT_EQ(result.hits, 0u);
}

TEST(Workload, ArmedUnmatchedCountsCallsButNeverHits) {
  Engine::instance().reset();
  const WorkloadResult result =
      run_workload(small_workload(Mode::kArmedUnmatched));
  // Every get and put carries an armed probe now.
  EXPECT_GT(result.trigger_calls, 0u);
  EXPECT_EQ(result.hits, 0u);
  // Update-in-place traffic on a prefilled store: no organic resizes,
  // so the seeded races cannot manifest.
  EXPECT_EQ(result.resizes, 0u);
  EXPECT_EQ(result.poisoned_reads, 0u);
  EXPECT_EQ(result.lost_updates, 0u);
}

// ---------------------------------------------------------------------------
// Seeded races (scaled-down repro; the bench runs the full-load variant)
// ---------------------------------------------------------------------------

class KvStoreReproTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(2ms);
    rt::TimeScale::set(0.2);
    options_.breakpoints = true;
    options_.pause = 300ms;
    options_.work_scale = 0.5;  // scaled-down: fewer inserts/puts per run
  }

  void TearDown() override {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }

  RunOptions options_;
};

TEST_F(KvStoreReproTest, ResizeRaceManifestsWhenArmed) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    options_.seed = static_cast<std::uint64_t>(i + 1);
    const RunOutcome outcome = run_resize_race(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kRaceObserved)
        << "run " << i << ": " << outcome.detail;
  }
}

TEST_F(KvStoreReproTest, ResizeRaceDormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  int buggy = 0;
  for (int i = 0; i < 4; ++i) {
    Engine::instance().reset();
    plain.seed = static_cast<std::uint64_t>(i + 1);
    buggy += run_resize_race(plain).buggy() ? 1 : 0;
  }
  // Near zero, not identically zero: the unarmed window is real (that is
  // the bug), and on a loaded machine a preemption between the reader's
  // pointer load and its scan can land inside publish→poison naturally.
  // The paper's own "without breakpoints" columns are small but nonzero.
  if (!CBP_TSAN_ACTIVE) EXPECT_LE(buggy, 1);
}

TEST_F(KvStoreReproTest, EvictToctouManifestsWhenArmed) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    options_.seed = static_cast<std::uint64_t>(i + 1);
    const RunOutcome outcome = run_evict_toctou(options_);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kWrongResult)
        << "run " << i << ": " << outcome.detail;
  }
}

TEST_F(KvStoreReproTest, EvictToctouDormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  int buggy = 0;
  for (int i = 0; i < 4; ++i) {
    Engine::instance().reset();
    plain.seed = static_cast<std::uint64_t>(i + 1);
    buggy += run_evict_toctou(plain).buggy() ? 1 : 0;
  }
  // See ResizeRaceDormantWithoutBreakpoints: near zero, not exactly zero.
  if (!CBP_TSAN_ACTIVE) EXPECT_LE(buggy, 1);
}

}  // namespace
}  // namespace cbp::apps::kvstore
