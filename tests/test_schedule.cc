// Tests for schedule pinning (core/schedule.h, the paper's §8 use).

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "core/schedule.h"

namespace cbp::schedule {
namespace {

using namespace std::chrono_literals;

class ScheduleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::milliseconds(1));
    rt::TimeScale::set(1.0);
  }
  void TearDown() override { Engine::instance().reset(); }

  std::mutex order_mu_;
  std::vector<int> order_;

  void record(int id) {
    std::scoped_lock lock(order_mu_);
    order_.push_back(id);
  }
};

TEST_F(ScheduleTest, PinOrdersTwoThreads) {
  for (int round = 0; round < 8; ++round) {
    Engine::instance().reset();
    order_.clear();
    std::thread a([&] {
      auto result = pin_scoped("two", true);
      ASSERT_TRUE(result.hit);
      record(1);
      result.guard.release();
    });
    std::thread b([&] {
      auto result = pin_scoped("two", false);
      ASSERT_TRUE(result.hit);
      record(2);
      result.guard.release();
    });
    a.join();
    b.join();
    EXPECT_EQ(order_, (std::vector<int>{1, 2})) << "round " << round;
  }
}

TEST_F(ScheduleTest, PlainPinReturnsTrueOnRendezvous) {
  bool hit_a = false, hit_b = false;
  std::thread a([&] { hit_a = pin("plain", true); });
  std::thread b([&] { hit_b = pin("plain", false); });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST_F(ScheduleTest, InfeasiblePinTimesOut) {
  // Only one side arrives: the pin reports failure instead of hanging.
  EXPECT_FALSE(pin("lonely", true, 30ms));
}

TEST_F(ScheduleTest, RankedPinOrdersFourThreads) {
  for (int round = 0; round < 4; ++round) {
    Engine::instance().reset();
    order_.clear();
    std::vector<std::thread> threads;
    for (int id = 0; id < 4; ++id) {
      threads.emplace_back([&, id] {
        auto result = pin_ranked_scoped("four", id, 4);
        ASSERT_TRUE(result.hit);
        record(id);
        result.guard.release();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(order_, (std::vector<int>{0, 1, 2, 3})) << "round " << round;
  }
}

TEST_F(ScheduleTest, RankedPinFailsWithMissingRank) {
  bool hit = true;
  std::thread a([&] { hit = pin_ranked("incomplete", 0, 3, 30ms); });
  std::thread b([&] { (void)pin_ranked("incomplete", 1, 3, 30ms); });
  a.join();
  b.join();
  EXPECT_FALSE(hit);
}

TEST_F(ScheduleTest, PinsComposeIntoALongerSchedule) {
  // Two successive pins chain an A-B-A alternation deterministically.
  for (int round = 0; round < 5; ++round) {
    Engine::instance().reset();
    order_.clear();
    std::thread a([&] {
      {
        auto step1 = pin_scoped("chain-1", true);
        ASSERT_TRUE(step1.hit);
        record(1);
      }
      {
        auto step2 = pin_scoped("chain-2", false);
        ASSERT_TRUE(step2.hit);
        record(3);
      }
    });
    std::thread b([&] {
      {
        auto step1 = pin_scoped("chain-1", false);
        ASSERT_TRUE(step1.hit);
      }
      {
        auto step2 = pin_scoped("chain-2", true);
        ASSERT_TRUE(step2.hit);
        record(2);
      }
    });
    a.join();
    b.join();
    EXPECT_EQ(order_, (std::vector<int>{1, 2, 3})) << "round " << round;
  }
}

TEST_F(ScheduleTest, DisabledBreakpointsMakePinsNoops) {
  Config::set_enabled(false);
  EXPECT_FALSE(pin("disabled", true, 1000ms));  // returns immediately
  Config::set_enabled(true);
}

}  // namespace
}  // namespace cbp::schedule
