// Tests for the §3 probability model: closed forms, bounds, and the
// Monte-Carlo schedule simulator, including parameterized property
// sweeps (monotonicity, bound relationships, model-vs-simulation
// agreement).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/probability.h"
#include "model/schedule_sim.h"

namespace cbp::model {
namespace {

// ---------------------------------------------------------------------------
// log_binomial
// ---------------------------------------------------------------------------

TEST(LogBinomial, KnownValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(52, 5)), 2'598'960.0, 1e-3);
}

TEST(LogBinomial, ZeroWhenKExceedsN) {
  EXPECT_NEAR(std::exp(log_binomial(3, 5)), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Unaided probability
// ---------------------------------------------------------------------------

TEST(Unaided, ZeroVisitsNeverHit) {
  EXPECT_DOUBLE_EQ(p_hit_unaided(1000, 0), 0.0);
}

TEST(Unaided, PigeonholeForcesHit) {
  // With 2m > N the two visit sets must intersect.
  EXPECT_DOUBLE_EQ(p_hit_unaided(10, 6), 1.0);
}

TEST(Unaided, SingleVisitExactValue) {
  // m=1: P = 1 - C(N-1,1)/C(N,1) = 1/N.
  EXPECT_NEAR(p_hit_unaided(100, 1), 0.01, 1e-9);
  EXPECT_NEAR(p_hit_unaided(1000, 1), 0.001, 1e-9);
}

TEST(Unaided, SmallProbabilityForRareVisits) {
  // The paper's point: breakpoints are hard to hit unaided.
  EXPECT_LT(p_hit_unaided(100'000, 5), 0.001);
}

TEST(Unaided, BoundIsAnUpperBound) {
  for (std::uint64_t n : {100u, 1000u, 10000u}) {
    for (std::uint64_t m : {1u, 2u, 5u, 10u, 20u}) {
      EXPECT_LE(p_hit_unaided(n, m), p_hit_unaided_bound(n, m) + 1e-9)
          << "N=" << n << " m=" << m;
    }
  }
}

TEST(Unaided, ApproxTracksExactForSmallP) {
  const double exact = p_hit_unaided(1'000'000, 5);
  const double approx = p_hit_unaided_approx(1'000'000, 5);
  EXPECT_NEAR(exact, approx, approx * 0.05 + 1e-9);
}

TEST(Unaided, MonotonicInVisits) {
  double previous = 0.0;
  for (std::uint64_t m = 1; m <= 30; ++m) {
    const double p = p_hit_unaided(1000, m);
    EXPECT_GE(p, previous) << "m=" << m;
    previous = p;
  }
}

// ---------------------------------------------------------------------------
// BTRIGGER probability
// ---------------------------------------------------------------------------

TEST(BTrigger, InUnitInterval) {
  for (std::uint64_t t : {1u, 10u, 100u, 1000u}) {
    const double p = p_hit_btrigger(10'000, 10, 20, t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(BTrigger, MonotonicInPauseTime) {
  double previous = 0.0;
  for (std::uint64_t t = 1; t <= 512; t *= 2) {
    const double p = p_hit_btrigger(10'000, 5, 10, t);
    EXPECT_GE(p, previous) << "T=" << t;
    previous = p;
  }
}

TEST(BTrigger, BeatsUnaidedForAnyRealPause) {
  for (std::uint64_t t : {10u, 100u, 1000u}) {
    EXPECT_GT(p_hit_btrigger(10'000, 5, 5, t), p_hit_unaided(10'000, 5))
        << "T=" << t;
  }
}

TEST(BTrigger, PrecisionImprovementHelps) {
  // §3/§6.3: decreasing M (more precise local predicate) at fixed m
  // raises the hit probability because less time is wasted pausing.
  const double imprecise = p_hit_btrigger(10'000, 5, 500, 100);
  const double precise = p_hit_btrigger(10'000, 5, 5, 100);
  EXPECT_GT(precise, imprecise);
}

TEST(BTrigger, ApproxTracksExactForSmallP) {
  const double exact = p_hit_btrigger(1'000'000, 3, 3, 50);
  const double approx = p_hit_btrigger_approx(1'000'000, 3, 3, 50);
  EXPECT_NEAR(exact, approx, approx * 0.05 + 1e-9);
}

TEST(BTrigger, GainFactorGrowsWithPause) {
  double previous = 0.0;
  for (std::uint64_t t = 1; t <= 1024; t *= 4) {
    const double gain = gain_factor(100'000, 5, 10, t);
    EXPECT_GT(gain, previous);
    previous = gain;
  }
}

TEST(BTrigger, GainFactorSaturatesAtNOverM) {
  // As T -> infinity the gain approaches (N-m+1)/M.
  const double gain = gain_factor(100'000, 5, 10, 100'000'000);
  EXPECT_NEAR(gain, (100'000.0 - 5 + 1) / 10.0, 1.0);
}

// ---------------------------------------------------------------------------
// Monte-Carlo simulator vs closed forms
// ---------------------------------------------------------------------------

TEST(ScheduleSim, UnaidedMatchesClosedForm) {
  SimParams params;
  params.n_steps = 1000;
  params.m_visits = 10;
  params.big_m_visits = 10;
  params.pause_steps = 1;  // unaided
  params.trials = 40'000;
  const double simulated = simulate(params).probability();
  const double exact = p_hit_unaided(params.n_steps, params.m_visits);
  EXPECT_NEAR(simulated, exact, 0.01);
}

TEST(ScheduleSim, UnaidedMatchesClosedFormSparse) {
  SimParams params;
  params.n_steps = 5000;
  params.m_visits = 3;
  params.big_m_visits = 3;
  params.pause_steps = 1;
  params.trials = 60'000;
  EXPECT_NEAR(simulate(params).probability(),
              p_hit_unaided(params.n_steps, params.m_visits), 0.005);
}

TEST(ScheduleSim, PausingNeverHurts) {
  SimParams base;
  base.n_steps = 2000;
  base.m_visits = 4;
  base.big_m_visits = 4;
  base.trials = 20'000;
  double previous = 0.0;
  for (std::uint64_t t : {1u, 5u, 25u, 125u}) {
    SimParams params = base;
    params.pause_steps = t;
    const double p = simulate(params).probability();
    EXPECT_GE(p, previous - 0.02) << "T=" << t;  // MC tolerance
    previous = p;
  }
}

TEST(ScheduleSim, BTriggerFormulaIsALowerBound) {
  // The paper derives a lower bound; the simulator's two-sided arrival
  // window should meet or exceed it.
  SimParams params;
  params.n_steps = 5000;
  params.m_visits = 5;
  params.big_m_visits = 5;
  params.pause_steps = 40;
  params.trials = 30'000;
  const double simulated = simulate(params).probability();
  const double bound = p_hit_btrigger(params.n_steps, params.m_visits,
                                      params.big_m_visits,
                                      params.pause_steps);
  EXPECT_GE(simulated, bound - 0.01);
  // And it should be in the right ballpark (within ~3x for small p:
  // the window is two-sided, the bound one-sided).
  EXPECT_LE(simulated, 3.0 * bound + 0.02);
}

TEST(ScheduleSim, DeterministicForSeed) {
  SimParams params;
  params.trials = 1000;
  params.seed = 99;
  const auto a = simulate(params);
  const auto b = simulate(params);
  EXPECT_EQ(a.hits, b.hits);
}

// ---------------------------------------------------------------------------
// Parameterized property sweep: simulation within model envelope
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::uint64_t /*N*/, std::uint64_t /*m*/,
                              std::uint64_t /*T*/>;

class ModelEnvelopeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ModelEnvelopeSweep, SimulationWithinEnvelope) {
  const auto [n, m, t] = GetParam();
  SimParams params;
  params.n_steps = n;
  params.m_visits = m;
  params.big_m_visits = m;
  params.pause_steps = t;
  params.trials = 20'000;
  const double simulated = simulate(params).probability();
  const double lower = p_hit_btrigger(n, m, m, t);
  // Envelope: at least the paper's lower bound (minus MC noise), at most
  // the two-sided window analogue 1-(1-(2T-1)m/L)^m (plus MC noise).
  const double len = static_cast<double>(n + m * (t - 1));
  const double per = std::min(1.0, (2.0 * t - 1.0) * m / len);
  const double upper = 1.0 - std::pow(1.0 - per, static_cast<double>(m));
  EXPECT_GE(simulated, lower - 0.02)
      << "N=" << n << " m=" << m << " T=" << t;
  EXPECT_LE(simulated, upper + 0.02)
      << "N=" << n << " m=" << m << " T=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelEnvelopeSweep,
    ::testing::Combine(::testing::Values(1000, 5000, 20'000),
                       ::testing::Values(2, 5, 10),
                       ::testing::Values(1, 10, 50, 200)));

}  // namespace
}  // namespace cbp::model
