// Trigger broker tests (src/broker): wire-protocol encode/decode, the
// in-process broker/client protocol (match, rank order, timeout,
// cancel, peer loss, grant cap, broker death), raw-socket protocol
// errors, and fork-based cross-process smoke at the engine level — two
// worker processes matching a scope=process-group breakpoint through a
// real unix-domain socket, including the peer-death release path.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/wire.h"
#include "core/cbp.h"
#include "core/spec.h"
#include "core/triggers.h"
#include "runtime/clock.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;
using SteadyClock = std::chrono::steady_clock;

std::string test_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/cbp-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(WireTest, EncodeDecodeRoundTrip) {
  broker::Message m;
  m.type = broker::MsgType::kArrive;
  m.token = 0x0123456789abcdefULL;
  m.a = 5000;
  m.b = 42;
  m.rank = 1;
  m.arity = 3;
  m.flags = broker::kFlagScoped;
  m.name = "prefork-scoreboard";

  const std::vector<std::uint8_t> frame = broker::encode(m);
  ASSERT_GE(frame.size(), 4u + broker::kHeaderSize);
  // The 4-byte LE prefix states the payload length exactly.
  const std::uint32_t payload =
      frame[0] | (frame[1] << 8) | (frame[2] << 16) |
      (static_cast<std::uint32_t>(frame[3]) << 24);
  ASSERT_EQ(payload, frame.size() - 4);

  const auto out = broker::decode(frame.data() + 4, payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, m.type);
  EXPECT_EQ(out->token, m.token);
  EXPECT_EQ(out->a, m.a);
  EXPECT_EQ(out->b, m.b);
  EXPECT_EQ(out->rank, m.rank);
  EXPECT_EQ(out->arity, m.arity);
  EXPECT_EQ(out->flags, m.flags);
  EXPECT_EQ(out->name, m.name);
}

TEST(WireTest, EncodeDecodeEmptyNameAndNegativeRank) {
  broker::Message m;
  m.type = broker::MsgType::kGrant;
  m.rank = -1;
  m.name.clear();
  const std::vector<std::uint8_t> frame = broker::encode(m);
  const auto out = broker::decode(frame.data() + 4, frame.size() - 4);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->rank, -1);
  EXPECT_TRUE(out->name.empty());
}

TEST(WireTest, DecodeRejectsMalformedPayloads) {
  broker::Message m;
  m.type = broker::MsgType::kArrive;
  m.name = "bp";
  std::vector<std::uint8_t> frame = broker::encode(m);
  const std::uint8_t* payload = frame.data() + 4;
  const std::size_t size = frame.size() - 4;

  // Truncated: shorter than the fixed header, or name bytes cut off.
  EXPECT_FALSE(broker::decode(payload, broker::kHeaderSize - 1).has_value());
  EXPECT_FALSE(broker::decode(payload, size - 1).has_value());
  // Oversized: trailing bytes past the declared name are an error too
  // (the length prefix and name_len must agree exactly).
  std::vector<std::uint8_t> padded(payload, payload + size);
  padded.push_back(0);
  EXPECT_FALSE(broker::decode(padded.data(), padded.size()).has_value());
  // Unknown message type.
  std::vector<std::uint8_t> bad_type(payload, payload + size);
  bad_type[0] = 99;
  EXPECT_FALSE(broker::decode(bad_type.data(), bad_type.size()).has_value());
}

// ---------------------------------------------------------------------------
// In-process broker + client protocol
// ---------------------------------------------------------------------------

RemoteTriggerRequest make_request(const std::string& name, int rank,
                                  std::chrono::milliseconds timeout,
                                  bool scoped = false, int arity = 2) {
  RemoteTriggerRequest request;
  request.name = name;
  request.rank = rank;
  request.arity = arity;
  request.timeout = timeout;
  request.scoped = scoped;
  return request;
}

TEST(BrokerClientProtocolTest, TwoClientsMatchInDeclaredRankOrder) {
  const std::string path = test_socket_path("match");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  auto a = broker::BrokerClient::connect(path);
  auto b = broker::BrokerClient::connect(path);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  RemoteTriggerResult ra, rb;
  std::thread ta([&] { ra = a->trigger_remote(make_request("bp", 0, 5000ms)); });
  std::thread tb([&] { rb = b->trigger_remote(make_request("bp", 1, 5000ms)); });
  ta.join();
  tb.join();

  EXPECT_EQ(ra.outcome, RemoteOutcome::kHit);
  EXPECT_EQ(rb.outcome, RemoteOutcome::kHit);
  EXPECT_EQ(ra.rank, 0);
  EXPECT_EQ(rb.rank, 1);
  EXPECT_TRUE(ra.hit());
  EXPECT_TRUE(rb.hit());

  const broker::BrokerStats stats = server.stats();
  EXPECT_EQ(stats.connections, 2u);
  EXPECT_EQ(stats.arrivals, 2u);
  EXPECT_EQ(stats.matches, 1u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.peer_lost, 0u);

  a->shutdown();
  b->shutdown();
  server.stop();
}

TEST(BrokerClientProtocolTest, EqualDeclaredRanksOrderByArrival) {
  const std::string path = test_socket_path("rank-tie");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  auto a = broker::BrokerClient::connect(path);
  auto b = broker::BrokerClient::connect(path);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  RemoteTriggerResult ra, rb;
  std::thread ta([&] { ra = a->trigger_remote(make_request("tie", 0, 5000ms)); });
  // Make A's arrival strictly earlier: the broker breaks the declared-
  // rank tie the way the in-process engine does — earlier-postponed
  // goes first.
  std::this_thread::sleep_for(150ms);
  std::thread tb([&] { rb = b->trigger_remote(make_request("tie", 0, 5000ms)); });
  ta.join();
  tb.join();

  EXPECT_EQ(ra.outcome, RemoteOutcome::kHit);
  EXPECT_EQ(rb.outcome, RemoteOutcome::kHit);
  EXPECT_EQ(ra.rank, 0);
  EXPECT_EQ(rb.rank, 1);

  a->shutdown();
  b->shutdown();
  server.stop();
}

TEST(BrokerClientProtocolTest, UnmatchedArrivalTimesOutBrokerSide) {
  const std::string path = test_socket_path("timeout");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  auto a = broker::BrokerClient::connect(path);
  ASSERT_NE(a, nullptr);

  const auto start = SteadyClock::now();
  const RemoteTriggerResult result =
      a->trigger_remote(make_request("lonely", 0, 100ms));
  const auto elapsed = SteadyClock::now() - start;

  EXPECT_EQ(result.outcome, RemoteOutcome::kTimeout);
  EXPECT_FALSE(result.hit());
  EXPECT_GE(elapsed, 90ms);   // parked (about) the full bound
  EXPECT_LT(elapsed, 5s);     // ...but nowhere near the client failsafe
  EXPECT_EQ(server.stats().timeouts, 1u);

  a->shutdown();
  server.stop();
}

TEST(BrokerClientProtocolTest, ScopedPeerDeathReleasesSurvivorAsPeerLost) {
  const std::string path = test_socket_path("peer-lost");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  auto doomed = broker::BrokerClient::connect(path);
  auto survivor = broker::BrokerClient::connect(path);
  ASSERT_NE(doomed, nullptr);
  ASSERT_NE(survivor, nullptr);

  RemoteTriggerResult rd, rs;
  std::thread td([&] {
    rd = doomed->trigger_remote(make_request("crash", 0, 5000ms,
                                             /*scoped=*/true));
  });
  std::thread ts([&] {
    rs = survivor->trigger_remote(make_request("crash", 1, 5000ms));
  });

  // Rank 0 is granted first and holds the group (scoped: DONE deferred
  // to `complete`, which we never call — a crashed process).
  td.join();
  ASSERT_EQ(rd.outcome, RemoteOutcome::kHit);
  ASSERT_TRUE(rd.complete != nullptr);
  doomed->shutdown();  // EOF mid-protocol: the broker must free rank 1

  ts.join();
  EXPECT_EQ(rs.outcome, RemoteOutcome::kPeerLost);
  EXPECT_TRUE(rs.hit());  // a peer-lost release still counts as a hit
  EXPECT_GE(server.stats().peer_lost, 1u);

  survivor->shutdown();
  server.stop();
}

TEST(BrokerClientProtocolTest, LeakedGuardForceAdvancesAfterGrantCap) {
  const std::string path = test_socket_path("grant-cap");
  broker::BrokerOptions options;
  options.socket_path = path;
  options.grant_cap = 100ms;  // fast cap for the test
  broker::Broker server(options);
  ASSERT_TRUE(server.start());

  auto leaker = broker::BrokerClient::connect(path);
  auto waiter = broker::BrokerClient::connect(path);
  ASSERT_NE(leaker, nullptr);
  ASSERT_NE(waiter, nullptr);

  RemoteTriggerResult rl, rw;
  std::thread tl([&] {
    rl = leaker->trigger_remote(make_request("leak", 0, 5000ms,
                                             /*scoped=*/true));
  });
  std::thread tw([&] {
    rw = waiter->trigger_remote(make_request("leak", 1, 5000ms));
  });

  tl.join();  // rank 0 granted; its `complete` is never invoked but the
  tw.join();  // process stays alive — only the grant cap can free rank 1

  ASSERT_EQ(rl.outcome, RemoteOutcome::kHit);
  EXPECT_EQ(rw.outcome, RemoteOutcome::kHit);  // forced advance, peer alive
  EXPECT_EQ(rw.rank, 1);
  EXPECT_GE(server.stats().forced_advances, 1u);
  EXPECT_EQ(server.stats().peer_lost, 0u);

  leaker->shutdown();
  waiter->shutdown();
  server.stop();
}

TEST(BrokerClientProtocolTest, BrokerDeathFailsInFlightPostponement) {
  const std::string path = test_socket_path("broker-death");
  auto server = std::make_unique<broker::Broker>(
      broker::BrokerOptions{path, 2000ms});
  ASSERT_TRUE(server->start());

  auto a = broker::BrokerClient::connect(path);
  ASSERT_NE(a, nullptr);

  RemoteTriggerResult result;
  std::thread t([&] {
    result = a->trigger_remote(make_request("orphan", 0, 30000ms));
  });
  std::this_thread::sleep_for(100ms);  // let the arrival park
  const auto stop_start = SteadyClock::now();
  server->stop();  // clients see EOF
  t.join();
  const auto elapsed = SteadyClock::now() - stop_start;

  EXPECT_EQ(result.outcome, RemoteOutcome::kError);
  EXPECT_LT(elapsed, 10s);  // failed fast, not after timeout + slack
  EXPECT_FALSE(a->connected());
  // Future postponements fail immediately too.
  EXPECT_EQ(a->trigger_remote(make_request("orphan", 0, 100ms)).outcome,
            RemoteOutcome::kError);
  a->shutdown();
}

// ---------------------------------------------------------------------------
// Raw-socket protocol behaviour (no BrokerClient in the way)
// ---------------------------------------------------------------------------

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(BrokerRawWireTest, CancelIsAcknowledgedAndBadArityIsNaked) {
  const std::string path = test_socket_path("raw");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(path);
  ASSERT_GE(fd, 0);

  broker::Message hello;
  hello.type = broker::MsgType::kHello;
  hello.a = static_cast<std::uint64_t>(::getpid());
  ASSERT_TRUE(broker::write_frame(fd, hello));

  broker::Message arrive;
  arrive.type = broker::MsgType::kArrive;
  arrive.token = 7;
  arrive.a = 30000;  // long bound: only CANCEL can end it
  arrive.rank = 0;
  arrive.arity = 2;
  arrive.name = "raw-bp";
  ASSERT_TRUE(broker::write_frame(fd, arrive));

  broker::Message cancel;
  cancel.type = broker::MsgType::kCancel;
  cancel.token = 7;
  ASSERT_TRUE(broker::write_frame(fd, cancel));

  auto ack = broker::read_frame(fd);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, broker::MsgType::kCancelled);
  EXPECT_EQ(ack->token, 7u);
  EXPECT_EQ(server.stats().cancellations, 1u);

  // An arrival with nonsense arity is nak'ed (kCancelled) rather than
  // parked forever or crashing the broker.
  broker::Message bad = arrive;
  bad.token = 8;
  bad.arity = 0;
  ASSERT_TRUE(broker::write_frame(fd, bad));
  auto nak = broker::read_frame(fd);
  ASSERT_TRUE(nak.has_value());
  EXPECT_EQ(nak->type, broker::MsgType::kCancelled);
  EXPECT_EQ(nak->token, 8u);
  EXPECT_GE(server.stats().protocol_errors, 1u);

  ::close(fd);
  server.stop();
}

TEST(BrokerRawWireTest, OversizedFrameDropsTheConnection) {
  const std::string path = test_socket_path("oversized");
  broker::Broker server({path});
  ASSERT_TRUE(server.start());
  const int fd = raw_connect(path);
  ASSERT_GE(fd, 0);

  // A length prefix past kMaxFrame: protocol error, connection dropped.
  const std::uint32_t huge = broker::kMaxFrame + 1;
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(huge & 0xff),
      static_cast<std::uint8_t>((huge >> 8) & 0xff),
      static_cast<std::uint8_t>((huge >> 16) & 0xff),
      static_cast<std::uint8_t>((huge >> 24) & 0xff)};
  ASSERT_TRUE(broker::write_exact(fd, prefix, sizeof(prefix)));

  EXPECT_FALSE(broker::read_frame(fd).has_value());  // EOF: we were dropped
  EXPECT_GE(server.stats().protocol_errors, 1u);

  ::close(fd);
  server.stop();
}

// ---------------------------------------------------------------------------
// Engine-level behaviour
// ---------------------------------------------------------------------------

class BrokerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    BreakpointSpec::clear_installed();
    Config::set_enabled(true);
    Config::set_order_delay(1ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().set_transport(nullptr);
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
};

// scope=process-group with *no* transport attached must fall back to
// local matching, not error out or hang: the spec can ship before the
// broker does.
TEST_F(BrokerEngineTest, ProcessGroupScopeFallsBackToLocalWithoutTransport) {
  BreakpointSpec::parse("fallback-bp scope=process-group\n").install();
  int probe = 0;
  bool first = false, second = false;
  std::thread t1([&] {
    ConflictTrigger t("fallback-bp", &probe);
    first = t.trigger_here(/*is_first_action=*/true, 2000ms);
  });
  std::thread t2([&] {
    ConflictTrigger t("fallback-bp", &probe);
    second = t.trigger_here(/*is_first_action=*/false, 2000ms);
  });
  t1.join();
  t2.join();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  // The local path counts one hit per matched *pair* (the remote path
  // counts one per process — each address space keeps its own stats).
  EXPECT_EQ(Engine::instance().total_stats().hits, 1u);
  EXPECT_EQ(Engine::instance().total_stats().peer_lost, 0u);
}

// ---------------------------------------------------------------------------
// Fork-based cross-process smoke (the CI multi-process broker test)
// ---------------------------------------------------------------------------

/// Reaps `pid` with a deadline; SIGKILLs and fails on expiry so a broker
/// bug shows up as a test failure, never a ctest hang.
int wait_with_deadline(pid_t pid, std::chrono::seconds budget) {
  const auto deadline = SteadyClock::now() + budget;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    }
    if (SteadyClock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return 125;  // sentinel: wedged
    }
    std::this_thread::sleep_for(2ms);
  }
}

/// Child body for the fork tests: fresh engine state, process-group
/// spec, broker transport, one trigger.  Communicates via exit code
/// only (no gtest in the child): 3 = connect failed, 4 = no hit.
[[noreturn]] void fork_child(const std::string& path, const char* bp_name,
                             bool is_first, bool die_holding_guard) {
  Engine& engine = Engine::instance();
  engine.reset();
  BreakpointSpec::clear_installed();
  Config::set_enabled(true);
  rt::TimeScale::set(1.0);
  BreakpointSpec::parse(std::string(bp_name) + " scope=process-group\n")
      .install();
  auto client = broker::BrokerClient::connect(path, 5000ms, engine.tag());
  if (!client) _exit(3);
  engine.set_transport(client);

  ConflictTrigger trigger(bp_name, nullptr);
  if (die_holding_guard) {
    TriggerResult result = trigger.trigger_here_scoped(is_first, 5000ms);
    if (result.hit) _exit(42);  // die mid-protocol, DONE never sent
    _exit(4);
  }
  TriggerResult result = trigger.trigger_here_scoped(is_first, 5000ms);
  const bool hit = result.hit;
  const bool peer_lost = result.peer_lost;
  result.guard.release();
  client->shutdown();
  if (!hit) _exit(4);
  _exit(peer_lost ? 5 : 0);
}

TEST(BrokerForkTest, TwoProcessesMatchThroughTheBroker) {
  const std::string path = test_socket_path("fork-match");
  // fork *before* the broker starts its threads (prefork discipline:
  // the parent is single-threaded at every fork).
  pid_t kids[2];
  for (int w = 0; w < 2; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) fork_child(path, "fork-match-bp", w == 0, false);
    kids[w] = pid;
  }
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  const int status0 = wait_with_deadline(kids[0], 30s);
  const int status1 = wait_with_deadline(kids[1], 30s);
  EXPECT_EQ(status0, 0);
  EXPECT_EQ(status1, 0);

  const broker::BrokerStats stats = server.stats();
  EXPECT_EQ(stats.matches, 1u);
  EXPECT_EQ(stats.arrivals, 2u);
  EXPECT_EQ(stats.peer_lost, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  server.stop();
}

TEST(BrokerForkTest, KilledWorkerReleasesItsPeerAsPeerLost) {
  const std::string path = test_socket_path("fork-kill");
  pid_t kids[2];
  for (int w = 0; w < 2; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Worker 0 declares rank 0 (granted first) and dies holding the
      // guard; worker 1 parks for its grant and must be released as
      // peer-lost — never left to hang.
      fork_child(path, "fork-kill-bp", w == 0, /*die_holding_guard=*/w == 0);
    }
    kids[w] = pid;
  }
  broker::Broker server({path});
  ASSERT_TRUE(server.start());

  const int status0 = wait_with_deadline(kids[0], 30s);
  const int status1 = wait_with_deadline(kids[1], 30s);
  EXPECT_EQ(status0, 42);  // died mid-protocol as designed
  EXPECT_EQ(status1, 5);   // survivor: hit with peer_lost set

  const broker::BrokerStats stats = server.stats();
  EXPECT_EQ(stats.matches, 1u);
  EXPECT_GE(stats.peer_lost, 1u);
  server.stop();
}

}  // namespace
}  // namespace cbp
