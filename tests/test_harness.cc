// Tests for the experiment harness: repeated runs, overhead, MTTE, the
// table renderer, formatting helpers, and the Table 1/2 registries.

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/cbp.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "runtime/clock.h"

namespace cbp::harness {
namespace {

using namespace std::chrono_literals;

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
  }
};

apps::RunOutcome always_buggy(const apps::RunOptions&) {
  apps::RunOutcome outcome;
  outcome.artifact = rt::Artifact::kException;
  outcome.runtime_seconds = 0.002;
  return outcome;
}

apps::RunOutcome never_buggy(const apps::RunOptions&) {
  apps::RunOutcome outcome;
  outcome.runtime_seconds = 0.001;
  return outcome;
}

TEST_F(HarnessTest, RunRepeatedCountsBuggyRuns) {
  const auto result = run_repeated(always_buggy, {}, 7);
  EXPECT_EQ(result.runs, 7);
  EXPECT_EQ(result.buggy_runs, 7);
  EXPECT_DOUBLE_EQ(result.bug_probability(), 1.0);
  EXPECT_NEAR(result.mean_runtime_s, 0.002, 1e-9);
}

TEST_F(HarnessTest, RunRepeatedCleanRuns) {
  const auto result = run_repeated(never_buggy, {}, 5);
  EXPECT_EQ(result.buggy_runs, 0);
  EXPECT_DOUBLE_EQ(result.bug_probability(), 0.0);
}

TEST_F(HarnessTest, RunRepeatedVariesSeeds) {
  std::vector<std::uint64_t> seeds;
  auto runner = [&](const apps::RunOptions& options) {
    seeds.push_back(options.seed);
    return apps::RunOutcome{};
  };
  (void)run_repeated(runner, {}, 3);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(HarnessTest, RunRepeatedRespectsSeedBase) {
  // Regression: run_repeated used to clobber the caller's seed with
  // i + 1; trial i must run with seed base + i.
  std::vector<std::uint64_t> seeds;
  auto runner = [&](const apps::RunOptions& options) {
    seeds.push_back(options.seed);
    return apps::RunOutcome{};
  };
  apps::RunOptions options;
  options.seed = 100;
  (void)run_repeated(runner, options, 3);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102}));

  // Two different bases must produce two different trial streams.
  std::vector<std::uint64_t> other;
  auto other_runner = [&](const apps::RunOptions& o) {
    other.push_back(o.seed);
    return apps::RunOutcome{};
  };
  options.seed = 500;
  (void)run_repeated(other_runner, options, 3);
  EXPECT_EQ(other, (std::vector<std::uint64_t>{500, 501, 502}));
  EXPECT_NE(seeds, other);
}

TEST_F(HarnessTest, MeasureMtteRespectsSeedBase) {
  std::vector<std::uint64_t> seeds;
  auto runner = [&](const apps::RunOptions& options) {
    seeds.push_back(options.seed);
    apps::RunOutcome outcome;
    outcome.artifact = rt::Artifact::kCrash;
    return outcome;
  };
  apps::RunOptions options;
  options.seed = 40;
  (void)measure_mtte(runner, options, /*errors_wanted=*/3);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{40, 41, 42}));
}

TEST_F(HarnessTest, RunRepeatedParallelCoversAllSeedsOnce) {
  std::mutex mu;
  std::vector<std::uint64_t> seeds;
  auto runner = [&](const apps::RunOptions& options) {
    std::lock_guard<std::mutex> lock(mu);
    seeds.push_back(options.seed);
    return apps::RunOutcome{};
  };
  apps::RunOptions options;
  options.seed = 10;
  const auto result = run_repeated_parallel(runner, options, 8, /*jobs=*/4);
  EXPECT_EQ(result.runs, 8);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{10, 11, 12, 13, 14, 15, 16,
                                               17}));
  // trials[] is indexed by trial, not by completion order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(result.trials[static_cast<std::size_t>(i)].seed,
              10u + static_cast<std::uint64_t>(i));
  }
}

TEST_F(HarnessTest, RunRepeatedParallelMatchesSerialVerdicts) {
  // Verdicts depend only on the seed, so the parallel schedule must
  // reproduce the serial result exactly, trial by trial.
  auto runner = [](const apps::RunOptions& options) {
    apps::RunOutcome outcome;
    if (options.seed % 3 == 0) outcome.artifact = rt::Artifact::kCrash;
    outcome.runtime_seconds = 0.001;
    return outcome;
  };
  apps::RunOptions options;
  options.seed = 1;
  const auto serial = run_repeated(runner, options, 9);
  const auto parallel = run_repeated_parallel(runner, options, 9, /*jobs=*/3);
  EXPECT_EQ(parallel.buggy_runs, serial.buggy_runs);
  EXPECT_EQ(parallel.hit_runs, serial.hit_runs);
  for (int i = 0; i < 9; ++i) {
    const auto& s = serial.trials[static_cast<std::size_t>(i)];
    const auto& p = parallel.trials[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.seed, s.seed);
    EXPECT_EQ(p.buggy, s.buggy);
  }
}

TEST_F(HarnessTest, RunRepeatedParallelFallsBackToSerial) {
  std::vector<std::uint64_t> seeds;  // safe: jobs<=1 runs on this thread
  auto runner = [&](const apps::RunOptions& options) {
    seeds.push_back(options.seed);
    return apps::RunOutcome{};
  };
  (void)run_repeated_parallel(runner, {}, 3, /*jobs=*/1);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(HarnessTest, RunRepeatedParallelIsolatesEngineHits) {
  // Each parallel trial scores its hit on the worker's private engine;
  // the default engine must stay untouched.
  auto runner = [](const apps::RunOptions&) {
    int obj = 0;
    // rt::Thread children inherit the worker's engine binding; plain
    // std::threads would race on the default engine instead.
    rt::Thread a([&] {
      ConflictTrigger t("parallel-bp", &obj);
      (void)t.trigger_here(true, std::chrono::milliseconds(2000));
    });
    rt::Thread b([&] {
      ConflictTrigger t("parallel-bp", &obj);
      (void)t.trigger_here(false, std::chrono::milliseconds(2000));
    });
    a.join();
    b.join();
    return apps::RunOutcome{};
  };
  const auto result = run_repeated_parallel(runner, {}, 4, /*jobs=*/2);
  EXPECT_EQ(result.hit_runs, 4);
  EXPECT_EQ(Engine::instance().total_stats().hits, 0u);
}

TEST_F(HarnessTest, RunRepeatedResetsEngineBetweenRuns) {
  // A breakpoint hit in run i must not leak its statistics into run i+1
  // (each paper run is a fresh process).
  auto runner = [](const apps::RunOptions&) {
    EXPECT_EQ(Engine::instance().total_stats().hits, 0u);
    int obj = 0;
    std::thread a([&] {
      ConflictTrigger t("harness-bp", &obj);
      (void)t.trigger_here(true, std::chrono::milliseconds(2000));
    });
    std::thread b([&] {
      ConflictTrigger t("harness-bp", &obj);
      (void)t.trigger_here(false, std::chrono::milliseconds(2000));
    });
    a.join();
    b.join();
    return apps::RunOutcome{};
  };
  const auto result = run_repeated(runner, {}, 3);
  EXPECT_EQ(result.hit_runs, 3);  // every run hit exactly once, freshly
}

TEST_F(HarnessTest, MeasureOverheadTogglesBreakpoints) {
  std::vector<bool> flags;
  auto runner = [&](const apps::RunOptions& options) {
    flags.push_back(options.breakpoints);
    apps::RunOutcome outcome;
    outcome.runtime_seconds = options.breakpoints ? 0.004 : 0.002;
    return outcome;
  };
  const auto overhead = measure_overhead(runner, {}, 2);
  EXPECT_EQ(flags, (std::vector<bool>{false, false, true, true}));
  EXPECT_NEAR(overhead.normal_s, 0.002, 1e-9);
  EXPECT_NEAR(overhead.with_ctr_s, 0.004, 1e-9);
  EXPECT_NEAR(overhead.overhead_percent(), 100.0, 1e-6);
}

TEST_F(HarnessTest, MeasureMtteStopsAtErrorBudget) {
  int calls = 0;
  auto runner = [&](const apps::RunOptions&) {
    ++calls;
    apps::RunOutcome outcome;
    if (calls % 2 == 0) outcome.artifact = rt::Artifact::kCrash;
    return outcome;
  };
  const auto mtte = measure_mtte(runner, {}, /*errors_wanted=*/3);
  EXPECT_EQ(mtte.errors, 3);
  EXPECT_EQ(mtte.iterations, 6);
  EXPECT_GT(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, MeasureMtteRespectsIterationCap) {
  const auto mtte = measure_mtte(never_buggy, {}, 1, /*max_iterations=*/4);
  EXPECT_EQ(mtte.errors, 0);
  EXPECT_EQ(mtte.iterations, 4);
  EXPECT_DOUBLE_EQ(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, MeasureMtteParallelStopsAtErrorBudget) {
  // Every third seed is buggy, deterministically, so 3 workers reach the
  // budget regardless of scheduling.
  auto runner = [](const apps::RunOptions& options) {
    apps::RunOutcome outcome;
    if (options.seed % 3 == 0) outcome.artifact = rt::Artifact::kCrash;
    return outcome;
  };
  apps::RunOptions options;
  options.seed = 1;
  const auto mtte = measure_mtte_parallel(runner, options,
                                          /*errors_wanted=*/4,
                                          /*max_iterations=*/1000,
                                          /*jobs=*/3);
  EXPECT_EQ(mtte.errors, 4);
  EXPECT_GE(mtte.iterations, 4);
  EXPECT_LT(mtte.iterations, 1000);
  EXPECT_GT(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, MeasureMtteParallelRespectsIterationCap) {
  const auto mtte = measure_mtte_parallel(never_buggy, {}, /*errors_wanted=*/1,
                                          /*max_iterations=*/8, /*jobs=*/4);
  EXPECT_EQ(mtte.errors, 0);
  EXPECT_EQ(mtte.iterations, 8);
  EXPECT_DOUBLE_EQ(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, WilsonIntervalBracketsTheProportion) {
  const auto ci = wilson_interval(5, 10);
  EXPECT_LT(ci.low, 0.5);
  EXPECT_GT(ci.high, 0.5);
  EXPECT_GT(ci.low, 0.0);
  EXPECT_LT(ci.high, 1.0);

  // Degenerate proportions stay inside [0, 1] (the normal approximation
  // would not).
  const auto all = wilson_interval(10, 10);
  EXPECT_GT(all.low, 0.5);
  EXPECT_DOUBLE_EQ(all.high, 1.0);
  const auto none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_LT(none.high, 0.5);

  // No data: the interval is vacuous, not a crash.
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.low, 0.0);
  EXPECT_DOUBLE_EQ(empty.high, 1.0);
}

TEST_F(HarnessTest, WilsonIntervalNarrowsWithMoreTrials) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST_F(HarnessTest, ProbabilityIntervalOverlaps) {
  const ProbabilityInterval a{0.2, 0.5};
  const ProbabilityInterval b{0.4, 0.8};
  const ProbabilityInterval c{0.6, 0.9};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST_F(HarnessTest, RepeatedResultExposesWilsonIntervals) {
  const auto result = run_repeated(always_buggy, {}, 10);
  const auto ci = result.bug_probability_ci();
  EXPECT_GT(ci.low, 0.5);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
  const auto hit_ci = result.hit_probability_ci();
  EXPECT_DOUBLE_EQ(hit_ci.low, 0.0);  // no breakpoints hit
}

TEST_F(HarnessTest, TextTableAlignsColumns) {
  TextTable table({"A", "Longer"});
  table.add_row({"xx", "y"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("Longer"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST_F(HarnessTest, Formatters) {
  EXPECT_EQ(fmt_prob(1.0), "1.00");
  EXPECT_EQ(fmt_prob(0.87), "0.87");
  EXPECT_EQ(fmt_seconds(1.2345), "1.234");
  EXPECT_EQ(fmt_percent(5.55), "5.5");
  EXPECT_EQ(fmt_percent(-6.8), "-6.8");
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

TEST_F(HarnessTest, Table1HasAllPaperRows) {
  const auto cases = table1_cases();
  // 4 cache4j + 3 hedc + 5 jigsaw + 3 log4j + 1 logging + 1 lucene +
  // 2 moldyn + 1 montecarlo + 1 pool + 4 raytracer + 1 stringbuffer +
  // 2 swing + 6 collections = 34 configurations.
  EXPECT_EQ(cases.size(), 34u);
  for (const auto& row : cases) {
    EXPECT_FALSE(row.benchmark.empty());
    EXPECT_TRUE(row.runner != nullptr);
    EXPECT_GE(row.paper_prob, 0.0);
    EXPECT_LE(row.paper_prob, 1.0);
  }
}

TEST_F(HarnessTest, Table1CoversFifteenBenchmarks) {
  std::set<std::string> benchmarks;
  for (const auto& row : table1_cases()) benchmarks.insert(row.benchmark);
  EXPECT_EQ(benchmarks.size(), 15u);  // the paper's 15 Java programs
}

TEST_F(HarnessTest, Table2HasAllPaperRows) {
  const auto cases = table2_cases();
  ASSERT_EQ(cases.size(), 6u);
  int total_breakpoints = 0;
  for (const auto& row : cases) {
    EXPECT_TRUE(row.runner != nullptr);
    EXPECT_GT(row.breakpoints, 0);
    total_breakpoints += row.breakpoints;
  }
  EXPECT_EQ(total_breakpoints, 2 + 1 + 3 + 2 + 1 + 3);
}

TEST_F(HarnessTest, EveryTable1RunnerExecutes) {
  // Smoke: every registered runner completes one (breakpoint-free) run.
  rt::ScopedTimeScale fast(0.02);
  for (const auto& row : table1_cases()) {
    Engine::instance().reset();
    apps::RunOptions options;
    options.breakpoints = false;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(2000);
    const auto outcome = row.runner(options);
    EXPECT_GE(outcome.runtime_seconds, 0.0) << row.benchmark << " " << row.bug;
  }
}

TEST_F(HarnessTest, EveryTable2RunnerReproducesWithBreakpoints) {
  rt::ScopedTimeScale fast(0.02);
  Config::set_order_delay(std::chrono::milliseconds(1));
  for (const auto& row : table2_cases()) {
    Engine::instance().reset();
    apps::RunOptions options;
    options.breakpoints = true;
    options.pause = std::chrono::milliseconds(200);
    options.stall_after = std::chrono::milliseconds(2000);
    const auto outcome = row.runner(options);
    EXPECT_TRUE(outcome.buggy()) << row.benchmark << ": " << row.error;
  }
}

// ---------------------------------------------------------------------------
// Registry-driven sweep: every Table 1 row reproduces its artifact
// ---------------------------------------------------------------------------

class Table1RowSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::milliseconds(2));
    Config::set_guard_wait_cap(std::chrono::milliseconds(2000));
    rt::TimeScale::set(0.1);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
  }
};

TEST_P(Table1RowSweep, ArmedRunProducesTheRowArtifact) {
  const auto cases = table1_cases();
  ASSERT_LT(GetParam(), cases.size());
  const Table1Case& row = cases[GetParam()];

  apps::RunOptions options;
  options.breakpoints = true;
  // Generous pause so even the probabilistic rows (hedc/swing at
  // wait=100ms) become near-certain for this single-run check.
  options.pause = std::max(row.pause, std::chrono::milliseconds(2000));
  options.work_scale = row.work_scale;
  options.stall_after = std::chrono::milliseconds(8000);
  options.seed = 7;

  const apps::RunOutcome outcome = row.runner(options);

  rt::Artifact expected;
  if (row.error == "stall") {
    expected = rt::Artifact::kStall;
  } else if (row.error == "exception") {
    expected = rt::Artifact::kException;
  } else if (row.error == "test fail") {
    expected = rt::Artifact::kWrongResult;
  } else {
    expected = rt::Artifact::kRaceObserved;
  }
  EXPECT_EQ(outcome.artifact, expected)
      << row.benchmark << " " << row.bug << ": " << outcome.detail;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1RowSweep,
                         ::testing::Range<std::size_t>(0, 34));

}  // namespace
}  // namespace cbp::harness
