// Tests for the experiment harness: repeated runs, overhead, MTTE, the
// table renderer, formatting helpers, and the Table 1/2 registries.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/cbp.h"
#include "harness/experiment.h"
#include "harness/registry.h"
#include "runtime/clock.h"

namespace cbp::harness {
namespace {

using namespace std::chrono_literals;

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
  }
};

apps::RunOutcome always_buggy(const apps::RunOptions&) {
  apps::RunOutcome outcome;
  outcome.artifact = rt::Artifact::kException;
  outcome.runtime_seconds = 0.002;
  return outcome;
}

apps::RunOutcome never_buggy(const apps::RunOptions&) {
  apps::RunOutcome outcome;
  outcome.runtime_seconds = 0.001;
  return outcome;
}

TEST_F(HarnessTest, RunRepeatedCountsBuggyRuns) {
  const auto result = run_repeated(always_buggy, {}, 7);
  EXPECT_EQ(result.runs, 7);
  EXPECT_EQ(result.buggy_runs, 7);
  EXPECT_DOUBLE_EQ(result.bug_probability(), 1.0);
  EXPECT_NEAR(result.mean_runtime_s, 0.002, 1e-9);
}

TEST_F(HarnessTest, RunRepeatedCleanRuns) {
  const auto result = run_repeated(never_buggy, {}, 5);
  EXPECT_EQ(result.buggy_runs, 0);
  EXPECT_DOUBLE_EQ(result.bug_probability(), 0.0);
}

TEST_F(HarnessTest, RunRepeatedVariesSeeds) {
  std::vector<std::uint64_t> seeds;
  auto runner = [&](const apps::RunOptions& options) {
    seeds.push_back(options.seed);
    return apps::RunOutcome{};
  };
  (void)run_repeated(runner, {}, 3);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(HarnessTest, RunRepeatedResetsEngineBetweenRuns) {
  // A breakpoint hit in run i must not leak its statistics into run i+1
  // (each paper run is a fresh process).
  auto runner = [](const apps::RunOptions&) {
    EXPECT_EQ(Engine::instance().total_stats().hits, 0u);
    int obj = 0;
    std::thread a([&] {
      ConflictTrigger t("harness-bp", &obj);
      (void)t.trigger_here(true, std::chrono::milliseconds(2000));
    });
    std::thread b([&] {
      ConflictTrigger t("harness-bp", &obj);
      (void)t.trigger_here(false, std::chrono::milliseconds(2000));
    });
    a.join();
    b.join();
    return apps::RunOutcome{};
  };
  const auto result = run_repeated(runner, {}, 3);
  EXPECT_EQ(result.hit_runs, 3);  // every run hit exactly once, freshly
}

TEST_F(HarnessTest, MeasureOverheadTogglesBreakpoints) {
  std::vector<bool> flags;
  auto runner = [&](const apps::RunOptions& options) {
    flags.push_back(options.breakpoints);
    apps::RunOutcome outcome;
    outcome.runtime_seconds = options.breakpoints ? 0.004 : 0.002;
    return outcome;
  };
  const auto overhead = measure_overhead(runner, {}, 2);
  EXPECT_EQ(flags, (std::vector<bool>{false, false, true, true}));
  EXPECT_NEAR(overhead.normal_s, 0.002, 1e-9);
  EXPECT_NEAR(overhead.with_ctr_s, 0.004, 1e-9);
  EXPECT_NEAR(overhead.overhead_percent(), 100.0, 1e-6);
}

TEST_F(HarnessTest, MeasureMtteStopsAtErrorBudget) {
  int calls = 0;
  auto runner = [&](const apps::RunOptions&) {
    ++calls;
    apps::RunOutcome outcome;
    if (calls % 2 == 0) outcome.artifact = rt::Artifact::kCrash;
    return outcome;
  };
  const auto mtte = measure_mtte(runner, {}, /*errors_wanted=*/3);
  EXPECT_EQ(mtte.errors, 3);
  EXPECT_EQ(mtte.iterations, 6);
  EXPECT_GT(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, MeasureMtteRespectsIterationCap) {
  const auto mtte = measure_mtte(never_buggy, {}, 1, /*max_iterations=*/4);
  EXPECT_EQ(mtte.errors, 0);
  EXPECT_EQ(mtte.iterations, 4);
  EXPECT_DOUBLE_EQ(mtte.mtte_s, 0.0);
}

TEST_F(HarnessTest, TextTableAlignsColumns) {
  TextTable table({"A", "Longer"});
  table.add_row({"xx", "y"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("Longer"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST_F(HarnessTest, Formatters) {
  EXPECT_EQ(fmt_prob(1.0), "1.00");
  EXPECT_EQ(fmt_prob(0.87), "0.87");
  EXPECT_EQ(fmt_seconds(1.2345), "1.234");
  EXPECT_EQ(fmt_percent(5.55), "5.5");
  EXPECT_EQ(fmt_percent(-6.8), "-6.8");
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

TEST_F(HarnessTest, Table1HasAllPaperRows) {
  const auto cases = table1_cases();
  // 4 cache4j + 3 hedc + 5 jigsaw + 3 log4j + 1 logging + 1 lucene +
  // 2 moldyn + 1 montecarlo + 1 pool + 4 raytracer + 1 stringbuffer +
  // 2 swing + 6 collections = 34 configurations.
  EXPECT_EQ(cases.size(), 34u);
  for (const auto& row : cases) {
    EXPECT_FALSE(row.benchmark.empty());
    EXPECT_TRUE(row.runner != nullptr);
    EXPECT_GE(row.paper_prob, 0.0);
    EXPECT_LE(row.paper_prob, 1.0);
  }
}

TEST_F(HarnessTest, Table1CoversFifteenBenchmarks) {
  std::set<std::string> benchmarks;
  for (const auto& row : table1_cases()) benchmarks.insert(row.benchmark);
  EXPECT_EQ(benchmarks.size(), 15u);  // the paper's 15 Java programs
}

TEST_F(HarnessTest, Table2HasAllPaperRows) {
  const auto cases = table2_cases();
  ASSERT_EQ(cases.size(), 6u);
  int total_breakpoints = 0;
  for (const auto& row : cases) {
    EXPECT_TRUE(row.runner != nullptr);
    EXPECT_GT(row.breakpoints, 0);
    total_breakpoints += row.breakpoints;
  }
  EXPECT_EQ(total_breakpoints, 2 + 1 + 3 + 2 + 1 + 3);
}

TEST_F(HarnessTest, EveryTable1RunnerExecutes) {
  // Smoke: every registered runner completes one (breakpoint-free) run.
  rt::ScopedTimeScale fast(0.02);
  for (const auto& row : table1_cases()) {
    Engine::instance().reset();
    apps::RunOptions options;
    options.breakpoints = false;
    options.pause = row.pause;
    options.work_scale = row.work_scale;
    options.stall_after = std::chrono::milliseconds(2000);
    const auto outcome = row.runner(options);
    EXPECT_GE(outcome.runtime_seconds, 0.0) << row.benchmark << " " << row.bug;
  }
}

TEST_F(HarnessTest, EveryTable2RunnerReproducesWithBreakpoints) {
  rt::ScopedTimeScale fast(0.02);
  Config::set_order_delay(std::chrono::milliseconds(1));
  for (const auto& row : table2_cases()) {
    Engine::instance().reset();
    apps::RunOptions options;
    options.breakpoints = true;
    options.pause = std::chrono::milliseconds(200);
    options.stall_after = std::chrono::milliseconds(2000);
    const auto outcome = row.runner(options);
    EXPECT_TRUE(outcome.buggy()) << row.benchmark << ": " << row.error;
  }
}

// ---------------------------------------------------------------------------
// Registry-driven sweep: every Table 1 row reproduces its artifact
// ---------------------------------------------------------------------------

class Table1RowSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::milliseconds(2));
    Config::set_guard_wait_cap(std::chrono::milliseconds(2000));
    rt::TimeScale::set(0.1);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
  }
};

TEST_P(Table1RowSweep, ArmedRunProducesTheRowArtifact) {
  const auto cases = table1_cases();
  ASSERT_LT(GetParam(), cases.size());
  const Table1Case& row = cases[GetParam()];

  apps::RunOptions options;
  options.breakpoints = true;
  // Generous pause so even the probabilistic rows (hedc/swing at
  // wait=100ms) become near-certain for this single-run check.
  options.pause = std::max(row.pause, std::chrono::milliseconds(2000));
  options.work_scale = row.work_scale;
  options.stall_after = std::chrono::milliseconds(8000);
  options.seed = 7;

  const apps::RunOutcome outcome = row.runner(options);

  rt::Artifact expected;
  if (row.error == "stall") {
    expected = rt::Artifact::kStall;
  } else if (row.error == "exception") {
    expected = rt::Artifact::kException;
  } else if (row.error == "test fail") {
    expected = rt::Artifact::kWrongResult;
  } else {
    expected = rt::Artifact::kRaceObserved;
  }
  EXPECT_EQ(outcome.artifact, expected)
      << row.benchmark << " " << row.bug << ": " << outcome.detail;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1RowSweep,
                         ::testing::Range<std::size_t>(0, 34));

}  // namespace
}  // namespace cbp::harness
