// Tests for breakpoint spec files (core/spec.h): parsing, and each
// override's effect inside the engine (disable, pause, order flip,
// ignore_first, bound).

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "core/spec.h"
#include "runtime/clock.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class SpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    BreakpointSpec::clear_installed();
    Config::set_enabled(true);
    Config::set_order_delay(1ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST_F(SpecTest, ParsesAllKeys) {
  const auto spec = BreakpointSpec::parse(
      "# a comment\n"
      "bp-one pause=1000 flip\n"
      "bp-two off\n"
      "\n"
      "bp-three ignore_first=7200 bound=4  # trailing comment\n");
  EXPECT_EQ(spec.size(), 3u);
  const SpecOverride* one = spec.find("bp-one");
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->pause, 1000ms);
  EXPECT_TRUE(one->flip_order);
  EXPECT_FALSE(one->disabled);
  const SpecOverride* two = spec.find("bp-two");
  ASSERT_NE(two, nullptr);
  EXPECT_TRUE(two->disabled);
  const SpecOverride* three = spec.find("bp-three");
  ASSERT_NE(three, nullptr);
  EXPECT_EQ(three->ignore_first, 7200u);
  EXPECT_EQ(three->bound, 4u);
  EXPECT_EQ(spec.find("unmentioned"), nullptr);
}

TEST_F(SpecTest, ParsesFromProvenanceKey) {
  const auto spec = BreakpointSpec::parse(
      "# candidate: conflict 'counter' cache.cc:23 <-> cache.cc:27\n"
      "sa-conflict-counter from=static\n"
      "jigsaw-deadlock1 from=dynamic pause=500\n"
      "untagged bound=1\n");
  EXPECT_EQ(spec.size(), 3u);
  ASSERT_NE(spec.find("sa-conflict-counter"), nullptr);
  EXPECT_EQ(spec.find("sa-conflict-counter")->from, SpecOrigin::kStatic);
  ASSERT_NE(spec.find("jigsaw-deadlock1"), nullptr);
  EXPECT_EQ(spec.find("jigsaw-deadlock1")->from, SpecOrigin::kDynamic);
  EXPECT_EQ(spec.find("jigsaw-deadlock1")->pause, 500ms);
  ASSERT_NE(spec.find("untagged"), nullptr);
  EXPECT_EQ(spec.find("untagged")->from, SpecOrigin::kUnspecified);
}

TEST_F(SpecTest, ParsesPredictedAndConfirmed) {
  const auto spec = BreakpointSpec::parse(
      "# placement plan: cbp-sa --fuse output\n"
      "cache4j-atomicity1 from=static predicted=0.9034 confirmed\n"
      "plain-entry pause=200\n");
  const SpecOverride* fused = spec.find("cache4j-atomicity1");
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->from, SpecOrigin::kStatic);
  ASSERT_TRUE(fused->predicted.has_value());
  EXPECT_NEAR(*fused->predicted, 0.9034, 1e-9);
  EXPECT_TRUE(fused->confirmed);
  const SpecOverride* plain = spec.find("plain-entry");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->predicted.has_value());
  EXPECT_FALSE(plain->confirmed);
}

TEST_F(SpecTest, RejectsBadPredictedValue) {
  EXPECT_THROW((void)BreakpointSpec::parse("bp predicted=1.5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)BreakpointSpec::parse("bp predicted=-0.1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)BreakpointSpec::parse("bp predicted=abc\n"),
               std::invalid_argument);
  EXPECT_THROW((void)BreakpointSpec::parse("bp predicted=\n"),
               std::invalid_argument);
}

TEST_F(SpecTest, RejectsBadFromValue) {
  EXPECT_THROW((void)BreakpointSpec::parse("bp from=guess\n"),
               std::invalid_argument);
  EXPECT_THROW((void)BreakpointSpec::parse("bp from=\n"),
               std::invalid_argument);
}

TEST_F(SpecTest, RejectsUnknownKey) {
  EXPECT_THROW((void)BreakpointSpec::parse("bp wibble=3\n"),
               std::invalid_argument);
}

TEST_F(SpecTest, RejectsBadNumber) {
  EXPECT_THROW((void)BreakpointSpec::parse("bp pause=abc\n"),
               std::invalid_argument);
  EXPECT_THROW((void)BreakpointSpec::parse("bp bound=3x\n"),
               std::invalid_argument);
}

TEST_F(SpecTest, EmptyTextParsesToEmptySpec) {
  EXPECT_EQ(BreakpointSpec::parse("").size(), 0u);
  EXPECT_EQ(BreakpointSpec::parse("# only comments\n\n").size(), 0u);
}

TEST_F(SpecTest, DuplicateNameThrowsWithLineNumber) {
  try {
    (void)BreakpointSpec::parse(
        "# header\n"
        "bp-dup pause=10\n"
        "bp-other off\n"
        "bp-dup bound=3\n");
    FAIL() << "duplicate breakpoint name must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bp-dup"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  }
}

TEST_F(SpecTest, PatternKeyParsesAndRoundTrips) {
  const auto spec = BreakpointSpec::parse(
      "bp-pat pattern=check:t1.put:t2.erase:t1 pause=40\n");
  const SpecOverride* entry = spec.find("bp-pat");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->pattern, nullptr);
  EXPECT_EQ(entry->pattern->to_string(), "check:t1.put:t2.erase:t1");
  EXPECT_EQ(entry->pattern->site_count(), 3u);
  EXPECT_EQ(entry->pattern->min_length(), 3u);
  EXPECT_EQ(entry->pause, 40ms);

  // Re-parsing the compiled canonical form yields the same pattern —
  // the spec-file round-trip the placement emitter relies on.
  const auto again = BreakpointSpec::parse(
      "bp-pat pattern=" + entry->pattern->to_string() + "\n");
  ASSERT_NE(again.find("bp-pat")->pattern, nullptr);
  EXPECT_EQ(again.find("bp-pat")->pattern->to_string(),
            entry->pattern->to_string());
}

TEST_F(SpecTest, MalformedPatternValueThrowsWithBreakpointName) {
  const char* bad[] = {
      "bp pattern=solo\n",        // accepts fewer than 2 events
      "bp pattern=a..b\n",        // empty term
      "bp pattern=(a.b\n",        // unbalanced paren
      "bp pattern=a:t1.b:\n",     // dangling variable binder
      "bp pattern=\n",            // empty value
  };
  for (const char* text : bad) {
    try {
      (void)BreakpointSpec::parse(text);
      FAIL() << "must throw: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("bp"), std::string::npos)
          << text << " -> " << e.what();
    }
  }
}

TEST_F(SpecTest, RejectsFlipCombinedWithPattern) {
  EXPECT_THROW(
      (void)BreakpointSpec::parse("bp pattern=a:t1.b:t2 flip\n"),
      std::invalid_argument);
  // Order of keys must not matter.
  EXPECT_THROW(
      (void)BreakpointSpec::parse("bp flip pattern=a:t1.b:t2\n"),
      std::invalid_argument);
}

TEST_F(SpecTest, RejectsProcessGroupScopeCombinedWithPattern) {
  EXPECT_THROW((void)BreakpointSpec::parse(
                   "bp pattern=a:t1.b:t2 scope=process-group\n"),
               std::invalid_argument);
  // Explicit local scope stays fine.
  const auto spec =
      BreakpointSpec::parse("bp pattern=a:t1.b:t2 scope=local\n");
  EXPECT_NE(spec.find("bp")->pattern, nullptr);
}

// ---------------------------------------------------------------------------
// Engine effects
// ---------------------------------------------------------------------------

TEST_F(SpecTest, OffDisablesOneBreakpointOnly) {
  BreakpointSpec::parse("spec-off off\n").install();
  int obj = 0;
  // Disabled name: no postponement, no stats.
  rt::Stopwatch clock;
  ConflictTrigger off("spec-off", &obj);
  EXPECT_FALSE(off.trigger_here(true, 500ms));
  EXPECT_LT(clock.elapsed_us(), 100'000);
  EXPECT_EQ(Engine::instance().stats("spec-off").calls, 0u);
  // Other names unaffected.
  ConflictTrigger other("spec-other", &obj);
  EXPECT_FALSE(other.trigger_here(true, 5ms));
  EXPECT_EQ(Engine::instance().stats("spec-other").calls, 1u);
}

TEST_F(SpecTest, PauseOverrideReplacesProgrammaticTimeout) {
  BreakpointSpec::parse("spec-pause pause=10\n").install();
  int obj = 0;
  ConflictTrigger trigger("spec-pause", &obj);
  rt::Stopwatch clock;
  // Programmatic 2 s is overridden down to 10 ms.
  EXPECT_FALSE(trigger.trigger_here(true, 2000ms));
  EXPECT_LT(clock.elapsed_us(), 500'000);
  EXPECT_GE(clock.elapsed_us(), 8'000);
}

TEST_F(SpecTest, FlipReversesTheResolutionOrder) {
  // Without flip: the is_first=true side records first.  With flip the
  // same program resolves the other way — Methodology II's "try both
  // orders" without recompiling.
  for (const bool flipped : {false, true}) {
    Engine::instance().reset();
    if (flipped) {
      BreakpointSpec::parse("spec-flip flip\n").install();
    } else {
      BreakpointSpec::clear_installed();
    }
    std::mutex order_mu;
    std::vector<int> order;
    int obj = 0;
    auto side = [&](bool first, int tag) {
      ConflictTrigger trigger("spec-flip", &obj);
      auto result = trigger.trigger_here_scoped(first, 2000ms);
      ASSERT_TRUE(result.hit);
      {
        std::scoped_lock lock(order_mu);
        order.push_back(tag);
      }
      result.guard.release();
    };
    std::thread a(side, true, 1);
    std::thread b(side, false, 2);
    a.join();
    b.join();
    if (flipped) {
      EXPECT_EQ(order, (std::vector<int>{2, 1}));
    } else {
      EXPECT_EQ(order, (std::vector<int>{1, 2}));
    }
  }
}

TEST_F(SpecTest, IgnoreFirstOverrideApplies) {
  BreakpointSpec::parse("spec-ignore ignore_first=3\n").install();
  int obj = 0;
  rt::Stopwatch clock;
  for (int i = 0; i < 3; ++i) {
    ConflictTrigger trigger("spec-ignore", &obj);  // no programmatic value
    EXPECT_FALSE(trigger.trigger_here(true, 500ms));
  }
  EXPECT_LT(clock.elapsed_us(), 300'000);  // all three ignored, no waits
  EXPECT_EQ(Engine::instance().stats("spec-ignore").ignored, 3u);
}

TEST_F(SpecTest, BoundOverrideSuppressesAfterHits) {
  BreakpointSpec::parse("spec-bound bound=0\n").install();
  int obj = 0;
  ConflictTrigger trigger("spec-bound", &obj);
  rt::Stopwatch clock;
  EXPECT_FALSE(trigger.trigger_here(true, 500ms));
  EXPECT_LT(clock.elapsed_us(), 100'000);  // bounded out immediately
  EXPECT_EQ(Engine::instance().stats("spec-bound").bounded, 1u);
}

TEST_F(SpecTest, ClearInstalledRemovesOverrides) {
  BreakpointSpec::parse("spec-clear off\n").install();
  BreakpointSpec::clear_installed();
  int obj = 0;
  ConflictTrigger trigger("spec-clear", &obj);
  EXPECT_FALSE(trigger.trigger_here(true, 5ms));
  EXPECT_EQ(Engine::instance().stats("spec-clear").calls, 1u);
}

}  // namespace
}  // namespace cbp
