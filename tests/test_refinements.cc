// Parameterized sweeps over the §6.3 local-predicate refinements
// (ignore_first, bound) and concurrency stress for the instrumentation
// hub (listener add/remove racing dispatch).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "fuzz/noise.h"
#include "instrument/shared_var.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// ignore_first sweep: exactly the first n arrivals skip postponement.
// ---------------------------------------------------------------------------

class IgnoreFirstSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override { Engine::instance().reset(); }
};

TEST_P(IgnoreFirstSweep, ExactlyFirstNArrivalsSkipPostponement) {
  const int n = GetParam();
  int obj = 0;
  constexpr int kCalls = 12;
  constexpr auto kTimeout = 8ms;
  rt::Stopwatch clock;
  for (int i = 0; i < kCalls; ++i) {
    ConflictTrigger trigger("ignore-sweep", &obj);
    trigger.ignore_first(static_cast<std::uint64_t>(n));
    EXPECT_FALSE(trigger.trigger_here(true, kTimeout));
  }
  const auto stats = Engine::instance().stats("ignore-sweep");
  const int expected_ignored = std::min(n, kCalls);
  EXPECT_EQ(stats.ignored, static_cast<std::uint64_t>(expected_ignored));
  EXPECT_EQ(stats.postponed,
            static_cast<std::uint64_t>(kCalls - expected_ignored));
  EXPECT_EQ(stats.timeouts, stats.postponed);
  // Runtime ~= postponed * timeout (ignored arrivals are ~free).
  const auto floor_us = (kCalls - expected_ignored) * 8'000;
  EXPECT_GE(clock.elapsed_us(), floor_us - 2'000);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IgnoreFirstSweep,
                         ::testing::Values(0, 1, 5, 12, 100));

TEST(IgnoreFirstOrdering, ArrivalInsideWindowDoesNotMatchPostponedPeer) {
  // Regression for the trigger-order bug: try_match used to run before
  // the ignore_first check, so an arrival inside the ignore window could
  // still complete a match against a postponed peer — with an exact
  // arrival counter the warm-up phase nevertheless recorded hits.  The
  // check now precedes matching: the in-window arrival neither matches
  // nor postpones, and the peer times out.
  Engine::instance().reset();
  Config::set_enabled(true);
  rt::TimeScale::set(1.0);
  int obj = 0;
  rt::Latch postponed(1);
  std::thread waiter([&] {
    ConflictTrigger t("ignore-order", &obj);  // no window: this postpones
    postponed.count_down();
    EXPECT_FALSE(t.trigger_here(true, 300ms));
  });
  postponed.wait();
  std::this_thread::sleep_for(20ms);
  ConflictTrigger t("ignore-order", &obj);
  t.ignore_first(2);  // this arrival is #2: exactly the window edge
  EXPECT_FALSE(t.trigger_here(false, 10ms));
  waiter.join();
  const auto stats = Engine::instance().stats("ignore-order");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.ignored, 1u);
  EXPECT_EQ(stats.postponed, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  Engine::instance().reset();
}

// ---------------------------------------------------------------------------
// bound sweep: the breakpoint stops participating after exactly n hits.
// ---------------------------------------------------------------------------

class BoundSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(std::chrono::microseconds(200));
    rt::TimeScale::set(1.0);
  }
  void TearDown() override { Engine::instance().reset(); }
};

TEST_P(BoundSweep, HitsStopAtTheBound) {
  const int bound = GetParam();
  constexpr int kIterations = 6;
  int obj = 0;
  std::atomic<int> hits_a{0}, hits_b{0};
  auto worker = [&](bool first, std::atomic<int>& hits) {
    for (int i = 0; i < kIterations; ++i) {
      ConflictTrigger trigger("bound-sweep", &obj);
      trigger.bound(static_cast<std::uint64_t>(bound));
      if (trigger.trigger_here(first, 500ms)) hits.fetch_add(1);
    }
  };
  std::thread a(worker, true, std::ref(hits_a));
  std::thread b(worker, false, std::ref(hits_b));
  a.join();
  b.join();
  const auto stats = Engine::instance().stats("bound-sweep");
  const auto expected_hits =
      static_cast<std::uint64_t>(std::min(bound, kIterations));
  EXPECT_EQ(stats.hits, expected_hits);
  EXPECT_EQ(static_cast<std::uint64_t>(hits_a.load()), expected_hits);
  EXPECT_EQ(static_cast<std::uint64_t>(hits_b.load()), expected_hits);
  if (bound < kIterations) {
    EXPECT_GT(stats.bounded, 0u);  // later calls were suppressed
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundSweep, ::testing::Values(0, 1, 3, 6, 50));

// ---------------------------------------------------------------------------
// Hub stress: listeners attach/detach while workers dispatch.
// ---------------------------------------------------------------------------

TEST(HubStress, RegistrationRacesDispatchSafely) {
  // Dispatch holds the hub lock shared; registration needs it exclusive.
  // Workers here pause between bursts (as real instrumented code does
  // between events) — a 100%-duty dispatch loop on a reader-preferring
  // rwlock could starve registration indefinitely, which is why listener
  // churn belongs at workload boundaries (documented in hub.h).
  instr::SharedVar<int> x;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (int i = 0; i < 16; ++i) {
          x.write(1);
          (void)x.read();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  // Churn listeners while dispatch is running.
  for (int round = 0; round < 60; ++round) {
    fuzz::NoiseOptions options;
    options.probability = 0.01;
    options.min_sleep = options.max_sleep = std::chrono::microseconds(1);
    fuzz::NoiseInjector injector(options);
    instr::ScopedListener registration(injector);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  EXPECT_FALSE(instr::Hub::instance().has_listeners());
}

// ---------------------------------------------------------------------------
// Bound/ignore interplay: an ignored arrival does not consume the bound.
// ---------------------------------------------------------------------------

TEST(RefinementInterplay, IgnoredArrivalsDoNotCountAsHits) {
  Engine::instance().reset();
  Config::set_enabled(true);
  int obj = 0;
  // Three solo calls, all ignored (no postponement, no hit).
  for (int i = 0; i < 3; ++i) {
    ConflictTrigger trigger("interplay", &obj);
    trigger.ignore_first(100).bound(1);
    EXPECT_FALSE(trigger.trigger_here(true, 500ms));
  }
  const auto stats = Engine::instance().stats("interplay");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.bounded, 0u);
  EXPECT_EQ(stats.ignored, 3u);
  Engine::instance().reset();
}

TEST(RefinementInterplay, ChainedSettersReturnSelf) {
  int obj = 0;
  ConflictTrigger trigger("chain", &obj);
  BTrigger& self = trigger.ignore_first(2).bound(5);
  EXPECT_EQ(&self, &trigger);
  EXPECT_EQ(trigger.ignore_first_count(), 2u);
  EXPECT_EQ(trigger.bound_count(), 5u);
}

}  // namespace
}  // namespace cbp
