// Tests for the closed-loop placement layer (src/sa/placement): detector
// dump parsing, telemetry JSON round-trip, the T / ignore_first
// derivations, evidence-tier fusion and ranking, and the emitted plan's
// round-trip through BreakpointSpec::parse.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/spec.h"
#include "detect/json_export.h"
#include "obs/telemetry_io.h"
#include "sa/analyzer.h"
#include "sa/placement/placement.h"
#include "sa/rank.h"

namespace cbp::sa::placement {
namespace {

// ---------------------------------------------------------------------------
// Detector dump parsing
// ---------------------------------------------------------------------------

TEST(DetectorJson, ParsesEverySection) {
  detect::DetectorDump dump;
  detect::RaceReport race;
  race.first.file = "src/apps/cache/cache.cc";
  race.first.line = 23;
  race.second.file = "cache.cc";
  race.second.line = 28;
  race.second_is_write = true;
  dump.races.push_back(race);

  detect::ContentionReport contention;
  contention.site_a.file = "a.cc";
  contention.site_a.line = 10;
  contention.site_b.file = "a.cc";
  contention.site_b.line = 20;
  contention.occurrences = 3;
  dump.contentions.push_back(contention);

  detect::DeadlockReport deadlock;
  detect::DeadlockReport::Leg leg1;
  leg1.site.file = "j.cc";
  leg1.site.line = 68;
  detect::DeadlockReport::Leg leg2;
  leg2.site.file = "j.cc";
  leg2.site.line = 81;
  deadlock.legs = {leg1, leg2};
  dump.deadlocks.push_back(deadlock);

  detect::AtomicityReport atomicity;
  atomicity.block_begin.file = "c.cc";
  atomicity.block_begin.line = 78;
  atomicity.block_end.file = "c.cc";
  atomicity.block_end.line = 81;
  atomicity.interleaver.file = "c.cc";
  atomicity.interleaver.line = 30;
  dump.atomicity.push_back(atomicity);

  std::vector<RecordedSitePair> pairs;
  std::string error;
  ASSERT_TRUE(parse_detector_json(detect::write_json(dump), pairs, error))
      << error;
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].kind, "race");
  EXPECT_EQ(pairs[0].file_a, "cache.cc");  // exported as basename
  EXPECT_EQ(pairs[0].line_a, 23u);
  EXPECT_EQ(pairs[0].line_b, 28u);
  EXPECT_EQ(pairs[1].kind, "contention");
  EXPECT_EQ(pairs[2].kind, "deadlock");
  EXPECT_EQ(pairs[2].file_a, "j.cc");
  EXPECT_EQ(pairs[2].line_a, 68u);
  EXPECT_EQ(pairs[2].line_b, 81u);
  EXPECT_EQ(pairs[3].kind, "atomicity");
  EXPECT_EQ(pairs[3].line_a, 78u);
  EXPECT_EQ(pairs[3].line_b, 81u);
}

TEST(DetectorJson, RejectsForeignAndMalformedInput) {
  std::vector<RecordedSitePair> pairs;
  std::string error;
  EXPECT_FALSE(parse_detector_json("{\"races\":[]}", pairs, error));
  EXPECT_NE(error.find("detector_dump"), std::string::npos);
  EXPECT_FALSE(parse_detector_json("{broken", pairs, error));
  EXPECT_FALSE(parse_detector_json(
      "{\"detector_dump\":1,\"races\":\"nope\"}", pairs, error));
}

TEST(DetectorJson, EmptyDumpParsesToNoPairs) {
  std::vector<RecordedSitePair> pairs;
  std::string error;
  ASSERT_TRUE(parse_detector_json(detect::write_json({}), pairs, error))
      << error;
  EXPECT_TRUE(pairs.empty());
}

// ---------------------------------------------------------------------------
// Telemetry JSON round-trip
// ---------------------------------------------------------------------------

obs::BreakpointTelemetry sample_row() {
  obs::BreakpointTelemetry row;
  row.name = "cache4j-atomicity1";
  row.inputs.n_steps = 5000;
  row.inputs.m_visits = 2;
  row.inputs.big_m_visits = 300;
  row.inputs.pause_steps = 40;
  row.predicted.btrigger = 0.42;
  row.observed = 0.9;
  row.observed_from_runs = true;
  row.runs = 10;
  row.runs_hit = 9;
  row.wait_p50_us = 1500;
  row.wait_p99_us = 9000;
  row.step_gap_ns = 250000;
  row.stats.arrivals = 3020;
  row.stats.participants = 18;
  row.stats.ignored = 2960;
  row.stats.postponed = 60;
  row.stats.timeouts = 42;
  row.stats.total_wait_us = 123456;
  return row;
}

TEST(TelemetryJson, RoundTrips) {
  const obs::BreakpointTelemetry row = sample_row();
  std::vector<obs::BreakpointTelemetry> back;
  std::string error;
  ASSERT_TRUE(
      obs::read_telemetry_json(obs::write_telemetry_json({row}), back, error))
      << error;
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].name, row.name);
  EXPECT_EQ(back[0].inputs.n_steps, row.inputs.n_steps);
  EXPECT_EQ(back[0].inputs.m_visits, row.inputs.m_visits);
  EXPECT_EQ(back[0].inputs.big_m_visits, row.inputs.big_m_visits);
  EXPECT_EQ(back[0].inputs.pause_steps, row.inputs.pause_steps);
  EXPECT_EQ(back[0].step_gap_ns, row.step_gap_ns);
  EXPECT_EQ(back[0].runs, row.runs);
  EXPECT_EQ(back[0].runs_hit, row.runs_hit);
  EXPECT_TRUE(back[0].observed_from_runs);
  EXPECT_DOUBLE_EQ(back[0].observed, row.observed);
  EXPECT_EQ(back[0].stats.arrivals, row.stats.arrivals);
  EXPECT_EQ(back[0].stats.participants, row.stats.participants);
  EXPECT_EQ(back[0].wait_p50_us, row.wait_p50_us);
  EXPECT_EQ(back[0].wait_p99_us, row.wait_p99_us);
}

TEST(TelemetryJson, RejectsForeignJson) {
  std::vector<obs::BreakpointTelemetry> rows;
  std::string error;
  EXPECT_FALSE(obs::read_telemetry_json("{\"rows\":[]}", rows, error));
  EXPECT_FALSE(obs::read_telemetry_json("[1,2,3]", rows, error));
  EXPECT_FALSE(obs::read_telemetry_json("nonsense", rows, error));
}

// ---------------------------------------------------------------------------
// Derivations
// ---------------------------------------------------------------------------

TEST(Derive, IgnoreFirstBacksOffTheWarmupCount) {
  obs::BreakpointTelemetry row;
  row.runs = 10;
  row.stats.arrivals = 3020;     // ~302 per run
  row.stats.participants = 20;   // ~2 per run
  // warmup = 300/run; slack = max(2, 300/64) = 4.
  EXPECT_EQ(derive_ignore_first(row), 296u);
}

TEST(Derive, SmallWarmupCountsAreNoise) {
  obs::BreakpointTelemetry row;
  row.runs = 10;
  row.stats.arrivals = 330;  // 31 warmup arrivals per run: below threshold
  row.stats.participants = 20;
  EXPECT_EQ(derive_ignore_first(row), 0u);
  row.stats.arrivals = 15;  // fewer arrivals than participants
  EXPECT_EQ(derive_ignore_first(row), 0u);
}

TEST(Derive, PauseFallsBackWithoutAStepGap) {
  obs::BreakpointTelemetry row;  // step_gap_ns == 0: trace too thin
  PlacementOptions options;
  options.default_pause_ms = 123;
  EXPECT_EQ(derive_pause_ms(row, options), 123u);
}

TEST(Derive, PauseGrowsTowardTheTargetAndClamps) {
  obs::BreakpointTelemetry row = sample_row();
  PlacementOptions options;
  const std::uint64_t derived = derive_pause_ms(row, options);
  EXPECT_GE(derived, options.min_pause_ms);
  EXPECT_LE(derived, options.max_pause_ms);

  // sample_row's recorded T is 40 steps * 250us = 10ms; the btrigger
  // bound saturates immediately (N >> mT), so the search keeps the
  // recorded T and the floor clamps it up.
  EXPECT_EQ(derived, options.min_pause_ms);

  // A recorded T above the cap clamps down, whatever the model says.
  row.inputs.pause_steps = 20000;
  row.step_gap_ns = 1000000;  // recorded T = 20 s
  EXPECT_EQ(derive_pause_ms(row, options), options.max_pause_ms);
}

// ---------------------------------------------------------------------------
// Fusion
// ---------------------------------------------------------------------------

/// Two unguarded conflicts in one unit; "v_" additionally has a
/// detector-confirmed site pair and a telemetry row under its spec name.
AnalysisResult two_conflict_analysis() {
  return analyze_sources("unit", {{"r.cc", R"cpp(
struct S {
  instr::SharedVar<int> v_;
  instr::SharedVar<int> w_;
};
void a(S& s) { s.v_.write(1); }
void b(S& s) { (void)s.v_.read(); }
void c(S& s) { s.w_.write(1); }
void d(S& s) { (void)s.w_.read(); }
)cpp"}});
}

const Candidate* subject_candidate(const AnalysisResult& analysis,
                                   const std::string& subject) {
  for (const Candidate& c : analysis.candidates) {
    if (c.subject == subject) return &c;
  }
  return nullptr;
}

TEST(Fuse, EvidenceTiersOutrankStaticScore) {
  const AnalysisResult analysis = two_conflict_analysis();
  const Candidate* v = subject_candidate(analysis, "v_");
  ASSERT_NE(v, nullptr);

  RecordedSitePair pair;
  pair.kind = "race";
  pair.file_a = "r.cc";
  pair.line_a = v->site_a.line;
  pair.file_b = "r.cc";
  pair.line_b = v->site_b.line;

  obs::BreakpointTelemetry row = sample_row();
  row.name = v->spec_name;

  const PlacementPlan plan = fuse(analysis, {pair}, {row});
  ASSERT_EQ(plan.entries.size(), 2u);
  // v_ carries telemetry AND a detector confirmation: tier 3, first.
  EXPECT_EQ(plan.entries[0].breakpoint, v->spec_name);
  EXPECT_EQ(plan.entries[0].tier(), 3);
  EXPECT_TRUE(plan.entries[0].dynamic_confirmed);
  EXPECT_TRUE(plan.entries[0].has_telemetry);
  ASSERT_TRUE(plan.entries[0].has_prediction);
  EXPECT_GT(plan.entries[0].predicted_center, 0.5);  // 9/10 recorded hits
  EXPECT_LT(plan.entries[0].predicted_low, plan.entries[0].predicted_high);
  EXPECT_EQ(plan.entries[0].ignore_first, 296u);
  EXPECT_EQ(plan.entries[1].tier(), 0);
  EXPECT_FALSE(plan.entries[1].has_prediction);
}

TEST(Fuse, ReversedSitePairStillConfirms) {
  const AnalysisResult analysis = two_conflict_analysis();
  const Candidate* v = subject_candidate(analysis, "v_");
  ASSERT_NE(v, nullptr);
  RecordedSitePair pair;
  pair.kind = "race";
  pair.file_a = "r.cc";
  pair.line_a = v->site_b.line;  // swapped orientation
  pair.file_b = "r.cc";
  pair.line_b = v->site_a.line;
  const PlacementPlan plan = fuse(analysis, {pair}, {});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].breakpoint, v->spec_name);
  EXPECT_EQ(plan.entries[0].tier(), 1);
}

TEST(Fuse, UnmatchedEvidenceLeavesStaticTier) {
  const AnalysisResult analysis = two_conflict_analysis();
  RecordedSitePair pair;
  pair.kind = "race";
  pair.file_a = "other.cc";
  pair.line_a = 1;
  pair.file_b = "other.cc";
  pair.line_b = 2;
  obs::BreakpointTelemetry row = sample_row();
  row.name = "not-a-candidate";
  const PlacementPlan plan = fuse(analysis, {pair}, {row});
  ASSERT_EQ(plan.entries.size(), 2u);
  for (const PlacementEntry& entry : plan.entries) {
    EXPECT_EQ(entry.tier(), 0);
    EXPECT_EQ(entry.pause_ms, PlacementOptions{}.default_pause_ms);
  }
}

TEST(Fuse, LockOrderCycleBecomesPatternEntry) {
  AnalysisResult analysis;
  LockCycle cycle;
  cycle.unit = "unit";
  cycle.locks = {"mu_a", "mu_b"};
  cycle.displays = {"S::mu_a", "S::mu_b"};
  cycle.sites = {{"r.cc", 10}, {"r.cc", 20}};
  cycle.score = 7;
  analysis.cycles.push_back(cycle);

  const PlacementPlan plan = fuse(analysis, {}, {});
  ASSERT_EQ(plan.entries.size(), 1u);
  const PlacementEntry& entry = plan.entries[0];
  EXPECT_EQ(entry.breakpoint, "sa-pattern-mu_a-mu_b");
  EXPECT_EQ(entry.kind, Candidate::Kind::kDeadlock);
  EXPECT_EQ(entry.subject, "S::mu_a");
  EXPECT_EQ(entry.pattern, "acq(mu_a):t1.acq(mu_b):t2.rel(mu_b):t2");
  EXPECT_EQ(entry.static_score, 7);
  EXPECT_EQ(entry.pause_ms, PlacementOptions{}.default_pause_ms);

  // The emitted spec must carry the pattern= key and compile.
  const std::string spec_text = render_plan_spec(plan);
  EXPECT_NE(spec_text.find("pattern=acq(mu_a):t1"), std::string::npos)
      << spec_text;
  const BreakpointSpec spec = BreakpointSpec::parse(spec_text);
  const SpecOverride* parsed = spec.find("sa-pattern-mu_a-mu_b");
  ASSERT_NE(parsed, nullptr);
  ASSERT_NE(parsed->pattern, nullptr);
  EXPECT_EQ(parsed->pattern->site_count(), 3u);
}

// ---------------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------------

TEST(Emit, PlanSpecRoundTripsThroughBreakpointSpecParse) {
  const AnalysisResult analysis = two_conflict_analysis();
  const Candidate* v = subject_candidate(analysis, "v_");
  ASSERT_NE(v, nullptr);
  obs::BreakpointTelemetry row = sample_row();
  row.name = v->spec_name;
  const PlacementPlan plan = fuse(analysis, {}, {row});
  const std::string spec_text = render_plan_spec(plan);
  EXPECT_NE(spec_text.find("# placement:"), std::string::npos);

  const BreakpointSpec spec = BreakpointSpec::parse(spec_text);
  EXPECT_EQ(spec.size(), plan.entries.size());
  const SpecOverride* entry = spec.find(v->spec_name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->from, SpecOrigin::kStatic);
  EXPECT_TRUE(entry->confirmed);  // telemetry-backed
  ASSERT_TRUE(entry->pause.has_value());
  EXPECT_EQ(entry->pause->count(),
            static_cast<long>(plan.entries[0].pause_ms));
  EXPECT_EQ(entry->ignore_first, 296u);
  ASSERT_TRUE(entry->predicted.has_value());
  EXPECT_NEAR(*entry->predicted, plan.entries[0].predicted_center, 1e-4);
}

TEST(Emit, HumanPlanNamesTheEvidence) {
  const AnalysisResult analysis = two_conflict_analysis();
  const Candidate* v = subject_candidate(analysis, "v_");
  ASSERT_NE(v, nullptr);
  obs::BreakpointTelemetry row = sample_row();
  row.name = v->spec_name;
  const PlacementPlan plan = fuse(analysis, {}, {row});
  const std::string text = render_plan(plan);
  EXPECT_NE(text.find("placement plan: 2 breakpoints"), std::string::npos)
      << text;
  EXPECT_NE(text.find("telemetry-recorded"), std::string::npos);
  EXPECT_NE(text.find("ignore_first=296"), std::string::npos);
  EXPECT_NE(text.find("95% CI"), std::string::npos);
}

}  // namespace
}  // namespace cbp::sa::placement
