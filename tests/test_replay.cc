// Tests for the record/replay-lite module: trace round trips, recording,
// order enforcement, bug reproduction from a recorded trace, and
// divergence fail-open.

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "replay/recorder.h"
#include "replay/replayer.h"
#include "runtime/latch.h"

namespace cbp::replay {
namespace {

using namespace std::chrono_literals;
using instr::ScopedListener;
using instr::SharedVar;
using instr::TrackedLock;
using instr::TrackedMutex;

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

TEST(Trace, SerializeRoundTrip) {
  Trace trace;
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kRead, 3});
  trace.ops.push_back(TraceOp{1, TraceOp::Kind::kWrite, 0});
  trace.ops.push_back(TraceOp{2, TraceOp::Kind::kLockAcquire, 1});
  const Trace copy = Trace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy.ops[0], trace.ops[0]);
  EXPECT_EQ(copy.ops[1], trace.ops[1]);
  EXPECT_EQ(copy.ops[2], trace.ops[2]);
}

TEST(Trace, EmptyRoundTrip) {
  EXPECT_TRUE(Trace::deserialize(Trace{}.serialize()).empty());
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(Recorder, CapturesAccessesAndAcquiresInOrder) {
  Recorder recorder;
  ScopedListener registration(recorder);
  recorder.bind_this_thread(0);
  SharedVar<int> x;
  TrackedMutex mu;
  x.write(1);
  {
    TrackedLock lock(mu);
    (void)x.read();
  }
  const Trace trace = recorder.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.ops[0].kind, TraceOp::Kind::kWrite);
  EXPECT_EQ(trace.ops[1].kind, TraceOp::Kind::kLockAcquire);
  EXPECT_EQ(trace.ops[2].kind, TraceOp::Kind::kRead);
  EXPECT_EQ(trace.ops[0].role, 0);
  EXPECT_EQ(trace.ops[0].object, trace.ops[2].object);  // same var
}

TEST(Recorder, NormalizesDistinctObjects) {
  Recorder recorder;
  ScopedListener registration(recorder);
  SharedVar<int> x, y;
  x.write(1);
  y.write(2);
  const Trace trace = recorder.trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.ops[0].object, 0);
  EXPECT_EQ(trace.ops[1].object, 1);
}

TEST(Recorder, DistinctThreadsGetDistinctRoles) {
  Recorder recorder;
  ScopedListener registration(recorder);
  SharedVar<int> x;
  std::thread a([&] {
    recorder.bind_this_thread(0);
    x.write(1);
  });
  a.join();
  std::thread b([&] {
    recorder.bind_this_thread(1);
    x.write(2);
  });
  b.join();
  const Trace trace = recorder.trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.ops[0].role, 0);
  EXPECT_EQ(trace.ops[1].role, 1);
}

// ---------------------------------------------------------------------------
// Replayer: order enforcement
// ---------------------------------------------------------------------------

/// A two-thread toy.  Each logical action is a racy_update on x whose
/// body appends the thread's tag: the append is bracketed between the
/// instrumented READ (gated before) and WRITE (gated after), so under
/// replay the observed tag order is exactly the enforced trace order.
std::vector<int> run_tagged(const Trace* replay_trace, int per_thread,
                            bool serialize_record_run) {
  SharedVar<int> x;
  std::mutex order_mu;
  std::vector<int> order;
  Replayer replayer(replay_trace ? *replay_trace : Trace{});
  std::unique_ptr<ScopedListener> registration;
  if (replay_trace != nullptr) {
    registration = std::make_unique<ScopedListener>(replayer);
  }
  rt::StartGate gate;
  auto worker = [&](int tag) {
    if (replay_trace != nullptr) replayer.bind_this_thread(tag);
    gate.wait();
    for (int i = 0; i < per_thread; ++i) {
      x.racy_update([&](int) {
        std::scoped_lock lock(order_mu);
        order.push_back(tag);
        return tag;
      });
    }
  };
  if (serialize_record_run) {
    std::thread a(worker, 0);
    gate.open();
    a.join();
    std::thread b(worker, 1);
    b.join();
  } else {
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    gate.open();
    a.join();
    b.join();
  }
  return order;
}

/// The trace of one tag action: gated read, then gated write.
void push_action(Trace& trace, int role) {
  trace.ops.push_back(TraceOp{role, TraceOp::Kind::kRead, 0});
  trace.ops.push_back(TraceOp{role, TraceOp::Kind::kWrite, 0});
}

TEST(Replayer, EnforcesARecordedAlternation) {
  // Hand-craft a strict 0,1,0,1,... alternation and replay it.
  constexpr int kPerThread = 6;
  Trace trace;
  for (int i = 0; i < kPerThread; ++i) {
    push_action(trace, 0);
    push_action(trace, 1);
  }
  const auto order = run_tagged(&trace, kPerThread, false);
  std::vector<int> expected;
  for (int i = 0; i < kPerThread; ++i) {
    expected.push_back(0);
    expected.push_back(1);
  }
  EXPECT_EQ(order, expected);
}

TEST(Replayer, ReplayOfARecordingReproducesItsOrder) {
  // Record a fully serialized run (all of role 0, then all of role 1),
  // then replay it with CONCURRENT threads: the enforced order must be
  // the recorded serial one, twice in a row.
  constexpr int kPerThread = 5;
  Recorder recorder;
  Trace trace;
  {
    ScopedListener registration(recorder);
    (void)run_tagged(nullptr, kPerThread, /*serialize_record_run=*/true);
    trace = recorder.trace();
  }
  ASSERT_EQ(trace.size(), 4u * kPerThread);  // R+W per action

  std::vector<int> expected;
  for (int i = 0; i < kPerThread; ++i) expected.push_back(0);
  for (int i = 0; i < kPerThread; ++i) expected.push_back(1);
  for (int round = 0; round < 2; ++round) {
    const auto order = run_tagged(&trace, kPerThread, false);
    EXPECT_EQ(order, expected) << "round " << round;
  }
}

TEST(Replayer, EnforcedCountMatchesTrace) {
  Trace trace;
  for (int i = 0; i < 4; ++i) {
    trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
    trace.ops.push_back(TraceOp{1, TraceOp::Kind::kWrite, 0});
  }
  Replayer replayer(trace);
  {
    ScopedListener registration(replayer);
    SharedVar<int> x;
    rt::StartGate gate;
    auto worker = [&](int tag) {
      replayer.bind_this_thread(tag);
      gate.wait();
      for (int i = 0; i < 4; ++i) x.write(tag);
    };
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    gate.open();
    a.join();
    b.join();
  }
  EXPECT_FALSE(replayer.diverged());
  EXPECT_EQ(replayer.enforced(), 8u);
}

// ---------------------------------------------------------------------------
// Replayer: bug reproduction (the §7 record/replay story)
// ---------------------------------------------------------------------------

TEST(Replayer, ReplaysARecordedLostUpdate) {
  // Phase 1: force the lost-update interleaving once with a breakpoint,
  // recording the access order.
  Engine::instance().reset();
  Config::set_enabled(true);
  Config::set_order_delay(1ms);

  auto racy_deposit = [](SharedVar<int>& balance, bool armed) {
    const int value = balance.read();
    if (armed) {
      ConflictTrigger trigger("replay-account", balance.address());
      trigger.trigger_here(true, 2000ms);
    }
    balance.write(value + 1);
  };

  Recorder recorder;
  Trace buggy_trace;
  {
    ScopedListener registration(recorder);
    SharedVar<int> balance{0};
    rt::StartGate gate;
    auto worker = [&](int role) {
      recorder.bind_this_thread(role);
      gate.wait();
      racy_deposit(balance, /*armed=*/true);
    };
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    gate.open();
    a.join();
    b.join();
    ASSERT_EQ(balance.peek(), 1) << "breakpoint should force the loss";
    buggy_trace = recorder.trace();
  }

  // Phase 2: replay the trace with breakpoints OFF — the lost update
  // reproduces from the schedule alone, every time.
  Config::set_enabled(false);
  for (int round = 0; round < 3; ++round) {
    Replayer replayer(buggy_trace);
    ScopedListener registration(replayer);
    SharedVar<int> balance{0};
    rt::StartGate gate;
    auto worker = [&](int role) {
      replayer.bind_this_thread(role);
      gate.wait();
      racy_deposit(balance, /*armed=*/false);
    };
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    gate.open();
    a.join();
    b.join();
    EXPECT_FALSE(replayer.diverged()) << "round " << round;
    EXPECT_EQ(balance.peek(), 1) << "round " << round;
  }
  Config::set_enabled(true);
  Engine::instance().reset();
}

// ---------------------------------------------------------------------------
// Step delay: enforced gate order becomes actual execution order
// ---------------------------------------------------------------------------

TEST(Replayer, StepDelayMakesSingleEventOrderExact) {
  // Without bracketing (one gated event per action), a gate passage can
  // race the peer's actual access; the step delay closes that window.
  // Alternating single writes, 10 rounds, must yield values in exact
  // alternation every time.
  constexpr int kPerThread = 5;
  Trace trace;
  for (int i = 0; i < kPerThread; ++i) {
    trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
    trace.ops.push_back(TraceOp{1, TraceOp::Kind::kWrite, 0});
  }
  for (int round = 0; round < 3; ++round) {
    SharedVar<int> x{-1};
    Replayer replayer(trace);
    replayer.set_step_delay(std::chrono::microseconds(300));
    std::vector<int> observed;
    std::mutex observed_mu;
    {
      ScopedListener registration(replayer);
      rt::StartGate gate;
      auto worker = [&](int tag) {
        replayer.bind_this_thread(tag);
        gate.wait();
        for (int i = 0; i < kPerThread; ++i) {
          x.write(tag);
          // Not instrumented: snapshot after our own write.
        }
      };
      std::thread a(worker, 0);
      std::thread b(worker, 1);
      gate.open();
      a.join();
      b.join();
    }
    EXPECT_FALSE(replayer.diverged()) << "round " << round;
    // The last gated write in the trace is role 1's.
    EXPECT_EQ(x.peek(), 1) << "round " << round;
  }
}

TEST(Replayer, StepDelayDefaultsToZero) {
  Trace trace;
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
  Replayer replayer(trace);
  ScopedListener registration(replayer);
  replayer.bind_this_thread(0);
  SharedVar<int> x;
  rt::Stopwatch clock;
  x.write(1);
  EXPECT_LT(clock.elapsed_us(), 50'000);  // no artificial spacing
}

// ---------------------------------------------------------------------------
// Divergence
// ---------------------------------------------------------------------------

TEST(Replayer, DivergentRunFailsOpenAndCompletes) {
  // The trace expects writes to one object; the program touches two.
  Trace trace;
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
  Replayer replayer(trace, /*divergence_timeout=*/50ms);
  {
    ScopedListener registration(replayer);
    replayer.bind_this_thread(0);
    SharedVar<int> x, y;
    x.write(1);
    y.write(2);  // not in the trace: diverges
    x.write(3);  // completes natively after fail-open
  }
  EXPECT_TRUE(replayer.diverged());
}

TEST(Replayer, ExhaustedTraceStopsGating) {
  Trace trace;
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
  Replayer replayer(trace);
  ScopedListener registration(replayer);
  replayer.bind_this_thread(0);
  SharedVar<int> x;
  x.write(1);
  rt::Stopwatch clock;
  x.write(2);  // beyond the trace: must not block
  x.write(3);
  EXPECT_LT(clock.elapsed_us(), 100'000);
  EXPECT_FALSE(replayer.diverged());
}

}  // namespace
}  // namespace cbp::replay
