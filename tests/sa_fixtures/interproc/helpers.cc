// Interprocedural-analysis fixture (not compiled; parsed by cbp-sa).
//
// Exercises the call-graph lockset propagation along three axes:
//
//   * helper deadlock — take_b()/take_a() each acquire one lock, so no
//     intraprocedural edge exists; every caller of take_b holds A and
//     every caller of take_a holds B, so propagation reveals the
//     crossed A/B order (and the cycle);
//   * all-callers-hold suppression — guarded_update() writes a field
//     with no local lock, but both callers hold A, so the conflict with
//     reader() disappears under --interproc;
//   * mixed callers — racy_update_fn() has one locked and one unlocked
//     caller; the entry-lockset intersection stays empty and the
//     conflict survives.
//
// check_then_act() is the static atomicity shape: read and write of one
// field under two different acquisitions of the same lock.
//
// No includes: the extractor pattern-matches the instrumentation
// vocabulary from tokens alone and never compiles this file.

TrackedMutex mu_a{"A"};
TrackedMutex mu_b{"B"};
SharedVar<int> shared_counter;
SharedVar<int> guarded_field;
SharedVar<int> racy_field;

void take_b() {
  TrackedLock lb(mu_b);
  shared_counter.write(1);
}

void take_a() {
  TrackedLock la(mu_a);
  shared_counter.read();
}

void cross_ab() {
  TrackedLock la(mu_a);
  take_b();
}

void cross_ab_again() {
  TrackedLock la(mu_a);
  take_b();
}

void cross_ba() {
  TrackedLock lb(mu_b);
  take_a();
}

void guarded_update() { guarded_field.write(2); }

void racy_update_fn() { racy_field.write(3); }

void caller_one() {
  TrackedLock l(mu_a);
  guarded_update();
  racy_update_fn();
}

void caller_two() {
  TrackedLock l(mu_a);
  guarded_update();
}

void caller_three() { racy_update_fn(); }

void reader() {
  TrackedLock l(mu_a);
  guarded_field.read();
  racy_field.read();
}

int check_then_act() {
  mu_b.lock();
  const int seen = shared_counter.read();
  mu_b.unlock();
  mu_b.lock();
  shared_counter.write(seen + 1);
  mu_b.unlock();
  return seen;
}
