// Tests for the schedule-fuzzing substrate: ConTest-style noise,
// PCT-lite priorities, and the CalFuzzer-style active tester
// (Methodology I phases 1 and 2).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "detect/fasttrack.h"
#include "fuzz/active.h"
#include "fuzz/noise.h"
#include "fuzz/pct.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp::fuzz {
namespace {

using namespace std::chrono_literals;
using instr::ScopedListener;
using instr::SharedVar;
using instr::SourceLoc;
using instr::TrackedLock;
using instr::TrackedMutex;

// ---------------------------------------------------------------------------
// NoiseInjector
// ---------------------------------------------------------------------------

TEST(Noise, InjectsOnEveryAccessAtProbabilityOne) {
  NoiseOptions options;
  options.probability = 1.0;
  options.min_sleep = options.max_sleep = std::chrono::microseconds(1);
  NoiseInjector injector(options);
  ScopedListener registration(injector);
  SharedVar<int> x;
  for (int i = 0; i < 10; ++i) x.write(i);
  EXPECT_EQ(injector.injected(), 10u);
}

TEST(Noise, InjectsNothingAtProbabilityZero) {
  NoiseOptions options;
  options.probability = 0.0;
  NoiseInjector injector(options);
  ScopedListener registration(injector);
  SharedVar<int> x;
  for (int i = 0; i < 100; ++i) x.write(i);
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(Noise, RespectsAccessFilter) {
  NoiseOptions options;
  options.probability = 1.0;
  options.at_accesses = false;
  options.min_sleep = options.max_sleep = std::chrono::microseconds(1);
  NoiseInjector injector(options);
  ScopedListener registration(injector);
  SharedVar<int> x;
  x.write(1);
  EXPECT_EQ(injector.injected(), 0u);
  TrackedMutex mu;
  {
    TrackedLock lock(mu);  // lock request still perturbed
  }
  EXPECT_EQ(injector.injected(), 1u);
}

TEST(Noise, RespectsLockRequestFilter) {
  NoiseOptions options;
  options.probability = 1.0;
  options.at_lock_requests = false;
  options.min_sleep = options.max_sleep = std::chrono::microseconds(1);
  NoiseInjector injector(options);
  ScopedListener registration(injector);
  TrackedMutex mu;
  {
    TrackedLock lock(mu);
  }
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(Noise, InjectionRateRoughlyMatchesProbability) {
  NoiseOptions options;
  options.probability = 0.25;
  options.min_sleep = options.max_sleep = std::chrono::microseconds(1);
  NoiseInjector injector(options);
  ScopedListener registration(injector);
  SharedVar<int> x;
  constexpr int kEvents = 4000;
  for (int i = 0; i < kEvents; ++i) x.write(i);
  const double rate = static_cast<double>(injector.injected()) / kEvents;
  EXPECT_NEAR(rate, 0.25, 0.05);
}

// ---------------------------------------------------------------------------
// PctLiteScheduler
// ---------------------------------------------------------------------------

TEST(PctLite, CountsEvents) {
  PctOptions options;
  options.delay_unit = std::chrono::microseconds(0);
  PctLiteScheduler scheduler(options);
  ScopedListener registration(scheduler);
  SharedVar<int> x;
  for (int i = 0; i < 25; ++i) x.write(i);
  EXPECT_EQ(scheduler.events_seen(), 25u);
}

TEST(PctLite, MultiThreadedRunCompletes) {
  PctOptions options;
  options.delay_unit = std::chrono::microseconds(10);
  options.depth = 3;
  options.expected_events = 200;
  PctLiteScheduler scheduler(options);
  ScopedListener registration(scheduler);
  SharedVar<int> x;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) x.racy_update([](int v) { return v + 1; });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(scheduler.events_seen(), 300u);  // 3 threads * 50 * (read+write)
}

// ---------------------------------------------------------------------------
// Methodology I phase 1: candidate discovery
// ---------------------------------------------------------------------------

TEST(ActivePhase1, FindsRaceCandidateSites) {
  SharedVar<int> x;
  const auto candidates = find_race_candidates([&] {
    std::thread a([&] { x.write(1); });
    a.join();
    std::thread b([&] { x.write(2); });
    b.join();
  });
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_NE(candidates[0].site_a.file.find("test_fuzz.cc"),
            std::string_view::npos);
}

TEST(ActivePhase1, CleanWorkloadYieldsNoCandidates) {
  SharedVar<int> x;
  TrackedMutex mu;
  const auto candidates = find_race_candidates([&] {
    std::thread a([&] {
      TrackedLock lock(mu);
      x.write(1);
    });
    a.join();
    std::thread b([&] {
      TrackedLock lock(mu);
      x.write(2);
    });
    b.join();
  });
  EXPECT_TRUE(candidates.empty());
}

TEST(ActivePhase1, FindsDeadlockCandidatePair) {
  TrackedMutex lock_a, lock_b;
  const auto candidates = find_deadlock_candidates([&] {
    std::thread a([&] {
      TrackedLock outer(lock_a);
      TrackedLock inner(lock_b);
    });
    a.join();
    std::thread b([&] {
      TrackedLock outer(lock_b);
      TrackedLock inner(lock_a);
    });
    b.join();
  });
  ASSERT_EQ(candidates.size(), 1u);
  const bool pair_matches =
      (candidates[0].lock_a == &lock_a && candidates[0].lock_b == &lock_b) ||
      (candidates[0].lock_a == &lock_b && candidates[0].lock_b == &lock_a);
  EXPECT_TRUE(pair_matches);
}

// ---------------------------------------------------------------------------
// Methodology I phase 2: confirmation
// ---------------------------------------------------------------------------

TEST(RaceConfirmer, ConfirmsOverlappingRace) {
  SharedVar<int> x;
  SourceLoc site_a, site_b;

  // Discover the exact sites by recording one sequential run.
  {
    detect::FastTrackDetector detector;
    ScopedListener registration(detector);
    std::thread a([&] {
      site_a = SourceLoc::current();
      x.write(1, site_a);
    });
    a.join();
    std::thread b([&] {
      site_b = SourceLoc::current();
      x.write(2, site_b);
    });
    b.join();
    ASSERT_EQ(detector.races().size(), 1u);
  }

  // Confirm: two concurrent threads reach the sites at skewed times; the
  // confirmer's pause bridges the skew.
  RaceConfirmer confirmer(RaceCandidate{site_a, site_b},
                          std::chrono::microseconds(500'000));
  ScopedListener registration(confirmer);
  std::thread a([&] { x.write(1, site_a); });
  std::thread b([&] {
    std::this_thread::sleep_for(30ms);  // would miss without the pause
    x.write(2, site_b);
  });
  a.join();
  b.join();
  const auto confirmed = confirmer.confirmed();
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].kind, ConfirmedBug::Kind::kRace);
  EXPECT_EQ(confirmed[0].object, x.address());
  EXPECT_NE(confirmed[0].tid_a, confirmed[0].tid_b);
}

TEST(RaceConfirmer, DoesNotConfirmDistinctAddresses) {
  SharedVar<int> x, y;
  const SourceLoc site("site.cc", 1);
  RaceConfirmer confirmer(RaceCandidate{site, site},
                          std::chrono::microseconds(50'000));
  ScopedListener registration(confirmer);
  std::thread a([&] { x.write(1, site); });
  std::thread b([&] { y.write(2, site); });
  a.join();
  b.join();
  EXPECT_TRUE(confirmer.confirmed().empty());
}

TEST(RaceConfirmer, IgnoresUnrelatedSites) {
  SharedVar<int> x;
  RaceConfirmer confirmer(
      RaceCandidate{SourceLoc("a.cc", 1), SourceLoc("a.cc", 2)},
      std::chrono::microseconds(50'000));
  ScopedListener registration(confirmer);
  rt::Stopwatch sw;
  x.write(1);  // site does not match: must not pause
  EXPECT_LT(sw.elapsed_us(), 40'000);
  EXPECT_TRUE(confirmer.confirmed().empty());
}

TEST(DeadlockConfirmer, ConfirmsCrossingAndEscapesBothThreads) {
  TrackedMutex lock_a, lock_b;
  DeadlockConfirmer confirmer(DeadlockCandidate{&lock_a, &lock_b},
                              std::chrono::microseconds(2'000'000));
  ScopedListener registration(confirmer);
  std::atomic<int> escaped{0};
  std::thread a([&] {
    try {
      TrackedLock outer(lock_a);
      TrackedLock inner(lock_b);
    } catch (const DeadlockConfirmedError&) {
      escaped.fetch_add(1);
    }
  });
  std::thread b([&] {
    try {
      TrackedLock outer(lock_b);
      TrackedLock inner(lock_a);
    } catch (const DeadlockConfirmedError&) {
      escaped.fetch_add(1);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(escaped.load(), 2);
  ASSERT_EQ(confirmer.confirmed().size(), 1u);
  EXPECT_TRUE(confirmer.any_confirmed());
  EXPECT_EQ(confirmer.confirmed()[0].kind, ConfirmedBug::Kind::kDeadlock);
}

TEST(DeadlockConfirmer, ConsistentOrderIsNotConfirmed) {
  TrackedMutex lock_a, lock_b;
  DeadlockConfirmer confirmer(DeadlockCandidate{&lock_a, &lock_b},
                              std::chrono::microseconds(50'000));
  ScopedListener registration(confirmer);
  auto body = [&] {
    TrackedLock outer(lock_a);
    TrackedLock inner(lock_b);
  };
  std::thread a(body), b(body);
  a.join();
  b.join();
  EXPECT_TRUE(confirmer.confirmed().empty());
  EXPECT_FALSE(confirmer.any_confirmed());
}

// ---------------------------------------------------------------------------
// AtomicityConfirmer
// ---------------------------------------------------------------------------

TEST(AtomicityConfirmer, ConfirmsInterleavedBlockAndMakesItLive) {
  SharedVar<int> x(0);
  const SourceLoc begin_site("block.cc", 10);
  const SourceLoc end_site("block.cc", 20);
  const SourceLoc interleaver_site("other.cc", 30);

  AtomicityConfirmer confirmer(
      AtomicityCandidate{begin_site, end_site, interleaver_site},
      std::chrono::microseconds(500'000));
  ScopedListener registration(confirmer);

  std::thread owner([&] {
    // The intended-atomic read-modify-write block.
    const int value = x.read(begin_site);
    x.write(value + 1, end_site);
  });
  std::thread interleaver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    x.write(100, interleaver_site);
  });
  owner.join();
  interleaver.join();

  const auto confirmed = confirmer.confirmed();
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].kind, fuzz::ConfirmedBug::Kind::kAtomicity);
  EXPECT_EQ(confirmed[0].object, x.address());
  // The violation is live: the block's write clobbered the interleaver's.
  EXPECT_EQ(x.peek(), 1);
}

TEST(AtomicityConfirmer, NoConfirmationWithoutInterleaver) {
  SharedVar<int> x(0);
  const SourceLoc begin_site("block.cc", 10);
  const SourceLoc end_site("block.cc", 20);
  const SourceLoc interleaver_site("other.cc", 30);
  AtomicityConfirmer confirmer(
      AtomicityCandidate{begin_site, end_site, interleaver_site},
      std::chrono::microseconds(20'000));
  ScopedListener registration(confirmer);
  const int value = x.read(begin_site);
  x.write(value + 1, end_site);  // pauses briefly, then proceeds
  EXPECT_TRUE(confirmer.confirmed().empty());
  EXPECT_EQ(x.peek(), 1);
}

TEST(AtomicityConfirmer, DistinctAddressesDoNotMatch) {
  SharedVar<int> x(0), y(0);
  const SourceLoc begin_site("block.cc", 10);
  const SourceLoc end_site("block.cc", 20);
  const SourceLoc interleaver_site("other.cc", 30);
  AtomicityConfirmer confirmer(
      AtomicityCandidate{begin_site, end_site, interleaver_site},
      std::chrono::microseconds(30'000));
  ScopedListener registration(confirmer);
  std::thread owner([&] {
    const int value = x.read(begin_site);
    x.write(value + 1, end_site);
  });
  std::thread interleaver([&] { y.write(100, interleaver_site); });
  owner.join();
  interleaver.join();
  EXPECT_TRUE(confirmer.confirmed().empty());
}

TEST(AtomicityConfirmer, SuggestionUsesAtomicityTrigger) {
  ConfirmedBug bug;
  bug.kind = ConfirmedBug::Kind::kAtomicity;
  bug.site_a = SourceLoc("StringBuffer.java", 239);
  bug.site_b = SourceLoc("StringBuffer.java", 449);
  bug.site_c = SourceLoc("StringBuffer.java", 444);
  EXPECT_NE(bug.report().find("Atomicity violation"), std::string::npos);
  const std::string suggestion = bug.breakpoint_suggestion("trigger3");
  EXPECT_NE(suggestion.find("AtomicityTrigger"), std::string::npos);
  EXPECT_NE(suggestion.find("StringBuffer.java:line 239"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// One-call active testing session
// ---------------------------------------------------------------------------

TEST(ActiveSession, FindsAndConfirmsRaceDeadlockAndAtomicity) {
  // A workload containing one of each bug class, all re-runnable.
  SharedVar<int> racy;
  SharedVar<int> blocky;
  TrackedMutex lock_a, lock_b;
  auto workload = [&] {
    // Race: two unsynchronized writers.
    std::thread w1([&] { racy.write(1); });
    std::thread w2([&] { racy.write(2); });
    w1.join();
    w2.join();
    // Deadlock: crossed acquisition order (threads tolerate the
    // confirmer's escape).
    std::thread d1([&] {
      try {
        TrackedLock outer(lock_a);
        TrackedLock inner(lock_b);
      } catch (const DeadlockConfirmedError&) {
      }
    });
    std::thread d2([&] {
      try {
        TrackedLock outer(lock_b);
        TrackedLock inner(lock_a);
      } catch (const DeadlockConfirmedError&) {
      }
    });
    d1.join();
    d2.join();
    // Atomicity: a read-modify-write block vs a plain write.
    std::thread a1([&] {
      const int value = blocky.read(SourceLoc("session-blk.cc", 1));
      blocky.write(value + 1, SourceLoc("session-blk.cc", 2));
    });
    std::thread a2([&] { blocky.write(9, SourceLoc("session-oth.cc", 3)); });
    a1.join();
    a2.join();
  };

  SessionOptions options;
  options.pause = std::chrono::microseconds(300'000);
  const SessionResult session = run_active_testing(workload, options);

  EXPECT_GT(session.candidates_tried, 0);
  bool race_found = false, deadlock_found = false, atomicity_found = false;
  for (const ConfirmedBug& bug : session.bugs) {
    race_found |= bug.kind == ConfirmedBug::Kind::kRace;
    deadlock_found |= bug.kind == ConfirmedBug::Kind::kDeadlock;
    atomicity_found |= bug.kind == ConfirmedBug::Kind::kAtomicity;
  }
  EXPECT_TRUE(race_found);
  EXPECT_TRUE(deadlock_found);
  EXPECT_TRUE(atomicity_found);
}

TEST(ActiveSession, CleanWorkloadConfirmsNothing) {
  SharedVar<int> x;
  TrackedMutex mu;
  auto workload = [&] {
    std::thread a([&] {
      TrackedLock lock(mu);
      x.write(1);
    });
    a.join();
    std::thread b([&] {
      TrackedLock lock(mu);
      x.write(2);
    });
    b.join();
  };
  const SessionResult session = run_active_testing(workload);
  EXPECT_TRUE(session.bugs.empty());
}

TEST(ActiveSession, ClassesCanBeDisabled) {
  SharedVar<int> racy;
  auto workload = [&] {
    std::thread w1([&] { racy.write(1); });
    std::thread w2([&] { racy.write(2); });
    w1.join();
    w2.join();
  };
  SessionOptions options;
  options.races = false;
  options.atomicity = false;
  options.deadlocks = false;
  const SessionResult session = run_active_testing(workload, options);
  EXPECT_EQ(session.candidates_tried, 0);
  EXPECT_TRUE(session.bugs.empty());
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(ConfirmedBug, RaceReportAndSuggestion) {
  ConfirmedBug bug;
  bug.kind = ConfirmedBug::Kind::kRace;
  bug.site_a = SourceLoc("Test1.java", 15);
  bug.site_b = SourceLoc("Test1.java", 20);
  EXPECT_NE(bug.report().find("Data race detected"), std::string::npos);
  const std::string suggestion = bug.breakpoint_suggestion("trigger1");
  EXPECT_NE(suggestion.find("ConflictTrigger(\"trigger1\""),
            std::string::npos);
  EXPECT_NE(suggestion.find("is_first_action=*/true"), std::string::npos);
  EXPECT_NE(suggestion.find("Test1.java:line 15"), std::string::npos);
}

TEST(ConfirmedBug, DeadlockReportAndSuggestion) {
  ConfirmedBug bug;
  bug.kind = ConfirmedBug::Kind::kDeadlock;
  bug.site_a = SourceLoc("SocketClientFactory.java", 623);
  bug.site_b = SourceLoc("SocketClientFactory.java", 872);
  bug.tid_a = 10;
  bug.tid_b = 15;
  EXPECT_NE(bug.report().find("Deadlock found"), std::string::npos);
  EXPECT_NE(bug.breakpoint_suggestion("trigger2").find("DeadlockTrigger"),
            std::string::npos);
}

}  // namespace
}  // namespace cbp::fuzz
