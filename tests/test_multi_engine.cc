// Multi-engine isolation: two live engines with the same breakpoint
// name must not share hits, stats, specs, or observability events; the
// thread-bound "current engine" must follow ScopedEngine / rt::Thread
// inheritance; and cached BTrigger records must migrate safely between
// engines (including a destroyed one).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/cbp.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/context.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class MultiEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().reset();
    rt::TimeScale::set(1.0);
    obs::Trace::set_enabled(false);
  }
};

/// Local predicate always fails: a call is counted (calls,
/// local_rejects) but returns immediately — ideal for exercising the
/// intern/caching machinery without any waiting.
struct NeverLocal : BTrigger {
  using BTrigger::BTrigger;
  [[nodiscard]] bool predicate_local() const override { return false; }
  [[nodiscard]] bool predicate_global(const BTrigger&) const override {
    return false;
  }
};

/// Postpones (local holds) but never matches (global fails).
struct NeverGlobal : BTrigger {
  using BTrigger::BTrigger;
  [[nodiscard]] bool predicate_global(const BTrigger&) const override {
    return false;
  }
};

/// Produces one hit of breakpoint `name` on whatever engine is bound to
/// the calling thread (children inherit it via rt::Thread).
void hit_once(const std::string& name) {
  int obj = 0;
  rt::Thread a([&] {
    ConflictTrigger t(name, &obj);
    EXPECT_TRUE(t.trigger_here(true, 2000ms));
  });
  rt::Thread b([&] {
    ConflictTrigger t(name, &obj);
    EXPECT_TRUE(t.trigger_here(false, 2000ms));
  });
  a.join();
  b.join();
}

TEST_F(MultiEngineTest, CurrentFallsBackToInstance) {
  EXPECT_EQ(&Engine::current(), &Engine::instance());
}

TEST_F(MultiEngineTest, ScopedEngineBindsAndNests) {
  Engine a;
  Engine b;
  {
    ScopedEngine bind_a(a);
    EXPECT_EQ(&Engine::current(), &a);
    {
      ScopedEngine bind_b(b);
      EXPECT_EQ(&Engine::current(), &b);
    }
    EXPECT_EQ(&Engine::current(), &a);
  }
  EXPECT_EQ(&Engine::current(), &Engine::instance());
}

TEST_F(MultiEngineTest, EngineTagsAreUnique) {
  Engine a;
  Engine b;
  EXPECT_NE(a.tag(), b.tag());
  EXPECT_NE(a.tag(), Engine::instance().tag());
  EXPECT_NE(a.tag(), 0u);
}

TEST_F(MultiEngineTest, RtThreadInheritsBinding) {
  Engine a;
  ScopedEngine bind(a);
  Engine* seen_by_child = nullptr;
  Engine* seen_by_grandchild = nullptr;
  rt::Thread child([&] {
    seen_by_child = &Engine::current();
    rt::Thread grandchild([&] { seen_by_grandchild = &Engine::current(); });
    grandchild.join();
  });
  child.join();
  EXPECT_EQ(seen_by_child, &a);
  EXPECT_EQ(seen_by_grandchild, &a);
}

TEST_F(MultiEngineTest, PlainStdThreadDoesNotInherit) {
  Engine a;
  ScopedEngine bind(a);
  Engine* seen = nullptr;
  std::thread child([&] { seen = &Engine::current(); });
  child.join();
  EXPECT_EQ(seen, &Engine::instance());
}

TEST_F(MultiEngineTest, SameNameIsolatedAcrossEngines) {
  Engine a;
  Engine b;
  const std::string name = "shared-bp-name";
  {
    ScopedEngine bind(a);
    hit_once(name);
  }
  EXPECT_EQ(a.stats(name).hits, 1u);
  EXPECT_EQ(b.stats(name).hits, 0u);
  EXPECT_EQ(Engine::instance().stats(name).hits, 0u);
  EXPECT_EQ(a.total_stats().participants, 2u);
  EXPECT_EQ(b.total_stats().participants, 0u);
}

TEST_F(MultiEngineTest, InternedIdsAreDisjointForEqualNames) {
  Engine a;
  Engine b;
  a.intern("dup-name");
  b.intern("dup-name");
  Engine::instance().intern("dup-name");
  const auto ids_a = a.interned_ids();
  const auto ids_b = b.interned_ids();
  ASSERT_EQ(ids_a.size(), 1u);
  ASSERT_EQ(ids_b.size(), 1u);
  EXPECT_NE(ids_a[0], ids_b[0]);
  const auto ids_default = Engine::instance().interned_ids();
  EXPECT_EQ(std::count(ids_default.begin(), ids_default.end(), ids_a[0]), 0);
}

TEST_F(MultiEngineTest, CachedRecordMigratesBetweenEngines) {
  Engine a;
  Engine b;
  NeverLocal t("migrating-bp");
  {
    ScopedEngine bind(a);
    (void)t.trigger_here(true, 0ms);
    (void)t.trigger_here(true, 0ms);
  }
  {
    ScopedEngine bind(b);
    (void)t.trigger_here(true, 0ms);
  }
  (void)t.trigger_here(true, 0ms);  // back on the default engine
  EXPECT_EQ(a.stats("migrating-bp").local_rejects, 2u);
  EXPECT_EQ(b.stats("migrating-bp").local_rejects, 1u);
  EXPECT_EQ(Engine::instance().stats("migrating-bp").local_rejects, 1u);
}

TEST_F(MultiEngineTest, CachedRecordSurvivesEngineDestruction) {
  NeverLocal t("graveyard-bp");
  {
    Engine doomed;
    ScopedEngine bind(doomed);
    (void)t.trigger_here(true, 0ms);
    EXPECT_EQ(doomed.stats("graveyard-bp").local_rejects, 1u);
  }
  // The record cached inside `t` now belongs to a dead engine; the next
  // trigger must re-resolve against the default engine, not crash.
  (void)t.trigger_here(true, 0ms);
  EXPECT_EQ(Engine::instance().stats("graveyard-bp").local_rejects, 1u);
}

TEST_F(MultiEngineTest, SpecsDoNotCrossTalk) {
  Engine a;
  Engine b;
  const std::string name = "spec-isolated-bp";
  SpecOverride off;
  off.disabled = true;
  a.set_spec({{name, off}});
  {
    ScopedEngine bind(a);
    NeverLocal t(name);
    (void)t.trigger_here(true, 0ms);
  }
  {
    ScopedEngine bind(b);
    NeverLocal t(name);
    (void)t.trigger_here(true, 0ms);
  }
  // Disabled on A: the call is suppressed before any counter moves.
  EXPECT_EQ(a.stats(name).calls, 0u);
  EXPECT_EQ(b.stats(name).calls, 1u);
}

TEST_F(MultiEngineTest, PerEngineTimeScaleShortensPostponement) {
  Engine a;
  a.set_time_scale(0.001);  // nominal 2000 ms -> 2 ms
  ScopedEngine bind(a);
  NeverGlobal t("fast-timeout-bp");
  const rt::Stopwatch clock;
  EXPECT_FALSE(t.trigger_here(true, 2000ms));
  EXPECT_LT(clock.elapsed_seconds(), 1.0);
  EXPECT_EQ(a.stats("fast-timeout-bp").timeouts, 1u);
}

TEST_F(MultiEngineTest, TraceEventsAttributeToOwningEngine) {
  obs::Trace::set_enabled(true);
  (void)obs::Trace::collect();  // drain events from earlier tests
  Engine a;
  const std::string name = "traced-bp";
  {
    ScopedEngine bind(a);
    hit_once(name);
  }
  hit_once(name);  // same name, default engine

  const auto ids_a = a.interned_ids();
  const std::set<std::uint32_t> id_set(ids_a.begin(), ids_a.end());
  const auto snapshot_a = obs::Trace::collect_for(ids_a);
  ASSERT_FALSE(snapshot_a.events.empty());
  for (const auto& event : snapshot_a.events) {
    EXPECT_EQ(id_set.count(event.name_id), 1u);
  }

  // The default engine's events for the same name carry different ids.
  const auto snapshot_default =
      obs::Trace::collect_for(Engine::instance().interned_ids());
  ASSERT_FALSE(snapshot_default.events.empty());
  for (const auto& event : snapshot_default.events) {
    EXPECT_EQ(id_set.count(event.name_id), 0u);
  }
}

TEST_F(MultiEngineTest, ResetAndInternStressWhileDefaultEngineTriggers) {
  // A private engine churning reset()/intern() must never disturb
  // default-engine threads that are mid-trigger on the same names.
  std::atomic<bool> stop{false};
  std::atomic<int> default_hits{0};
  std::thread default_driver([&] {
    int obj = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::thread a([&] {
        ConflictTrigger t("stress-bp", &obj);
        if (t.trigger_here(true, 500ms)) {
          default_hits.fetch_add(1, std::memory_order_relaxed);
        }
      });
      std::thread b([&] {
        ConflictTrigger t("stress-bp", &obj);
        (void)t.trigger_here(false, 500ms);
      });
      a.join();
      b.join();
    }
  });

  // Churn until the default engine has scored a few hits (cap the
  // iterations so a broken default path can't spin forever).
  Engine churn;
  for (int i = 0; i < 20000 && default_hits.load() < 3; ++i) {
    ScopedEngine bind(churn);
    churn.intern("stress-bp");
    NeverLocal t("stress-bp-" + std::to_string(i % 7));
    (void)t.trigger_here(true, 0ms);
    churn.reset();
  }
  stop.store(true);
  default_driver.join();
  EXPECT_GT(default_hits.load(), 0);
  EXPECT_EQ(churn.total_stats().hits, 0u);
}

}  // namespace
}  // namespace cbp
