// Integration tests for the Java-program replicas (Table 1): each seeded
// Heisenbug must (a) manifest deterministically once its concurrent
// breakpoint is armed, and (b) stay dormant in ordinary runs.

#include <gtest/gtest.h>

#include "apps/cache/cache.h"
#include "apps/collections/sync_collections.h"
#include "apps/crawler/crawler.h"
#include "apps/kernels/kernels.h"
#include "apps/logging/async_appender.h"
#include "apps/logging/loggers.h"
#include "apps/pool/object_pool.h"
#include "apps/strbuf/string_buffer.h"
#include "apps/swinglike/swing.h"
#include "apps/textindex/lucene.h"
#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::apps {
namespace {

using namespace std::chrono_literals;

class JavaReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Config::set_enabled(true);
    Config::set_order_delay(2ms);  // generous: replicas use the plain API
    Config::set_guard_wait_cap(2000ms);
    rt::TimeScale::set(0.2);  // run the paper's nominal times at 1/5 speed
    options_.breakpoints = true;
    options_.pause = 300ms;         // generous so hits are deterministic
    options_.stall_after = 1200ms;  // well above the pause: no false stalls
  }

  void TearDown() override {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }

  /// Asserts the bug manifests with the expected artifact on every one
  /// of `runs` armed runs.
  template <class Runner>
  void expect_always(Runner runner, rt::Artifact artifact, int runs = 4) {
    for (int i = 0; i < runs; ++i) {
      Engine::instance().reset();  // each run models a fresh process
      options_.seed = static_cast<std::uint64_t>(i + 1);
      const RunOutcome outcome = runner(options_);
      EXPECT_EQ(outcome.artifact, artifact)
          << "run " << i << ": " << outcome.detail;
    }
  }

  /// Asserts the bug stays dormant without breakpoints (all runs clean —
  /// these windows are sub-microsecond naturally).
  template <class Runner>
  void expect_dormant(Runner runner, int runs = 4) {
    RunOptions plain = options_;
    plain.breakpoints = false;
    int buggy = 0;
    for (int i = 0; i < runs; ++i) {
      Engine::instance().reset();
      plain.seed = static_cast<std::uint64_t>(i + 1);
      buggy += runner(plain).buggy() ? 1 : 0;
    }
    EXPECT_EQ(buggy, 0);
  }

  RunOptions options_;
};

// ---------------------------------------------------------------------------
// stringbuffer (Fig. 3)
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, StringBufferAtomicityManifestsWithBreakpoint) {
  expect_always(strbuf::run_atomicity1, rt::Artifact::kException);
}

TEST_F(JavaReplicaTest, StringBufferDormantWithoutBreakpoint) {
  expect_dormant(strbuf::run_atomicity1);
}

TEST_F(JavaReplicaTest, StringBufferExceptionMentionsIndexOutOfBounds) {
  const RunOutcome outcome = strbuf::run_atomicity1(options_);
  ASSERT_EQ(outcome.artifact, rt::Artifact::kException);
  EXPECT_NE(outcome.detail.find("StringIndexOutOfBounds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, ListAtomicityManifests) {
  expect_always(collections::run_list_atomicity1, rt::Artifact::kException);
}

TEST_F(JavaReplicaTest, ListAtomicityDormant) {
  expect_dormant(collections::run_list_atomicity1);
}

TEST_F(JavaReplicaTest, ListDeadlockManifests) {
  expect_always(collections::run_list_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, ListDeadlockDormant) {
  expect_dormant(collections::run_list_deadlock1);
}

TEST_F(JavaReplicaTest, MapAtomicityManifests) {
  expect_always(collections::run_map_atomicity1, rt::Artifact::kRaceObserved);
}

TEST_F(JavaReplicaTest, MapDeadlockManifests) {
  expect_always(collections::run_map_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, SetAtomicityManifests) {
  expect_always(collections::run_set_atomicity1, rt::Artifact::kException);
}

TEST_F(JavaReplicaTest, SetDeadlockManifests) {
  expect_always(collections::run_set_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, CollectionsDormantWithoutBreakpoints) {
  expect_dormant(collections::run_map_atomicity1);
  expect_dormant(collections::run_set_atomicity1);
  expect_dormant(collections::run_map_deadlock1, 2);
  expect_dormant(collections::run_set_deadlock1, 2);
}

// ---------------------------------------------------------------------------
// cache4j
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, CacheRace1Manifests) {
  expect_always(cache::run_race1, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, CacheRace2Manifests) {
  expect_always(cache::run_race2, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, CacheRace3Manifests) {
  expect_always(cache::run_race3, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, CacheAtomicityManifestsWithIgnoreFirst) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    const RunOutcome outcome =
        cache::run_atomicity1(options_, cache::kWarmupConstructions);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kRaceObserved)
        << outcome.detail;
  }
}

TEST_F(JavaReplicaTest, CacheIgnoreFirstCutsWarmupCost) {
  // §6.3: without ignoreFirst every warm-up construction pauses for T.
  options_.pause = 5ms;  // keep the unrefined run affordable
  const RunOutcome refined =
      cache::run_atomicity1(options_, cache::kWarmupConstructions);
  const RunOutcome unrefined = cache::run_atomicity1(options_, 0);
  EXPECT_EQ(refined.artifact, rt::Artifact::kRaceObserved);
  EXPECT_EQ(unrefined.artifact, rt::Artifact::kRaceObserved);
  EXPECT_LT(refined.runtime_seconds * 3, unrefined.runtime_seconds);
}

TEST_F(JavaReplicaTest, CacheDormantWithoutBreakpoints) {
  expect_dormant(cache::run_race1, 2);
  RunOptions plain = options_;
  plain.breakpoints = false;
  EXPECT_FALSE(cache::run_atomicity1(plain, 0).buggy());
}

// ---------------------------------------------------------------------------
// hedc crawler
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, CrawlerRace1ManifestsWithLongPause) {
  options_.pause = 1000ms;  // the paper's wait=1s row: probability 1.0
  expect_always(crawler::run_race1, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, CrawlerRace1PartialWithShortPause) {
  // The §6.2 subject: at T=100ms the hit probability is ~0.87 — over a
  // handful of runs we only require "some hits, misses possible".
  options_.pause = 100ms;
  int hits = 0;
  constexpr int kRuns = 12;
  for (int i = 0; i < kRuns; ++i) {
    Engine::instance().reset();
    options_.seed = static_cast<std::uint64_t>(100 + i);
    hits += crawler::run_race1(options_).buggy() ? 1 : 0;
  }
  EXPECT_GE(hits, kRuns / 3);  // far above the ~0 natural rate
}

TEST_F(JavaReplicaTest, CrawlerRace2ManifestsWithLongPause) {
  options_.pause = 1500ms;
  expect_always(crawler::run_race2, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, CrawlerDormantWithoutBreakpoints) {
  expect_dormant(crawler::run_race1, 3);
}

// ---------------------------------------------------------------------------
// jigsaw webserver
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, JigsawDeadlock1Manifests) {
  expect_always(webserver::run_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, JigsawDeadlock2Manifests) {
  expect_always(webserver::run_deadlock2, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, JigsawMissedNotifyManifests) {
  expect_always(webserver::run_missed_notify1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, JigsawRace1StallsViaStaleRead) {
  expect_always(webserver::run_race1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, JigsawRace2LosesUpdates) {
  expect_always(webserver::run_race2, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, JigsawServerStressDeadlocksUnderLoad) {
  // The paper's multi-client harness: the same Fig. 2 deadlock, armed
  // and hit while several clients are serving requests.
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    options_.seed = static_cast<std::uint64_t>(i + 1);
    const RunOutcome outcome =
        webserver::run_server_stress(options_, /*clients=*/4);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kStall) << outcome.detail;
  }
}

TEST_F(JavaReplicaTest, JigsawServerStressCleanWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  for (int i = 0; i < 2; ++i) {
    Engine::instance().reset();
    EXPECT_FALSE(webserver::run_server_stress(plain, 4).buggy());
  }
}

TEST_F(JavaReplicaTest, JigsawDormantWithoutBreakpoints) {
  expect_dormant(webserver::run_deadlock1, 2);
  expect_dormant(webserver::run_missed_notify1, 2);
  expect_dormant(webserver::run_race1, 2);
}

// ---------------------------------------------------------------------------
// logging: log4j + java.util.logging
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, Log4jDeadlock1Manifests) {
  expect_always(logging::run_log4j_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, Log4jRace2LosesUpdates) {
  expect_always(logging::run_log4j_race2, rt::Artifact::kRaceObserved, 3);
}

TEST_F(JavaReplicaTest, JulDeadlock1Manifests) {
  expect_always(logging::run_jul_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, LoggingDormantWithoutBreakpoints) {
  expect_dormant(logging::run_log4j_deadlock1, 2);
  expect_dormant(logging::run_jul_deadlock1, 2);
}

// ---------------------------------------------------------------------------
// log4j AsyncAppender — the Methodology II subject (§5)
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, AsyncAppenderStallsWhenGrowBeforeDispatch) {
  // The paper's "236 -> 309" row: stall 100%, BP hit 100%.
  logging::MethodologyIIOptions m2;
  m2.first = logging::Site::kSetBufferSize;
  m2.second = logging::Site::kDispatch;
  m2.pause = 200ms;
  m2.stall_after = 1000ms;
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    m2.seed = static_cast<std::uint64_t>(i + 1);
    const auto outcome = logging::run_methodology2(m2);
    EXPECT_TRUE(outcome.stalled) << "run " << i;
    EXPECT_TRUE(outcome.breakpoint_hit) << "run " << i;
  }
}

TEST_F(JavaReplicaTest, AsyncAppenderCleanWhenDispatchBeforeGrow) {
  // The "309 -> 236" row: stall 0%, BP hit 100%.
  logging::MethodologyIIOptions m2;
  m2.first = logging::Site::kDispatch;
  m2.second = logging::Site::kSetBufferSize;
  m2.pause = 200ms;
  m2.stall_after = 1000ms;
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    m2.seed = static_cast<std::uint64_t>(i + 1);
    const auto outcome = logging::run_methodology2(m2);
    EXPECT_FALSE(outcome.stalled) << "run " << i;
    EXPECT_TRUE(outcome.breakpoint_hit) << "run " << i;
  }
}

TEST_F(JavaReplicaTest, AsyncAppenderAppendDispatchPairIsHarmless) {
  // The "100 <-> 309" rows: no stall in either order.
  for (const bool append_first : {true, false}) {
    logging::MethodologyIIOptions m2;
    m2.first =
        append_first ? logging::Site::kAppend : logging::Site::kDispatch;
    m2.second =
        append_first ? logging::Site::kDispatch : logging::Site::kAppend;
    m2.pause = 200ms;
    m2.stall_after = 1000ms;
    m2.jitter = std::chrono::microseconds(0);  // exclude the natural window
    const auto outcome = logging::run_methodology2(m2);
    EXPECT_FALSE(outcome.stalled) << "append_first=" << append_first;
  }
}

TEST_F(JavaReplicaTest, AsyncAppenderDrainsDispatchedEventsWhenClean) {
  logging::MethodologyIIOptions m2;
  m2.breakpoints = false;
  m2.jitter = std::chrono::microseconds(0);
  const auto outcome = logging::run_methodology2(m2);
  EXPECT_FALSE(outcome.stalled);
}

TEST_F(JavaReplicaTest, SpecFlipReversesMethodologyOrderWithoutRecompiling) {
  // The shipped breakpoint resolves 236 -> 309 (stall).  A spec-file
  // `flip` turns it into 309 -> 236 (clean) — Methodology II's "resolve
  // the contention in both ways" as pure configuration.
  logging::MethodologyIIOptions m2;
  m2.first = logging::Site::kSetBufferSize;
  m2.second = logging::Site::kDispatch;
  m2.pause = 200ms;
  m2.stall_after = 1000ms;

  Engine::instance().reset();
  EXPECT_TRUE(logging::run_methodology2(m2).stalled);

  BreakpointSpec::parse(std::string(logging::kContentionBreakpoint) +
                        " flip\n")
      .install();
  Engine::instance().reset();
  EXPECT_FALSE(logging::run_methodology2(m2).stalled);
  BreakpointSpec::clear_installed();
}

TEST_F(JavaReplicaTest, MissedNotify1RunnerMapsOrderFlag) {
  options_.order_forward = true;
  EXPECT_EQ(logging::run_missed_notify1(options_).artifact,
            rt::Artifact::kStall);
  options_.order_forward = false;
  EXPECT_EQ(logging::run_missed_notify1(options_).artifact,
            rt::Artifact::kNone);
}

// ---------------------------------------------------------------------------
// lucene, pool
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, LuceneDeadlockManifests) {
  expect_always(textindex::run_deadlock1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, LuceneDormant) {
  expect_dormant(textindex::run_deadlock1, 2);
}

TEST_F(JavaReplicaTest, PoolMissedNotifyManifests) {
  expect_always(pool::run_missed_notify1, rt::Artifact::kStall);
}

TEST_F(JavaReplicaTest, PoolDormant) { expect_dormant(pool::run_missed_notify1, 2); }

// ---------------------------------------------------------------------------
// JGF kernels
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, MoldynRace1ManifestsWithBound) {
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();  // bounds are per-process in the paper
    const RunOutcome outcome =
        kernels::run_moldyn_race1(options_, kernels::kMoldynRace1Bound);
    EXPECT_EQ(outcome.artifact, rt::Artifact::kRaceObserved) << outcome.detail;
  }
}

TEST_F(JavaReplicaTest, MoldynRace2ManifestsWithBound) {
  const RunOutcome outcome =
      kernels::run_moldyn_race2(options_, kernels::kMoldynRace2Bound);
  EXPECT_EQ(outcome.artifact, rt::Artifact::kRaceObserved);
}

TEST_F(JavaReplicaTest, MontecarloRace1Manifests) {
  const RunOutcome outcome =
      kernels::run_montecarlo_race1(options_, kernels::kMontecarloBound);
  EXPECT_EQ(outcome.artifact, rt::Artifact::kRaceObserved);
}

TEST_F(JavaReplicaTest, MoldynBoundCutsRuntime) {
  // §6.3: the accumulation site fires hundreds of times; bounding the
  // breakpoint caps the pausing.  Unbounded, every unmatched arrival can
  // pause for T; keep T tiny so the comparison stays affordable.
  options_.pause = 5ms;
  rt::Stopwatch bounded_clock;
  (void)kernels::run_moldyn_race1(options_, 4);
  const double bounded = bounded_clock.elapsed_seconds();
  Engine::instance().reset();
  rt::Stopwatch unbounded_clock;
  (void)kernels::run_moldyn_race1(options_, UINT64_MAX);
  const double unbounded = unbounded_clock.elapsed_seconds();
  // The unbounded run pauses at (almost) every iteration pair; the
  // bounded one stops after 4 hits.  Require a clear separation.
  EXPECT_LT(bounded * 1.5, unbounded);
}

TEST_F(JavaReplicaTest, RaytracerRacesFailValidation) {
  EXPECT_EQ(kernels::run_raytracer_race1(options_).artifact,
            rt::Artifact::kWrongResult);
  EXPECT_EQ(kernels::run_raytracer_race2(options_).artifact,
            rt::Artifact::kWrongResult);
  EXPECT_EQ(kernels::run_raytracer_race3(options_).artifact,
            rt::Artifact::kRaceObserved);
  EXPECT_EQ(kernels::run_raytracer_race4(options_).artifact,
            rt::Artifact::kRaceObserved);
}

TEST_F(JavaReplicaTest, KernelsDormantWithoutBreakpoints) {
  RunOptions plain = options_;
  plain.breakpoints = false;
  EXPECT_FALSE(kernels::run_moldyn_race1(plain, 4).buggy());
  EXPECT_FALSE(kernels::run_raytracer_race1(plain).buggy());
}

// ---------------------------------------------------------------------------
// swing
// ---------------------------------------------------------------------------

TEST_F(JavaReplicaTest, SwingDeadlockManifestsWithLongPauseRefined) {
  swinglike::SwingOptions swing;
  swing.base = options_;
  swing.base.pause = 1000ms;  // the paper's wait=1s row: ~0.99
  swing.refined = true;
  int stalls = 0;
  for (int i = 0; i < 3; ++i) {
    Engine::instance().reset();
    swing.base.seed = static_cast<std::uint64_t>(i + 1);
    stalls += swinglike::run_deadlock1(swing).artifact ==
                      rt::Artifact::kStall
                  ? 1
                  : 0;
  }
  EXPECT_EQ(stalls, 3);
}

TEST_F(JavaReplicaTest, SwingRefinementSkipsCaretFreeCalls) {
  // Refined: the 24 caret-free addDirtyRegion calls never pause, so the
  // run is far faster than the unrefined one at the same T.
  swinglike::SwingOptions swing;
  swing.base = options_;
  swing.base.pause = 30ms;
  swing.refined = true;
  const double refined = swinglike::run_deadlock1(swing).runtime_seconds;
  Engine::instance().reset();
  swing.refined = false;
  const double unrefined = swinglike::run_deadlock1(swing).runtime_seconds;
  EXPECT_LT(refined * 1.5, unrefined);
}

TEST_F(JavaReplicaTest, SwingDormantWithoutBreakpoints) {
  swinglike::SwingOptions swing;
  swing.base = options_;
  swing.base.breakpoints = false;
  EXPECT_FALSE(swinglike::run_deadlock1(swing).buggy());
}

}  // namespace
}  // namespace cbp::apps
