// Detector striping (detect/striping.h): the shard-index function must
// spread addresses evenly at EVERY supported shard count.  The original
// form `(v >> 60) & (count - 1)` extracted four bits and then masked
// wider: above 16 shards the mask reached into bits the shift had
// discarded, so shards 16..63 were structurally unreachable — a 64-shard
// build silently degenerated to 16 lock stripes.  These tests pin the
// fix with occupancy and uniformity checks over synthetic address
// populations, plus the compatibility guarantee at the historical count.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "detect/striping.h"
#include "runtime/rng.h"

namespace cbp::detect {
namespace {

constexpr std::size_t kAddresses = 1'000'000;

/// Synthetic address populations shaped like real shared-variable sets.
std::vector<std::uintptr_t> synthetic_addresses() {
  std::vector<std::uintptr_t> addrs;
  addrs.reserve(kAddresses);
  // Heap-like: 16-byte-aligned allocations walking up from a base.
  for (std::size_t i = 0; i < kAddresses / 2; ++i) {
    addrs.push_back(0x5570'0000'0000ULL + i * 16);
  }
  // Struct-field-like: 64-byte-strided objects with mixed small offsets.
  for (std::size_t i = 0; i < kAddresses / 4; ++i) {
    addrs.push_back(0x7f3a'0000'0000ULL + i * 64 + (i % 3) * 8);
  }
  // Scattered: uniform random addresses (ASLR'd globals, mmap regions).
  rt::Rng rng(20260808);
  while (addrs.size() < kAddresses) {
    addrs.push_back(static_cast<std::uintptr_t>(rng.next_u64()));
  }
  return addrs;
}

/// Chi-square-style uniformity check: every shard's occupancy within
/// `tolerance` of the uniform expectation, and the aggregate normalized
/// chi-square statistic small.
void expect_uniform(const std::vector<std::uintptr_t>& addrs,
                    std::size_t count, double tolerance) {
  std::vector<std::size_t> occupancy(count, 0);
  for (const std::uintptr_t addr : addrs) {
    const std::size_t shard = detector_shard_index(addr, count);
    ASSERT_LT(shard, count);
    ++occupancy[shard];
  }
  const double expected =
      static_cast<double>(addrs.size()) / static_cast<double>(count);
  double chi2 = 0.0;
  for (std::size_t s = 0; s < count; ++s) {
    EXPECT_GT(occupancy[s], 0u) << "shard " << s << " of " << count
                                << " never selected (the pre-fix failure "
                                   "mode for counts above 16)";
    const double dev = static_cast<double>(occupancy[s]) - expected;
    EXPECT_LT(std::abs(dev) / expected, tolerance)
        << "shard " << s << " occupancy " << occupancy[s] << " vs expected "
        << expected;
    chi2 += dev * dev / expected;
  }
  // For genuinely uniform assignment chi2 ~ (count-1) +- a few sqrt;
  // a generous multiple still catches any structural skew.
  EXPECT_LT(chi2, 8.0 * static_cast<double>(count));
}

TEST(Striping, UniformAtSixteenShards) {
  expect_uniform(synthetic_addresses(), 16, 0.10);
}

TEST(Striping, UniformAtSixtyFourShards) {
  // The regression this file exists for: all 64 shards populated, with
  // no mass collapse onto the first 16.
  expect_uniform(synthetic_addresses(), 64, 0.15);
}

TEST(Striping, AllCountsReachAllShards) {
  const std::vector<std::uintptr_t> addrs = synthetic_addresses();
  for (std::size_t count : {1u, 2u, 4u, 8u, 32u}) {
    std::vector<bool> seen(count, false);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      seen[detector_shard_index(addrs[i], count)] = true;
    }
    for (std::size_t s = 0; s < count; ++s) {
      EXPECT_TRUE(seen[s]) << "count " << count << " shard " << s;
    }
  }
}

TEST(Striping, SixteenShardResultMatchesHistoricalLayout) {
  // At the historical count the new top-bits extraction is bit-for-bit
  // the old `(v >> 60) & 15`: existing 16-shard deployments keep their
  // address->shard assignment (and their detector state locality).
  rt::Rng rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const auto addr = static_cast<std::uintptr_t>(rng.next_u64());
    const std::uintptr_t v = (addr >> 4) * 0x9E3779B97F4A7C15ull;
    EXPECT_EQ(detector_shard_index(addr, 16), (v >> 60) & 15u);
  }
}

TEST(Striping, NearbyAddressesSpread) {
  // Fields of one cacheline-sized object should not all map to one
  // shard; count distinct shards over a 64-entry array of 16-byte slots.
  std::array<bool, 16> seen{};
  for (std::size_t i = 0; i < 64; ++i) {
    seen[detector_shard(reinterpret_cast<const void*>(
        0x6000'0000'0000ULL + i * 16))] = true;
  }
  int distinct = 0;
  for (const bool b : seen) distinct += b ? 1 : 0;
  EXPECT_GE(distinct, 8);
}

TEST(Striping, DefaultShardCountIsConfiguredValue) {
  EXPECT_EQ(kDetectorShards, static_cast<std::size_t>(CBP_DETECTOR_SHARDS));
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(detector_shard(reinterpret_cast<const void*>(
                  0x1000ULL + static_cast<std::uintptr_t>(i) * 24)),
              kDetectorShards);
  }
}

}  // namespace
}  // namespace cbp::detect
