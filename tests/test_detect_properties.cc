// Property tests for the detectors: randomized scripted schedules are
// executed slice-by-slice on real threads (deterministic global order),
// then detector verdicts are compared against an independent
// happens-before oracle computed directly from the executed trace.
//
//   * FastTrack flags an address  <=>  the oracle finds a conflicting
//     access pair with no happens-before path between them;
//   * Eraser never flags an address whose every access holds one common
//     lock;
//   * the lock-order detector reports a 2-cycle  <=>  two distinct
//     threads acquired some lock pair in crossing orders.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "detect/eraser.h"
#include "detect/fasttrack.h"
#include "detect/lock_order.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "runtime/rng.h"

namespace cbp::detect {
namespace {

using instr::ScopedListener;
using instr::SharedVar;
using instr::TrackedMutex;

constexpr int kThreads = 3;
constexpr int kVars = 3;
constexpr int kLocks = 2;

/// One scripted step.
struct Step {
  enum class Op { kRead, kWrite, kLock, kUnlock };
  int thread = 0;
  Op op = Op::kRead;
  int target = 0;  ///< var index or lock index
};

/// Generates a random schedule with lock discipline: a thread only
/// unlocks locks it holds, a lock step targets a lock no thread holds
/// (the executor runs steps strictly sequentially, so a blocking lock
/// would deadlock the harness), and everything is released at the end.
std::vector<Step> generate_schedule(rt::Rng& rng, int steps) {
  std::vector<Step> schedule;
  std::vector<std::vector<int>> held(kThreads);
  std::set<int> owned;  // locks held by anyone
  for (int i = 0; i < steps; ++i) {
    Step step;
    step.thread = static_cast<int>(rng.next_below(kThreads));
    auto& my_locks = held[static_cast<std::size_t>(step.thread)];
    const int roll = static_cast<int>(rng.next_below(10));
    std::vector<int> free_locks;
    for (int lock = 0; lock < kLocks; ++lock) {
      if (!owned.count(lock)) free_locks.push_back(lock);
    }
    if (roll < 4) {
      step.op = Step::Op::kRead;
      step.target = static_cast<int>(rng.next_below(kVars));
    } else if (roll < 7) {
      step.op = Step::Op::kWrite;
      step.target = static_cast<int>(rng.next_below(kVars));
    } else if (roll < 9 && !free_locks.empty()) {
      step.op = Step::Op::kLock;
      step.target = free_locks[rng.next_below(free_locks.size())];
      my_locks.push_back(step.target);
      owned.insert(step.target);
    } else if (!my_locks.empty()) {
      step.op = Step::Op::kUnlock;
      step.target = my_locks.back();  // LIFO discipline
      my_locks.pop_back();
      owned.erase(step.target);
    } else {
      step.op = Step::Op::kRead;
      step.target = static_cast<int>(rng.next_below(kVars));
    }
    schedule.push_back(step);
  }
  // Drain remaining held locks.
  for (int t = 0; t < kThreads; ++t) {
    auto& my_locks = held[static_cast<std::size_t>(t)];
    while (!my_locks.empty()) {
      schedule.push_back(Step{t, Step::Op::kUnlock, my_locks.back()});
      my_locks.pop_back();
    }
  }
  return schedule;
}

/// Executes the schedule in its exact global order: each step runs as a
/// short-lived slice on the owning thread.  To keep real thread
/// identities stable per logical thread, each logical thread is one
/// std::thread that executes its steps when signalled.
class ScheduleExecutor {
 public:
  ScheduleExecutor(const std::vector<Step>& schedule, SharedVar<int>* vars,
                   TrackedMutex* locks)
      : schedule_(schedule), vars_(vars), locks_(locks) {}

  void run() {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([this, t] { worker(t); });
    }
    for (auto& t : threads) t.join();
  }

 private:
  void worker(int id) {
    for (;;) {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] {
        return next_ >= schedule_.size() ||
               schedule_[next_].thread == id;
      });
      if (next_ >= schedule_.size()) return;
      const Step step = schedule_[next_];
      // Execute the step while holding the scheduler lock: the global
      // order is exactly the script order.
      execute(step);
      ++next_;
      cv_.notify_all();
    }
  }

  void execute(const Step& step) {
    switch (step.op) {
      case Step::Op::kRead:
        (void)vars_[step.target].read();
        break;
      case Step::Op::kWrite:
        vars_[step.target].write(1);
        break;
      case Step::Op::kLock:
        locks_[step.target].lock();
        break;
      case Step::Op::kUnlock:
        locks_[step.target].unlock();
        break;
    }
  }

  const std::vector<Step>& schedule_;
  SharedVar<int>* vars_;
  TrackedMutex* locks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_ = 0;  // guarded by mu_
};

/// Ground-truth oracle: builds happens-before from program order plus
/// release->acquire edges (each lock acquisition synchronizes with the
/// previous release of the same lock), then checks each address for an
/// unordered conflicting pair.
class HbOracle {
 public:
  explicit HbOracle(const std::vector<Step>& schedule) : schedule_(schedule) {
    const std::size_t n = schedule.size();
    reach_.assign(n, std::vector<char>(n, 0));
    // Direct edges.
    std::map<int, std::size_t> last_of_thread;
    std::map<int, std::size_t> last_release_of_lock;
    std::vector<std::vector<std::size_t>> succ(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Step& step = schedule[i];
      auto it = last_of_thread.find(step.thread);
      if (it != last_of_thread.end()) succ[it->second].push_back(i);
      last_of_thread[step.thread] = i;
      if (step.op == Step::Op::kLock) {
        auto rel = last_release_of_lock.find(step.target);
        if (rel != last_release_of_lock.end()) {
          succ[rel->second].push_back(i);
        }
      } else if (step.op == Step::Op::kUnlock) {
        last_release_of_lock[step.target] = i;
      }
    }
    // Transitive closure (reverse topological order = reverse index
    // order, since all edges go forward in the executed order).
    for (std::size_t i = n; i-- > 0;) {
      for (std::size_t j : succ[i]) {
        reach_[i][j] = 1;
        for (std::size_t k = 0; k < n; ++k) {
          if (reach_[j][k]) reach_[i][k] = 1;
        }
      }
    }
  }

  /// Var indices that have an unordered conflicting access pair.
  [[nodiscard]] std::set<int> racy_vars() const {
    std::set<int> out;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
      const Step& a = schedule_[i];
      if (a.op != Step::Op::kRead && a.op != Step::Op::kWrite) continue;
      for (std::size_t j = i + 1; j < schedule_.size(); ++j) {
        const Step& b = schedule_[j];
        if (b.op != Step::Op::kRead && b.op != Step::Op::kWrite) continue;
        if (a.target != b.target || a.thread == b.thread) continue;
        if (a.op == Step::Op::kRead && b.op == Step::Op::kRead) continue;
        if (!reach_[i][j]) out.insert(a.target);
      }
    }
    return out;
  }

  /// True when two distinct threads acquire some lock pair crosswise.
  [[nodiscard]] bool has_crossed_lock_orders() const {
    // edge set: (held, wanted) -> threads
    std::map<std::pair<int, int>, std::set<int>> edges;
    std::map<int, std::vector<int>> held;
    for (const Step& step : schedule_) {
      if (step.op == Step::Op::kLock) {
        for (int h : held[step.thread]) {
          edges[{h, step.target}].insert(step.thread);
        }
        held[step.thread].push_back(step.target);
      } else if (step.op == Step::Op::kUnlock) {
        auto& stack = held[step.thread];
        stack.erase(std::find(stack.begin(), stack.end(), step.target));
      }
    }
    for (const auto& [edge, threads] : edges) {
      if (edge.first >= edge.second) continue;
      auto reverse = edges.find({edge.second, edge.first});
      if (reverse == edges.end()) continue;
      for (int t1 : threads) {
        for (int t2 : reverse->second) {
          if (t1 != t2) return true;
        }
      }
    }
    return false;
  }

  /// Vars whose every access is covered by at least one common lock.
  [[nodiscard]] std::set<int> consistently_locked_vars() const {
    std::map<int, std::set<int>> common;  // var -> intersected lockset
    std::map<int, bool> seen;
    std::map<int, std::vector<int>> held;
    for (const Step& step : schedule_) {
      if (step.op == Step::Op::kLock) {
        held[step.thread].push_back(step.target);
      } else if (step.op == Step::Op::kUnlock) {
        auto& stack = held[step.thread];
        stack.erase(std::find(stack.begin(), stack.end(), step.target));
      } else {
        std::set<int> lockset(held[step.thread].begin(),
                              held[step.thread].end());
        if (!seen[step.target]) {
          seen[step.target] = true;
          common[step.target] = lockset;
        } else {
          std::set<int> inter;
          for (int lock : common[step.target]) {
            if (lockset.count(lock)) inter.insert(lock);
          }
          common[step.target] = inter;
        }
      }
    }
    std::set<int> out;
    for (const auto& [var, locks] : common) {
      if (!locks.empty()) out.insert(var);
    }
    return out;
  }

 private:
  const std::vector<Step>& schedule_;
  std::vector<std::vector<char>> reach_;
};

/// Runs one generated schedule under all three detectors and returns the
/// verdicts plus the oracle.
struct TrialResult {
  std::set<int> fasttrack_racy;
  std::set<int> eraser_racy;
  bool lockorder_deadlock = false;
  std::set<int> oracle_racy;
  bool oracle_crossed = false;
  std::set<int> oracle_locked;
};

TrialResult run_trial(std::uint64_t seed, int steps) {
  rt::Rng rng(seed);
  const std::vector<Step> schedule = generate_schedule(rng, steps);

  SharedVar<int> vars[kVars];
  TrackedMutex locks[kLocks];

  FastTrackDetector fasttrack;
  EraserDetector eraser;
  LockOrderDetector lock_order;
  {
    ScopedListener r1(fasttrack), r2(eraser), r3(lock_order);
    ScheduleExecutor executor(schedule, vars, locks);
    executor.run();
  }

  TrialResult result;
  auto var_index = [&](const void* addr) {
    for (int v = 0; v < kVars; ++v) {
      if (vars[v].address() == addr) return v;
    }
    return -1;
  };
  for (const auto& race : fasttrack.races()) {
    result.fasttrack_racy.insert(var_index(race.addr));
  }
  for (const auto& race : eraser.races()) {
    result.eraser_racy.insert(var_index(race.addr));
  }
  result.lockorder_deadlock = !lock_order.deadlocks().empty();

  HbOracle oracle(schedule);
  result.oracle_racy = oracle.racy_vars();
  result.oracle_crossed = oracle.has_crossed_lock_orders();
  result.oracle_locked = oracle.consistently_locked_vars();
  return result;
}

class DetectorOracleSweep
    : public ::testing::TestWithParam<std::uint64_t /*seed*/> {};

TEST_P(DetectorOracleSweep, FastTrackMatchesHbOracle) {
  const TrialResult trial = run_trial(GetParam(), 60);
  EXPECT_EQ(trial.fasttrack_racy, trial.oracle_racy) << "seed " << GetParam();
}

TEST_P(DetectorOracleSweep, EraserNeverFlagsConsistentlyLockedVars) {
  const TrialResult trial = run_trial(GetParam() + 1000, 60);
  for (int var : trial.oracle_locked) {
    EXPECT_EQ(trial.eraser_racy.count(var), 0u)
        << "seed " << GetParam() << " var " << var;
  }
}

TEST_P(DetectorOracleSweep, LockOrderMatchesCrossedAcquisitionOracle) {
  const TrialResult trial = run_trial(GetParam() + 2000, 80);
  EXPECT_EQ(trial.lockorder_deadlock, trial.oracle_crossed)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorOracleSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace cbp::detect
