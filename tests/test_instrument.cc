// Tests for the instrumentation layer: source locations, the event hub,
// SharedVar, TrackedMutex/TrackedLock, and TrackedCondVar.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "instrument/hub.h"
#include "instrument/shared_var.h"
#include "instrument/source_loc.h"
#include "instrument/tracked_mutex.h"
#include "runtime/lock_tracker.h"

namespace cbp::instr {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// SourceLoc
// ---------------------------------------------------------------------------

TEST(SourceLoc, CurrentCapturesThisFile) {
  const SourceLoc loc = SourceLoc::current();
  EXPECT_NE(loc.file.find("test_instrument.cc"), std::string_view::npos);
  EXPECT_GT(loc.line, 0u);
  EXPECT_TRUE(loc.valid());
}

TEST(SourceLoc, StrUsesBasenameAndPaperStyle) {
  const SourceLoc loc("/path/to/AsyncAppender.java", 309);
  EXPECT_EQ(loc.str(), "AsyncAppender.java:line 309");
}

TEST(SourceLoc, EqualityAndOrdering) {
  const SourceLoc a("f.cc", 10);
  const SourceLoc b("f.cc", 10);
  const SourceLoc c("f.cc", 20);
  const SourceLoc d("g.cc", 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
}

TEST(SourceLoc, DefaultIsInvalid) {
  const SourceLoc loc;
  EXPECT_FALSE(loc.valid());
}

// ---------------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------------

class RecordingListener : public Listener {
 public:
  void on_access(const AccessEvent& event) override {
    std::scoped_lock lock(mu_);
    accesses.push_back(event);
  }
  void on_sync(const SyncEvent& event) override {
    std::scoped_lock lock(mu_);
    syncs.push_back(event);
  }
  std::vector<AccessEvent> accesses;  // guarded by mu_ while threads run
  std::vector<SyncEvent> syncs;
  std::mutex mu_;
};

TEST(Hub, NoListenersMeansInactive) {
  EXPECT_FALSE(Hub::instance().has_listeners());
  // Dispatch with no listeners must be a harmless no-op.
  Hub::instance().access(nullptr, true, SourceLoc::current());
}

TEST(Hub, ListenerReceivesAccessEvents) {
  RecordingListener listener;
  ScopedListener registration(listener);
  int x = 0;
  Hub::instance().access(&x, true, SourceLoc("a.cc", 1));
  Hub::instance().access(&x, false, SourceLoc("a.cc", 2));
  ASSERT_EQ(listener.accesses.size(), 2u);
  EXPECT_EQ(listener.accesses[0].addr, &x);
  EXPECT_TRUE(listener.accesses[0].is_write);
  EXPECT_FALSE(listener.accesses[1].is_write);
  EXPECT_EQ(listener.accesses[0].tid, rt::this_thread_id());
}

TEST(Hub, ListenerReceivesSyncEvents) {
  RecordingListener listener;
  ScopedListener registration(listener);
  int lock_obj = 0;
  Hub::instance().sync(SyncEvent::Kind::kLockAcquired, &lock_obj,
                       SourceLoc("a.cc", 3));
  ASSERT_EQ(listener.syncs.size(), 1u);
  EXPECT_EQ(listener.syncs[0].kind, SyncEvent::Kind::kLockAcquired);
  EXPECT_EQ(listener.syncs[0].obj, &lock_obj);
}

TEST(Hub, ScopedListenerUnregistersOnDestruction) {
  RecordingListener listener;
  {
    ScopedListener registration(listener);
    EXPECT_TRUE(Hub::instance().has_listeners());
  }
  EXPECT_FALSE(Hub::instance().has_listeners());
  int x = 0;
  Hub::instance().access(&x, true, SourceLoc::current());
  EXPECT_TRUE(listener.accesses.empty());
}

TEST(Hub, MultipleListenersAllReceive) {
  RecordingListener first, second;
  ScopedListener r1(first), r2(second);
  int x = 0;
  Hub::instance().access(&x, true, SourceLoc::current());
  EXPECT_EQ(first.accesses.size(), 1u);
  EXPECT_EQ(second.accesses.size(), 1u);
}

// Regression test for the RCU-style dispatch snapshot: registering and
// unregistering a listener must be safe while other threads are inside
// access(), and remove_listener() must not return before every in-flight
// dispatch that could still observe the listener has drained (so the
// listener can be destroyed immediately afterwards).
TEST(Hub, RegisterUnregisterWhileDispatching) {
  class CountingListener : public Listener {
   public:
    void on_access(const AccessEvent&) override {
      events.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> events{0};
  };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> dispatched{0};
  constexpr int kWorkers = 4;
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&] {
      int x = 0;
      const SourceLoc loc = SourceLoc::current();
      while (!stop.load(std::memory_order_relaxed)) {
        Hub::instance().access(&x, true, loc);
        dispatched.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t total_observed = 0;
  for (int cycle = 0; cycle < 200; ++cycle) {
    // A fresh listener every cycle: if remove_listener() returned while a
    // dispatch still held the old snapshot, the destructor would race with
    // on_access() and TSan (or a crash) would catch it.
    auto listener = std::make_unique<CountingListener>();
    Hub::instance().add_listener(listener.get());
    std::this_thread::yield();
    Hub::instance().remove_listener(listener.get());
    total_observed += listener->events.load(std::memory_order_relaxed);
    listener.reset();
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();

  EXPECT_FALSE(Hub::instance().has_listeners());
  // Every event a listener saw was produced by a worker dispatch.
  EXPECT_LE(total_observed, dispatched.load(std::memory_order_relaxed));
}

TEST(Hub, EventsCarryDistinctThreadIds) {
  RecordingListener listener;
  ScopedListener registration(listener);
  int x = 0;
  std::thread a([&] { Hub::instance().access(&x, true, SourceLoc::current()); });
  a.join();
  std::thread b([&] { Hub::instance().access(&x, true, SourceLoc::current()); });
  b.join();
  ASSERT_EQ(listener.accesses.size(), 2u);
  EXPECT_NE(listener.accesses[0].tid, listener.accesses[1].tid);
}

// ---------------------------------------------------------------------------
// SharedVar
// ---------------------------------------------------------------------------

TEST(SharedVar, ReadWriteRoundTrip) {
  SharedVar<int> var(5);
  EXPECT_EQ(var.read(), 5);
  var.write(9);
  EXPECT_EQ(var.read(), 9);
  EXPECT_EQ(var.peek(), 9);
}

TEST(SharedVar, PokeDoesNotEmitEvents) {
  RecordingListener listener;
  ScopedListener registration(listener);
  SharedVar<int> var;
  var.poke(3);
  (void)var.peek();
  EXPECT_TRUE(listener.accesses.empty());
}

TEST(SharedVar, ReadWriteEmitEventsWithAddressAndKind) {
  RecordingListener listener;
  ScopedListener registration(listener);
  SharedVar<int> var;
  var.write(1);
  (void)var.read();
  ASSERT_EQ(listener.accesses.size(), 2u);
  EXPECT_EQ(listener.accesses[0].addr, var.address());
  EXPECT_TRUE(listener.accesses[0].is_write);
  EXPECT_FALSE(listener.accesses[1].is_write);
}

TEST(SharedVar, RacyUpdateEmitsReadThenWrite) {
  RecordingListener listener;
  ScopedListener registration(listener);
  SharedVar<int> var(10);
  const int result = var.racy_update([](int v) { return v + 5; });
  EXPECT_EQ(result, 15);
  EXPECT_EQ(var.peek(), 15);
  ASSERT_EQ(listener.accesses.size(), 2u);
  EXPECT_FALSE(listener.accesses[0].is_write);
  EXPECT_TRUE(listener.accesses[1].is_write);
}

TEST(SharedVar, CapturesCallSiteLocation) {
  RecordingListener listener;
  ScopedListener registration(listener);
  SharedVar<int> var;
  var.write(1);  // the location recorded must be THIS line
  ASSERT_EQ(listener.accesses.size(), 1u);
  EXPECT_NE(listener.accesses[0].loc.file.find("test_instrument.cc"),
            std::string_view::npos);
}

// ---------------------------------------------------------------------------
// TrackedMutex / TrackedLock
// ---------------------------------------------------------------------------

TEST(TrackedMutex, EmitsRequestAcquireRelease) {
  RecordingListener listener;
  ScopedListener registration(listener);
  TrackedMutex mu("test-lock");
  mu.lock();
  mu.unlock();
  ASSERT_EQ(listener.syncs.size(), 3u);
  EXPECT_EQ(listener.syncs[0].kind, SyncEvent::Kind::kLockRequest);
  EXPECT_EQ(listener.syncs[1].kind, SyncEvent::Kind::kLockAcquired);
  EXPECT_EQ(listener.syncs[2].kind, SyncEvent::Kind::kLockReleased);
  EXPECT_EQ(listener.syncs[0].obj, &mu);
}

TEST(TrackedMutex, MaintainsHeldLockStack) {
  TrackedMutex mu("csList");
  EXPECT_FALSE(rt::is_lock_held(&mu));
  mu.lock();
  EXPECT_TRUE(rt::is_lock_held(&mu));
  EXPECT_TRUE(rt::is_lock_type_held("csList"));
  mu.unlock();
  EXPECT_FALSE(rt::is_lock_held(&mu));
}

TEST(TrackedMutex, TryLockSucceedsWhenFree) {
  TrackedMutex mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_TRUE(rt::is_lock_held(&mu));
  mu.unlock();
}

TEST(TrackedMutex, TryLockFailsWhenHeldElsewhere) {
  TrackedMutex mu;
  mu.lock();
  bool other_got_it = true;
  std::thread t([&] { other_got_it = mu.try_lock(); });
  t.join();
  EXPECT_FALSE(other_got_it);
  mu.unlock();
}

TEST(TrackedMutex, ProvidesMutualExclusion) {
  TrackedMutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) {
        TrackedLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(TrackedLock, ReleasesOnScopeExit) {
  TrackedMutex mu;
  {
    TrackedLock lock(mu);
    EXPECT_TRUE(rt::is_lock_held(&mu));
  }
  EXPECT_FALSE(rt::is_lock_held(&mu));
}

TEST(TrackedLock, EarlyUnlockIsIdempotent) {
  TrackedMutex mu;
  TrackedLock lock(mu);
  lock.unlock();
  EXPECT_FALSE(rt::is_lock_held(&mu));
  lock.unlock();  // second call is a no-op; destructor must not double-unlock
}

// ---------------------------------------------------------------------------
// TrackedCondVar
// ---------------------------------------------------------------------------

TEST(TrackedCondVar, WaitForTimesOutWithFalsePredicate) {
  TrackedMutex mu;
  TrackedCondVar cv;
  TrackedLock lock(mu);
  EXPECT_FALSE(cv.wait_for(mu, 20ms, [] { return false; }));
}

TEST(TrackedCondVar, NotifyWakesWaiter) {
  TrackedMutex mu;
  TrackedCondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    TrackedLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  });
  std::this_thread::sleep_for(10ms);
  {
    TrackedLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(TrackedCondVar, HeldLockStackCorrectAcrossWait) {
  TrackedMutex mu("outer");
  TrackedCondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    TrackedLock lock(mu);
    cv.wait(mu, [&] { return ready; });
    // After the wait returns, the lock must be registered as held again.
    EXPECT_TRUE(rt::is_lock_held(&mu));
  });
  std::this_thread::sleep_for(10ms);
  {
    // While the waiter is blocked it must NOT appear to hold the lock —
    // we can verify we can acquire and are the holder.
    TrackedLock lock(mu);
    EXPECT_TRUE(rt::is_lock_held(&mu));
    ready = true;
  }
  cv.notify_all();
  waiter.join();
}

TEST(TrackedCondVar, EmitsWaitAndNotifyEvents) {
  TrackedMutex mu;
  TrackedCondVar cv;
  RecordingListener listener;
  ScopedListener registration(listener);
  {
    TrackedLock lock(mu);
    (void)cv.wait_for(mu, 5ms, [] { return false; });
  }
  cv.notify_all();
  bool saw_wait_enter = false, saw_wait_exit = false, saw_notify = false;
  for (const auto& event : listener.syncs) {
    if (event.obj != static_cast<const void*>(&cv)) continue;
    saw_wait_enter |= event.kind == SyncEvent::Kind::kWaitEnter;
    saw_wait_exit |= event.kind == SyncEvent::Kind::kWaitExit;
    saw_notify |= event.kind == SyncEvent::Kind::kNotify;
  }
  EXPECT_TRUE(saw_wait_enter);
  EXPECT_TRUE(saw_wait_exit);
  EXPECT_TRUE(saw_notify);
}

TEST(TrackedCondVar, WaitEmitsMutexReleaseAndReacquire) {
  TrackedMutex mu;
  TrackedCondVar cv;
  RecordingListener listener;
  ScopedListener registration(listener);
  {
    TrackedLock lock(mu);
    (void)cv.wait_for(mu, 5ms, [] { return false; });
  }
  int released = 0, acquired = 0;
  for (const auto& event : listener.syncs) {
    if (event.obj != static_cast<const void*>(&mu)) continue;
    released += event.kind == SyncEvent::Kind::kLockReleased;
    acquired += event.kind == SyncEvent::Kind::kLockAcquired;
  }
  // TrackedLock acquire + wait's release/reacquire + final release.
  EXPECT_EQ(released, 2);
  EXPECT_EQ(acquired, 2);
}

}  // namespace
}  // namespace cbp::instr
