// Concurrency stress test for the interned-name engine fast paths.
//
// Many threads hammer many distinct breakpoint names with a mix of
// outcomes — spec-disabled, local-reject, bound-suppressed, postponed
// timeout, and matched pairs — all concurrently.  Because every counter
// update still happens under the per-name slot mutex, the totals must be
// EXACT, not approximate: this pins down that the lock-free interning
// and spec fast paths lose no events and double-count nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

constexpr int kThreads = 8;          // paired for the match category
constexpr int kDistinct = 32;        // names per non-blocking category
constexpr std::uint64_t kIters = 40; // per-thread calls per category
constexpr std::uint64_t kTimeoutIters = 4;
constexpr std::uint64_t kMatchIters = 25;

std::string name_for(const char* category, int index) {
  std::ostringstream os;
  os << "stress-" << category << '-' << index;
  return os.str();
}

class EngineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    BreakpointSpec::clear_installed();
    Config::set_enabled(true);
    Config::set_default_timeout(100ms);
    rt::TimeScale::set(1.0);
  }

  void TearDown() override {
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
    Config::set_enabled(true);
  }
};

TEST_F(EngineStressTest, MixedOutcomesAcrossThreadsKeepExactCounters) {
  // Spec: one block of names disabled outright, one block bounded to
  // zero hits (every arrival suppressed).
  std::ostringstream spec_text;
  for (int i = 0; i < kDistinct; ++i) {
    spec_text << name_for("off", i) << " off\n";
    spec_text << name_for("bound", i) << " bound=0\n";
  }
  BreakpointSpec::parse(spec_text.str()).install();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Non-blocking categories: every thread sweeps every name.
      for (std::uint64_t i = 0; i < kIters; ++i) {
        const int index = static_cast<int>((i * kThreads + t) % kDistinct);

        // Spec-disabled: returns false before any counter is touched.
        OrderTrigger off(name_for("off", index));
        EXPECT_FALSE(off.trigger_here(true, 0ms));

        // Local predicate rejects: calls and local_rejects only.
        PredicateTrigger reject(
            name_for("reject", index), [] { return false; },
            [](const BTrigger&) { return true; });
        EXPECT_FALSE(reject.trigger_here(true, 0ms));

        // bound=0: arrival recorded, then suppressed (hits >= 0 always).
        OrderTrigger bounded(name_for("bound", index));
        EXPECT_FALSE(bounded.trigger_here(true, 0ms));
      }

      // Timeout category: a per-thread private name, so no peer ever
      // arrives and every call postpones then times out.
      for (std::uint64_t i = 0; i < kTimeoutIters; ++i) {
        OrderTrigger alone(name_for("timeout", t));
        EXPECT_FALSE(alone.trigger_here(true, 1ms));
      }

      // Match category: threads t and t^1 share a name and opposite
      // ranks; each rendezvous is its own barrier, so both sides run in
      // lockstep and every single call hits.
      const std::string match_name = name_for("match", t / 2);
      for (std::uint64_t i = 0; i < kMatchIters; ++i) {
        OrderTrigger paired(match_name);
        EXPECT_TRUE(paired.trigger_here((t & 1) == 0, 10000ms));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // --- spec-disabled names: never counted, never listed -------------
  for (int i = 0; i < kDistinct; ++i) {
    const BreakpointStats off = Engine::instance().stats(name_for("off", i));
    EXPECT_EQ(off.calls, 0u);
    EXPECT_EQ(off.arrivals, 0u);
  }

  // --- local-reject names -------------------------------------------
  // kThreads sweeps of kIters calls spread round-robin over kDistinct
  // names: kThreads * kIters / kDistinct calls per name, exactly.
  const std::uint64_t per_name = kThreads * kIters / kDistinct;
  for (int i = 0; i < kDistinct; ++i) {
    const BreakpointStats s = Engine::instance().stats(name_for("reject", i));
    EXPECT_EQ(s.calls, per_name) << "reject name " << i;
    EXPECT_EQ(s.local_rejects, per_name);
    EXPECT_EQ(s.arrivals, 0u);
    EXPECT_EQ(s.postponed, 0u);
  }

  // --- bound=0 names ------------------------------------------------
  for (int i = 0; i < kDistinct; ++i) {
    const BreakpointStats s = Engine::instance().stats(name_for("bound", i));
    EXPECT_EQ(s.calls, per_name) << "bound name " << i;
    EXPECT_EQ(s.arrivals, per_name);
    EXPECT_EQ(s.bounded, per_name);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.postponed, 0u);
  }

  // --- timeout names ------------------------------------------------
  for (int t = 0; t < kThreads; ++t) {
    const BreakpointStats s = Engine::instance().stats(name_for("timeout", t));
    EXPECT_EQ(s.calls, kTimeoutIters) << "timeout name " << t;
    EXPECT_EQ(s.postponed, kTimeoutIters);
    EXPECT_EQ(s.timeouts, kTimeoutIters);
    EXPECT_EQ(s.hits, 0u);
  }

  // --- matched pairs ------------------------------------------------
  for (int pair = 0; pair < kThreads / 2; ++pair) {
    const BreakpointStats s = Engine::instance().stats(name_for("match", pair));
    EXPECT_EQ(s.calls, 2 * kMatchIters) << "match name " << pair;
    EXPECT_EQ(s.hits, kMatchIters);
    EXPECT_EQ(s.participants, 2 * kMatchIters);
    EXPECT_EQ(s.timeouts, 0u);
    // Exactly one side of each pair postpones before its peer arrives.
    EXPECT_EQ(s.postponed, kMatchIters);
  }

  // --- global invariants over every touched name --------------------
  BreakpointStats summed;
  for (const std::string& name : Engine::instance().names()) {
    EXPECT_EQ(name.find("stress-off-"), std::string::npos)
        << "spec-disabled name leaked into names(): " << name;
    const BreakpointStats s = Engine::instance().stats(name);
    EXPECT_EQ(s.arrivals, s.calls - s.local_rejects) << name;
    EXPECT_EQ(s.participants, 2 * s.hits) << name;
    EXPECT_EQ(s.postponed, s.timeouts + s.cancelled + s.hits) << name;
    summed += s;
  }

  const BreakpointStats total = Engine::instance().total_stats();
  EXPECT_EQ(total.calls, summed.calls);
  EXPECT_EQ(total.arrivals, summed.arrivals);
  EXPECT_EQ(total.local_rejects, summed.local_rejects);
  EXPECT_EQ(total.bounded, summed.bounded);
  EXPECT_EQ(total.postponed, summed.postponed);
  EXPECT_EQ(total.timeouts, summed.timeouts);
  EXPECT_EQ(total.cancelled, summed.cancelled);
  EXPECT_EQ(total.hits, summed.hits);
  EXPECT_EQ(total.participants, summed.participants);

  const std::uint64_t expected_calls =
      static_cast<std::uint64_t>(kThreads) * kIters * 2  // reject + bound
      + static_cast<std::uint64_t>(kThreads) * kTimeoutIters
      + static_cast<std::uint64_t>(kThreads) * kMatchIters;
  EXPECT_EQ(total.calls, expected_calls);
  EXPECT_EQ(total.hits,
            static_cast<std::uint64_t>(kThreads / 2) * kMatchIters);
}

// Interning the same names from many threads at once must yield one
// record per name (no lost or duplicated stats), including when the
// names spill past the lock-free probe cells into the overflow map.
TEST_F(EngineStressTest, ConcurrentInterningIsRaceFreeAndStable) {
  constexpr int kNames = 256;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kNames; ++i) {
        PredicateTrigger bt(
            name_for("intern", i), [] { return false; },
            [](const BTrigger&) { return true; });
        bt.trigger_here(true, 0ms);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int i = 0; i < kNames; ++i) {
    const BreakpointStats s = Engine::instance().stats(name_for("intern", i));
    EXPECT_EQ(s.calls, static_cast<std::uint64_t>(kThreads)) << i;
    EXPECT_EQ(s.local_rejects, static_cast<std::uint64_t>(kThreads)) << i;
  }
  EXPECT_EQ(Engine::instance().names().size(),
            static_cast<std::size_t>(kNames));
}

}  // namespace
}  // namespace cbp
