// Regression tests for the scoped-ordering race: Waiter::scoped was
// recorded at postponement time but never read by the matcher — each
// thread instead wrote its own GroupState::uses_guard[rank] on the way
// into await_turn.  A later-ordered thread that reached await_turn
// before an earlier-ordered peer had published its scoped-ness could
// read a stale uses_guard == 0 and fall back to the order_delay path,
// breaking the "guard release gates rank k+1" contract.  try_match now
// fills uses_guard for every rank from Waiter::scoped (and from its own
// call arguments) before the group is published, so await_turn only
// ever reads immutable data.
//
// The tests below provoke the old interleaving as hard as the public
// API allows: a hit observer stalls the matcher between match and
// await_turn so the other participant always enters await_turn first,
// then we assert the later rank never proceeds before the earlier
// rank's guard is released.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class OrderingRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    Engine::instance().set_verbose(false);
    // A tiny order_delay makes the stale-read failure mode visible: if
    // the later rank ever takes the delay path instead of waiting for
    // the guard ack, it returns almost immediately.
    Config::set_order_delay(std::chrono::microseconds(100));
    Config::set_guard_wait_cap(5000ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().set_hit_observer(nullptr);
    Engine::instance().reset();
  }
};

// Scoped matcher (rank 0), plain waiter (rank 1).  The waiter postpones
// first, so at match time only the matcher knows rank 0 is scoped; under
// the old scheme the waiter could enter await_turn, read stale
// uses_guard[0] == 0, and proceed after order_delay even though the
// scoped rank-0 thread still held its guard.
TEST_F(OrderingRaceTest, PlainWaiterWaitsForScopedMatchersGuard) {
  constexpr int kIterations = 10;
  for (int i = 0; i < kIterations; ++i) {
    std::atomic<bool> guard_released{false};
    std::atomic<bool> waiter_ran_early{false};
    // Stall the matcher after try_match publishes the group but before
    // it enters await_turn — maximizing the window in which the waiter
    // observes the freshly-published uses_guard.
    Engine::instance().set_hit_observer(
        [](const HitInfo&) { std::this_thread::sleep_for(2ms); });

    int obj = 0;
    rt::Latch postponed(1);
    std::thread waiter([&] {
      ConflictTrigger t("scoped-order", &obj);
      postponed.count_down();
      // Plain (unscoped) call: rank 1, second action.
      const bool hit = t.trigger_here(false, 2000ms);
      EXPECT_TRUE(hit);
      if (hit && !guard_released.load(std::memory_order_acquire)) {
        waiter_ran_early.store(true, std::memory_order_release);
      }
    });
    postponed.wait();
    std::this_thread::sleep_for(5ms);

    ConflictTrigger t("scoped-order", &obj);
    TriggerResult r = t.trigger_here_scoped(true, 2000ms);
    ASSERT_TRUE(r.hit);
    ASSERT_TRUE(r.guard.active());
    EXPECT_EQ(r.guard.rank(), 0);
    // Hold the guard across "the next instruction" — the waiter must
    // not return from its trigger during this window.
    std::this_thread::sleep_for(3ms);
    guard_released.store(true, std::memory_order_release);
    r.guard.release();
    waiter.join();

    EXPECT_FALSE(waiter_ran_early.load())
        << "rank 1 proceeded before the scoped rank 0 released its guard "
           "(iteration "
        << i << ")";
    Engine::instance().set_hit_observer(nullptr);
    Engine::instance().reset();
  }
  const auto stats = Engine::instance().stats("scoped-order");
  EXPECT_EQ(stats.hits, 0u);  // reset() wiped them; sanity only
}

// The symmetric provocation, and the one the fixed code must get right
// *because* of Waiter::scoped: the scoped thread is the one that
// postpones (so its scoped-ness travels via the Waiter record), and the
// plain thread is the matcher.  The matcher-side await_turn(rank 1) has
// to honor the waiter's guard even though the matcher's own call was
// unscoped.
TEST_F(OrderingRaceTest, ScopedWaitersGuardGatesThePlainMatcher) {
  constexpr int kIterations = 10;
  for (int i = 0; i < kIterations; ++i) {
    std::atomic<bool> guard_released{false};
    std::atomic<bool> matcher_returned{false};

    int obj = 0;
    rt::Latch postponed(1);
    std::thread waiter([&] {
      ConflictTrigger t("scoped-waiter", &obj);
      postponed.count_down();
      // Scoped call from the *postponing* thread: its scoped-ness is
      // only visible to the matcher through Waiter::scoped.
      TriggerResult r = t.trigger_here_scoped(true, 2000ms);
      ASSERT_TRUE(r.hit);
      ASSERT_TRUE(r.guard.active());
      EXPECT_EQ(r.guard.rank(), 0);
      std::this_thread::sleep_for(3ms);
      EXPECT_FALSE(matcher_returned.load(std::memory_order_acquire))
          << "plain rank-1 matcher proceeded while scoped rank 0 still "
             "held its guard (iteration "
          << i << ")";
      guard_released.store(true, std::memory_order_release);
      r.guard.release();
    });
    postponed.wait();
    std::this_thread::sleep_for(5ms);

    ConflictTrigger t("scoped-waiter", &obj);
    const bool hit = t.trigger_here(false, 2000ms);
    EXPECT_TRUE(hit);
    matcher_returned.store(true, std::memory_order_release);
    EXPECT_TRUE(guard_released.load(std::memory_order_acquire));
    waiter.join();
    Engine::instance().reset();
  }
}

// Mixed 3-ary rendezvous: rank 0 scoped, rank 1 plain, rank 2 scoped.
// Each rank's gate must use that rank's own scoped-ness (ack for 0 and
// 2, order_delay for 1) — exercising the per-rank uses_guard fill in
// try_match's k-ary selection loop.
TEST_F(OrderingRaceTest, MixedScopedRanksReleaseInOrder) {
  std::atomic<int> release_counter{0};
  int order_rank0 = -1, order_rank1 = -1, order_rank2 = -1;

  int obj = 0;
  std::thread t0([&] {
    ConflictTrigger t("mixed-kary", &obj);
    TriggerResult r = t.trigger_here_ranked_scoped(0, 3, 2000ms);
    ASSERT_TRUE(r.hit);
    order_rank0 = release_counter.fetch_add(1);
    std::this_thread::sleep_for(2ms);
    r.guard.release();
  });
  std::thread t1([&] {
    std::this_thread::sleep_for(10ms);
    ConflictTrigger t("mixed-kary", &obj);
    EXPECT_TRUE(t.trigger_here_ranked(1, 3, 2000ms));
    order_rank1 = release_counter.fetch_add(1);
  });
  std::thread t2([&] {
    std::this_thread::sleep_for(20ms);
    ConflictTrigger t("mixed-kary", &obj);
    TriggerResult r = t.trigger_here_ranked_scoped(2, 3, 2000ms);
    ASSERT_TRUE(r.hit);
    order_rank2 = release_counter.fetch_add(1);
    r.guard.release();
  });
  t0.join();
  t1.join();
  t2.join();

  EXPECT_EQ(order_rank0, 0);
  EXPECT_EQ(order_rank1, 1);
  EXPECT_EQ(order_rank2, 2);
  const auto stats = Engine::instance().stats("mixed-kary");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, 3u);
}

}  // namespace
}  // namespace cbp
