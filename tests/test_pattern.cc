// Tests for pattern breakpoints (core/pattern.h): spec parsing and
// canonicalization, the PatternMatcher automaton driven directly (the
// slot mutex is irrelevant single-threaded), the PR 3 ordering/k-ary
// regression semantics re-stated against the extracted matcher, and the
// engine-level pattern trigger path (trigger_here_site) end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/cbp.h"
#include "core/pattern.h"
#include "core/spec.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;
using internal::GroupState;
using internal::Waiter;
using Outcome = PatternMatcher::Outcome;

// ---------------------------------------------------------------------------
// PatternSpec: parsing, canonical form, limits
// ---------------------------------------------------------------------------

TEST(PatternSpecTest, ParsesSequenceWithVariables) {
  const PatternSpec p = PatternSpec::parse("check:t1 . put:t2 . erase:t1");
  EXPECT_EQ(p.to_string(), "check:t1.put:t2.erase:t1");
  ASSERT_EQ(p.site_count(), 3u);
  EXPECT_EQ(p.site_names()[0], "check");
  EXPECT_EQ(p.site_names()[1], "put");
  EXPECT_EQ(p.site_names()[2], "erase");
  EXPECT_EQ(p.site_index("put"), 1);
  EXPECT_EQ(p.site_index("never-mentioned"), -1);
  ASSERT_EQ(p.var_names().size(), 2u);
  EXPECT_EQ(p.var_names()[0], "t1");
  EXPECT_EQ(p.var_names()[1], "t2");
  EXPECT_EQ(p.min_length(), 3u);
}

TEST(PatternSpecTest, ParsesParenthesizedSubjectsAsPartOfTheLabel) {
  const PatternSpec p = PatternSpec::parse("acq(A):t1.acq(B):t2.rel(B):t2");
  ASSERT_EQ(p.site_count(), 3u);
  EXPECT_EQ(p.site_names()[0], "acq(A)");
  EXPECT_EQ(p.site_names()[1], "acq(B)");
  EXPECT_EQ(p.site_names()[2], "rel(B)");
  EXPECT_EQ(p.min_length(), 3u);
}

TEST(PatternSpecTest, CanonicalFormRoundTrips) {
  const char* exprs[] = {
      "a:t1.b:t2",
      "acq(A):t1.acq(B):t2.rel(B):t2",
      "(a.b)|(c.d.e)",
      "a.b*.c",
  };
  for (const char* e : exprs) {
    const PatternSpec p = PatternSpec::parse(e);
    const PatternSpec again = PatternSpec::parse(p.to_string());
    EXPECT_EQ(again.to_string(), p.to_string()) << e;
    EXPECT_EQ(again.min_length(), p.min_length()) << e;
    EXPECT_EQ(again.site_names(), p.site_names()) << e;
  }
}

TEST(PatternSpecTest, AlternationTakesTheShorterBranchForMinLength) {
  const PatternSpec p = PatternSpec::parse("(a.b)|(c.d.e)");
  EXPECT_EQ(p.min_length(), 2u);
  EXPECT_EQ(p.site_count(), 5u);
}

TEST(PatternSpecTest, ClosureContributesZeroToMinLength) {
  const PatternSpec p = PatternSpec::parse("a.b*.c");
  EXPECT_EQ(p.min_length(), 2u);
}

TEST(PatternSpecTest, RejectsPatternsShorterThanTwoEvents) {
  EXPECT_THROW(PatternSpec::parse("solo"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a*"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("(a.b)*"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a|(b.c)"), std::invalid_argument);
}

TEST(PatternSpecTest, RejectsMalformedExpressions) {
  EXPECT_THROW(PatternSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a."), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a..b"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse(".a.b"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("(a.b"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a.b)"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a:"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("a.b|"), std::invalid_argument);
  EXPECT_THROW(PatternSpec::parse("acq(A:t1.b:t2"), std::invalid_argument);
}

TEST(PatternSpecTest, EnforcesSiteLimit) {
  std::string big = "s0";
  for (std::size_t i = 1; i <= PatternSpec::kMaxSites; ++i) {
    big += ".s" + std::to_string(i);
  }
  EXPECT_THROW(PatternSpec::parse(big), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PatternMatcher: the automaton, driven directly
// ---------------------------------------------------------------------------

// A trigger whose global predicate always passes (patterns never call
// it anyway; variables carry the cross-thread constraint instead).
class PatternTrigger : public BTrigger {
 public:
  explicit PatternTrigger(std::string name) : BTrigger(std::move(name)) {}
  [[nodiscard]] bool predicate_global(const BTrigger&) const override {
    return true;
  }
};

std::shared_ptr<const PatternSpec> compile(const std::string& text) {
  return std::make_shared<const PatternSpec>(PatternSpec::parse(text));
}

Waiter make_waiter(BTrigger* t, rt::ThreadId tid) {
  Waiter w;
  w.trigger = t;
  w.tid = tid;
  w.arity = 0;  // pattern waiters are invisible to the rendezvous matcher
  return w;
}

TEST(PatternMatcherTest, TwoSiteSequenceParksThenHitsInEventOrder) {
  PatternMatcher m(compile("a:t1.b:t2"), /*name_id=*/1);
  PatternTrigger t("pm");

  Waiter first = make_waiter(&t, 11);
  Outcome o1 = m.on_event(/*site=*/0, /*tid=*/11, /*scoped=*/false, t, &first);
  // After `a`, only t2 appears on reachable transitions: thread 11 must
  // park (its pause is here, like the paper's first arrival).
  ASSERT_EQ(o1.kind, Outcome::Kind::kPark);
  EXPECT_EQ(o1.progress, 1);
  EXPECT_EQ(m.live_runs(), 1u);

  Waiter second = make_waiter(&t, 22);
  Outcome o2 = m.on_event(/*site=*/1, /*tid=*/22, false, t, &second);
  ASSERT_EQ(o2.kind, Outcome::Kind::kHit);
  EXPECT_EQ(o2.rank, 1);  // caller's event consumed second
  EXPECT_EQ(o2.info.arity, 2);
  ASSERT_EQ(o2.matched.size(), 1u);
  EXPECT_EQ(o2.matched[0], &first);
  EXPECT_TRUE(first.matched);
  EXPECT_EQ(first.matched_rank, 0);
  ASSERT_NE(o2.group, nullptr);
  EXPECT_EQ(o2.group->arity, 2);
  EXPECT_EQ(o2.info.threads[0], 11u);
  EXPECT_EQ(o2.info.threads[1], 22u);
  EXPECT_EQ(m.live_runs(), 0u);  // the hit consumed the run
}

TEST(PatternMatcherTest, DistinctVariablesRequireDistinctThreads) {
  PatternMatcher m(compile("a:t1.b:t2"), 1);
  PatternTrigger t("pm");

  Waiter first = make_waiter(&t, 11);
  ASSERT_EQ(m.on_event(0, 11, false, t, &first).kind, Outcome::Kind::kPark);

  // The SAME thread firing `b` cannot bind t2 (distinct vars, distinct
  // threads).  The site is still reachable, so it parks pending rather
  // than completing a self-match.
  Waiter again = make_waiter(&t, 11);
  Outcome o = m.on_event(1, 11, false, t, &again);
  EXPECT_EQ(o.kind, Outcome::Kind::kPark);
  EXPECT_FALSE(first.matched);

  // A different thread completes it; the pending same-thread event is
  // woken resumed (the pattern finished without it).
  Waiter other = make_waiter(&t, 22);
  Outcome hit = m.on_event(1, 22, false, t, &other);
  ASSERT_EQ(hit.kind, Outcome::Kind::kHit);
  EXPECT_EQ(hit.info.arity, 2);
  ASSERT_EQ(hit.resumed.size(), 1u);
  EXPECT_EQ(hit.resumed[0], &again);
  EXPECT_TRUE(again.resumed);
}

TEST(PatternMatcherTest, SameVariableTwiceIsRecordedThenCompletedByOneThread) {
  PatternMatcher m(compile("a:t1.b:t2.c:t1"), 1);
  PatternTrigger t("pm");

  // Thread 11 fires `a`: t1 is still needed at `c`, so it is recorded
  // and continues instead of parking.
  Waiter a = make_waiter(&t, 11);
  Outcome oa = m.on_event(0, 11, false, t, &a);
  EXPECT_EQ(oa.kind, Outcome::Kind::kRecorded);

  // Thread 22 fires `b`: consumed, and t2 never appears again — parks.
  Waiter b = make_waiter(&t, 22);
  ASSERT_EQ(m.on_event(1, 22, false, t, &b).kind, Outcome::Kind::kPark);

  // Thread 11 returns with `c`: accept.  Participants are the parked
  // `b` thread plus the caller; the recorded `a` event added no waiter,
  // so the arity is 2 even though the run consumed 3 events.
  Waiter c = make_waiter(&t, 11);
  Outcome hit = m.on_event(2, 11, false, t, &c);
  ASSERT_EQ(hit.kind, Outcome::Kind::kHit);
  EXPECT_EQ(hit.progress, 3);
  EXPECT_EQ(hit.info.arity, 2);
  EXPECT_EQ(hit.rank, 1);
  EXPECT_EQ(b.matched_rank, 0);
}

TEST(PatternMatcherTest, OutOfOrderArrivalParksPendingAndCascades) {
  PatternMatcher m(compile("a:t1.b:t2.c:t1"), 1);
  PatternTrigger t("pm");

  // `c` before anything: the initial state only enables `a` — reject.
  Waiter early = make_waiter(&t, 11);
  EXPECT_EQ(m.on_event(2, 11, false, t, &early).kind, Outcome::Kind::kNoMatch);
  EXPECT_EQ(m.live_runs(), 0u);

  // `a` starts the run (recorded: t1 needed later at `c`).
  Waiter a = make_waiter(&t, 11);
  ASSERT_EQ(m.on_event(0, 11, false, t, &a).kind, Outcome::Kind::kRecorded);

  // `c` again: not yet consumable (needs `b` first) but reachable —
  // parks pending on the run.
  Waiter c = make_waiter(&t, 11);
  Outcome oc = m.on_event(2, 11, false, t, &c);
  ASSERT_EQ(oc.kind, Outcome::Kind::kPark);
  EXPECT_EQ(oc.progress, 1);

  // `b` advances, and the cascade consumes the pending `c` — accept.
  // Ranks follow consumption order: caller `b` first, cascaded `c`
  // second.
  Waiter b = make_waiter(&t, 22);
  Outcome hit = m.on_event(1, 22, false, t, &b);
  ASSERT_EQ(hit.kind, Outcome::Kind::kHit);
  EXPECT_EQ(hit.progress, 3);
  EXPECT_EQ(hit.info.arity, 2);
  EXPECT_EQ(hit.rank, 0);
  ASSERT_EQ(hit.matched.size(), 1u);
  EXPECT_EQ(hit.matched[0], &c);
  EXPECT_EQ(c.matched_rank, 1);
  // Two events consumed during this call: the caller's and the cascade.
  ASSERT_EQ(hit.advances.size(), 2u);
  EXPECT_EQ(hit.advances[0].site, 1);
  EXPECT_EQ(hit.advances[1].site, 2);
}

TEST(PatternMatcherTest, DetachAbortsTheWholeRunAndOrphansPeers) {
  PatternMatcher m(compile("a:t1.b:t2.c:t3"), 1);
  PatternTrigger t("pm");

  Waiter a = make_waiter(&t, 11);
  ASSERT_EQ(m.on_event(0, 11, false, t, &a).kind, Outcome::Kind::kPark);
  Waiter b = make_waiter(&t, 22);
  ASSERT_EQ(m.on_event(1, 22, false, t, &b).kind, Outcome::Kind::kPark);
  EXPECT_EQ(m.live_runs(), 1u);

  // Thread 11 times out: the partial match is two events deep; the
  // other parked thread is orphaned and must be woken cancelled.
  PatternMatcher::DetachResult d = m.detach(a.run, &a);
  EXPECT_TRUE(d.aborted);
  EXPECT_EQ(d.progress, 2);
  ASSERT_EQ(d.orphans.size(), 1u);
  EXPECT_EQ(d.orphans[0], &b);
  EXPECT_EQ(m.live_runs(), 0u);

  // A stale id (run already gone) is a no-op.
  PatternMatcher::DetachResult stale = m.detach(a.run, &a);
  EXPECT_FALSE(stale.aborted);
  EXPECT_TRUE(stale.orphans.empty());
}

TEST(PatternMatcherTest, AlternationAcceptsEitherBranch) {
  PatternMatcher m(compile("(a:t1.b:t2)|(c:t1.d:t2)"), 1);
  PatternTrigger t("pm");

  Waiter c = make_waiter(&t, 11);
  ASSERT_EQ(m.on_event(2, 11, false, t, &c).kind, Outcome::Kind::kPark);
  Waiter d = make_waiter(&t, 22);
  Outcome hit = m.on_event(3, 22, false, t, &d);
  ASSERT_EQ(hit.kind, Outcome::Kind::kHit);
  EXPECT_EQ(hit.info.arity, 2);
}

// ---------------------------------------------------------------------------
// PR 3 regression semantics against the extracted matcher (satellite:
// the ordering-race and k-ary edge guarantees now live behind
// match_rendezvous/await_turn, so they are pinned here directly).
// ---------------------------------------------------------------------------

TEST(RendezvousMatcherTest, UsesGuardIsFixedBeforePublicationForEveryRank) {
  ConflictTrigger waiter_t("rv", &waiter_t);
  ConflictTrigger matcher_t("rv", &waiter_t);

  // A scoped rank-0 waiter postponed first: its scoped-ness must travel
  // through Waiter::scoped into uses_guard[0] *during* the match, not
  // lazily at await_turn time (the PR 3 stale-read bug).
  Waiter w;
  w.trigger = &waiter_t;
  w.tid = 11;
  w.rank = 0;
  w.arity = 2;
  w.scoped = true;
  std::vector<Waiter*> postponed{&w};

  std::shared_ptr<GroupState> group;
  int my_rank = -1;
  HitInfo info;
  std::vector<Waiter*> chosen;
  const bool ok = PatternMatcher::match_rendezvous(
      postponed, matcher_t, /*rank=*/1, /*arity=*/2, /*scoped=*/false,
      /*my_tid=*/22, /*name_id=*/1, group, my_rank, info, chosen);
  ASSERT_TRUE(ok);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(my_rank, 1);
  EXPECT_EQ(group->uses_guard[0], 1);  // from Waiter::scoped
  EXPECT_EQ(group->uses_guard[1], 0);  // from the matcher's own call
  EXPECT_TRUE(w.matched);
  EXPECT_EQ(w.matched_rank, 0);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], &w);
  EXPECT_EQ(info.arity, 2);
  EXPECT_EQ(info.threads[0], 11u);
  EXPECT_EQ(info.threads[1], 22u);
}

TEST(RendezvousMatcherTest, SkipsCancelledWaitersAndPatternWaiters) {
  ConflictTrigger bt("rv", &bt);

  Waiter cancelled;
  cancelled.trigger = &bt;
  cancelled.tid = 1;
  cancelled.rank = 0;
  cancelled.arity = 2;
  cancelled.cancelled = true;

  Waiter pattern_waiter;  // arity 0: parked by a PatternMatcher
  pattern_waiter.trigger = &bt;
  pattern_waiter.tid = 2;
  pattern_waiter.rank = 0;
  pattern_waiter.arity = 0;

  Waiter good;
  good.trigger = &bt;
  good.tid = 3;
  good.rank = 0;
  good.arity = 2;

  std::vector<Waiter*> postponed{&cancelled, &pattern_waiter, &good};
  std::shared_ptr<GroupState> group;
  int my_rank = -1;
  HitInfo info;
  std::vector<Waiter*> chosen;
  ASSERT_TRUE(PatternMatcher::match_rendezvous(postponed, bt, 1, 2, false, 9,
                                               1, group, my_rank, info,
                                               chosen));
  EXPECT_FALSE(cancelled.matched);
  EXPECT_FALSE(pattern_waiter.matched);
  EXPECT_TRUE(good.matched);
}

TEST(RendezvousMatcherTest, RejectsOnFailedGlobalPredicate) {
  int obj_a = 0, obj_b = 0;
  ConflictTrigger waiter_t("rv", &obj_a);
  ConflictTrigger matcher_t("rv", &obj_b);  // different object: no conflict

  Waiter w;
  w.trigger = &waiter_t;
  w.tid = 1;
  w.rank = 0;
  w.arity = 2;
  std::vector<Waiter*> postponed{&w};
  std::shared_ptr<GroupState> group;
  int my_rank = -1;
  HitInfo info;
  std::vector<Waiter*> chosen;
  EXPECT_FALSE(PatternMatcher::match_rendezvous(postponed, matcher_t, 1, 2,
                                                false, 2, 1, group, my_rank,
                                                info, chosen));
  EXPECT_FALSE(w.matched);
}

TEST(RendezvousMatcherTest, AwaitTurnReleasesRanksInOrderWithMixedGuards) {
  // Rank 0 scoped (ack-gated), rank 1 plain (delay-gated), rank 2
  // scoped — the PR 3 mixed-k-ary ordering contract, straight through
  // await_turn.
  auto group = std::make_shared<GroupState>(3);
  group->match_time = rt::clock_now();
  group->uses_guard[0] = 1;
  group->uses_guard[1] = 0;
  group->uses_guard[2] = 1;

  std::atomic<int> counter{0};
  int order[3] = {-1, -1, -1};
  const auto delay = std::chrono::microseconds(200);
  const auto cap = std::chrono::duration_cast<rt::Duration>(5000ms);

  auto run_rank = [&](int rank, bool scoped) {
    PatternMatcher::await_turn(*group, rank, scoped, delay, cap);
    order[rank] = counter.fetch_add(1);
    std::this_thread::sleep_for(2ms);
    // The engine epilogue / OrderingGuard::release, inlined.
    std::scoped_lock lock(group->mu);
    group->released[static_cast<std::size_t>(rank)] = 1;
    group->release_time[static_cast<std::size_t>(rank)] = rt::clock_now();
    group->acked[static_cast<std::size_t>(rank)] = 1;
    group->cv.notify_all();
  };

  std::thread t2([&] { run_rank(2, true); });
  std::thread t1([&] { run_rank(1, false); });
  std::thread t0([&] { run_rank(0, true); });
  t0.join();
  t1.join();
  t2.join();

  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

// ---------------------------------------------------------------------------
// Engine integration: the pattern trigger path end to end
// ---------------------------------------------------------------------------

class PatternEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    Config::set_default_timeout(100ms);
    Config::set_order_delay(std::chrono::microseconds(200));
    Config::set_guard_wait_cap(5000ms);
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().set_spec({});
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
  }

  void install(const std::string& spec_text) {
    Engine::instance().set_spec(BreakpointSpec::parse(spec_text).entries());
  }
};

TEST_F(PatternEngineTest, TwoSitePatternHitsAcrossThreads) {
  install("ep pattern=first:t1.second:t2 pause=2000\n");

  TriggerResult ra, rb;
  rt::Latch parked(1);
  std::thread a([&] {
    PatternTrigger t("ep");
    parked.count_down();
    ra = t.trigger_here_site("first", 2000ms);
  });
  parked.wait();
  std::this_thread::sleep_for(5ms);
  std::thread b([&] {
    PatternTrigger t("ep");
    rb = t.trigger_here_site("second", 2000ms);
  });
  a.join();
  b.join();

  EXPECT_TRUE(ra.hit);
  EXPECT_TRUE(rb.hit);
  const auto stats = Engine::instance().stats("ep");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, 2u);
  EXPECT_GE(stats.pattern_partials, 2u);
}

TEST_F(PatternEngineTest, ThreeSitePatternForcesTheSeededOrder) {
  install("ep3 pattern=check:t1.put:t2.erase:t1 pause=2000\n");

  std::vector<int> order;
  std::mutex order_mu;
  auto mark = [&](int v) {
    std::scoped_lock lock(order_mu);
    order.push_back(v);
  };

  rt::Latch checked(1);
  std::thread evictor([&] {
    PatternTrigger t("ep3");
    TriggerResult check = t.trigger_here_site("check", 2000ms);
    EXPECT_FALSE(check.hit);  // recorded: t1 is needed again at erase
    checked.count_down();
    TriggerResult erase = t.trigger_here_site("erase", 2000ms);
    EXPECT_TRUE(erase.hit);
    mark(2);
  });
  checked.wait();
  std::this_thread::sleep_for(10ms);  // let `erase` park pending
  std::thread putter([&] {
    PatternTrigger t("ep3");
    TriggerResult put = t.trigger_here_site("put", 2000ms);
    EXPECT_TRUE(put.hit);
    mark(1);
  });
  evictor.join();
  putter.join();

  // Release order follows event order: put (rank 0 after check was
  // recorded) then erase.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  const auto stats = Engine::instance().stats("ep3");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, 2u);
}

TEST_F(PatternEngineTest, SitesAreDormantWithoutAPatternSpecEntry) {
  // No spec installed: trigger_here_site must be a pure no-op — no
  // counters, no pause (the demo's 0-hit control relies on this).
  PatternTrigger t("dormant");
  const auto before = rt::clock_now();
  TriggerResult r = t.trigger_here_site("first", 2000ms);
  EXPECT_FALSE(r.hit);
  EXPECT_LT(rt::clock_now() - before, 500ms);
  const auto stats = Engine::instance().stats("dormant");
  EXPECT_EQ(stats.calls, 0u);
  EXPECT_EQ(stats.hits, 0u);

  // Unknown site under an installed pattern: also a no-op.
  install("dormant pattern=first:t1.second:t2 pause=50\n");
  PatternTrigger t2("dormant");
  EXPECT_FALSE(t2.trigger_here_site("not-a-site", 2000ms).hit);
  EXPECT_EQ(Engine::instance().stats("dormant").calls, 0u);
}

TEST_F(PatternEngineTest, TimeoutAbortsThePartialMatch) {
  install("ep-timeout pattern=first:t1.second:t2\n");

  PatternTrigger t("ep-timeout");
  TriggerResult r = t.trigger_here_site("first", 50ms);
  EXPECT_FALSE(r.hit);
  const auto stats = Engine::instance().stats("ep-timeout");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.pattern_aborts, 1u);
  EXPECT_EQ(stats.pattern_partials, 1u);

  // The aborted run is gone: a fresh pair still matches.
  TriggerResult ra, rb;
  std::thread a([&] {
    PatternTrigger ta("ep-timeout");
    ra = ta.trigger_here_site("first", 2000ms);
  });
  std::this_thread::sleep_for(10ms);
  std::thread b([&] {
    PatternTrigger tb("ep-timeout");
    rb = tb.trigger_here_site("second", 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(ra.hit);
  EXPECT_TRUE(rb.hit);
}

TEST_F(PatternEngineTest, OutOfOrderSecondSiteIsAPatternReject) {
  install("ep-order pattern=first:t1.second:t2 pause=50\n");

  PatternTrigger t("ep-order");
  const auto before = rt::clock_now();
  TriggerResult r = t.trigger_here_site("second", 2000ms);
  EXPECT_FALSE(r.hit);
  // Strict pattern order: no run could start, so no pause was paid.
  EXPECT_LT(rt::clock_now() - before, 500ms);
  const auto stats = Engine::instance().stats("ep-order");
  EXPECT_EQ(stats.pattern_rejects, 1u);
  EXPECT_EQ(stats.postponed, 0u);
}

TEST_F(PatternEngineTest, LocalPredicateScreensBeforeTheAutomaton) {
  install("ep-local pattern=first:t1.second:t2 pause=50\n");

  class GatedTrigger : public PatternTrigger {
   public:
    using PatternTrigger::PatternTrigger;
    bool gate = false;
    [[nodiscard]] bool predicate_local() const override { return gate; }
  };
  GatedTrigger t("ep-local");
  EXPECT_FALSE(t.trigger_here_site("first", 2000ms).hit);
  const auto stats = Engine::instance().stats("ep-local");
  EXPECT_EQ(stats.local_rejects, 1u);
  EXPECT_EQ(stats.pattern_partials, 0u);
}

TEST_F(PatternEngineTest, ScopedGuardGatesPatternRanks) {
  install("ep-guard pattern=first:t1.second:t2 pause=2000\n");

  std::atomic<bool> guard_released{false};
  std::atomic<bool> second_ran_early{false};
  rt::Latch parked(1);
  std::thread first([&] {
    PatternTrigger t("ep-guard");
    parked.count_down();
    TriggerResult r = Engine::current().trigger_site(
        t, "first", std::chrono::microseconds(2'000'000), /*scoped=*/true);
    ASSERT_TRUE(r.hit);
    ASSERT_TRUE(r.guard.active());
    EXPECT_EQ(r.guard.rank(), 0);
    std::this_thread::sleep_for(3ms);
    guard_released.store(true, std::memory_order_release);
    r.guard.release();
  });
  parked.wait();
  std::this_thread::sleep_for(5ms);
  std::thread second([&] {
    PatternTrigger t("ep-guard");
    TriggerResult r = t.trigger_here_site("second", 2000ms);
    EXPECT_TRUE(r.hit);
    if (r.hit && !guard_released.load(std::memory_order_acquire)) {
      second_ran_early.store(true, std::memory_order_release);
    }
  });
  first.join();
  second.join();
  EXPECT_FALSE(second_ran_early.load())
      << "rank 1 proceeded before the scoped rank 0 released its guard";
}

}  // namespace
}  // namespace cbp
