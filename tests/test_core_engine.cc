// Tests for the BTRIGGER engine: matching, postponement, timeout,
// ordering, refinements, cancellation, statistics, and the k-ary
// generalization.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    Config::set_default_timeout(100ms);
    Config::set_order_delay(std::chrono::microseconds(200));
    Config::set_guard_wait_cap(5000ms);
    rt::TimeScale::set(1.0);
  }

  void TearDown() override {
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
  }
};

// A sequence recorder for ordering assertions.
class Sequence {
 public:
  void push(int v) {
    std::scoped_lock lock(mu_);
    values_.push_back(v);
  }
  std::vector<int> values() {
    std::scoped_lock lock(mu_);
    return values_;
  }

 private:
  std::mutex mu_;
  std::vector<int> values_;
};

// ---------------------------------------------------------------------------
// Basic matching
// ---------------------------------------------------------------------------

TEST_F(EngineTest, HitWhenBothSidesArriveOnSameObject) {
  int obj = 0;
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    ConflictTrigger t("bp", &obj);
    hit_a = t.trigger_here(true, 2000ms);
  });
  std::thread b([&] {
    ConflictTrigger t("bp", &obj);
    hit_b = t.trigger_here(false, 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, 2u);
}

TEST_F(EngineTest, NoHitOnDifferentObjects) {
  int obj1 = 0, obj2 = 0;
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    ConflictTrigger t("bp", &obj1);
    hit_a = t.trigger_here(true, 50ms);
  });
  std::thread b([&] {
    ConflictTrigger t("bp", &obj2);
    hit_b = t.trigger_here(false, 50ms);
  });
  a.join();
  b.join();
  EXPECT_FALSE(hit_a);
  EXPECT_FALSE(hit_b);
  EXPECT_EQ(Engine::instance().stats("bp").hits, 0u);
  EXPECT_EQ(Engine::instance().stats("bp").timeouts, 2u);
}

TEST_F(EngineTest, NoHitOnDifferentNames) {
  int obj = 0;
  bool hit_a = false, hit_b = false;
  std::thread a([&] {
    ConflictTrigger t("bp-one", &obj);
    hit_a = t.trigger_here(true, 50ms);
  });
  std::thread b([&] {
    ConflictTrigger t("bp-two", &obj);
    hit_b = t.trigger_here(false, 50ms);
  });
  a.join();
  b.join();
  EXPECT_FALSE(hit_a);
  EXPECT_FALSE(hit_b);
}

TEST_F(EngineTest, SameThreadCannotMatchItself) {
  int obj = 0;
  ConflictTrigger first("bp", &obj);
  // Single thread calling twice sequentially: the first call times out
  // before the second begins, so there is never a concurrent peer.
  EXPECT_FALSE(first.trigger_here(true, 20ms));
  ConflictTrigger second("bp", &obj);
  EXPECT_FALSE(second.trigger_here(false, 20ms));
  EXPECT_EQ(Engine::instance().stats("bp").hits, 0u);
}

TEST_F(EngineTest, TimeoutWhenAlone) {
  int obj = 0;
  ConflictTrigger t("bp", &obj);
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 60ms));
  EXPECT_GE(sw.elapsed_us(), 50'000);
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.postponed, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_GE(stats.total_wait_us, 50'000);
}

TEST_F(EngineTest, TimeScaleShortensPostponement) {
  rt::ScopedTimeScale scale(0.1);
  int obj = 0;
  ConflictTrigger t("bp", &obj);
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 200ms));  // scaled to 20ms
  EXPECT_LT(sw.elapsed_us(), 150'000);
}

TEST_F(EngineTest, DisabledBreakpointsAreNoops) {
  Config::set_enabled(false);
  int obj = 0;
  ConflictTrigger t("bp", &obj);
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 1000ms));
  EXPECT_LT(sw.elapsed_us(), 50'000);  // no postponement at all
  EXPECT_EQ(Engine::instance().stats("bp").calls, 0u);
}

TEST_F(EngineTest, LocalPredicateFalseSkipsPostponement) {
  PredicateTrigger t(
      "bp", [] { return false; },
      [](const BTrigger&) { return true; });
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 1000ms));
  EXPECT_LT(sw.elapsed_us(), 50'000);
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.local_rejects, 1u);
  EXPECT_EQ(stats.postponed, 0u);
}

// ---------------------------------------------------------------------------
// Ordering semantics
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ScopedOrderingFirstActionExecutesFirst) {
  for (int round = 0; round < 10; ++round) {
    Engine::instance().reset();
    int obj = 0;
    Sequence seq;
    std::thread first([&] {
      ConflictTrigger t("bp", &obj);
      auto result = t.trigger_here_scoped(true, 2000ms);
      ASSERT_TRUE(result.hit);
      seq.push(1);  // the "next instruction" of the first-action thread
      result.guard.release();
      seq.push(11);
    });
    std::thread second([&] {
      ConflictTrigger t("bp", &obj);
      auto result = t.trigger_here_scoped(false, 2000ms);
      ASSERT_TRUE(result.hit);
      seq.push(2);
      result.guard.release();
    });
    first.join();
    second.join();
    const auto values = seq.values();
    ASSERT_GE(values.size(), 2u);
    EXPECT_EQ(values[0], 1) << "round " << round;
  }
}

TEST_F(EngineTest, ScopedOrderingHoldsSecondUntilGuardDestroyed) {
  int obj = 0;
  rt::TimePoint first_released_at{};
  rt::TimePoint second_resumed_at{};
  std::thread first([&] {
    ConflictTrigger t("bp", &obj);
    auto result = t.trigger_here_scoped(true, 2000ms);
    ASSERT_TRUE(result.hit);
    std::this_thread::sleep_for(50ms);  // long "next instruction"
    first_released_at = rt::Clock::now();
    result.guard.release();
  });
  std::thread second([&] {
    ConflictTrigger t("bp", &obj);
    auto result = t.trigger_here_scoped(false, 2000ms);
    ASSERT_TRUE(result.hit);
    second_resumed_at = rt::Clock::now();
  });
  first.join();
  second.join();
  EXPECT_GE(second_resumed_at, first_released_at);
}

TEST_F(EngineTest, PlainOrderingDelaysSecondThread) {
  Config::set_order_delay(std::chrono::microseconds(30'000));
  int obj = 0;
  std::atomic<bool> first_returned{false};
  std::atomic<bool> second_saw_first{false};
  std::thread first([&] {
    ConflictTrigger t("bp", &obj);
    ASSERT_TRUE(t.trigger_here(true, 2000ms));
    first_returned = true;
  });
  std::thread second([&] {
    ConflictTrigger t("bp", &obj);
    ASSERT_TRUE(t.trigger_here(false, 2000ms));
    second_saw_first = first_returned.load();
  });
  first.join();
  second.join();
  EXPECT_TRUE(second_saw_first.load());
}

TEST_F(EngineTest, SameDeclaredRankStillMatches) {
  // Both sites passed is_first=true (a plausible user slip); the engine
  // orders the earlier-postponed thread first instead of dropping the hit.
  int obj = 0;
  bool hit_a = false, hit_b = false;
  rt::Latch a_postponed(1);
  std::thread a([&] {
    ConflictTrigger t("bp", &obj);
    a_postponed.count_down();
    hit_a = t.trigger_here(true, 2000ms);
  });
  a_postponed.wait();
  std::this_thread::sleep_for(20ms);
  std::thread b([&] {
    ConflictTrigger t("bp", &obj);
    hit_b = t.trigger_here(true, 2000ms);
  });
  a.join();
  b.join();
  EXPECT_TRUE(hit_a);
  EXPECT_TRUE(hit_b);
}

TEST_F(EngineTest, LeakedGuardDegradesToCapNotHang) {
  Config::set_guard_wait_cap(100ms);
  int obj = 0;
  OrderingGuard leaked;
  std::thread first([&] {
    ConflictTrigger t("bp", &obj);
    auto result = t.trigger_here_scoped(true, 2000ms);
    ASSERT_TRUE(result.hit);
    leaked = std::move(result.guard);  // never released inside this thread
  });
  rt::Stopwatch sw;
  std::thread second([&] {
    ConflictTrigger t("bp", &obj);
    ASSERT_TRUE(t.trigger_here(false, 2000ms));
  });
  first.join();
  second.join();
  EXPECT_LT(sw.elapsed_us(), 2'000'000);  // capped, not hung
  leaked.release();
}

// ---------------------------------------------------------------------------
// Refinements (paper §6.3)
// ---------------------------------------------------------------------------

TEST_F(EngineTest, BoundStopsParticipationAfterNHits) {
  int obj = 0;
  // First pair hits.
  std::thread a([&] {
    ConflictTrigger t("bp", &obj);
    t.bound(1);
    EXPECT_TRUE(t.trigger_here(true, 2000ms));
  });
  std::thread b([&] {
    ConflictTrigger t("bp", &obj);
    t.bound(1);
    EXPECT_TRUE(t.trigger_here(false, 2000ms));
  });
  a.join();
  b.join();
  // Further calls are suppressed instantly.
  ConflictTrigger t("bp", &obj);
  t.bound(1);
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 1000ms));
  EXPECT_LT(sw.elapsed_us(), 100'000);
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bounded, 1u);
}

TEST_F(EngineTest, IgnoreFirstSkipsEarlyPostponements) {
  int obj = 0;
  rt::Stopwatch sw;
  for (int i = 0; i < 5; ++i) {
    ConflictTrigger t("bp", &obj);
    t.ignore_first(5);
    EXPECT_FALSE(t.trigger_here(true, 1000ms));
  }
  // Five 1 s timeouts would take 5 s; ignored arrivals return immediately.
  EXPECT_LT(sw.elapsed_us(), 500'000);
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.ignored, 5u);
  EXPECT_EQ(stats.postponed, 0u);
}

TEST_F(EngineTest, IgnoredArrivalNeverMatchesNorPostpones) {
  // An arrival inside the ignore_first window is skipped entirely: it
  // must not complete a match against a postponed peer (it used to —
  // the ignore check ran after try_match), and it must not postpone.
  int obj = 0;
  rt::Latch postponed(1);
  std::thread waiter([&] {
    ConflictTrigger t("bp", &obj);  // no refinement: this one postpones
    postponed.count_down();
    EXPECT_FALSE(t.trigger_here(true, 200ms));  // times out: peer ignored
  });
  postponed.wait();
  std::this_thread::sleep_for(20ms);
  ConflictTrigger t("bp", &obj);
  t.ignore_first(1'000'000);  // every arrival falls in the window
  EXPECT_FALSE(t.trigger_here(false, 10ms));
  waiter.join();
  const BreakpointStats stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.ignored, 1u);
  EXPECT_EQ(stats.postponed, 1u);  // only the unrefined waiter
  EXPECT_EQ(stats.timeouts, 1u);
}

// ---------------------------------------------------------------------------
// Cancellation / reset
// ---------------------------------------------------------------------------

TEST_F(EngineTest, CancelAllWakesPostponedThreadEarly) {
  int obj = 0;
  rt::Latch postponed(1);
  rt::Stopwatch sw;
  std::thread waiter([&] {
    ConflictTrigger t("bp", &obj);
    postponed.count_down();
    EXPECT_FALSE(t.trigger_here(true, 5000ms));
  });
  postponed.wait();
  std::this_thread::sleep_for(20ms);
  Engine::instance().cancel_all();
  waiter.join();
  EXPECT_LT(sw.elapsed_us(), 2'000'000);
  EXPECT_EQ(Engine::instance().stats("bp").cancelled, 1u);
}

TEST_F(EngineTest, ResetClearsStatistics) {
  int obj = 0;
  ConflictTrigger t("bp", &obj);
  EXPECT_FALSE(t.trigger_here(true, 10ms));
  EXPECT_EQ(Engine::instance().stats("bp").calls, 1u);
  Engine::instance().reset();
  EXPECT_EQ(Engine::instance().stats("bp").calls, 0u);
  EXPECT_TRUE(Engine::instance().names().empty());
}

TEST_F(EngineTest, NamesListsAllSlotsSorted) {
  int obj = 0;
  ConflictTrigger b("b-bp", &obj);
  ConflictTrigger a("a-bp", &obj);
  (void)b.trigger_here(true, 1ms);
  (void)a.trigger_here(true, 1ms);
  const auto names = Engine::instance().names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a-bp");
  EXPECT_EQ(names[1], "b-bp");
}

TEST_F(EngineTest, TotalStatsAggregatesAcrossNames) {
  int obj = 0;
  ConflictTrigger a("one", &obj);
  ConflictTrigger b("two", &obj);
  (void)a.trigger_here(true, 1ms);
  (void)b.trigger_here(true, 1ms);
  const auto total = Engine::instance().total_stats();
  EXPECT_EQ(total.calls, 2u);
  EXPECT_EQ(total.timeouts, 2u);
}

// ---------------------------------------------------------------------------
// Hit observer
// ---------------------------------------------------------------------------

TEST_F(EngineTest, HitObserverReceivesHitInfo) {
  std::mutex mu;
  std::vector<HitInfo> hits;
  Engine::instance().set_hit_observer([&](const HitInfo& info) {
    std::scoped_lock lock(mu);
    hits.push_back(info);
  });
  int obj = 0;
  std::thread a([&] {
    ConflictTrigger t("observed-bp", &obj);
    EXPECT_TRUE(t.trigger_here(true, 2000ms));
  });
  std::thread b([&] {
    ConflictTrigger t("observed-bp", &obj);
    EXPECT_TRUE(t.trigger_here(false, 2000ms));
  });
  a.join();
  b.join();
  std::scoped_lock lock(mu);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].name, "observed-bp");
  EXPECT_EQ(hits[0].arity, 2);
  ASSERT_EQ(hits[0].threads.size(), 2u);
  EXPECT_NE(hits[0].threads[0], hits[0].threads[1]);
  EXPECT_NE(hits[0].description.find("Conflict"), std::string::npos);
}

// ---------------------------------------------------------------------------
// k-ary generalization
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ThreeWayRendezvousHits) {
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 3; ++rank) {
    threads.emplace_back([&, rank] {
      OrderTrigger t("three-way");
      if (t.trigger_here_ranked(rank, 3, 2000ms)) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 3);
  EXPECT_EQ(Engine::instance().stats("three-way").hits, 1u);
}

TEST_F(EngineTest, ThreeWayRendezvousRespectsRankOrder) {
  for (int round = 0; round < 5; ++round) {
    Engine::instance().reset();
    Sequence seq;
    std::vector<std::thread> threads;
    for (int rank = 0; rank < 3; ++rank) {
      threads.emplace_back([&, rank] {
        OrderTrigger t("three-way");
        auto result = t.trigger_here_ranked_scoped(rank, 3, 2000ms);
        ASSERT_TRUE(result.hit);
        seq.push(rank);
        result.guard.release();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(seq.values(), (std::vector<int>{0, 1, 2})) << "round " << round;
  }
}

TEST_F(EngineTest, ThreeWayDoesNotFireWithOnlyTwoThreads) {
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 2; ++rank) {
    threads.emplace_back([&, rank] {
      OrderTrigger t("three-way");
      if (t.trigger_here_ranked(rank, 3, 100ms)) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.load(), 0);
}

TEST_F(EngineTest, MixedAritiesDoNotCrossMatch) {
  std::atomic<int> hits{0};
  std::thread a([&] {
    OrderTrigger t("mixed");
    if (t.trigger_here_ranked(0, 3, 100ms)) hits.fetch_add(1);
  });
  std::thread b([&] {
    OrderTrigger t("mixed");
    if (t.trigger_here(false, 100ms)) hits.fetch_add(1);
  });
  a.join();
  b.join();
  EXPECT_EQ(hits.load(), 0);
}

// ---------------------------------------------------------------------------
// Repeated hits and multiple pairs
// ---------------------------------------------------------------------------

TEST_F(EngineTest, BreakpointHitsRepeatedlyAcrossIterations) {
  int obj = 0;
  constexpr int kIterations = 20;
  std::atomic<int> hits_a{0}, hits_b{0};
  std::thread a([&] {
    for (int i = 0; i < kIterations; ++i) {
      ConflictTrigger t("loop-bp", &obj);
      if (t.trigger_here(true, 2000ms)) hits_a.fetch_add(1);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < kIterations; ++i) {
      ConflictTrigger t("loop-bp", &obj);
      if (t.trigger_here(false, 2000ms)) hits_b.fetch_add(1);
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(hits_a.load(), kIterations);
  EXPECT_EQ(hits_b.load(), kIterations);
  EXPECT_EQ(Engine::instance().stats("loop-bp").hits,
            static_cast<std::uint64_t>(kIterations));
}

TEST_F(EngineTest, FourThreadsFormTwoDistinctPairs) {
  int obj_x = 0, obj_y = 0;
  std::atomic<int> hits{0};
  auto worker = [&](const void* obj, bool first) {
    ConflictTrigger t("pairs", obj);
    if (t.trigger_here(first, 2000ms)) hits.fetch_add(1);
  };
  std::thread a(worker, &obj_x, true);
  std::thread b(worker, &obj_x, false);
  std::thread c(worker, &obj_y, true);
  std::thread d(worker, &obj_y, false);
  a.join();
  b.join();
  c.join();
  d.join();
  EXPECT_EQ(hits.load(), 4);
  EXPECT_EQ(Engine::instance().stats("pairs").hits, 2u);
}

// ---------------------------------------------------------------------------
// Cold-spec pre-screen invalidation (DESIGN.md 5i)
// ---------------------------------------------------------------------------

// A spec with an exhausted bound publishes a sticky "cold" marker on the
// interned record so later armed calls skip even the hits load.  The
// marker is keyed by spec-entry identity: installing a NEW spec for the
// same name (after trigger objects have long cached the record) must
// drop it — a stale fast-path reject would silently disarm the freshly
// configured breakpoint.
TEST_F(EngineTest, NewSpecGenerationInvalidatesColdBoundPreScreen) {
  int obj = 0;
  {
    std::unordered_map<std::string, SpecOverride> spec;
    spec["bp"].bound = 0;  // hit budget already exhausted
    Engine::instance().set_spec(spec);
  }
  // Reused trigger: the record (and the sticky) cache stays warm.
  ConflictTrigger t("bp", &obj);
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 1000ms));
  EXPECT_FALSE(t.trigger_here(true, 1000ms));  // sticky fast path
  EXPECT_LT(sw.elapsed_us(), 100'000);
  EXPECT_EQ(Engine::instance().stats("bp").bounded, 2u);

  // Lift the bound by installing a new generation: the same cached
  // record must rendezvous again immediately.
  {
    std::unordered_map<std::string, SpecOverride> spec;
    spec["bp"].bound = 8;
    Engine::instance().set_spec(spec);
  }
  std::thread a([&] {
    ConflictTrigger x("bp", &obj);
    EXPECT_TRUE(x.trigger_here(true, 2000ms));
  });
  std::thread b([&] {
    ConflictTrigger y("bp", &obj);
    EXPECT_TRUE(y.trigger_here(false, 2000ms));
  });
  a.join();
  b.join();
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bounded, 2u);  // no new bounded-out rejects
}

TEST_F(EngineTest, ClearingSpecRestoresParticipation) {
  int obj = 0;
  {
    std::unordered_map<std::string, SpecOverride> spec;
    spec["bp"].bound = 0;
    Engine::instance().set_spec(spec);
  }
  ConflictTrigger t("bp", &obj);
  EXPECT_FALSE(t.trigger_here(true, 1000ms));
  EXPECT_EQ(Engine::instance().stats("bp").bounded, 1u);

  // Remove the spec entirely: the programmatic default (no bound) rules
  // again, so a lone arrival postpones for its timeout instead of being
  // bounded out by a leftover sticky.
  Engine::instance().set_spec({});
  rt::Stopwatch sw;
  EXPECT_FALSE(t.trigger_here(true, 60ms));
  EXPECT_GE(sw.elapsed_us(), 50'000);  // actually waited: participated
  const auto stats = Engine::instance().stats("bp");
  EXPECT_EQ(stats.postponed, 1u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.bounded, 1u);
}

// `flip` is defined for binary ranks only: spec parsing rejects
// flip+pattern outright, but a k-ary trigger under a flip entry can
// only be caught at trigger time.  It must warn once (not per call),
// leave the rank unflipped, and otherwise behave normally.
TEST_F(EngineTest, FlipOnNonBinaryArityWarnsOnceAndIsIgnored) {
  int obj = 0;
  {
    std::unordered_map<std::string, SpecOverride> spec;
    spec["flip-kary"].flip_order = true;
    Engine::instance().set_spec(spec);
  }
  ConflictTrigger t("flip-kary", &obj);

  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(t.trigger_here_ranked(0, 3, 20ms));  // lone arrival: timeout
  const std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("flip"), std::string::npos) << first;
  EXPECT_NE(first.find("flip-kary"), std::string::npos) << first;
  EXPECT_NE(first.find("arity 3"), std::string::npos) << first;

  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(t.trigger_here_ranked(0, 3, 20ms));
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");  // once only

  // The flip was ignored, not half-applied: both calls participated as
  // rank 0 of 3 and timed out like any lone k-ary arrival.
  const auto stats = Engine::instance().stats("flip-kary");
  EXPECT_EQ(stats.postponed, 2u);
  EXPECT_EQ(stats.timeouts, 2u);
  Engine::instance().set_spec({});
}

}  // namespace
}  // namespace cbp
