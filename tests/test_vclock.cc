// Virtual-time trial execution (DESIGN.md §5g).
//
// Three layers of coverage:
//   * TimeScale floor clamps (degenerate scales must not produce
//     negative or sub-nanosecond kernel waits);
//   * VirtualClock scheduler unit tests — fast-forward order by
//     (deadline, registration seq), the starvation rule (a running or
//     untimed-waiting thread is never fast-forwarded past), notify vs
//     expiry, the real-time stall guard for untracked blocking;
//   * whole-trial determinism — the same seed produces identical
//     BreakpointStats counters under real/scaled/virtual clocks on the
//     cache4j and jigsaw replicas, identical obs event *order* across
//     repeated virtual runs, and identical per-trial verdicts across
//     --trial-jobs=1 vs 8.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/cache/cache.h"
#include "apps/webserver/jigsaw.h"
#include "core/engine.h"
#include "core/stats.h"
#include "harness/experiment.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/thread_registry.h"
#include "runtime/vclock.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// TimeScale floors (degenerate scale / nominal values)
// ---------------------------------------------------------------------------

TEST(TimeScaleFloorTest, NonPositiveScaleYieldsZero) {
  EXPECT_EQ(rt::TimeScale::apply_scale(1ms, 0.0), rt::Duration::zero());
  EXPECT_EQ(rt::TimeScale::apply_scale(1ms, -2.5), rt::Duration::zero());
  EXPECT_EQ(rt::TimeScale::apply_scale(1ms, std::nan("")),
            rt::Duration::zero());
}

TEST(TimeScaleFloorTest, NonPositiveNominalYieldsZero) {
  EXPECT_EQ(rt::TimeScale::apply_scale(rt::Duration::zero(), 2.0),
            rt::Duration::zero());
  EXPECT_EQ(rt::TimeScale::apply_scale(-1ms, 2.0), rt::Duration::zero());
}

TEST(TimeScaleFloorTest, SubNanosecondResultFloorsToOneNanosecond) {
  // 100ns * 1e-6 = 0.0001ns: a naive cast truncates to a zero-length
  // kernel wait, turning a "brief pause" into a busy spin at the call
  // site.  The documented floor is 1ns.
  EXPECT_EQ(rt::TimeScale::apply_scale(std::chrono::nanoseconds(100), 1e-6),
            std::chrono::nanoseconds(1));
  EXPECT_EQ(rt::TimeScale::apply_scale(1ms, 1e-12),
            std::chrono::nanoseconds(1));
}

TEST(TimeScaleFloorTest, OrdinaryScalesAreExact) {
  EXPECT_EQ(rt::TimeScale::apply_scale(1ms, 0.001),
            std::chrono::microseconds(1));
  EXPECT_EQ(rt::TimeScale::apply_scale(100ms, 2.0), 200ms);
  EXPECT_EQ(rt::TimeScale::apply_scale(100ms, 1.0), 100ms);
}

// ---------------------------------------------------------------------------
// VirtualClock scheduler
// ---------------------------------------------------------------------------

TEST(VirtualClockTest, SleepAdvancesVirtualTimeNotRealTime) {
  rt::VirtualClock vc;
  const auto real_start = std::chrono::steady_clock::now();
  {
    rt::ScopedClock bind(&vc);
    rt::clock_sleep_for(10s);  // ten *virtual* seconds
  }
  const auto real_elapsed = std::chrono::steady_clock::now() - real_start;
  EXPECT_EQ(vc.now_ns(), 10'000'000'000);
  EXPECT_EQ(vc.advances(), 1u);
  EXPECT_LT(real_elapsed, 5s);  // generous CI slack; the sleep was free
}

TEST(VirtualClockTest, FastForwardWakesByDeadlineThenRegistrationOrder) {
  rt::VirtualClock vc;
  std::vector<int> order;  // writes serialized by the clock's run grant
  {
    rt::ScopedClock bind(&vc);
    rt::Thread a([&] { rt::clock_sleep_for(30ms); order.push_back(0); });
    rt::Thread b([&] { rt::clock_sleep_for(10ms); order.push_back(1); });
    rt::Thread c([&] { rt::clock_sleep_for(10ms); order.push_back(2); });
    rt::Thread d([&] { rt::clock_sleep_for(20ms); order.push_back(3); });
    a.join();
    b.join();
    c.join();
    d.join();
  }
  // Earliest deadline first; the 10ms tie resolves by wait registration
  // order, which is creation order here (children run FIFO).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
  EXPECT_EQ(vc.now_ns(), 30'000'000);
  EXPECT_EQ(vc.advances(), 3u);  // 10ms, 20ms, 30ms (the tie is no advance)
}

TEST(VirtualClockTest, RunningThreadIsNeverFastForwardedPast) {
  rt::VirtualClock vc;
  {
    rt::ScopedClock bind(&vc);
    std::atomic<bool> child_ran{false};
    rt::Thread sleeper([&] {
      rt::clock_sleep_for(10ms);
      child_ran.store(true);
    });
    // This thread holds the run grant and never blocks.  The starvation
    // rule: virtual time must not move while anything is runnable, no
    // matter how much real time passes.
    const auto spin_until = std::chrono::steady_clock::now() + 50ms;
    while (std::chrono::steady_clock::now() < spin_until) {
    }
    EXPECT_EQ(vc.now_ns(), 0);
    EXPECT_EQ(vc.advances(), 0u);
    EXPECT_FALSE(child_ran.load());
    sleeper.join();  // now we block; the sleeper runs and expires
    EXPECT_TRUE(child_ran.load());
  }
  EXPECT_EQ(vc.now_ns(), 10'000'000);
}

TEST(VirtualClockTest, UntimedWaitResolvesByNotifyWithoutAdvancingTime) {
  rt::VirtualClock vc;
  {
    rt::ScopedClock bind(&vc);
    std::mutex mu;
    std::condition_variable cv;
    bool flag = false;
    rt::Thread waiter([&] {
      std::unique_lock lock(mu);
      rt::clock_wait(cv, lock, [&] { return flag; });
    });
    {
      std::scoped_lock lock(mu);
      flag = true;
    }
    rt::clock_notify_all(cv);
    waiter.join();
  }
  // An untimed wait has no deadline for the clock to fast-forward to.
  EXPECT_EQ(vc.now_ns(), 0);
  EXPECT_EQ(vc.advances(), 0u);
}

TEST(VirtualClockTest, NotifyWakesTimedWaiterBeforeItsDeadline) {
  rt::VirtualClock vc;
  bool timed_out = true;
  {
    rt::ScopedClock bind(&vc);
    std::mutex mu;
    std::condition_variable cv;
    bool flag = false;
    rt::Thread waiter([&] {
      std::unique_lock lock(mu);
      timed_out = !rt::clock_wait_for(cv, lock, 50ms, [&] { return flag; });
    });
    rt::clock_sleep_for(1ms);  // yield so the waiter registers its wait
    {
      std::scoped_lock lock(mu);
      flag = true;
    }
    rt::clock_notify_all(cv);
    waiter.join();
  }
  EXPECT_FALSE(timed_out);
  // Time stopped at our 1ms sleep, not the waiter's 50ms deadline.
  EXPECT_EQ(vc.now_ns(), 1'000'000);
}

TEST(VirtualClockTest, TimedWaitExpiresAtExactlyItsVirtualDeadline) {
  rt::VirtualClock vc;
  bool timed_out = false;
  {
    rt::ScopedClock bind(&vc);
    std::mutex mu;
    std::condition_variable cv;
    rt::Thread waiter([&] {
      std::unique_lock lock(mu);
      timed_out = !rt::clock_wait_for(cv, lock, 20ms, [] { return false; });
    });
    waiter.join();
  }
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(vc.now_ns(), 20'000'000);
}

TEST(VirtualClockTest, UniqueStampsAreStrictlyMonotonic) {
  rt::VirtualClock vc;
  std::int64_t prev = -1;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t stamp = vc.unique_now_ns();
    EXPECT_GT(stamp, prev);
    prev = stamp;
  }
  rt::ScopedClock bind(&vc);
  rt::clock_sleep_for(1ms);
  EXPECT_GE(vc.unique_now_ns(), 1'000'000);
}

TEST(VirtualClockTest, StopwatchFollowsTheBoundClock) {
  rt::VirtualClock vc;
  rt::ScopedClock bind(&vc);
  rt::Stopwatch watch;
  rt::clock_sleep_for(2s);
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 2.0);
}

TEST(VirtualClockTest, UntrackedBlockingTripsTheStallGuard) {
  const auto saved_guard = rt::VirtualClock::stall_guard();
  rt::VirtualClock::set_stall_guard(100ms);
  {
    rt::VirtualClock vc;
    rt::ScopedClock bind(&vc);
    rt::Thread sleeper([&] {
      // Deliberately bypasses the clock: a kernel sleep while holding
      // the run grant.  Every other attached thread starves in real
      // time, which is exactly what the guard exists to diagnose.
      std::this_thread::sleep_for(400ms);
    });
    EXPECT_THROW(sleeper.join(), rt::VirtualClockStall);
    std::this_thread::sleep_for(500ms);  // let the sleeper finish & detach
    sleeper.join();  // exit flag set by now; the native join completes
  }
  rt::VirtualClock::set_stall_guard(saved_guard);
}

// ---------------------------------------------------------------------------
// Whole-trial determinism across clock modes
// ---------------------------------------------------------------------------

/// Everything observable about one trial that determinism claims cover.
struct TrialRecord {
  BreakpointStats stats;
  bool buggy = false;
  /// Canonical event sequence in trace order: kind/name/rank/detail plus
  /// the thread normalized by order of first appearance and the virtual
  /// timestamp.  Comparable across runs of the *same* clock mode.
  std::vector<std::string> ordered;
  /// The same events as a sorted multiset without thread or timestamp:
  /// comparable across clock *modes*, where kernel timing may swap which
  /// worker postpones and which one matches (the set of transitions is
  /// schedule-invariant even when their interleaving is not).
  std::vector<std::string> content;
};

void canonicalize(const obs::TraceSnapshot& snapshot, TrialRecord& record) {
  std::unordered_map<rt::ThreadId, int> tids;
  for (const obs::Event& event : snapshot.events) {
    const auto [it, inserted] =
        tids.try_emplace(event.tid, static_cast<int>(tids.size()));
    std::ostringstream os;
    // Resolve the interned id to its breakpoint *name*: ids come from a
    // process-global counter, so two identical runs (each with a fresh
    // engine) intern the same name under different ids.
    os << obs::kind_name(event.kind) << ":" << obs::Trace::name_of(event.name_id)
       << ":r" << static_cast<int>(event.rank) << ":d" << event.detail;
    record.content.push_back(os.str());
    os << ":t" << it->second << ":@" << event.time_ns;
    record.ordered.push_back(os.str());
  }
  std::sort(record.content.begin(), record.content.end());
}

TrialRecord run_trial(const harness::Runner& runner, rt::ClockMode mode,
                      std::uint64_t seed) {
  apps::RunOptions options;
  options.pause = 100ms;  // generous T: pairs must rendezvous in any mode
  options.seed = seed;
  options.work_scale = 0.25;
  options.clock = mode;

  Engine engine;
  ScopedEngine bind(engine);
  rt::reset_thread_epoch();
  obs::Trace::clear();
  obs::Trace::set_enabled(true);

  apps::RunOutcome outcome;
  switch (mode) {
    case rt::ClockMode::kVirtual: {
      rt::VirtualClock vclock;
      rt::ScopedClock clock_bind(&vclock);
      outcome = runner(options);
      break;
    }
    case rt::ClockMode::kReal: {
      rt::ScopedClock clock_bind(&rt::real_clock());
      outcome = runner(options);
      break;
    }
    case rt::ClockMode::kScaled:
      outcome = runner(options);
      break;
  }
  obs::Trace::set_enabled(false);

  TrialRecord record;
  record.stats = engine.total_stats();
  record.buggy = outcome.buggy();
  canonicalize(obs::Trace::collect(), record);
  obs::Trace::clear();
  return record;
}

void expect_counters_eq(const TrialRecord& a, const TrialRecord& b,
                        const std::string& label) {
  EXPECT_EQ(a.stats.calls, b.stats.calls) << label;
  EXPECT_EQ(a.stats.local_rejects, b.stats.local_rejects) << label;
  EXPECT_EQ(a.stats.arrivals, b.stats.arrivals) << label;
  EXPECT_EQ(a.stats.ignored, b.stats.ignored) << label;
  EXPECT_EQ(a.stats.bounded, b.stats.bounded) << label;
  EXPECT_EQ(a.stats.postponed, b.stats.postponed) << label;
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts) << label;
  EXPECT_EQ(a.stats.cancelled, b.stats.cancelled) << label;
  EXPECT_EQ(a.stats.hits, b.stats.hits) << label;
  EXPECT_EQ(a.stats.participants, b.stats.participants) << label;
  EXPECT_EQ(a.buggy, b.buggy) << label;
}

class ClockDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fail fast (with the scheduler's diagnostic) instead of eating the
    // full 45s default if a virtual trial ever wedges.
    saved_guard_ = rt::VirtualClock::stall_guard();
    rt::VirtualClock::set_stall_guard(10'000ms);
  }
  void TearDown() override { rt::VirtualClock::set_stall_guard(saved_guard_); }

 private:
  std::chrono::milliseconds saved_guard_{};
};

TEST_F(ClockDeterminismTest, CacheRace1AgreesAcrossClockModes) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const TrialRecord real =
        run_trial(apps::cache::run_race1, rt::ClockMode::kReal, seed);
    const TrialRecord scaled =
        run_trial(apps::cache::run_race1, rt::ClockMode::kScaled, seed);
    const TrialRecord virt =
        run_trial(apps::cache::run_race1, rt::ClockMode::kVirtual, seed);
    const std::string label = "cache/race1 seed " + std::to_string(seed);
    expect_counters_eq(real, virt, label + " (real vs virtual)");
    expect_counters_eq(scaled, virt, label + " (scaled vs virtual)");
    EXPECT_GT(virt.stats.hits, 0u) << label;
    // The transitions themselves are mode-invariant; their global
    // interleaving is a virtual-only guarantee (checked below).
    EXPECT_EQ(real.content, virt.content) << label;
    EXPECT_EQ(scaled.content, virt.content) << label;
  }
}

TEST_F(ClockDeterminismTest, JigsawRace2AgreesAcrossClockModes) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const TrialRecord real =
        run_trial(apps::webserver::run_race2, rt::ClockMode::kReal, seed);
    const TrialRecord scaled =
        run_trial(apps::webserver::run_race2, rt::ClockMode::kScaled, seed);
    const TrialRecord virt =
        run_trial(apps::webserver::run_race2, rt::ClockMode::kVirtual, seed);
    const std::string label = "jigsaw/race2 seed " + std::to_string(seed);
    expect_counters_eq(real, virt, label + " (real vs virtual)");
    expect_counters_eq(scaled, virt, label + " (scaled vs virtual)");
    EXPECT_GT(virt.stats.hits, 0u) << label;
    EXPECT_EQ(real.content, virt.content) << label;
    EXPECT_EQ(scaled.content, virt.content) << label;
  }
}

TEST_F(ClockDeterminismTest, VirtualTraceOrderIsExactlyReproducible) {
  // Under the virtual clock the trial is serialized, so the *total*
  // event order — not just per-thread order — is a function of the seed.
  for (const std::uint64_t seed : {1u, 5u}) {
    const TrialRecord first =
        run_trial(apps::cache::run_race1, rt::ClockMode::kVirtual, seed);
    const TrialRecord second =
        run_trial(apps::cache::run_race1, rt::ClockMode::kVirtual, seed);
    ASSERT_FALSE(first.ordered.empty());
    EXPECT_EQ(first.ordered, second.ordered)
        << "cache/race1 seed " << seed;
    expect_counters_eq(first, second, "virtual repeat");
    EXPECT_EQ(first.stats.total_wait_us, second.stats.total_wait_us);
  }
  const TrialRecord first =
      run_trial(apps::webserver::run_race2, rt::ClockMode::kVirtual, 9);
  const TrialRecord second =
      run_trial(apps::webserver::run_race2, rt::ClockMode::kVirtual, 9);
  ASSERT_FALSE(first.ordered.empty());
  EXPECT_EQ(first.ordered, second.ordered) << "jigsaw/race2 seed 9";
}

TEST_F(ClockDeterminismTest, VirtualTrialsIdenticalAcrossJobCounts) {
  apps::RunOptions options;
  options.pause = 100ms;
  options.work_scale = 0.25;
  options.clock = rt::ClockMode::kVirtual;
  const int runs = 8;

  const harness::RepeatedResult serial =
      harness::run_repeated(apps::cache::run_race1, options, runs);
  const harness::RepeatedResult serial_again =
      harness::run_repeated(apps::cache::run_race1, options, runs);
  const harness::RepeatedResult parallel = harness::run_repeated_parallel(
      apps::cache::run_race1, options, runs, /*jobs=*/8);

  ASSERT_EQ(serial.trials.size(), static_cast<std::size_t>(runs));
  ASSERT_EQ(parallel.trials.size(), static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const auto& s1 = serial.trials[static_cast<std::size_t>(i)];
    const auto& s2 = serial_again.trials[static_cast<std::size_t>(i)];
    const auto& p = parallel.trials[static_cast<std::size_t>(i)];
    EXPECT_EQ(s1.seed, p.seed) << i;
    EXPECT_EQ(s1.hit, s2.hit) << i;
    EXPECT_EQ(s1.buggy, s2.buggy) << i;
    EXPECT_EQ(s1.hit, p.hit) << i;
    EXPECT_EQ(s1.buggy, p.buggy) << i;
    // Trial runtime is *virtual* seconds — a deterministic function of
    // the seed, so it reproduces exactly, worker assignment be damned.
    EXPECT_DOUBLE_EQ(s1.runtime_seconds, s2.runtime_seconds) << i;
    EXPECT_DOUBLE_EQ(s1.runtime_seconds, p.runtime_seconds) << i;
  }
  EXPECT_EQ(serial.hit_runs, parallel.hit_runs);
  EXPECT_EQ(serial.buggy_runs, parallel.buggy_runs);
}

}  // namespace
}  // namespace cbp
