// End-to-end closed-loop placement (DESIGN.md §5f) on two app replicas:
//
//   1. statically analyze the app (src/sa);
//   2. run the dynamic detectors over one instrumented run and push
//      their reports through the JSON dump channel;
//   3. record telemetry over repeated breakpointed runs and push it
//      through the telemetry JSON channel;
//   4. fuse everything into a PlacementPlan — the seeded bug's runtime
//      breakpoint must rank first, with T / ignore_first re-derived from
//      the recording;
//   5. install the emitted spec (predicted= / confirmed provenance
//      intact) and re-run the workload under the harness: the hit rate
//      must land inside the spec's predicted 95% Wilson interval.
//
// Timing-sensitive by design (real postponements), hence its own binary
// and generous run counts: all probability checks are interval-based.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "apps/cache/cache.h"
#include "apps/replica.h"
#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "core/spec.h"
#include "detect/contention.h"
#include "detect/eraser.h"
#include "detect/json_export.h"
#include "detect/lock_order.h"
#include "harness/experiment.h"
#include "instrument/hub.h"
#include "obs/telemetry.h"
#include "obs/telemetry_io.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "sa/analyzer.h"
#include "sa/placement/placement.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

std::string src_path(const std::string& rel) {
  return std::string(CBP_SOURCE_DIR) + "/" + rel;
}

class PlacementE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    BreakpointSpec::clear_installed();
    Config::set_enabled(true);
    rt::TimeScale::set(1.0);
    obs::Trace::clear();
    obs::Trace::set_enabled(true);
  }
  void TearDown() override {
    obs::Trace::set_enabled(false);
    obs::Trace::clear();
    BreakpointSpec::clear_installed();
    Engine::instance().reset();
  }
};

/// Runs `workload` once with the dynamic detectors attached and returns
/// the reports after a round-trip through the detector JSON dump (the
/// same channel `cbp-trace --detect-out` / `cbp-sa --fuse` use).
std::vector<sa::placement::RecordedSitePair> record_detectors(
    const std::function<void()>& workload) {
  detect::DetectorDump dump;
  {
    detect::EraserDetector eraser;
    detect::LockOrderDetector lock_order;
    detect::ContentionDetector contention;
    instr::ScopedListener l1(eraser);
    instr::ScopedListener l2(lock_order);
    instr::ScopedListener l3(contention);
    workload();
    dump.races = eraser.races();
    dump.deadlocks = lock_order.deadlocks();
    dump.contentions = contention.contentions();
  }
  std::vector<sa::placement::RecordedSitePair> pairs;
  std::string error;
  EXPECT_TRUE(
      sa::placement::parse_detector_json(detect::write_json(dump), pairs,
                                         error))
      << error;
  return pairs;
}

/// Runs `runner` `runs` times with breakpoints live, resetting the
/// engine between runs (per-run ignore_first semantics, like the
/// harness) while summing stats and run outcomes manually — then folds
/// counters + trace into one telemetry row and round-trips it through
/// the telemetry JSON channel.
obs::BreakpointTelemetry record_telemetry(const harness::Runner& runner,
                                          apps::RunOptions options,
                                          const std::string& name,
                                          int runs) {
  obs::TelemetryInput input;
  input.name = name;
  input.threads = 2;
  BreakpointStats total;
  for (int run = 0; run < runs; ++run) {
    Engine::instance().reset();
    options.seed = static_cast<std::uint64_t>(run) + 1;
    (void)runner(options);
    const BreakpointStats stats = Engine::instance().stats(name);
    if (stats.hits > 0) input.runs_hit += 1;
    input.runs += 1;
    total += stats;
  }
  Engine::instance().reset();
  input.stats = total;
  const obs::BreakpointTelemetry row =
      obs::analyze(input, obs::Trace::collect());

  std::vector<obs::BreakpointTelemetry> back;
  std::string error;
  EXPECT_TRUE(obs::read_telemetry_json(obs::write_telemetry_json({row}),
                                       back, error))
      << error;
  return back.empty() ? row : back[0];
}

/// Installs the plan's spec and measures the top entry's hit rate under
/// the harness; asserts it lands in (or statistically overlaps) the
/// spec's predicted interval.
void verify_prediction(const sa::placement::PlacementPlan& plan,
                       const sa::placement::PlacementEntry& top,
                       const harness::Runner& runner, int runs) {
  const BreakpointSpec spec =
      BreakpointSpec::parse(sa::placement::render_plan_spec(plan));
  const SpecOverride* entry = spec.find(top.breakpoint);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->confirmed);
  ASSERT_TRUE(entry->predicted.has_value());
  ASSERT_TRUE(entry->pause.has_value());
  spec.install();

  apps::RunOptions options;  // pause/ignore_first come from the spec
  const harness::RepeatedResult result =
      harness::run_repeated(runner, options, runs);
  EXPECT_GT(result.hit_runs, 0);
  EXPECT_GT(result.buggy_runs, 0);  // the seeded bug reproduces
  EXPECT_GE(result.hit_probability(), top.predicted_low)
      << "hit rate below the spec's predicted interval";
  const harness::ProbabilityInterval predicted{top.predicted_low,
                                               top.predicted_high};
  EXPECT_TRUE(result.hit_probability_ci().overlaps(predicted))
      << "hit " << result.hit_probability() << " (" << result.hit_runs
      << "/" << result.runs << ") vs predicted [" << top.predicted_low
      << ", " << top.predicted_high << "]";
}

// ---------------------------------------------------------------------------
// cache4j atomicity1: the §6.3 showcase — the warm-up phase forces an
// ignore_first refinement, which the loop re-derives from telemetry.
// ---------------------------------------------------------------------------

TEST_F(PlacementE2ETest, CacheAtomicity1ClosedLoop) {
  const char* name = apps::cache::kAtomicity1;
  const sa::AnalysisResult analysis =
      sa::analyze_paths({src_path("src/apps/cache")});
  ASSERT_FALSE(analysis.candidates.empty());

  apps::RunOptions detect_options;
  detect_options.breakpoints = false;
  const auto recorded = record_detectors([&] {
    (void)apps::cache::run_atomicity1(detect_options, 0);
  });
  EXPECT_FALSE(recorded.empty());  // Eraser sees the payload/ready races

  // Recording runs use the paper's programmatic refinement so the 300
  // warm-up constructions don't each postpone for a full T (§6.3).
  apps::RunOptions record_options;
  record_options.pause = 30ms;
  const obs::BreakpointTelemetry row = record_telemetry(
      [](const apps::RunOptions& o) {
        return apps::cache::run_atomicity1(
            o, apps::cache::kWarmupConstructions);
      },
      record_options, name, 12);
  ASSERT_EQ(row.runs, 12u);
  EXPECT_GT(row.runs_hit, 0u);

  sa::placement::PlacementOptions fuse_options;
  fuse_options.max_pause_ms = 200;  // keep warm-up timeouts test-sized
  const sa::placement::PlacementPlan plan =
      sa::placement::fuse(analysis, recorded, {row}, fuse_options);
  ASSERT_FALSE(plan.entries.empty());
  const sa::placement::PlacementEntry& top = plan.entries[0];
  // The annotation const (kAtomicity1) resolved to the runtime name.
  EXPECT_EQ(top.breakpoint, name);
  EXPECT_GE(top.tier(), 2);
  ASSERT_TRUE(top.has_prediction);
  // ignore_first was re-derived from the recorded warm-up arrivals:
  // close below the true warm-up count, never above it.
  EXPECT_GT(top.ignore_first, 0u);
  EXPECT_LT(top.ignore_first,
            static_cast<std::uint64_t>(apps::cache::kWarmupConstructions));
  EXPECT_GE(top.pause_ms, fuse_options.min_pause_ms);
  EXPECT_LE(top.pause_ms, fuse_options.max_pause_ms);

  // Closed loop: programmatic ignore_first deliberately 0 — the
  // installed spec must supply the derived refinement for the bug to
  // reproduce at the predicted rate.
  verify_prediction(plan, top,
                    [](const apps::RunOptions& o) {
                      return apps::cache::run_atomicity1(o, 0);
                    },
                    12);
}

// ---------------------------------------------------------------------------
// Jigsaw race2: no warm-up phase — the loop must NOT invent an
// ignore_first, and the derived pause alone reproduces the lost update.
// ---------------------------------------------------------------------------

TEST_F(PlacementE2ETest, JigsawRace2ClosedLoop) {
  const char* name = apps::webserver::kRace2;
  const sa::AnalysisResult analysis =
      sa::analyze_paths({src_path("src/apps/webserver")});
  ASSERT_FALSE(analysis.candidates.empty());

  apps::RunOptions detect_options;
  detect_options.breakpoints = false;
  const auto recorded = record_detectors([&] {
    (void)apps::webserver::run_race2(detect_options);
  });
  EXPECT_FALSE(recorded.empty());  // Eraser sees the request_count_ race

  apps::RunOptions record_options;
  record_options.pause = 30ms;
  const obs::BreakpointTelemetry row = record_telemetry(
      [](const apps::RunOptions& o) {
        return apps::webserver::run_race2(o);
      },
      record_options, name, 12);
  ASSERT_EQ(row.runs, 12u);
  EXPECT_GT(row.runs_hit, 0u);

  const sa::placement::PlacementPlan plan =
      sa::placement::fuse(analysis, recorded, {row});
  ASSERT_FALSE(plan.entries.empty());
  const sa::placement::PlacementEntry& top = plan.entries[0];
  EXPECT_EQ(top.breakpoint, name);
  EXPECT_GE(top.tier(), 2);
  ASSERT_TRUE(top.has_prediction);
  EXPECT_EQ(top.ignore_first, 0u);  // no warm-up phase in this workload

  verify_prediction(plan, top,
                    [](const apps::RunOptions& o) {
                      return apps::webserver::run_race2(o);
                    },
                    12);
}

}  // namespace
}  // namespace cbp
