// Tests for the CHESS-style systematic schedule explorer built on the
// replay module.

#include <gtest/gtest.h>

#include <thread>

#include "fuzz/explore.h"
#include "instrument/shared_var.h"
#include "replay/replayer.h"
#include "runtime/latch.h"

namespace cbp::fuzz {
namespace {

using replay::Trace;
using replay::TraceOp;

// ---------------------------------------------------------------------------
// Combinatorics helpers
// ---------------------------------------------------------------------------

TEST(Interleavings, CountsMatchBinomials) {
  EXPECT_EQ(interleaving_count(0, 0), 1u);
  EXPECT_EQ(interleaving_count(1, 1), 2u);
  EXPECT_EQ(interleaving_count(2, 2), 6u);
  EXPECT_EQ(interleaving_count(3, 3), 20u);
  EXPECT_EQ(interleaving_count(5, 5), 252u);
}

TEST(Interleavings, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(interleaving_count(100, 100),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SplitByRole, PartitionsPreservingOrder) {
  Trace trace;
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kRead, 0});
  trace.ops.push_back(TraceOp{1, TraceOp::Kind::kWrite, 0});
  trace.ops.push_back(TraceOp{0, TraceOp::Kind::kWrite, 0});
  const auto split = split_by_role(trace, 2);
  ASSERT_EQ(split.size(), 2u);
  ASSERT_EQ(split[0].size(), 2u);
  ASSERT_EQ(split[1].size(), 1u);
  EXPECT_EQ(split[0][0].kind, TraceOp::Kind::kRead);
  EXPECT_EQ(split[0][1].kind, TraceOp::Kind::kWrite);
}

// ---------------------------------------------------------------------------
// Enumeration (no real execution): count the schedules visited.
// ---------------------------------------------------------------------------

std::vector<TraceOp> role_ops(int role, int count) {
  std::vector<TraceOp> ops;
  for (int i = 0; i < count; ++i) {
    ops.push_back(TraceOp{role, TraceOp::Kind::kWrite, 0});
  }
  return ops;
}

TEST(Explore, VisitsEveryInterleavingWhenNothingIsBuggy) {
  const auto r0 = role_ops(0, 3);
  const auto r1 = role_ops(1, 3);
  const auto result = explore_schedules(
      r0, r1, [](const Trace&) { return false; });
  EXPECT_EQ(result.schedules_run, interleaving_count(3, 3));  // 20
  EXPECT_EQ(result.buggy_schedules, 0u);
  EXPECT_TRUE(result.first_buggy_trace.empty());
}

TEST(Explore, StopsAtFirstBugAndReturnsWitness) {
  const auto r0 = role_ops(0, 2);
  const auto r1 = role_ops(1, 2);
  int calls = 0;
  const auto result = explore_schedules(r0, r1, [&](const Trace& trace) {
    ++calls;
    // "Buggy" iff the schedule starts with role 1.
    return trace.ops.front().role == 1;
  });
  EXPECT_EQ(result.buggy_schedules, 1u);
  EXPECT_FALSE(result.first_buggy_trace.empty());
  EXPECT_EQ(result.first_buggy_trace.ops.front().role, 1);
  EXPECT_EQ(result.schedules_run, static_cast<std::uint64_t>(calls));
  EXPECT_LT(result.schedules_run, interleaving_count(2, 2));
}

TEST(Explore, CountsAllBuggySchedulesWhenNotStopping) {
  const auto r0 = role_ops(0, 2);
  const auto r1 = role_ops(1, 2);
  ExploreOptions options;
  options.stop_at_first_bug = false;
  const auto result = explore_schedules(
      r0, r1,
      [&](const Trace& trace) { return trace.ops.front().role == 1; },
      options);
  // Schedules starting with role 1: C(3,1) = 3 of the 6.
  EXPECT_EQ(result.schedules_run, 6u);
  EXPECT_EQ(result.buggy_schedules, 3u);
}

TEST(Explore, ContextBoundSkipsHighSwitchSchedules) {
  const auto r0 = role_ops(0, 3);
  const auto r1 = role_ops(1, 3);
  ExploreOptions options;
  options.context_bound = 1;  // at most one switch: 00..011..1 or 11..100..0 shapes
  options.stop_at_first_bug = false;
  const auto result =
      explore_schedules(r0, r1, [](const Trace&) { return false; }, options);
  // With <=1 switch and both roles fully present there are exactly 2
  // schedules (000111 and 111000).
  EXPECT_EQ(result.schedules_run, 2u);
  EXPECT_EQ(result.schedules_skipped,
            interleaving_count(3, 3) - result.schedules_run);
}

TEST(Explore, MaxSchedulesCapsTheSearch) {
  const auto r0 = role_ops(0, 5);
  const auto r1 = role_ops(1, 5);
  ExploreOptions options;
  options.max_schedules = 10;
  const auto result =
      explore_schedules(r0, r1, [](const Trace&) { return false; }, options);
  EXPECT_EQ(result.schedules_run, 10u);
}

// ---------------------------------------------------------------------------
// End to end: explore a REAL racy program until the lost update shows.
// ---------------------------------------------------------------------------

TEST(Explore, FindsTheLostUpdateScheduleByReplaying) {
  // The workload: two deposits of the read-pause-write shape, replayed
  // under each candidate interleaving.  Buggy iff the final balance is 1.
  auto run_under_trace = [&](const Trace& trace) {
    instr::SharedVar<int> balance{0};
    replay::Replayer replayer(trace);
    instr::ScopedListener registration(replayer);
    rt::StartGate gate;
    auto deposit = [&](int role) {
      replayer.bind_this_thread(role);
      gate.wait();
      const int value = balance.read();
      balance.write(value + 1);
    };
    std::thread a(deposit, 0);
    std::thread b(deposit, 1);
    gate.open();
    a.join();
    b.join();
    return !replayer.diverged() && balance.peek() == 1;
  };

  // Per-role op sequences: R then W on the same object.
  std::vector<TraceOp> r0{TraceOp{0, TraceOp::Kind::kRead, 0},
                          TraceOp{0, TraceOp::Kind::kWrite, 0}};
  std::vector<TraceOp> r1{TraceOp{1, TraceOp::Kind::kRead, 0},
                          TraceOp{1, TraceOp::Kind::kWrite, 0}};

  const auto result = explore_schedules(r0, r1, run_under_trace);
  EXPECT_GE(result.schedules_run, 1u);
  EXPECT_EQ(result.buggy_schedules, 1u);
  ASSERT_FALSE(result.first_buggy_trace.empty());

  // The witness trace is a reproducible artifact: replaying it again
  // yields the bug again.
  EXPECT_TRUE(run_under_trace(result.first_buggy_trace));
}

}  // namespace
}  // namespace cbp::fuzz
