// Edge cases in the k-ary rendezvous (engine try_match, k > 2):
//   * greedy selection must reject a candidate that is pairwise
//     incompatible with an already-selected waiter, and a later arrival
//     with a compatible value must still complete the group;
//   * cancel_all racing a match: a waiter that try_match has already
//     claimed (matched = true) and that cancel_all then flags must
//     count as a participant, never as cancelled — `matched` wins.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/latch.h"

namespace cbp {
namespace {

using namespace std::chrono_literals;

class KaryEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine::instance().reset();
    Engine::instance().set_hit_observer(nullptr);
    Config::set_enabled(true);
    Engine::instance().set_verbose(false);
    Config::set_order_delay(std::chrono::microseconds(200));
    rt::TimeScale::set(1.0);
  }
  void TearDown() override {
    Engine::instance().set_hit_observer(nullptr);
    Engine::instance().reset();
  }
};

// 3-ary breakpoint over ValueTrigger<int> with an equality relation that
// rejects exactly the pair {1, 2}.  Arrival order:
//   w1 (value 1, rank 0)  — postpones
//   w2 (value 2, rank 1)  — postpones (no rank-2 candidate yet)
//   main (value 0, rank 2) — selection picks w1 for rank 0, then must
//     reject w2 mid-selection (pairwise eq(1,2) fails); rank 1 stays
//     unfilled, so main postpones instead of matching
//   w3 (value 3, rank 1)  — completes {w1, w3, main}; w2 times out
TEST_F(KaryEdgeTest, PairwiseIncompatibleWaiterIsSkippedMidSelection) {
  const auto eq = [](const int& a, const int& b) {
    return !((a == 1 && b == 2) || (a == 2 && b == 1));
  };
  std::atomic<int> hits{0};
  rt::Latch w1_in(1), w2_in(1), main_in(1);

  std::thread w1([&] {
    ValueTrigger<int> t("kary-pairwise", 1, eq);
    w1_in.count_down();
    if (t.trigger_here_ranked(0, 3, 3000ms)) hits.fetch_add(1);
  });
  w1_in.wait();
  std::this_thread::sleep_for(10ms);

  std::thread w2([&] {
    ValueTrigger<int> t("kary-pairwise", 2, eq);
    w2_in.count_down();
    // Must NOT be selected: pairwise-incompatible with w1.
    EXPECT_FALSE(t.trigger_here_ranked(1, 3, 300ms));
  });
  w2_in.wait();
  std::this_thread::sleep_for(10ms);

  std::thread main_thread([&] {
    ValueTrigger<int> t("kary-pairwise", 0, eq);
    main_in.count_down();
    if (t.trigger_here_ranked(2, 3, 3000ms)) hits.fetch_add(1);
  });
  main_in.wait();
  std::this_thread::sleep_for(10ms);

  // At this point w1, w2, and main are all postponed: main's own match
  // attempt found rank 1 unfillable because w2 was rejected pairwise
  // against the already-selected w1.  This value-3 rank-1 arrival can
  // pair with both, so it completes the group.
  {
    ValueTrigger<int> t("kary-pairwise", 3, eq);
    if (t.trigger_here_ranked(1, 3, 3000ms)) hits.fetch_add(1);
  }
  w1.join();
  w2.join();
  main_thread.join();

  EXPECT_EQ(hits.load(), 3);
  const auto stats = Engine::instance().stats("kary-pairwise");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.participants, 3u);
  EXPECT_EQ(stats.timeouts, 1u);  // w2, never selected
  EXPECT_EQ(stats.postponed, 3u);
}

// cancel_all racing a match.  The hit observer runs on the matcher
// after try_match claimed the waiter (matched = true) but typically
// before the waiter has woken and removed itself from the postponed
// list — so cancel_all inside the observer flags an already-matched
// waiter as cancelled.  The wake-up path must treat `matched` as
// authoritative: the waiter is a participant and the hit stands.
TEST_F(KaryEdgeTest, WaiterMatchedAndCancelledCountsAsParticipant) {
  constexpr int kIterations = 20;
  Engine::instance().set_hit_observer(
      [](const HitInfo&) { Engine::instance().cancel_all(); });

  int completed = 0;
  for (int i = 0; i < kIterations; ++i) {
    int obj = 0;
    rt::Latch postponed(1);
    std::thread waiter([&] {
      ConflictTrigger t("cancel-vs-match", &obj);
      postponed.count_down();
      if (t.trigger_here(true, 2000ms)) ++completed;
    });
    postponed.wait();
    std::this_thread::sleep_for(2ms);
    ConflictTrigger t("cancel-vs-match", &obj);
    EXPECT_TRUE(t.trigger_here(false, 2000ms));
    waiter.join();
  }

  EXPECT_EQ(completed, kIterations);
  const auto stats = Engine::instance().stats("cancel-vs-match");
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kIterations));
  EXPECT_EQ(stats.participants, static_cast<std::uint64_t>(2 * kIterations));
  // The matched-and-cancelled waiter must never be accounted as
  // cancelled; nothing else was postponed when cancel_all ran.
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

// cancel_all with an un-matched waiter present: the flag does apply to
// threads that were not claimed by a match (baseline for the race test).
TEST_F(KaryEdgeTest, UnmatchedWaiterIsCancelled) {
  int obj = 0;
  rt::Latch postponed(1);
  std::thread waiter([&] {
    ConflictTrigger t("cancel-plain", &obj);
    postponed.count_down();
    EXPECT_FALSE(t.trigger_here(true, 2000ms));
  });
  postponed.wait();
  std::this_thread::sleep_for(5ms);
  Engine::instance().cancel_all();
  waiter.join();
  const auto stats = Engine::instance().stats("cancel-plain");
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace cbp
