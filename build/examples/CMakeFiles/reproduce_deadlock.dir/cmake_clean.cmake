file(REMOVE_RECURSE
  "CMakeFiles/reproduce_deadlock.dir/reproduce_deadlock.cpp.o"
  "CMakeFiles/reproduce_deadlock.dir/reproduce_deadlock.cpp.o.d"
  "reproduce_deadlock"
  "reproduce_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
