# Empty dependencies file for reproduce_deadlock.
# This may be replaced when dependencies are built.
