# Empty dependencies file for regression_suite.
# This may be replaced when dependencies are built.
