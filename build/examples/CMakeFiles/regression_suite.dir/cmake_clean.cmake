file(REMOVE_RECURSE
  "CMakeFiles/regression_suite.dir/regression_suite.cpp.o"
  "CMakeFiles/regression_suite.dir/regression_suite.cpp.o.d"
  "regression_suite"
  "regression_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
