# Empty compiler generated dependencies file for cbp_analyze.
# This may be replaced when dependencies are built.
