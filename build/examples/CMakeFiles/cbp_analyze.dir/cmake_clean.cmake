file(REMOVE_RECURSE
  "CMakeFiles/cbp_analyze.dir/cbp_analyze.cpp.o"
  "CMakeFiles/cbp_analyze.dir/cbp_analyze.cpp.o.d"
  "cbp_analyze"
  "cbp_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
