file(REMOVE_RECURSE
  "CMakeFiles/reproduce_data_race.dir/reproduce_data_race.cpp.o"
  "CMakeFiles/reproduce_data_race.dir/reproduce_data_race.cpp.o.d"
  "reproduce_data_race"
  "reproduce_data_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_data_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
