
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reproduce_data_race.cpp" "examples/CMakeFiles/reproduce_data_race.dir/reproduce_data_race.cpp.o" "gcc" "examples/CMakeFiles/reproduce_data_race.dir/reproduce_data_race.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/cbp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cbp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/cbp_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/cbp_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/cbp_replay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
