# Empty dependencies file for reproduce_data_race.
# This may be replaced when dependencies are built.
