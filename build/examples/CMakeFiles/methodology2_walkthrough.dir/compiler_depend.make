# Empty compiler generated dependencies file for methodology2_walkthrough.
# This may be replaced when dependencies are built.
