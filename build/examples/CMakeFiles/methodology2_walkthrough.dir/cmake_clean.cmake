file(REMOVE_RECURSE
  "CMakeFiles/methodology2_walkthrough.dir/methodology2_walkthrough.cpp.o"
  "CMakeFiles/methodology2_walkthrough.dir/methodology2_walkthrough.cpp.o.d"
  "methodology2_walkthrough"
  "methodology2_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology2_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
