# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reproduce_data_race "/root/repo/build/examples/reproduce_data_race" "5")
set_tests_properties(example_reproduce_data_race PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reproduce_deadlock "/root/repo/build/examples/reproduce_deadlock" "3")
set_tests_properties(example_reproduce_deadlock PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_methodology2 "/root/repo/build/examples/methodology2_walkthrough" "4")
set_tests_properties(example_methodology2 PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regression_suite "/root/repo/build/examples/regression_suite" "5")
set_tests_properties(example_regression_suite PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cbp_analyze "/root/repo/build/examples/cbp_analyze" "all" "collections")
set_tests_properties(example_cbp_analyze PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
