file(REMOVE_RECURSE
  "CMakeFiles/bench_method2_log4j.dir/bench_method2_log4j.cc.o"
  "CMakeFiles/bench_method2_log4j.dir/bench_method2_log4j.cc.o.d"
  "bench_method2_log4j"
  "bench_method2_log4j.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_method2_log4j.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
