# Empty compiler generated dependencies file for bench_method2_log4j.
# This may be replaced when dependencies are built.
