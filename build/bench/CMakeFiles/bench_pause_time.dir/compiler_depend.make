# Empty compiler generated dependencies file for bench_pause_time.
# This may be replaced when dependencies are built.
