file(REMOVE_RECURSE
  "CMakeFiles/bench_pause_time.dir/bench_pause_time.cc.o"
  "CMakeFiles/bench_pause_time.dir/bench_pause_time.cc.o.d"
  "bench_pause_time"
  "bench_pause_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pause_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
