file(REMOVE_RECURSE
  "CMakeFiles/bench_probability_model.dir/bench_probability_model.cc.o"
  "CMakeFiles/bench_probability_model.dir/bench_probability_model.cc.o.d"
  "bench_probability_model"
  "bench_probability_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probability_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
