# Empty dependencies file for bench_replay_vs_breakpoint.
# This may be replaced when dependencies are built.
