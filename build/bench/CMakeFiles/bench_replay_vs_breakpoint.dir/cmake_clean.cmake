file(REMOVE_RECURSE
  "CMakeFiles/bench_replay_vs_breakpoint.dir/bench_replay_vs_breakpoint.cc.o"
  "CMakeFiles/bench_replay_vs_breakpoint.dir/bench_replay_vs_breakpoint.cc.o.d"
  "bench_replay_vs_breakpoint"
  "bench_replay_vs_breakpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay_vs_breakpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
