file(REMOVE_RECURSE
  "CMakeFiles/bench_precision.dir/bench_precision.cc.o"
  "CMakeFiles/bench_precision.dir/bench_precision.cc.o.d"
  "bench_precision"
  "bench_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
