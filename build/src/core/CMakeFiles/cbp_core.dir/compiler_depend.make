# Empty compiler generated dependencies file for cbp_core.
# This may be replaced when dependencies are built.
