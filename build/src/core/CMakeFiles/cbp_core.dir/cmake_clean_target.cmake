file(REMOVE_RECURSE
  "libcbp_core.a"
)
