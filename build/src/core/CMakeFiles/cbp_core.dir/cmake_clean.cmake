file(REMOVE_RECURSE
  "CMakeFiles/cbp_core.dir/engine.cc.o"
  "CMakeFiles/cbp_core.dir/engine.cc.o.d"
  "CMakeFiles/cbp_core.dir/spec.cc.o"
  "CMakeFiles/cbp_core.dir/spec.cc.o.d"
  "libcbp_core.a"
  "libcbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
