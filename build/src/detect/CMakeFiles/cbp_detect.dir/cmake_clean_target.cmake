file(REMOVE_RECURSE
  "libcbp_detect.a"
)
