
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/atomicity.cc" "src/detect/CMakeFiles/cbp_detect.dir/atomicity.cc.o" "gcc" "src/detect/CMakeFiles/cbp_detect.dir/atomicity.cc.o.d"
  "/root/repo/src/detect/contention.cc" "src/detect/CMakeFiles/cbp_detect.dir/contention.cc.o" "gcc" "src/detect/CMakeFiles/cbp_detect.dir/contention.cc.o.d"
  "/root/repo/src/detect/eraser.cc" "src/detect/CMakeFiles/cbp_detect.dir/eraser.cc.o" "gcc" "src/detect/CMakeFiles/cbp_detect.dir/eraser.cc.o.d"
  "/root/repo/src/detect/fasttrack.cc" "src/detect/CMakeFiles/cbp_detect.dir/fasttrack.cc.o" "gcc" "src/detect/CMakeFiles/cbp_detect.dir/fasttrack.cc.o.d"
  "/root/repo/src/detect/lock_order.cc" "src/detect/CMakeFiles/cbp_detect.dir/lock_order.cc.o" "gcc" "src/detect/CMakeFiles/cbp_detect.dir/lock_order.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/cbp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cbp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
