file(REMOVE_RECURSE
  "CMakeFiles/cbp_detect.dir/atomicity.cc.o"
  "CMakeFiles/cbp_detect.dir/atomicity.cc.o.d"
  "CMakeFiles/cbp_detect.dir/contention.cc.o"
  "CMakeFiles/cbp_detect.dir/contention.cc.o.d"
  "CMakeFiles/cbp_detect.dir/eraser.cc.o"
  "CMakeFiles/cbp_detect.dir/eraser.cc.o.d"
  "CMakeFiles/cbp_detect.dir/fasttrack.cc.o"
  "CMakeFiles/cbp_detect.dir/fasttrack.cc.o.d"
  "CMakeFiles/cbp_detect.dir/lock_order.cc.o"
  "CMakeFiles/cbp_detect.dir/lock_order.cc.o.d"
  "libcbp_detect.a"
  "libcbp_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
