# Empty compiler generated dependencies file for cbp_detect.
# This may be replaced when dependencies are built.
