# Empty dependencies file for cbp_replay.
# This may be replaced when dependencies are built.
