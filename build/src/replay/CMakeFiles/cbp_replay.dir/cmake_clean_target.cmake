file(REMOVE_RECURSE
  "libcbp_replay.a"
)
