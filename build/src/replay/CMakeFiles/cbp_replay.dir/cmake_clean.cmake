file(REMOVE_RECURSE
  "CMakeFiles/cbp_replay.dir/recorder.cc.o"
  "CMakeFiles/cbp_replay.dir/recorder.cc.o.d"
  "CMakeFiles/cbp_replay.dir/replayer.cc.o"
  "CMakeFiles/cbp_replay.dir/replayer.cc.o.d"
  "libcbp_replay.a"
  "libcbp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
