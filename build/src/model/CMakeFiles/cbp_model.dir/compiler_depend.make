# Empty compiler generated dependencies file for cbp_model.
# This may be replaced when dependencies are built.
