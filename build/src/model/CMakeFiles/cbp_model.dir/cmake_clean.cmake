file(REMOVE_RECURSE
  "CMakeFiles/cbp_model.dir/probability.cc.o"
  "CMakeFiles/cbp_model.dir/probability.cc.o.d"
  "CMakeFiles/cbp_model.dir/schedule_sim.cc.o"
  "CMakeFiles/cbp_model.dir/schedule_sim.cc.o.d"
  "libcbp_model.a"
  "libcbp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
