file(REMOVE_RECURSE
  "libcbp_model.a"
)
