file(REMOVE_RECURSE
  "CMakeFiles/cbp_harness.dir/experiment.cc.o"
  "CMakeFiles/cbp_harness.dir/experiment.cc.o.d"
  "CMakeFiles/cbp_harness.dir/registry.cc.o"
  "CMakeFiles/cbp_harness.dir/registry.cc.o.d"
  "libcbp_harness.a"
  "libcbp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
