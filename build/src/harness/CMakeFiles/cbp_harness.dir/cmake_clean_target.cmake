file(REMOVE_RECURSE
  "libcbp_harness.a"
)
