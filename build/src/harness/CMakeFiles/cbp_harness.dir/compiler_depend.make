# Empty compiler generated dependencies file for cbp_harness.
# This may be replaced when dependencies are built.
