
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/active.cc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/active.cc.o" "gcc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/active.cc.o.d"
  "/root/repo/src/fuzz/explore.cc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/explore.cc.o" "gcc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/explore.cc.o.d"
  "/root/repo/src/fuzz/noise.cc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/noise.cc.o" "gcc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/noise.cc.o.d"
  "/root/repo/src/fuzz/pct.cc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/pct.cc.o" "gcc" "src/fuzz/CMakeFiles/cbp_fuzz.dir/pct.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/cbp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/cbp_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/cbp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cbp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
