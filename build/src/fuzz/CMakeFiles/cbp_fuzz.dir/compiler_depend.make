# Empty compiler generated dependencies file for cbp_fuzz.
# This may be replaced when dependencies are built.
