file(REMOVE_RECURSE
  "libcbp_fuzz.a"
)
