file(REMOVE_RECURSE
  "CMakeFiles/cbp_fuzz.dir/active.cc.o"
  "CMakeFiles/cbp_fuzz.dir/active.cc.o.d"
  "CMakeFiles/cbp_fuzz.dir/explore.cc.o"
  "CMakeFiles/cbp_fuzz.dir/explore.cc.o.d"
  "CMakeFiles/cbp_fuzz.dir/noise.cc.o"
  "CMakeFiles/cbp_fuzz.dir/noise.cc.o.d"
  "CMakeFiles/cbp_fuzz.dir/pct.cc.o"
  "CMakeFiles/cbp_fuzz.dir/pct.cc.o.d"
  "libcbp_fuzz.a"
  "libcbp_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
