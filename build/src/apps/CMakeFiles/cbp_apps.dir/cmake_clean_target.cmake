file(REMOVE_RECURSE
  "libcbp_apps.a"
)
