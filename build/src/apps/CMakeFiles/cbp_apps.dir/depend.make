# Empty dependencies file for cbp_apps.
# This may be replaced when dependencies are built.
