
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cache/cache.cc" "src/apps/CMakeFiles/cbp_apps.dir/cache/cache.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/cache/cache.cc.o.d"
  "/root/repo/src/apps/collections/sync_collections.cc" "src/apps/CMakeFiles/cbp_apps.dir/collections/sync_collections.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/collections/sync_collections.cc.o.d"
  "/root/repo/src/apps/compress/pbzip2.cc" "src/apps/CMakeFiles/cbp_apps.dir/compress/pbzip2.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/compress/pbzip2.cc.o.d"
  "/root/repo/src/apps/crawler/crawler.cc" "src/apps/CMakeFiles/cbp_apps.dir/crawler/crawler.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/crawler/crawler.cc.o.d"
  "/root/repo/src/apps/httpdlike/httpd.cc" "src/apps/CMakeFiles/cbp_apps.dir/httpdlike/httpd.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/httpdlike/httpd.cc.o.d"
  "/root/repo/src/apps/kernels/kernels.cc" "src/apps/CMakeFiles/cbp_apps.dir/kernels/kernels.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/kernels/kernels.cc.o.d"
  "/root/repo/src/apps/logging/async_appender.cc" "src/apps/CMakeFiles/cbp_apps.dir/logging/async_appender.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/logging/async_appender.cc.o.d"
  "/root/repo/src/apps/logging/loggers.cc" "src/apps/CMakeFiles/cbp_apps.dir/logging/loggers.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/logging/loggers.cc.o.d"
  "/root/repo/src/apps/minidb/minidb.cc" "src/apps/CMakeFiles/cbp_apps.dir/minidb/minidb.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/minidb/minidb.cc.o.d"
  "/root/repo/src/apps/pool/object_pool.cc" "src/apps/CMakeFiles/cbp_apps.dir/pool/object_pool.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/pool/object_pool.cc.o.d"
  "/root/repo/src/apps/strbuf/string_buffer.cc" "src/apps/CMakeFiles/cbp_apps.dir/strbuf/string_buffer.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/strbuf/string_buffer.cc.o.d"
  "/root/repo/src/apps/swinglike/swing.cc" "src/apps/CMakeFiles/cbp_apps.dir/swinglike/swing.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/swinglike/swing.cc.o.d"
  "/root/repo/src/apps/textindex/lucene.cc" "src/apps/CMakeFiles/cbp_apps.dir/textindex/lucene.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/textindex/lucene.cc.o.d"
  "/root/repo/src/apps/webserver/jigsaw.cc" "src/apps/CMakeFiles/cbp_apps.dir/webserver/jigsaw.cc.o" "gcc" "src/apps/CMakeFiles/cbp_apps.dir/webserver/jigsaw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/cbp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cbp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
