file(REMOVE_RECURSE
  "CMakeFiles/cbp_apps.dir/cache/cache.cc.o"
  "CMakeFiles/cbp_apps.dir/cache/cache.cc.o.d"
  "CMakeFiles/cbp_apps.dir/collections/sync_collections.cc.o"
  "CMakeFiles/cbp_apps.dir/collections/sync_collections.cc.o.d"
  "CMakeFiles/cbp_apps.dir/compress/pbzip2.cc.o"
  "CMakeFiles/cbp_apps.dir/compress/pbzip2.cc.o.d"
  "CMakeFiles/cbp_apps.dir/crawler/crawler.cc.o"
  "CMakeFiles/cbp_apps.dir/crawler/crawler.cc.o.d"
  "CMakeFiles/cbp_apps.dir/httpdlike/httpd.cc.o"
  "CMakeFiles/cbp_apps.dir/httpdlike/httpd.cc.o.d"
  "CMakeFiles/cbp_apps.dir/kernels/kernels.cc.o"
  "CMakeFiles/cbp_apps.dir/kernels/kernels.cc.o.d"
  "CMakeFiles/cbp_apps.dir/logging/async_appender.cc.o"
  "CMakeFiles/cbp_apps.dir/logging/async_appender.cc.o.d"
  "CMakeFiles/cbp_apps.dir/logging/loggers.cc.o"
  "CMakeFiles/cbp_apps.dir/logging/loggers.cc.o.d"
  "CMakeFiles/cbp_apps.dir/minidb/minidb.cc.o"
  "CMakeFiles/cbp_apps.dir/minidb/minidb.cc.o.d"
  "CMakeFiles/cbp_apps.dir/pool/object_pool.cc.o"
  "CMakeFiles/cbp_apps.dir/pool/object_pool.cc.o.d"
  "CMakeFiles/cbp_apps.dir/strbuf/string_buffer.cc.o"
  "CMakeFiles/cbp_apps.dir/strbuf/string_buffer.cc.o.d"
  "CMakeFiles/cbp_apps.dir/swinglike/swing.cc.o"
  "CMakeFiles/cbp_apps.dir/swinglike/swing.cc.o.d"
  "CMakeFiles/cbp_apps.dir/textindex/lucene.cc.o"
  "CMakeFiles/cbp_apps.dir/textindex/lucene.cc.o.d"
  "CMakeFiles/cbp_apps.dir/webserver/jigsaw.cc.o"
  "CMakeFiles/cbp_apps.dir/webserver/jigsaw.cc.o.d"
  "libcbp_apps.a"
  "libcbp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
