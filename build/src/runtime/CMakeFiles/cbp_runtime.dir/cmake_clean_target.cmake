file(REMOVE_RECURSE
  "libcbp_runtime.a"
)
