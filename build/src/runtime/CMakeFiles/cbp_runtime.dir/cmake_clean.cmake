file(REMOVE_RECURSE
  "CMakeFiles/cbp_runtime.dir/lock_tracker.cc.o"
  "CMakeFiles/cbp_runtime.dir/lock_tracker.cc.o.d"
  "CMakeFiles/cbp_runtime.dir/thread_registry.cc.o"
  "CMakeFiles/cbp_runtime.dir/thread_registry.cc.o.d"
  "libcbp_runtime.a"
  "libcbp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
