# Empty dependencies file for cbp_runtime.
# This may be replaced when dependencies are built.
