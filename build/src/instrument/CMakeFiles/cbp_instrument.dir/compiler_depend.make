# Empty compiler generated dependencies file for cbp_instrument.
# This may be replaced when dependencies are built.
