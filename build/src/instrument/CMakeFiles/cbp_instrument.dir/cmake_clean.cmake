file(REMOVE_RECURSE
  "CMakeFiles/cbp_instrument.dir/hub.cc.o"
  "CMakeFiles/cbp_instrument.dir/hub.cc.o.d"
  "libcbp_instrument.a"
  "libcbp_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbp_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
