file(REMOVE_RECURSE
  "libcbp_instrument.a"
)
