file(REMOVE_RECURSE
  "CMakeFiles/test_macros_disabled.dir/test_macros_disabled.cc.o"
  "CMakeFiles/test_macros_disabled.dir/test_macros_disabled.cc.o.d"
  "test_macros_disabled"
  "test_macros_disabled.pdb"
  "test_macros_disabled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macros_disabled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
