# Empty dependencies file for test_macros_disabled.
# This may be replaced when dependencies are built.
