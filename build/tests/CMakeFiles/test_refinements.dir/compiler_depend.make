# Empty compiler generated dependencies file for test_refinements.
# This may be replaced when dependencies are built.
