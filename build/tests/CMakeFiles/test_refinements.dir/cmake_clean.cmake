file(REMOVE_RECURSE
  "CMakeFiles/test_refinements.dir/test_refinements.cc.o"
  "CMakeFiles/test_refinements.dir/test_refinements.cc.o.d"
  "test_refinements"
  "test_refinements.pdb"
  "test_refinements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refinements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
