file(REMOVE_RECURSE
  "CMakeFiles/test_apps_java.dir/test_apps_java.cc.o"
  "CMakeFiles/test_apps_java.dir/test_apps_java.cc.o.d"
  "test_apps_java"
  "test_apps_java.pdb"
  "test_apps_java[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_java.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
