
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps_java.cc" "tests/CMakeFiles/test_apps_java.dir/test_apps_java.cc.o" "gcc" "tests/CMakeFiles/test_apps_java.dir/test_apps_java.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cbp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/cbp_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cbp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
