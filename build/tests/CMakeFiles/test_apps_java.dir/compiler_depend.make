# Empty compiler generated dependencies file for test_apps_java.
# This may be replaced when dependencies are built.
