# Empty dependencies file for test_detect_properties.
# This may be replaced when dependencies are built.
