file(REMOVE_RECURSE
  "CMakeFiles/test_detect_properties.dir/test_detect_properties.cc.o"
  "CMakeFiles/test_detect_properties.dir/test_detect_properties.cc.o.d"
  "test_detect_properties"
  "test_detect_properties.pdb"
  "test_detect_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
