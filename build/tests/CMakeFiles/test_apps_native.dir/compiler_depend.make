# Empty compiler generated dependencies file for test_apps_native.
# This may be replaced when dependencies are built.
