file(REMOVE_RECURSE
  "CMakeFiles/test_apps_native.dir/test_apps_native.cc.o"
  "CMakeFiles/test_apps_native.dir/test_apps_native.cc.o.d"
  "test_apps_native"
  "test_apps_native.pdb"
  "test_apps_native[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
