# Empty compiler generated dependencies file for test_core_triggers.
# This may be replaced when dependencies are built.
