file(REMOVE_RECURSE
  "CMakeFiles/test_core_triggers.dir/test_core_triggers.cc.o"
  "CMakeFiles/test_core_triggers.dir/test_core_triggers.cc.o.d"
  "test_core_triggers"
  "test_core_triggers.pdb"
  "test_core_triggers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
