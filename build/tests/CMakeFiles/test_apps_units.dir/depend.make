# Empty dependencies file for test_apps_units.
# This may be replaced when dependencies are built.
