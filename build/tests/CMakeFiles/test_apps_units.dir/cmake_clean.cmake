file(REMOVE_RECURSE
  "CMakeFiles/test_apps_units.dir/test_apps_units.cc.o"
  "CMakeFiles/test_apps_units.dir/test_apps_units.cc.o.d"
  "test_apps_units"
  "test_apps_units.pdb"
  "test_apps_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
