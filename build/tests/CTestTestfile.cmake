# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_core_engine[1]_include.cmake")
include("/root/repo/build/tests/test_core_triggers[1]_include.cmake")
include("/root/repo/build/tests/test_instrument[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_apps_java[1]_include.cmake")
include("/root/repo/build/tests/test_apps_native[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_engine_properties[1]_include.cmake")
include("/root/repo/build/tests/test_detect_properties[1]_include.cmake")
include("/root/repo/build/tests/test_replay[1]_include.cmake")
include("/root/repo/build/tests/test_refinements[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_macros_disabled[1]_include.cmake")
include("/root/repo/build/tests/test_explore[1]_include.cmake")
include("/root/repo/build/tests/test_apps_units[1]_include.cmake")
