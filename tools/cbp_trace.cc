// cbp-trace: collector / exporter / telemetry front end for the
// breakpoint observability layer (DESIGN.md §5d).
//
// Two modes:
//
//   Demo — run a built-in replica workload with event tracing enabled
//   and export the merged trace:
//
//     cbp-trace --demo=cache --runs=10 --format=chrome
//               --out=trace.json --report
//
//   Merge — read one or more JSON dumps previously written by this tool
//   (or by obs::write_json_dump) and re-export them merged, optionally
//   filtered to one breakpoint:
//
//     cbp-trace --format=chrome --filter=cache4j-race1 a.json b.json
//
// The --report table is the §3 model closed over *estimated* inputs
// (see obs/telemetry.h): predicted unaided and BTRIGGER hit rates, the
// gain factor, and the hit rate actually observed over the demo runs.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/cache/cache.h"
#include "apps/kvstore/kvstore.h"
#include "apps/replica.h"
#include "apps/webserver/jigsaw.h"
#include "core/cbp.h"
#include "model/probability.h"
#include "detect/contention.h"
#include "detect/eraser.h"
#include "detect/json_export.h"
#include "detect/lock_order.h"
#include "instrument/hub.h"
#include "obs/export.h"
#include "obs/telemetry.h"
#include "obs/telemetry_io.h"
#include "obs/trace.h"
#include "runtime/clock.h"
#include "runtime/thread_registry.h"
#include "runtime/vclock.h"

namespace {

struct Options {
  std::string demo;  // "", "cache", "cache-atomicity", "jigsaw", "pattern"
  int runs = 10;
  int jobs = 1;                // demo runs in parallel when > 1
  // Demo timing policy.  The demo pins TimeScale at 1.0, so `real` and
  // `scaled` coincide; `virtual` runs each repetition under a private
  // discrete-event clock (DESIGN.md §5g) — pauses are free and the
  // trace timestamps are virtual nanoseconds.
  cbp::rt::ClockMode clock = cbp::rt::ClockMode::kReal;
  std::string format = "json";  // "json" | "chrome"
  std::string filter;
  std::string out;
  bool report = false;
  std::string detect_out;     // demo: run detectors, write JSON dump here
  std::string telemetry_out;  // demo: write telemetry JSON here
  std::vector<std::string> inputs;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] [dump.json ...]\n"
      << "  --demo=cache|cache-atomicity|jigsaw|pattern\n"
      << "                        run a built-in workload with tracing on\n"
      << "                        (pattern: the kvstore evict TOCTOU as a\n"
      << "                        3-event check.put.erase pattern breakpoint,\n"
      << "                        gated armed-vs-dormant; nonzero exit when\n"
      << "                        the observed rate misses the prediction)\n"
      << "  --runs=N              demo repetitions (default 10)\n"
      << "  --trial-jobs=N        run the demo repetitions on N workers,\n"
      << "                        each with a private engine (default 1)\n"
      << "  --clock=real|scaled|virtual\n"
      << "                        demo timing policy (default real; the\n"
      << "                        demo runs at scale 1.0, so scaled is an\n"
      << "                        alias); virtual makes pauses free\n"
      << "  --format=json|chrome  export format (default json)\n"
      << "  --filter=NAME         keep only events of breakpoint NAME\n"
      << "  --out=FILE            write the export to FILE (default stdout)\n"
      << "  --report              print the predicted-vs-observed table\n"
      << "  --detect-out=FILE     (demo) run Eraser/LockOrder/Contention\n"
      << "                        detectors alongside and dump their\n"
      << "                        reports as JSON (cbp-sa --fuse input)\n"
      << "  --telemetry-out=FILE  (demo) write the telemetry row as JSON\n"
      << "                        (cbp-sa --fuse --telemetry input)\n"
      << "With no --demo, positional arguments are JSON dumps to merge.\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix, std::string& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (value_of("--demo=", options.demo)) continue;
    if (value_of("--runs=", value)) {
      options.runs = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (value_of("--trial-jobs=", value)) {
      options.jobs = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (value_of("--clock=", value)) {
      if (value == "real") {
        options.clock = cbp::rt::ClockMode::kReal;
      } else if (value == "scaled") {
        options.clock = cbp::rt::ClockMode::kScaled;
      } else if (value == "virtual") {
        options.clock = cbp::rt::ClockMode::kVirtual;
      } else {
        return false;
      }
      continue;
    }
    if (value_of("--format=", options.format)) continue;
    if (value_of("--filter=", options.filter)) continue;
    if (value_of("--out=", options.out)) continue;
    if (value_of("--detect-out=", options.detect_out)) continue;
    if (value_of("--telemetry-out=", options.telemetry_out)) continue;
    if (arg == "--report") {
      options.report = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return false;
    options.inputs.push_back(arg);
  }
  if (options.format != "json" && options.format != "chrome") return false;
  if (!options.demo.empty() && options.demo != "cache" &&
      options.demo != "cache-atomicity" && options.demo != "jigsaw" &&
      options.demo != "pattern") {
    return false;
  }
  if (options.demo.empty() && options.inputs.empty()) return false;
  if (options.demo.empty() &&
      (!options.detect_out.empty() || !options.telemetry_out.empty())) {
    return false;  // both exports describe a live demo run
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cbp-trace: cannot write " << path << "\n";
    return false;
  }
  out << body;
  return true;
}

/// Runs one replica workload `runs` times with tracing enabled and
/// returns the telemetry input describing what happened.  When `dump`
/// is non-null the dynamic detectors listen along and their reports are
/// collected into it (the cbp-sa --fuse input).
cbp::obs::TelemetryInput run_demo(const Options& options,
                                  cbp::detect::DetectorDump* dump) {
  using namespace cbp;
  using namespace std::chrono_literals;

  detect::EraserDetector eraser;
  detect::LockOrderDetector lock_order;
  detect::ContentionDetector contention;
  std::vector<std::unique_ptr<instr::ScopedListener>> listeners;
  if (dump != nullptr) {
    listeners.push_back(std::make_unique<instr::ScopedListener>(eraser));
    listeners.push_back(std::make_unique<instr::ScopedListener>(lock_order));
    listeners.push_back(std::make_unique<instr::ScopedListener>(contention));
  }
  struct Collect {
    cbp::detect::DetectorDump* dump;
    detect::EraserDetector& eraser;
    detect::LockOrderDetector& lock_order;
    detect::ContentionDetector& contention;
    ~Collect() {
      if (dump == nullptr) return;
      dump->races = eraser.races();
      dump->deadlocks = lock_order.deadlocks();
      dump->contentions = contention.contentions();
    }
  } collect{dump, eraser, lock_order, contention};

  Config::set_enabled(true);
  rt::TimeScale::set(1.0);
  obs::Trace::set_enabled(true);

  apps::RunOptions run_options;
  run_options.breakpoints = true;
  run_options.pause = 20ms;  // keep a CI demo under a second per run
  run_options.clock = options.clock;

  obs::TelemetryInput input;
  input.name = options.demo == "cache"             ? apps::cache::kRace1
               : options.demo == "cache-atomicity" ? apps::cache::kAtomicity1
               : options.demo == "pattern"         ? apps::kvstore::kEvictPattern
                                                   : apps::webserver::kRace1;
  input.threads = 2;  // all demo replicas race two threads at the bp

  // The atomicity demo uses the §6.3 programmatic ignore_first to skip
  // the warm-up constructions.  That refinement compares against the
  // engine's *cumulative* arrival counter, so the demo resets its
  // engine between runs (like harness::run_repeated) and accumulates
  // stats manually — the obs trace ring is global and unaffected.
  const bool per_run_reset = options.demo == "cache-atomicity";
  auto run_one = [&options](const apps::RunOptions& o) {
    // Each virtual repetition gets its own discrete-event clock, exactly
    // like one harness trial (the replica's rt::Threads inherit it).
    std::optional<rt::VirtualClock> vclock;
    std::optional<rt::ScopedClock> bound;
    if (o.clock == rt::ClockMode::kVirtual) {
      vclock.emplace();
      bound.emplace(&*vclock);
    }
    if (options.demo == "cache") {
      apps::cache::run_race1(o);
    } else if (options.demo == "cache-atomicity") {
      (void)apps::cache::run_atomicity1(o,
                                        apps::cache::kWarmupConstructions);
    } else if (options.demo == "pattern") {
      apps::kvstore::run_evict_pattern(o);
    } else {
      apps::webserver::run_race1(o);
    }
  };

  const int jobs = std::min(options.jobs, options.runs);
  if (jobs <= 1) {
    BreakpointStats total;
    std::uint64_t previous_hits = 0;
    for (int run = 0; run < options.runs; ++run) {
      run_options.seed = static_cast<std::uint64_t>(run) + 1;
      if (per_run_reset) Engine::instance().reset();
      run_one(run_options);
      const BreakpointStats stats = Engine::instance().stats(input.name);
      if (per_run_reset) {
        if (stats.hits > 0) input.runs_hit += 1;
        total += stats;
      } else {
        if (stats.hits > previous_hits) input.runs_hit += 1;
        previous_hits = stats.hits;
      }
      input.runs += 1;
    }
    input.stats = per_run_reset ? total : Engine::instance().stats(input.name);
    if (per_run_reset) Engine::instance().reset();
    return input;
  }

  // Parallel demo: workers with private engines claim run indices from a
  // shared counter; run i keeps the serial path's seed i+1.  Hit counting
  // compares each worker's own engine hits before/after a run, and the
  // per-engine stats are summed at the join — the merged trace still
  // attributes every event to the right engine because interned ids are
  // process-unique.
  std::atomic<int> next_run{0};
  std::atomic<std::uint64_t> runs_hit{0};
  std::mutex merge_mu;
  BreakpointStats total;
  rt::ParallelRegion region;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&, run_options]() mutable {
      Engine engine;
      ScopedEngine bind(engine);
      BreakpointStats local_total;
      std::uint64_t previous_hits = 0;
      std::uint64_t local_hit_runs = 0;
      for (int run = next_run.fetch_add(1); run < options.runs;
           run = next_run.fetch_add(1)) {
        run_options.seed = static_cast<std::uint64_t>(run) + 1;
        if (per_run_reset) engine.reset();
        run_one(run_options);
        const BreakpointStats stats = engine.stats(input.name);
        if (per_run_reset) {
          if (stats.hits > 0) ++local_hit_runs;
          local_total += stats;
        } else {
          if (stats.hits > previous_hits) ++local_hit_runs;
          previous_hits = stats.hits;
        }
      }
      runs_hit.fetch_add(local_hit_runs);
      const BreakpointStats stats =
          per_run_reset ? local_total : engine.stats(input.name);
      std::lock_guard<std::mutex> lock(merge_mu);
      total += stats;
    });
  }
  for (std::thread& worker : workers) worker.join();
  input.runs = static_cast<std::uint64_t>(options.runs);
  input.runs_hit = runs_hit.load();
  input.stats = total;
  return input;
}

/// Dormant control for --demo=pattern: the same binary and site calls,
/// but no spec installed, run in a private engine.  Returns the number
/// of runs with at least one hit — the acceptance criterion is 0.
int run_pattern_dormant_hits(const Options& options) {
  using namespace cbp;
  using namespace std::chrono_literals;
  Engine engine;
  ScopedEngine bind(engine);
  apps::RunOptions run_options;
  run_options.breakpoints = false;  // no spec -> sites are no-ops
  run_options.pause = 20ms;
  run_options.clock = options.clock;
  int hit_runs = 0;
  std::uint64_t previous_hits = 0;
  for (int run = 0; run < options.runs; ++run) {
    run_options.seed = static_cast<std::uint64_t>(run) + 1;
    std::optional<rt::VirtualClock> vclock;
    std::optional<rt::ScopedClock> bound;
    if (run_options.clock == rt::ClockMode::kVirtual) {
      vclock.emplace();
      bound.emplace(&*vclock);
    }
    apps::kvstore::run_evict_pattern(run_options);
    const BreakpointStats stats =
        engine.stats(apps::kvstore::kEvictPattern);
    if (stats.hits > previous_hits) ++hit_runs;
    previous_hits = stats.hits;
  }
  return hit_runs;
}

/// The --demo=pattern acceptance gate: the armed hit rate's 95% Wilson
/// interval must contain the spec's predicted rate, and the dormant
/// control must score 0 hit runs.  Returns 0 on pass.
int pattern_gate(const Options& options,
                 const cbp::obs::TelemetryInput& input) {
  using namespace cbp;
  const model::Interval wilson =
      model::wilson_interval(static_cast<int>(input.runs_hit),
                             static_cast<int>(input.runs));
  const double predicted = apps::kvstore::kEvictPatternPredicted;
  const bool rate_ok =
      wilson.low <= predicted && predicted <= wilson.high;
  const int dormant_hits = run_pattern_dormant_hits(options);
  std::cerr << "pattern demo: armed " << input.runs_hit << "/" << input.runs
            << " runs hit (Wilson 95% [" << wilson.low << ", " << wilson.high
            << "], predicted " << predicted << "), dormant " << dormant_hits
            << "/" << options.runs << " runs hit\n";
  if (input.runs_hit == 0) {
    std::cerr << "pattern demo: FAIL — the armed pattern never matched\n";
    return 1;
  }
  if (!rate_ok) {
    std::cerr << "pattern demo: FAIL — predicted rate outside the observed "
                 "Wilson interval\n";
    return 1;
  }
  if (dormant_hits != 0) {
    std::cerr << "pattern demo: FAIL — the dormant control hit\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);

  std::vector<cbp::obs::NamedEvent> events;
  std::uint64_t dropped = 0;
  cbp::obs::TraceSnapshot snapshot;
  cbp::obs::TelemetryInput telemetry_input;
  int gate_rc = 0;

  if (!options.demo.empty()) {
    cbp::detect::DetectorDump dump;
    telemetry_input = run_demo(
        options, options.detect_out.empty() ? nullptr : &dump);
    snapshot = cbp::obs::Trace::collect();
    dropped = snapshot.dropped;
    events = cbp::obs::resolve(snapshot);
    if (!options.detect_out.empty() &&
        !write_text_file(options.detect_out, cbp::detect::write_json(dump))) {
      return 1;
    }
    if (!options.telemetry_out.empty()) {
      const cbp::obs::BreakpointTelemetry row =
          cbp::obs::analyze(telemetry_input, snapshot);
      if (!write_text_file(options.telemetry_out,
                           cbp::obs::write_telemetry_json({row}))) {
        return 1;
      }
    }
    // The pattern demo is self-gating (exports still happen below so a
    // failing run leaves its trace behind for diagnosis).
    if (options.demo == "pattern") {
      gate_rc = pattern_gate(options, telemetry_input);
    }
  } else {
    for (const std::string& path : options.inputs) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cbp-trace: cannot open " << path << "\n";
        return 1;
      }
      std::string error;
      if (!cbp::obs::read_json_dump(in, events, dropped, error)) {
        std::cerr << "cbp-trace: " << path << ": " << error << "\n";
        return 1;
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const cbp::obs::NamedEvent& a,
                        const cbp::obs::NamedEvent& b) {
                       if (a.event.time_ns != b.event.time_ns) {
                         return a.event.time_ns < b.event.time_ns;
                       }
                       return a.event.tid < b.event.tid;
                     });
  }

  if (!options.filter.empty()) {
    events = cbp::obs::filter_by_name(std::move(events), options.filter);
  }

  std::ostringstream body;
  if (options.format == "chrome") {
    cbp::obs::write_chrome_trace(body, events, dropped);
  } else {
    cbp::obs::write_json_dump(body, events, dropped);
  }

  if (options.out.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream out(options.out);
    if (!out) {
      std::cerr << "cbp-trace: cannot write " << options.out << "\n";
      return 1;
    }
    out << body.str();
  }

  if (options.report) {
    if (options.demo.empty()) {
      std::cerr << "cbp-trace: --report requires --demo (live counters)\n";
      return 1;
    }
    const cbp::obs::BreakpointTelemetry row =
        cbp::obs::analyze(telemetry_input, snapshot);
    // Export on stdout, table on stderr — unless the export went to a
    // file, in which case the table is the stdout payload.
    std::ostream& sink = options.out.empty() ? std::cerr : std::cout;
    sink << cbp::obs::render_report({row});
  }
  return gate_rc;
}
