#!/usr/bin/env python3
"""Perf gate: diff a fresh `bench_micro_overhead --json` run against the
committed reference (BENCH_micro.json), failing on regressions beyond a
noise band.

Usage:
    perf_gate.py FRESH.json REFERENCE.json [--band=0.15] [--ref-key=optimized]

FRESH.json is what the bench writes (rows under "results"); the
reference's current tree lives under "optimized" (see BENCH_micro.json's
note).  Rows are matched by benchmark name; names present on only one
side are reported but do not fail the gate (new benchmarks land before
their baseline does).

Exit status: 0 when every matched row's ns_per_op is within
[ref * (1 - band), ref * (1 + band)]; 1 when any row is slower than
ref * (1 + band).  Rows *faster* than the band only warn — that means
the committed baseline is stale and should be regenerated, not that the
build regressed.
"""

import json
import sys


def rows_by_name(rows):
    return {row["name"]: float(row["ns_per_op"]) for row in rows}


def main(argv):
    band = 0.15
    ref_key = "optimized"
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--band="):
            band = float(arg.split("=", 1)[1])
        elif arg.startswith("--ref-key="):
            ref_key = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    with open(paths[0]) as f:
        fresh = rows_by_name(json.load(f)["results"])
    with open(paths[1]) as f:
        reference = rows_by_name(json.load(f)[ref_key])

    regressions = []
    improvements = []
    for name in sorted(fresh.keys() | reference.keys()):
        if name not in reference:
            print(f"  new (no baseline):      {name}")
            continue
        if name not in fresh:
            print(f"  missing from fresh run: {name}")
            continue
        got, want = fresh[name], reference[name]
        delta = (got - want) / want
        verdict = "ok"
        if delta > band:
            verdict = "REGRESSION"
            regressions.append(name)
        elif delta < -band:
            verdict = "faster (stale baseline?)"
            improvements.append(name)
        print(f"  {name}: {got:.2f} ns vs {want:.2f} ns "
              f"({delta:+.1%}) {verdict}")

    if improvements:
        print(f"note: {len(improvements)} row(s) beat the baseline by more "
              f"than {band:.0%} — consider regenerating the reference.")
    if regressions:
        print(f"FAIL: {len(regressions)} row(s) regressed beyond "
              f"{band:.0%}: {', '.join(regressions)}")
        return 1
    print(f"perf gate passed: {len(fresh)} rows within ±{band:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
