#!/usr/bin/env python3
"""Perf gate: diff fresh `--json` bench runs against committed reference
files (BENCH_micro.json, BENCH_hightraffic.json, ...), failing on
regressions beyond a noise band.

Usage (modern, any number of baselines in one invocation):
    perf_gate.py FRESH.json [FRESH2.json ...]
                 --baseline=REF.json[=BAND] [--baseline=REF2.json[=BAND]]
                 [--band=0.15] [--ref-key=optimized]
                 [--require=ROW_NAME ...]

Usage (legacy, preserved verbatim):
    perf_gate.py FRESH.json [FRESH2.json ...] REFERENCE.json
                 [--band=0.15] [--ref-key=optimized]

Each FRESH.json is what a bench writes (rows under "results"); a
baseline file holds its current tree's rows under the --ref-key key
("optimized" by default; see BENCH_micro.json's note).  A row's cost is
read from an "ns_per_op" field, or — for benches using the shared
JsonReport schema — from "value" when the row's "unit" is "ns_per_op";
rows in other units (probabilities, ratios) are not timing rows and are
skipped without comment.

When several fresh runs are given, each row gates on its *minimum*
across them: timing noise on a shared machine is one-sided (interference
only ever adds time), so the min across repeats is the best estimator of
true cost, while a real regression shifts every repeat — including the
min — past the band.  One fresh run keeps the old single-sample
behavior.

Each baseline is reported in its own section and may carry its own band
(`--baseline=FILE=0.25` gates FILE's rows at ±25%); baselines without a
suffix use the global --band.  Rows are matched by benchmark name:

  * names found in no baseline are a warning (new benchmarks land
    before their baseline does);
  * names only in a baseline are a named FAILURE — a benchmark that
    was removed or renamed without touching the baseline would otherwise
    silently drop out of the gate;
  * rows slower than ref * (1 + band) are a FAILURE; rows *faster* than
    ref * (1 - band) only warn — that means the committed baseline is
    stale and should be regenerated, not that the build regressed.

Rows named with --require must be present in BOTH a baseline and the
fresh runs, or the gate fails: load-bearing rows (the armed fast-path
costs a refactor must preserve) cannot silently fall out of the gate by
being renamed, filtered out, or dropped from the baseline.

Exit codes:
    0  every matched row is within its band for every baseline
    1  a regression, a baseline row missing from the fresh runs, or a
       malformed reference file
    2  usage error (no baseline given, unreadable arguments)
"""

import json
import sys


def timing_rows(rows, source):
    """Maps name -> ns_per_op.

    Accepts both row shapes: {"name", "ns_per_op"} (bench_micro_overhead)
    and {"name", "value", "unit": "ns_per_op"} (the shared JsonReport
    schema).  Rows whose unit says they are not timings are skipped
    silently; rows that *should* carry a timing but don't get a warning,
    never a traceback.
    """
    out = {}
    for row in rows:
        name = row.get("name")
        if name is None:
            print(f"warning: {source}: row without a name skipped: {row!r}")
            continue
        value = row.get("ns_per_op")
        if value is None:
            unit = row.get("unit")
            if unit == "ns_per_op":
                value = row.get("value")
            elif unit is not None:
                continue  # a probability/ratio row, not a timing
        if value is None:
            print(f"warning: {source}: no ns_per_op for {name}; skipped")
            continue
        try:
            out[name] = float(value)
        except (TypeError, ValueError):
            print(f"warning: {source}: bad ns_per_op for {name}: {value!r}")
    return out


def parse_baseline_arg(arg, default_band):
    """Splits --baseline=FILE[=BAND] into (path, band)."""
    path, sep, band_text = arg.rpartition("=")
    if sep:
        try:
            return path, float(band_text)
        except ValueError:
            pass  # the '=' belonged to the file name
    return arg, default_band


def gate_against(reference_path, band, ref_key, fresh):
    """Compares the merged fresh rows against one baseline file.

    Returns (failed, names_known_here): whether this baseline's gate
    failed, and the set of row names the baseline defines.
    """
    print(f"\n== {reference_path} (band ±{band:.0%})")
    try:
        with open(reference_path) as f:
            reference_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot read {reference_path}: {error}")
        return True, set()
    if ref_key not in reference_doc:
        print(f"FAIL: {reference_path} has no '{ref_key}' key")
        return True, set()
    reference = timing_rows(reference_doc[ref_key], reference_path)

    regressions = []
    improvements = []
    missing = []
    for name in sorted(reference.keys()):
        if name not in fresh:
            print(f"  MISSING from fresh run:     {name}")
            missing.append(name)
            continue
        got, want = fresh[name], reference[name]
        delta = (got - want) / want
        verdict = "ok"
        if delta > band:
            verdict = "REGRESSION"
            regressions.append(name)
        elif delta < -band:
            verdict = "faster (stale baseline?)"
            improvements.append(name)
        print(f"  {name}: {got:.2f} ns vs {want:.2f} ns "
              f"({delta:+.1%}) {verdict}")

    if improvements:
        print(f"note: {len(improvements)} row(s) beat this baseline by more "
              f"than {band:.0%} — consider regenerating it.")
    failed = False
    if missing:
        print(f"FAIL: {len(missing)} baseline row(s) missing from the fresh "
              f"run (removed or renamed benchmark?): {', '.join(missing)}")
        failed = True
    if regressions:
        print(f"FAIL: {len(regressions)} row(s) regressed beyond "
              f"{band:.0%}: {', '.join(regressions)}")
        failed = True
    if not failed:
        matched = len(reference) - len(missing)
        print(f"{reference_path}: {matched} rows within ±{band:.0%}.")
    return failed, set(reference.keys())


def main(argv):
    band = 0.15
    ref_key = "optimized"
    baseline_args = []
    required = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--band="):
            band = float(arg.split("=", 1)[1])
        elif arg.startswith("--ref-key="):
            ref_key = arg.split("=", 1)[1]
        elif arg.startswith("--baseline="):
            baseline_args.append(arg.split("=", 1)[1])
        elif arg.startswith("--require="):
            required.append(arg.split("=", 1)[1])
        else:
            paths.append(arg)

    if baseline_args:
        fresh_paths = paths
        baselines = [parse_baseline_arg(a, band) for a in baseline_args]
    elif len(paths) >= 2:
        # Legacy form: the last positional is the (single) reference.
        fresh_paths = paths[:-1]
        baselines = [(paths[-1], band)]
    else:
        print(__doc__, file=sys.stderr)
        return 2
    if not fresh_paths:
        print(__doc__, file=sys.stderr)
        return 2

    # Per-row min across the fresh runs (see module docstring).
    fresh = {}
    for path in fresh_paths:
        try:
            with open(path) as f:
                fresh_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL: cannot read {path}: {error}")
            return 1
        if "results" not in fresh_doc:
            print(f"FAIL: {path} has no 'results' key")
            return 1
        for name, value in timing_rows(fresh_doc["results"], path).items():
            fresh[name] = min(value, fresh.get(name, value))
    if len(fresh_paths) > 1:
        print(f"gating on per-row min across {len(fresh_paths)} fresh runs")

    failed = False
    known = set()
    for reference_path, file_band in baselines:
        file_failed, names = gate_against(reference_path, file_band, ref_key,
                                          fresh)
        failed = failed or file_failed
        known |= names

    for name in sorted(fresh.keys() - known):
        print(f"warning: new (no baseline): {name}")

    for name in required:
        if name not in fresh:
            print(f"FAIL: --require row missing from the fresh runs: {name}")
            failed = True
        if name not in known:
            print(f"FAIL: --require row missing from every baseline: {name}")
            failed = True

    if failed:
        return 1
    print(f"\nperf gate passed: {len(fresh)} fresh rows, "
          f"{len(baselines)} baseline file(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
