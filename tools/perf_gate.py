#!/usr/bin/env python3
"""Perf gate: diff fresh `bench_micro_overhead --json` runs against the
committed reference (BENCH_micro.json), failing on regressions beyond a
noise band.

Usage:
    perf_gate.py FRESH.json [FRESH2.json ...] REFERENCE.json
                 [--band=0.15] [--ref-key=optimized]

Each FRESH.json is what the bench writes (rows under "results"); the
last positional is the reference, whose current tree lives under
"optimized" (see BENCH_micro.json's note).  When several fresh runs are
given, each row gates on its *minimum* across them: timing noise on a
shared machine is one-sided (interference only ever adds time), so the
min across repeats is the best estimator of true cost, while a real
regression shifts every repeat — including the min — past the band.
One fresh run keeps the old single-sample behavior.

Rows are matched by benchmark name:

  * names only in the fresh run are a warning (new benchmarks land
    before their baseline does);
  * names only in the reference are a named FAILURE — a benchmark that
    was removed or renamed without touching the baseline would otherwise
    silently drop out of the gate;
  * rows without a usable ns_per_op (other units, malformed entries)
    are skipped with a warning — never a traceback.

Exit status: 0 when every matched row's ns_per_op is within
[ref * (1 - band), ref * (1 + band)]; 1 when any row is slower than
ref * (1 + band) or missing from the fresh run.  Rows *faster* than the
band only warn — that means the committed baseline is stale and should
be regenerated, not that the build regressed.
"""

import json
import sys


def rows_by_name(rows, source):
    """Maps name -> ns_per_op, warning (not raising) on unusable rows."""
    out = {}
    for row in rows:
        name = row.get("name")
        if name is None:
            print(f"warning: {source}: row without a name skipped: {row!r}")
            continue
        value = row.get("ns_per_op")
        if value is None:
            print(f"warning: {source}: no ns_per_op for {name}; skipped")
            continue
        try:
            out[name] = float(value)
        except (TypeError, ValueError):
            print(f"warning: {source}: bad ns_per_op for {name}: {value!r}")
    return out


def main(argv):
    band = 0.15
    ref_key = "optimized"
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--band="):
            band = float(arg.split("=", 1)[1])
        elif arg.startswith("--ref-key="):
            ref_key = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__, file=sys.stderr)
        return 2

    fresh_paths, reference_path = paths[:-1], paths[-1]
    with open(reference_path) as f:
        reference_doc = json.load(f)
    if ref_key not in reference_doc:
        print(f"FAIL: {reference_path} has no '{ref_key}' key")
        return 1
    reference = rows_by_name(reference_doc[ref_key], reference_path)

    # Per-row min across the fresh runs (see module docstring).
    fresh = {}
    for path in fresh_paths:
        with open(path) as f:
            fresh_doc = json.load(f)
        if "results" not in fresh_doc:
            print(f"FAIL: {path} has no 'results' key")
            return 1
        for name, value in rows_by_name(fresh_doc["results"], path).items():
            fresh[name] = min(value, fresh.get(name, value))
    if len(fresh_paths) > 1:
        print(f"gating on per-row min across {len(fresh_paths)} fresh runs")

    regressions = []
    improvements = []
    missing = []
    for name in sorted(fresh.keys() | reference.keys()):
        if name not in reference:
            print(f"  warning: new (no baseline): {name}")
            continue
        if name not in fresh:
            print(f"  MISSING from fresh run:     {name}")
            missing.append(name)
            continue
        got, want = fresh[name], reference[name]
        delta = (got - want) / want
        verdict = "ok"
        if delta > band:
            verdict = "REGRESSION"
            regressions.append(name)
        elif delta < -band:
            verdict = "faster (stale baseline?)"
            improvements.append(name)
        print(f"  {name}: {got:.2f} ns vs {want:.2f} ns "
              f"({delta:+.1%}) {verdict}")

    if improvements:
        print(f"note: {len(improvements)} row(s) beat the baseline by more "
              f"than {band:.0%} — consider regenerating the reference.")
    failed = False
    if missing:
        print(f"FAIL: {len(missing)} baseline row(s) missing from the fresh "
              f"run (removed or renamed benchmark?): {', '.join(missing)}")
        failed = True
    if regressions:
        print(f"FAIL: {len(regressions)} row(s) regressed beyond "
              f"{band:.0%}: {', '.join(regressions)}")
        failed = True
    if failed:
        return 1
    print(f"perf gate passed: {len(fresh)} rows within ±{band:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
