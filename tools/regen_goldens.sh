#!/usr/bin/env sh
# Regenerates every checked-in golden file from the current sources.
#
#   tools/regen_goldens.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must already be configured; the
# script builds the targets it needs (cbp-sa, test_obs) itself.  Run it
# from anywhere — paths resolve relative to the repo root.  Review the
# resulting diff before committing: these files are drift detectors, so
# a change here should always correspond to an intentional change in
# the analyzer or the exporter.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  echo "error: '$build_dir' is not a configured build directory" >&2
  echo "hint: cmake -B build -S '$repo_root' first" >&2
  exit 1
fi

cmake --build "$build_dir" --target cbp-sa test_obs -- -j "$(nproc)"

cbp_sa="$build_dir/tools/cbp-sa"
golden="$repo_root/tests/golden"
cd "$repo_root"

# Per-app candidate lists (test_sa_golden + the CI self-lint job).
"$cbp_sa" --list src/apps/cache     > "$golden/cache.list"
"$cbp_sa" --list src/apps/webserver > "$golden/jigsaw.list"
"$cbp_sa" --list src/apps/logging   > "$golden/logging.list"

# Interprocedural fixture: entry-lockset propagation + cross-function
# deadlock cycle over tests/sa_fixtures/interproc.
"$cbp_sa" --interproc --list tests/sa_fixtures/interproc \
    > "$golden/interproc.list"

# Self-analysis findings over the repo's own sources.
"$cbp_sa" --deadlock  src > "$golden/self_deadlock.txt"
"$cbp_sa" --atomicity src > "$golden/self_atomicity.txt"

# Chrome-trace exporter golden (deterministic injected trace).
CBP_REGEN_GOLDEN=1 "$build_dir/tests/test_obs" \
    --gtest_filter='ObsTest.ChromeExportMatchesGoldenFile' >/dev/null

echo "regenerated goldens under tests/golden/:"
git -C "$repo_root" status --short -- tests/golden || true
