// cbp-sa: static breakpoint-candidate analyzer CLI.
//
// Mines (l1, l2, phi) breakpoint candidates from instrumented sources
// without running the program — the static counterpart of the paper's
// Methodology I, which needs a dynamic detector (and therefore at least
// one buggy execution) before any breakpoint can be planted.
//
//   cbp-sa src/apps                      # human-readable ranked report
//   cbp-sa --spec src/apps/cache         # emit a loadable breakpoint spec
//   cbp-sa --list src/apps/cache         # stable machine-readable list
//   cbp-sa --calls src/apps/cache        # call graph + entry locksets
//   cbp-sa --deadlock src/apps           # ranked lock-order cycles
//   cbp-sa --atomicity src/apps          # atomicity-violation candidates
//   cbp-sa --interproc --list src        # propagate locksets over calls
//   cbp-sa --fuse detector.json --telemetry t.json src/apps/cache
//                                        # closed-loop placement plan
//   cbp-sa --check tests/golden/cache.list src/apps/cache
//                                        # CI self-lint: fail on drift
//                                        # (--check composes with any mode)
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry_io.h"
#include "sa/analyzer.h"
#include "sa/call_graph.h"
#include "sa/lock_graph_pass.h"
#include "sa/placement/placement.h"
#include "sa/rank.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <file-or-dir>...\n"
      << "  --report          human-readable ranked candidates (default)\n"
      << "  --spec            emit breakpoint spec (BreakpointSpec format)\n"
      << "  --list            machine-readable candidate list\n"
      << "  --calls           call graph + interprocedural entry locksets\n"
      << "  --deadlock        ranked lock-order cycles with witness chains\n"
      << "  --atomicity       atomicity-violation candidates only\n"
      << "  --fuse <json>     fuse candidates with a detector dump into a\n"
      << "                    placement plan (spec form; --report for the\n"
      << "                    human-readable plan)\n"
      << "  --telemetry <json> recorded obs telemetry for --fuse\n"
      << "  --interproc       propagate locksets over the call graph\n"
      << "  --check <golden>  compare the active mode's output against a\n"
      << "                    golden file; exit 1 + diff summary on drift\n"
      << "  --top <n>         limit report/spec to the top n candidates\n"
      << "  --no-contention   suppress lock-contention candidates\n"
      << "  --no-atomicity    suppress atomicity-violation candidates\n";
  return 2;
}

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  try {
    out = static_cast<std::size_t>(std::stoul(text));
  } catch (const std::out_of_range&) {
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Line-by-line comparison with a readable drift summary.
bool check_against_golden(const std::string& actual,
                          const std::string& golden_path) {
  std::string expected;
  if (!read_file(golden_path, expected)) {
    std::cerr << "cbp-sa: cannot read golden file '" << golden_path << "'\n";
    return false;
  }
  if (expected == actual) return true;

  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  std::size_t line_no = 0;
  bool more_want = true;
  bool more_got = true;
  std::size_t shown = 0;
  while ((more_want || more_got) && shown < 20) {
    more_want = static_cast<bool>(std::getline(want, want_line));
    more_got = static_cast<bool>(std::getline(got, got_line));
    ++line_no;
    if (!more_want && !more_got) break;
    if (!more_want || !more_got || want_line != got_line) {
      std::cerr << "line " << line_no << ":\n";
      if (more_want) std::cerr << "  golden: " << want_line << "\n";
      if (more_got) std::cerr << "  actual: " << got_line << "\n";
      ++shown;
    }
  }
  std::cerr << "cbp-sa: output drifted from golden '" << golden_path
            << "' — regenerate (tools/regen_goldens.sh) if intended\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kReport, kSpec, kList, kCalls, kDeadlock, kAtomicity,
                    kFuse };
  Mode mode = Mode::kReport;
  bool explicit_report = false;
  std::string golden;
  std::string detector_path;
  std::string telemetry_path;
  std::size_t top = 0;
  cbp::sa::AnalysisOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      mode = Mode::kReport;
      explicit_report = true;
    } else if (arg == "--spec") {
      mode = Mode::kSpec;
    } else if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--calls") {
      mode = Mode::kCalls;
    } else if (arg == "--deadlock") {
      mode = Mode::kDeadlock;
    } else if (arg == "--atomicity") {
      mode = Mode::kAtomicity;
    } else if (arg == "--fuse") {
      if (++i >= argc) return usage(argv[0]);
      if (mode != Mode::kReport || !explicit_report) mode = Mode::kFuse;
      detector_path = argv[i];
    } else if (arg == "--telemetry") {
      if (++i >= argc) return usage(argv[0]);
      telemetry_path = argv[i];
    } else if (arg == "--interproc") {
      options.interprocedural = true;
    } else if (arg == "--check") {
      if (++i >= argc) return usage(argv[0]);
      golden = argv[i];
    } else if (arg == "--top") {
      if (++i >= argc) return usage(argv[0]);
      if (!parse_count(argv[i], top)) {
        std::cerr << "cbp-sa: --top expects a non-negative integer, got '"
                  << argv[i] << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--no-contention") {
      options.include_contention = false;
    } else if (arg == "--no-atomicity") {
      options.include_atomicity = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "cbp-sa: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  // `--check <golden>` without an explicit mode keeps the historical
  // behaviour of checking the --list output.
  if (!golden.empty() && mode == Mode::kReport && !explicit_report &&
      detector_path.empty()) {
    mode = Mode::kList;
  }
  for (const std::string& path : paths) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      std::cerr << "cbp-sa: no such file or directory: '" << path << "'\n";
      return 2;
    }
  }

  const cbp::sa::AnalysisResult result =
      cbp::sa::analyze_paths(paths, options);

  std::string output;
  switch (mode) {
    case Mode::kReport: {
      std::ostringstream out;
      out << cbp::sa::render_report(result.candidates, top);
      if (result.lock_graph_has_cycle) {
        out << "\nlock-order graph: cycle detected (see deadlock "
               "candidates above; --deadlock for ranked cycles)\n";
      }
      output = out.str();
      break;
    }
    case Mode::kSpec:
      output = cbp::sa::render_spec(result.candidates, top);
      break;
    case Mode::kList:
      output = cbp::sa::render_list(result.candidates);
      break;
    case Mode::kCalls: {
      std::ostringstream out;
      for (const cbp::sa::UnitModel& unit : result.units) {
        out << cbp::sa::render_call_graph(unit,
                                          cbp::sa::build_call_graph(unit));
      }
      output = out.str();
      break;
    }
    case Mode::kDeadlock:
      output = cbp::sa::render_cycles(result.cycles);
      break;
    case Mode::kAtomicity: {
      std::vector<cbp::sa::Candidate> atomic;
      for (const cbp::sa::Candidate& c : result.candidates) {
        if (c.kind == cbp::sa::Candidate::Kind::kAtomicity) {
          atomic.push_back(c);
        }
      }
      output = cbp::sa::render_list(atomic);
      break;
    }
    case Mode::kFuse:
      break;  // handled below (needs the input files)
  }

  if (mode == Mode::kFuse || !detector_path.empty()) {
    std::string text;
    if (!read_file(detector_path, text)) {
      std::cerr << "cbp-sa: cannot read detector dump '" << detector_path
                << "'\n";
      return 2;
    }
    std::string error;
    std::vector<cbp::sa::placement::RecordedSitePair> recorded;
    if (!cbp::sa::placement::parse_detector_json(text, recorded, error)) {
      std::cerr << "cbp-sa: bad detector dump: " << error << "\n";
      return 2;
    }
    std::vector<cbp::obs::BreakpointTelemetry> telemetry;
    if (!telemetry_path.empty()) {
      if (!read_file(telemetry_path, text)) {
        std::cerr << "cbp-sa: cannot read telemetry '" << telemetry_path
                  << "'\n";
        return 2;
      }
      if (!cbp::obs::read_telemetry_json(text, telemetry, error)) {
        std::cerr << "cbp-sa: bad telemetry: " << error << "\n";
        return 2;
      }
    }
    const cbp::sa::placement::PlacementPlan plan =
        cbp::sa::placement::fuse(result, recorded, telemetry);
    output = mode == Mode::kFuse
                 ? cbp::sa::placement::render_plan_spec(plan)
                 : cbp::sa::placement::render_plan(plan);
  }

  if (!golden.empty()) {
    return check_against_golden(output, golden) ? 0 : 1;
  }
  std::cout << output;
  return 0;
}
