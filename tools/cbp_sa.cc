// cbp-sa: static breakpoint-candidate analyzer CLI.
//
// Mines (l1, l2, phi) breakpoint candidates from instrumented sources
// without running the program — the static counterpart of the paper's
// Methodology I, which needs a dynamic detector (and therefore at least
// one buggy execution) before any breakpoint can be planted.
//
//   cbp-sa src/apps                      # human-readable ranked report
//   cbp-sa --spec src/apps/cache         # emit a loadable breakpoint spec
//   cbp-sa --list src/apps/cache         # stable machine-readable list
//   cbp-sa --check tests/golden/cache.list src/apps/cache
//                                        # CI self-lint: fail on drift
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sa/analyzer.h"
#include "sa/rank.h"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] <file-or-dir>...\n"
      << "  --report          human-readable ranked candidates (default)\n"
      << "  --spec            emit breakpoint spec (BreakpointSpec format)\n"
      << "  --list            machine-readable candidate list\n"
      << "  --check <golden>  compare --list output against a golden file;\n"
      << "                    exit 1 and print a diff summary on drift\n"
      << "  --top <n>         limit report/spec to the top n candidates\n"
      << "  --no-contention   suppress lock-contention candidates\n";
  return 2;
}

bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  try {
    out = static_cast<std::size_t>(std::stoul(text));
  } catch (const std::out_of_range&) {
    return false;
  }
  return true;
}

/// Line-by-line comparison with a readable drift summary.
bool check_against_golden(const std::string& actual,
                          const std::string& golden_path) {
  std::ifstream in(golden_path);
  if (!in) {
    std::cerr << "cbp-sa: cannot read golden file '" << golden_path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) return true;

  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  std::size_t line_no = 0;
  bool more_want = true;
  bool more_got = true;
  std::size_t shown = 0;
  while ((more_want || more_got) && shown < 20) {
    more_want = static_cast<bool>(std::getline(want, want_line));
    more_got = static_cast<bool>(std::getline(got, got_line));
    ++line_no;
    if (!more_want && !more_got) break;
    if (!more_want || !more_got || want_line != got_line) {
      std::cerr << "line " << line_no << ":\n";
      if (more_want) std::cerr << "  golden: " << want_line << "\n";
      if (more_got) std::cerr << "  actual: " << got_line << "\n";
      ++shown;
    }
  }
  std::cerr << "cbp-sa: candidate list drifted from golden '" << golden_path
            << "' — regenerate with --list if the change is intended\n";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kReport, kSpec, kList } mode = Mode::kReport;
  std::string golden;
  std::size_t top = 0;
  cbp::sa::AnalysisOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      mode = Mode::kReport;
    } else if (arg == "--spec") {
      mode = Mode::kSpec;
    } else if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--check") {
      if (++i >= argc) return usage(argv[0]);
      mode = Mode::kList;
      golden = argv[i];
    } else if (arg == "--top") {
      if (++i >= argc) return usage(argv[0]);
      if (!parse_count(argv[i], top)) {
        std::cerr << "cbp-sa: --top expects a non-negative integer, got '"
                  << argv[i] << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--no-contention") {
      options.include_contention = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "cbp-sa: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  for (const std::string& path : paths) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      std::cerr << "cbp-sa: no such file or directory: '" << path << "'\n";
      return 2;
    }
  }

  const cbp::sa::AnalysisResult result =
      cbp::sa::analyze_paths(paths, options);

  switch (mode) {
    case Mode::kReport: {
      std::cout << cbp::sa::render_report(result.candidates, top);
      if (result.lock_graph_has_cycle) {
        std::cout << "\nlock-order graph: cycle detected (see deadlock "
                     "candidates above)\n";
      }
      break;
    }
    case Mode::kSpec:
      std::cout << cbp::sa::render_spec(result.candidates, top);
      break;
    case Mode::kList: {
      const std::string list = cbp::sa::render_list(result.candidates);
      if (!golden.empty()) {
        return check_against_golden(list, golden) ? 0 : 1;
      }
      std::cout << list;
      break;
    }
  }
  return 0;
}
