// Pre-fork mode of the httpdlike replica: the cross-process driver for
// the trigger broker (src/broker).
//
// Apache's pre-fork MPM serves requests from N *processes* sharing a
// scoreboard in shared memory; concurrency bugs there span address
// spaces, which is exactly what `scope=process-group` breakpoints are
// for.  This replica forks N workers over a MAP_SHARED|MAP_ANONYMOUS
// region holding:
//
//   * a slot scoreboard.  Normal requests claim a random slot with a
//     correct CAS.  Rare "admin" requests (~1 in admin_period) use the
//     seeded TOCTOU bug on dedicated slot 0: check `state == 0`, *then*
//     claim with fetch_add — two admins passing the check concurrently
//     double-claim the slot (`claims` briefly > 1, counted as a race).
//     The window is a few instructions wide and admins are rare, so the
//     natural probability is near zero; the process-group breakpoint
//     kScoreboardBp parks a worker inside the window until a peer
//     process arrives, making the double-claim nearly deterministic.
//
//   * the access log (Apache #25520 transplanted to shared memory): one
//     request is logged as two separately spin-locked appends; the
//     process-group breakpoint kPreforkLogBp parks between the halves,
//     interleaving two processes' half-lines.
//
// fork discipline: workers are forked while the parent is still
// single-threaded; only then does the parent start the Broker (whose IO
// and match threads must never cross a fork).  Workers retry-connect to
// the socket, attach a BrokerClient transport, and _exit without
// running atexit handlers.
//
// kill_worker_on_hit drives the peer-loss path end to end: worker 0
// takes its breakpoint scoped and _exits(42) while still holding the
// OrderingGuard — the broker sees EOF mid-protocol and must release the
// surviving peer with a kPeerLost grant instead of letting it hang.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace cbp::apps::httpdlike {

struct PreforkOptions {
  int workers = 4;
  int requests_per_worker = 25000;
  /// Scoreboard size; slot 0 is the admin (racy) slot, the rest are
  /// claimed with the correct CAS.
  int scoreboard_slots = 16;
  /// ~1 admin request per this many requests, per worker.
  int admin_period = 500;

  /// Install the process-group breakpoints (off = bare workload, the
  /// "without breakpoints" control row).
  bool breakpoints = true;
  /// Nominal postponement bound T for both breakpoints.
  std::chrono::milliseconds pause{150};
  std::uint64_t seed = 1;

  /// Worker 0 _exits(42) holding its first hit's OrderingGuard (peer
  /// death mid-protocol); survivors must be released as peer-lost.
  bool kill_worker_on_hit = false;

  /// Unix-socket path for the broker; empty = a /tmp path derived from
  /// the parent pid.
  std::string socket_path;

  /// Parent-side watchdog: workers still alive after this real-time
  /// budget are SIGKILLed and the run reported as wedged.
  std::chrono::seconds watchdog{60};
};

struct PreforkOutcome {
  int scoreboard_races = 0;   ///< double-claims of the admin slot
  int corrupt_log_lines = 0;  ///< interleaved two-half log lines
  std::uint64_t broker_matches = 0;    ///< groups formed (all names)
  std::uint64_t broker_timeouts = 0;   ///< arrivals expired unmatched
  std::uint64_t broker_peer_lost = 0;  ///< members lost to peer death
  std::uint64_t worker_hits = 0;       ///< sum of workers' engine hits
  std::uint64_t worker_peer_lost = 0;  ///< sum of engine peer_lost
  std::uint64_t worker_timeouts = 0;   ///< sum of engine timeouts
  bool worker_killed = false;  ///< a worker exited via the kill path
  bool wedged = false;         ///< watchdog had to SIGKILL workers
  double runtime_seconds = 0.0;
  std::string detail;
};

/// Runs one pre-fork trial (fork, serve, join, aggregate).  Safe to run
/// repeatedly from one process; the caller must be single-threaded at
/// the call (the fork contract above).
PreforkOutcome run_prefork_scoreboard(const PreforkOptions& options);

inline constexpr const char* kScoreboardBp = "httpd-prefork-scoreboard-bp";
inline constexpr const char* kPreforkLogBp = "httpd-prefork-log-bp";

}  // namespace cbp::apps::httpdlike
