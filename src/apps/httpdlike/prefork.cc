#include "apps/httpdlike/prefork.h"

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "apps/replica.h"
#include "broker/broker.h"
#include "broker/client.h"
#include "core/engine.h"
#include "core/spec.h"
#include "core/triggers.h"
#include "runtime/rng.h"

namespace cbp::apps::httpdlike {
namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr int kMaxWorkers = 16;
constexpr int kMaxSlots = 64;
constexpr std::size_t kLogBytes = 1u << 16;

/// Everything the workers share, in one MAP_SHARED|MAP_ANONYMOUS page
/// set mapped before fork (so the mapping — and every object address in
/// it — is identical in all processes).  Zero-initialized by mmap;
/// std::atomic of a zeroed integral is a valid zero.
struct Shared {
  struct Slot {
    std::atomic<int> state;   ///< 0 = free, 1 = claimed
    std::atomic<int> claims;  ///< concurrent claimants (the race probe)
  };
  Slot slots[kMaxSlots];
  std::atomic<int> races;  ///< double-claims observed on the admin slot

  // Two-half access log (Apache #25520 in shared memory).
  std::atomic<int> log_lock;  ///< spinlock; held per *half*, not per line
  std::atomic<std::uint32_t> log_len;
  char log[kLogBytes];

  // Per-worker engine counters, written back just before _exit.
  struct WorkerStats {
    std::atomic<std::uint64_t> hits;
    std::atomic<std::uint64_t> peer_lost;
    std::atomic<std::uint64_t> timeouts;
    std::atomic<int> finished;
  };
  WorkerStats worker_stats[kMaxWorkers];
};
static_assert(std::atomic<int>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

void shm_log_append(Shared& shm, const char* data, std::size_t size) {
  while (shm.log_lock.exchange(1, std::memory_order_acquire) != 0) {
  }
  const std::uint32_t len = shm.log_len.load(std::memory_order_relaxed);
  if (len + size <= kLogBytes) {
    std::memcpy(shm.log + len, data, size);
    shm.log_len.store(len + static_cast<std::uint32_t>(size),
                      std::memory_order_relaxed);
  }
  shm.log_lock.store(0, std::memory_order_release);
}

/// The seeded #25520 transplant: one request logged as two separately
/// locked appends ("R<w>q<i> " then "O<w>q<i>;"); kPreforkLogBp parks
/// between them so two *processes'* halves interleave.
void log_request(Shared& shm, int worker, int request, bool armed,
                 std::chrono::milliseconds pause) {
  char half[32];
  int n = std::snprintf(half, sizeof(half), "R%dq%d ", worker, request);
  shm_log_append(shm, half, static_cast<std::size_t>(n));

  if (armed) {
    ConflictTrigger between(kPreforkLogBp, &shm.log_lock);
    between.trigger_here(/*is_first_action=*/true, pause);
  }

  n = std::snprintf(half, sizeof(half), "O%dq%d;", worker, request);
  shm_log_append(shm, half, static_cast<std::size_t>(n));
}

/// Counts interleaved lines: a healthy line is exactly "R<x> O<x>".
int count_corrupt_lines(const Shared& shm) {
  const std::uint32_t len = shm.log_len.load(std::memory_order_relaxed);
  const std::string buffer(shm.log, len);
  int corrupt = 0;
  std::size_t start = 0;
  while (start < buffer.size()) {
    std::size_t end = buffer.find(';', start);
    if (end == std::string::npos) end = buffer.size();
    const std::string line = buffer.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    bool ok = space != std::string::npos && line[0] == 'R' &&
              space + 1 < line.size() && line[space + 1] == 'O' &&
              line.find(' ', space + 1) == std::string::npos &&
              line.substr(1, space - 1) == line.substr(space + 2);
    if (!ok) ++corrupt;
  }
  return corrupt;
}

/// One worker process's request loop.  Never returns; ends in _exit.
[[noreturn]] void worker_main(Shared& shm, int worker,
                              const PreforkOptions& options,
                              const std::string& socket_path) {
  Engine& engine = Engine::instance();

  std::shared_ptr<broker::BrokerClient> client;
  if (options.breakpoints) {
    BreakpointSpec::parse(std::string(kScoreboardBp) +
                          " scope=process-group\n" + kPreforkLogBp +
                          " scope=process-group\n")
        .install();
    client = broker::BrokerClient::connect(
        socket_path, std::chrono::milliseconds(5000), engine.tag());
    if (client) engine.set_transport(client);
  }

  rt::Rng rng(options.seed * 1000003u + static_cast<std::uint64_t>(worker));
  const bool killer = options.kill_worker_on_hit && worker == 0;

  for (int i = 0; i < options.requests_per_worker; ++i) {
    const bool admin =
        rng.next_below(static_cast<std::uint64_t>(options.admin_period)) == 0;
    if (!admin) {
      // Correct path: CAS-claim a random non-admin slot.
      const int slot_index =
          1 + static_cast<int>(rng.next_below(
                  static_cast<std::uint64_t>(options.scoreboard_slots - 1)));
      Shared::Slot& slot = shm.slots[slot_index];
      int expected = 0;
      if (slot.state.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
        busy_work(50);
        slot.state.store(0, std::memory_order_release);
      }
      continue;
    }

    // Admin path: the seeded check-then-claim race on slot 0.
    Shared::Slot& slot = shm.slots[0];
    const int observed = slot.state.load(std::memory_order_acquire);  // check
    if (observed != 0) continue;

    // The breakpoint sits inside the TOCTOU window, after the check and
    // before the claim; "my check passed" is its local predicate over
    // the shared mmap (core/transport.h: the joint condition a global
    // predicate can't express across address spaces).
    if (options.breakpoints) {
      ConflictTrigger window(kScoreboardBp, &slot);
      if (killer) {
        TriggerResult result = window.trigger_here_scoped(
            /*is_first_action=*/true, options.pause);
        if (result.hit) {
          // Die holding the guard: DONE is never sent, the broker sees
          // EOF mid-protocol, and the peer must be released as
          // peer-lost.  _exit skips destructors, so the guard's release
          // never runs — exactly a crashed worker.
          shm.worker_stats[worker].finished.store(2,
                                                  std::memory_order_release);
          _exit(42);
        }
      } else {
        // In kill mode survivors declare the second rank, so the killer
        // always holds rank 0 — granted first, peer parked — and its
        // death is observed *mid-protocol*.  Otherwise everyone
        // declares rank 0 and the broker's earlier-arrival rule orders
        // the pair, as the in-process engine does.
        window.trigger_here(
            /*is_first_action=*/!options.kill_worker_on_hit, options.pause);
      }
    }

    const int previous =
        slot.claims.fetch_add(1, std::memory_order_acq_rel);  // claim
    if (previous != 0) shm.races.fetch_add(1, std::memory_order_relaxed);
    slot.state.store(1, std::memory_order_release);
    // Hold the claim long enough that a just-released peer's claim
    // lands inside it (the real bug's "request being served" span).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    busy_work(2000);
    slot.state.store(0, std::memory_order_release);
    slot.claims.fetch_sub(1, std::memory_order_acq_rel);

    log_request(shm, worker, i, options.breakpoints, options.pause);
  }

  const BreakpointStats stats = engine.total_stats();
  shm.worker_stats[worker].hits.store(stats.hits, std::memory_order_release);
  shm.worker_stats[worker].peer_lost.store(stats.peer_lost,
                                           std::memory_order_release);
  shm.worker_stats[worker].timeouts.store(stats.timeouts,
                                          std::memory_order_release);
  shm.worker_stats[worker].finished.store(1, std::memory_order_release);
  if (client) client->shutdown();
  _exit(0);
}

}  // namespace

PreforkOutcome run_prefork_scoreboard(const PreforkOptions& options) {
  PreforkOutcome outcome;
  const int workers = std::min(std::max(options.workers, 2), kMaxWorkers);

  std::string socket_path = options.socket_path;
  if (socket_path.empty()) {
    socket_path =
        "/tmp/cbp-prefork-" + std::to_string(::getpid()) + ".sock";
  }

  void* mapping = ::mmap(nullptr, sizeof(Shared), PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapping == MAP_FAILED) {
    outcome.detail = "mmap failed";
    return outcome;
  }
  auto* shm = static_cast<Shared*>(mapping);

  const auto started = SteadyClock::now();

  // fork *before* the broker starts its threads: the parent must be
  // single-threaded at every fork (prefork.h).
  std::vector<pid_t> pids;
  for (int w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      worker_main(*shm, w, options, socket_path);  // never returns
    }
    if (pid < 0) {
      for (pid_t p : pids) ::kill(p, SIGKILL);
      for (pid_t p : pids) ::waitpid(p, nullptr, 0);
      ::munmap(mapping, sizeof(Shared));
      outcome.detail = "fork failed";
      return outcome;
    }
    pids.push_back(pid);
  }

  broker::Broker broker_server({socket_path, std::chrono::milliseconds(2000)});
  const bool broker_up = !options.breakpoints || broker_server.start();
  if (!broker_up) outcome.detail = "broker start failed";

  // Reap with a watchdog: a wedged worker is SIGKILLed, never waited on
  // forever (the acceptance criterion for peer loss is a *release*, and
  // this is the backstop proving we never rely on a hang).
  const auto deadline = SteadyClock::now() + options.watchdog;
  std::vector<pid_t> alive = pids;
  while (!alive.empty() && SteadyClock::now() < deadline) {
    for (std::size_t i = 0; i < alive.size();) {
      int status = 0;
      const pid_t r = ::waitpid(alive[i], &status, WNOHANG);
      if (r == alive[i]) {
        if (WIFEXITED(status) && WEXITSTATUS(status) == 42) {
          outcome.worker_killed = true;
        }
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (!alive.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  if (!alive.empty()) {
    outcome.wedged = true;
    outcome.detail = "watchdog: killed " + std::to_string(alive.size()) +
                     " wedged worker(s)";
    for (pid_t p : alive) ::kill(p, SIGKILL);
    for (pid_t p : alive) ::waitpid(p, nullptr, 0);
  }

  outcome.runtime_seconds =
      std::chrono::duration<double>(SteadyClock::now() - started).count();

  if (broker_up && options.breakpoints) {
    const broker::BrokerStats bstats = broker_server.stats();
    outcome.broker_matches = bstats.matches;
    outcome.broker_timeouts = bstats.timeouts;
    outcome.broker_peer_lost = bstats.peer_lost;
    broker_server.stop();
  }

  outcome.scoreboard_races = shm->races.load(std::memory_order_acquire);
  outcome.corrupt_log_lines = count_corrupt_lines(*shm);
  for (int w = 0; w < workers; ++w) {
    outcome.worker_hits +=
        shm->worker_stats[w].hits.load(std::memory_order_acquire);
    outcome.worker_peer_lost +=
        shm->worker_stats[w].peer_lost.load(std::memory_order_acquire);
    outcome.worker_timeouts +=
        shm->worker_stats[w].timeouts.load(std::memory_order_acquire);
  }

  ::munmap(mapping, sizeof(Shared));
  return outcome;
}

}  // namespace cbp::apps::httpdlike
