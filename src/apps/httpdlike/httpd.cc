#include "apps/httpdlike/httpd.h"

#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::httpdlike {

// ---------------------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------------------

void AccessLog::log_request(int id, bool armed) {
  {
    instr::TrackedLock lock(mu_);
    buffer_ += "REQ" + std::to_string(id) + " ";
  }
  // SEEDED BUG (#25520 shape): the line is completed by a SECOND locked
  // append; a peer's appends interleave here and garble the line.
  if (armed) {
    ConflictTrigger trigger(kLogBp, this);
    trigger.trigger_here(/*is_first_action=*/true);  // symmetric sites
  }
  {
    instr::TrackedLock lock(mu_);
    buffer_ += "OK" + std::to_string(id) + ";";
  }
}

std::vector<std::string> AccessLog::lines() const {
  std::string snapshot;
  {
    instr::TrackedLock lock(mu_);
    snapshot = buffer_;
  }
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t split = snapshot.find(';', start);
    if (split == std::string::npos) break;
    out.push_back(snapshot.substr(start, split - start));
    start = split + 1;
  }
  return out;
}

int AccessLog::corrupt_lines() const {
  int corrupt = 0;
  for (const std::string& line : lines()) {
    // A clean line is exactly "REQ<id> OK<id>".
    const std::size_t req = line.find("REQ");
    const std::size_t ok = line.find("OK");
    if (req == std::string::npos || ok == std::string::npos) {
      ++corrupt;
      continue;
    }
    const std::string req_id =
        line.substr(req + 3, line.find(' ', req) - (req + 3));
    const std::string ok_id = line.substr(ok + 2);
    if (req_id != ok_id || line.find("REQ", req + 1) != std::string::npos) {
      ++corrupt;
    }
  }
  return corrupt;
}

RunOutcome run_log_corruption(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;
  AccessLog log;
  const int requests = std::max(2, static_cast<int>(4 * options.work_scale));
  rt::StartGate gate;
  auto worker = [&](int base) {
    gate.wait();
    for (int i = 0; i < requests; ++i) {
      log.log_request(base + i, options.breakpoints);
    }
  };
  rt::Thread a(worker, 100);
  rt::Thread b(worker, 200);
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  const int corrupt = log.corrupt_lines();
  if (corrupt > 0) {
    outcome.artifact = rt::Artifact::kLogCorruption;
    outcome.detail = std::to_string(corrupt) + " garbled access-log lines";
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Buffer overflow
// ---------------------------------------------------------------------------

RunOutcome run_buffer_overflow(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;

  constexpr int kCapacity = 64;
  constexpr int kChunk = 16;
  std::vector<char> connection_buffer(kCapacity, 0);
  instr::SharedVar<int> length{kCapacity - kChunk};  // one chunk of room
  std::string crash;
  rt::StartGate gate;

  // TOCTOU append: the capacity check uses a cached length; the write
  // offset is re-read after the peer may have appended.
  auto append = [&](bool is_first) {
    const int cached = length.read();
    // bp1: align both workers right after their (now shared-stale) check
    // input reads.
    {
      ConflictTrigger bp1(kOvfBp1, &connection_buffer);
      bp1.trigger_here(/*is_first_action=*/true);  // symmetric
    }
    if (cached + kChunk > kCapacity) return;  // check (passes for both)
    // bp2: the designated first worker performs its whole append first.
    {
      ConflictTrigger bp2(kOvfBp2, &connection_buffer);
      bp2.trigger_here(is_first);
    }
    if (!is_first) {
      // bp3: and its length publication must be visible before the
      // second worker picks its write offset.
      ConflictTrigger bp3(kOvfBp3, &connection_buffer);
      bp3.trigger_here(/*is_first_action=*/false);
    }
    const int offset = length.read();  // fresh (possibly advanced) offset
    for (int i = 0; i < kChunk; ++i) {
      const int position = offset + i;
      if (position >= kCapacity) {
        throw rt::SimulatedCrash(
            "buffer overflow: write at offset " + std::to_string(position) +
            " beyond capacity " + std::to_string(kCapacity));
      }
      connection_buffer[static_cast<std::size_t>(position)] = 'x';
    }
    length.write(offset + kChunk);
    if (is_first) {
      ConflictTrigger bp3(kOvfBp3, &connection_buffer);
      bp3.trigger_here(/*is_first_action=*/true);
    }
  };

  rt::Thread w1([&] {
    gate.wait();
    try {
      append(/*is_first=*/true);
    } catch (const rt::SimulatedCrash& e) {
      crash = e.what();
    }
  });
  rt::Thread w2([&] {
    gate.wait();
    try {
      append(/*is_first=*/false);
    } catch (const rt::SimulatedCrash& e) {
      crash = e.what();
    }
  });
  gate.open();
  w1.join();
  w2.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!crash.empty()) {
    outcome.artifact = rt::Artifact::kCrash;
    outcome.detail = crash;
  }
  return outcome;
}

}  // namespace cbp::apps::httpdlike
