// Replica of the two Apache httpd 2.0.45 bugs of Table 2:
//
//   log corruption (Apache bug #25520) — the access logger emits one
//     request as two buffer appends (request part, status part) without
//     holding the buffer lock across both; interleaved workers produce
//     garbled lines.  One breakpoint (#CBR = 1) parks a worker between
//     its two appends while a peer writes.
//
//   server crash (buffer overflow) — the connection buffer uses a
//     check-then-append on a shared length field; two workers passing
//     the check together overflow the fixed buffer.  Three breakpoints
//     (#CBR = 3, as in the paper) steer the schedule: align the two
//     capacity checks, order the first append before the second check's
//     thread appends, and order the length publications.
#pragma once

#include <string>
#include <vector>

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::httpdlike {

/// Access log whose lines are written in two unsynchronized halves.
class AccessLog {
 public:
  /// Appends "REQ<id> " then "OK<id>;" as two separate locked appends —
  /// the seeded non-atomicity.
  void log_request(int id, bool armed);

  /// Lines split on ';'.  A line is corrupt when its REQ and OK ids
  /// disagree.
  [[nodiscard]] std::vector<std::string> lines() const;
  [[nodiscard]] int corrupt_lines() const;

 private:
  mutable instr::TrackedMutex mu_{"access-log"};
  std::string buffer_;  // guarded by mu_
};

RunOutcome run_log_corruption(const RunOptions& options);
RunOutcome run_buffer_overflow(const RunOptions& options);

inline constexpr const char* kLogBp = "httpd-log-bp";
inline constexpr const char* kOvfBp1 = "httpd-ovf-bp1";
inline constexpr const char* kOvfBp2 = "httpd-ovf-bp2";
inline constexpr const char* kOvfBp3 = "httpd-ovf-bp3";

}  // namespace cbp::apps::httpdlike
