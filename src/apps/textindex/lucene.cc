#include "apps/textindex/lucene.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::textindex {

void Index::writer_close(std::chrono::milliseconds stall_after) {
  instr::TrackedLock commit(commit_mu_);
  if (armed_) {
    DeadlockTrigger trigger(kDeadlock1, &commit_mu_, &directory_mu_);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  directory_mu_.lock_or_stall(stall_after);
  segments_ = 0;
  directory_mu_.unlock();
}

void Index::maybe_refresh(std::chrono::milliseconds stall_after) {
  instr::TrackedLock directory(directory_mu_);
  if (armed_) {
    DeadlockTrigger trigger(kDeadlock1, &directory_mu_, &commit_mu_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  commit_mu_.lock_or_stall(stall_after);
  (void)segments_;
  commit_mu_.unlock();
}

RunOutcome run_deadlock1(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;
  Index index;
  index.arm_deadlock(true);
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread closer([&] {
    gate.wait();
    try {
      index.writer_close(options.stall_after);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread refresher([&] {
    gate.wait();
    try {
      index.maybe_refresh(options.stall_after);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  gate.open();
  closer.join();
  refresher.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "commit/directory lock order crossed";
  }
  return outcome;
}

}  // namespace cbp::apps::textindex
