// Replica of the lucene deadlock (Table 1 row lucene deadlock1).
//
// IndexWriter.close() holds the writer's commit lock and then acquires
// the directory lock to release its file handles; a concurrent
// SearcherManager.maybe_refresh() holds the directory lock (enumerating
// segments) and then acquires the commit lock to read the commit point:
// crossed order, stall.
#pragma once

#include "apps/replica.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::textindex {

class Index {
 public:
  /// commit lock -> directory lock.
  void writer_close(std::chrono::milliseconds stall_after);

  /// directory lock -> commit lock.
  void maybe_refresh(std::chrono::milliseconds stall_after);

  void arm_deadlock(bool on) { armed_ = on; }

 private:
  instr::TrackedMutex commit_mu_{"IndexWriter.commitLock"};
  instr::TrackedMutex directory_mu_{"Directory"};
  int segments_ = 3;  // guarded by both locks in the respective paths
  bool armed_ = false;
};

RunOutcome run_deadlock1(const RunOptions& options);

inline constexpr const char* kDeadlock1 = "lucene-deadlock1";

}  // namespace cbp::apps::textindex
