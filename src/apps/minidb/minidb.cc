#include "apps/minidb/minidb.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/vclock.h"

namespace cbp::apps::minidb {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

}  // namespace

// ---------------------------------------------------------------------------
// Binlog
// ---------------------------------------------------------------------------

bool Binlog::write_event(int event, bool armed) {
  // Racy generation check — the "is the log still open" decision.
  const int generation_seen = generation_.read();
  if (armed) {
    // bp1: the rotation must begin right after this stale check...
    ConflictTrigger bp1(kOmissionBp1, this);
    bp1.trigger_here(/*is_first_action=*/false);
    // bp2: ...and complete before the append below.
    ConflictTrigger bp2(kOmissionBp2, this);
    bp2.trigger_here(/*is_first_action=*/false);
  }
  instr::TrackedLock lock(mu_);
  if (generation_.peek() != generation_seen) {
    // The event goes to the closed log file: silently lost (#791).
    return false;
  }
  entries_.push_back(event);
  return true;
}

void Binlog::rotate(bool armed) {
  if (armed) {
    ConflictTrigger bp1(kOmissionBp1, this);
    bp1.trigger_here(/*is_first_action=*/true);
  }
  {
    instr::TrackedLock lock(mu_);
    archived_count_ += static_cast<std::int64_t>(entries_.size());
    entries_.clear();
    generation_.write(generation_.peek() + 1);
  }
  if (armed) {
    // Rotation complete; release the writer into the new generation.
    ConflictTrigger bp2(kOmissionBp2, this);
    bp2.trigger_here(/*is_first_action=*/true);
  }
}

std::int64_t Binlog::logged_total() const {
  instr::TrackedLock lock(mu_);
  return archived_count_ + static_cast<std::int64_t>(entries_.size());
}

std::vector<int> Binlog::current() const {
  instr::TrackedLock lock(mu_);
  return entries_;
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

RunOutcome run_log_omission(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  Binlog binlog;
  const int commits = std::max(2, static_cast<int>(6 * options.work_scale));
  std::atomic<int> committed{0};
  rt::StartGate gate;

  rt::Thread writer([&] {
    gate.wait();
    for (int i = 0; i < commits; ++i) {
      committed.fetch_add(1);  // the transaction itself always commits
      (void)binlog.write_event(i, options.breakpoints);
    }
  });
  rt::Thread rotator([&] {
    gate.wait();
    binlog.rotate(options.breakpoints);
  });
  gate.open();
  writer.join();
  rotator.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (binlog.logged_total() < committed.load()) {
    outcome.artifact = rt::Artifact::kLogOmission;
    outcome.detail =
        std::to_string(committed.load() - binlog.logged_total()) +
        " committed transaction(s) missing from the binlog";
  }
  return outcome;
}

RunOutcome run_log_disorder(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  Binlog binlog;
  std::atomic<int> commit_order{0};
  rt::StartGate gate;

  // Each transaction commits to the storage engine (atomic, exact
  // order), then appends its commit sequence number to the binlog.  The
  // breakpoint reverses the two appends (#169): the thread that commits
  // FIRST has its binlog append ordered SECOND.
  auto transaction = [&](bool binlog_append_goes_first,
                         std::chrono::microseconds stagger) {
    gate.wait();
    if (stagger.count() > 0) {
      rt::clock_sleep_for(stagger);
    }
    const int seq = commit_order.fetch_add(1);  // storage commit
    if (options.breakpoints) {
      ConflictTrigger bp(kDisorderBp, &binlog);
      bp.trigger_here(binlog_append_goes_first);
    }
    (void)binlog.write_event(seq, /*armed=*/false);
  };
  rt::Thread t1([&] {
    transaction(/*binlog_append_goes_first=*/false,
                std::chrono::microseconds(0));
  });
  rt::Thread t2([&] {
    // Staggered so t1 reliably commits to storage first...
    transaction(/*binlog_append_goes_first=*/true,
                std::chrono::microseconds(200));
    // ...yet t2's binlog append is ordered first by the breakpoint.
  });
  gate.open();
  t1.join();
  t2.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  const std::vector<int> log = binlog.current();
  for (std::size_t i = 1; i < log.size(); ++i) {
    if (log[i] < log[i - 1]) {
      outcome.artifact = rt::Artifact::kLogDisorder;
      outcome.detail = "binlog records commits out of order";
      break;
    }
  }
  return outcome;
}

RunOutcome run_crash(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  instr::SharedVar<bool> thd_valid{true};
  std::string crash;
  rt::StartGate gate;

  rt::Thread query([&] {
    gate.wait();
    try {
      // bp1: align query start with the connection teardown.
      ConflictTrigger bp1(kCrashBp1, &thd_valid);
      bp1.trigger_here(/*is_first_action=*/false);
      const bool valid = thd_valid.read();  // stale "still alive" check
      (void)valid;
      // bp2: the teardown's free happens in this window.
      ConflictTrigger bp2(kCrashBp2, &thd_valid);
      bp2.trigger_here(/*is_first_action=*/false);
      // bp3: and is published before the dereference below.
      ConflictTrigger bp3(kCrashBp3, &thd_valid);
      bp3.trigger_here(/*is_first_action=*/false);
      if (!thd_valid.read()) {
        throw rt::SimulatedCrash(
            "null pointer dereference: THD used after connection close");
      }
    } catch (const rt::SimulatedCrash& e) {
      crash = e.what();
    }
  });
  rt::Thread closer([&] {
    gate.wait();
    ConflictTrigger bp1(kCrashBp1, &thd_valid);
    bp1.trigger_here(/*is_first_action=*/true);
    ConflictTrigger bp2(kCrashBp2, &thd_valid);
    bp2.trigger_here(/*is_first_action=*/true);
    thd_valid.write(false);  // free the THD
    ConflictTrigger bp3(kCrashBp3, &thd_valid);
    bp3.trigger_here(/*is_first_action=*/true);
  });
  gate.open();
  query.join();
  closer.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!crash.empty()) {
    outcome.artifact = rt::Artifact::kCrash;
    outcome.detail = crash;
  }
  return outcome;
}

RunOutcome run_group_commit_race(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  instr::SharedVar<int> pending{0};  // events queued for the next flush
  std::atomic<int> issued{0};
  std::atomic<int> flushed{0};
  rt::StartGate gate;

  // Two committers enroll events via an unsynchronized read-modify-write
  // of the pending counter (ranks 0 and 1 of the 3-ary breakpoint)...
  auto committer = [&](int rank) {
    gate.wait();
    issued.fetch_add(1);
    const int seen = pending.read();
    if (options.breakpoints) {
      OrderTrigger trigger(kGroupCommitBp);
      (void)trigger.trigger_here_ranked(rank, 3, options.pause);
    }
    pending.write(seen + 1);
  };
  // ...while the group leader (rank 2, ordered LAST) flushes whatever
  // count it observes and zeroes the counter.
  auto leader = [&] {
    gate.wait();
    if (options.breakpoints) {
      OrderTrigger trigger(kGroupCommitBp);
      (void)trigger.trigger_here_ranked(2, 3, options.pause);
    }
    const int batch = pending.read();
    flushed.fetch_add(batch);
    pending.write(0);
  };

  rt::Thread c1(committer, 0);
  rt::Thread c2(committer, 1);
  rt::Thread flush_thread(leader);
  gate.open();
  c1.join();
  c2.join();
  flush_thread.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  // Accounting invariant: everything issued is either flushed or still
  // pending.  The 3-way overlap loses a committer's enrollment.
  const int accounted = flushed.load() + pending.peek();
  if (accounted < issued.load()) {
    outcome.artifact = rt::Artifact::kLogOmission;
    outcome.detail = std::to_string(issued.load() - accounted) +
                     " group-commit enrollment(s) lost";
  }
  return outcome;
}

}  // namespace cbp::apps::minidb
