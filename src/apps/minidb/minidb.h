// Replica of the three MySQL bugs of Table 2, built around a miniature
// transactional engine with a binary log:
//
//   MySQL 4.0.12 — log omission (bug #791): a binlog write checks the
//     log generation racily; a concurrent rotation between the check and
//     the append sends the event to the closed log — it vanishes.
//     Two breakpoints (#CBR = 2).
//   MySQL 3.23.56 — log disorder (bug #169): transactions commit to the
//     storage engine in one order but append to the binlog in another;
//     replication replays the wrong order.  One breakpoint (#CBR = 1).
//   MySQL 4.0.19 — server crash (bug #3596): a connection teardown frees
//     the THD while a query on that connection is still executing: null
//     pointer dereference.  Three breakpoints (#CBR = 3).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::minidb {

/// Rotating binary log.  Entries live in the current generation; a
/// rotation archives them.  The generation check in write_event is
/// deliberately split from the append (the #791 seed).
class Binlog {
 public:
  /// Appends an event; returns false when the event was silently lost
  /// to a concurrent rotation (written "to the closed log").
  bool write_event(int event, bool armed);

  /// Archives the current generation and opens a new one.
  void rotate(bool armed);

  /// Total events that actually made it into any generation.
  [[nodiscard]] std::int64_t logged_total() const;

  /// Events in the current (unarchived) generation.
  [[nodiscard]] std::vector<int> current() const;

 private:
  mutable instr::TrackedMutex mu_{"binlog"};
  instr::SharedVar<int> generation_{0};
  std::vector<int> entries_;            // guarded by mu_
  std::int64_t archived_count_ = 0;     // guarded by mu_
};

RunOutcome run_log_omission(const RunOptions& options);   // 4.0.12 / #791
RunOutcome run_log_disorder(const RunOptions& options);   // 3.23.56 / #169
RunOutcome run_crash(const RunOptions& options);          // 4.0.19 / #3596

/// Extension (paper §2: breakpoints "easily extended" to k threads): a
/// group-commit accounting bug that needs THREE threads in the conflict
/// state at once — two committers inside the unsynchronized pending-
/// counter update while the group leader flushes.  Armed with a single
/// 3-ary concurrent breakpoint (trigger_here_ranked, arity 3).
RunOutcome run_group_commit_race(const RunOptions& options);

inline constexpr const char* kOmissionBp1 = "mysql-omission-bp1";
inline constexpr const char* kOmissionBp2 = "mysql-omission-bp2";
inline constexpr const char* kDisorderBp = "mysql-disorder-bp";
inline constexpr const char* kCrashBp1 = "mysql-crash-bp1";
inline constexpr const char* kCrashBp2 = "mysql-crash-bp2";
inline constexpr const char* kCrashBp3 = "mysql-crash-bp3";
inline constexpr const char* kGroupCommitBp = "mysql-group-commit-bp";

}  // namespace cbp::apps::minidb
