#include "apps/compress/pbzip2.h"

#include <thread>
#include <vector>

#include "core/cbp.h"
#include "instrument/shared_var.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::compress {
namespace {

struct OutputSlot {
  instr::SharedVar<bool> allocated{true};  ///< false once freed
  int payload = 0;
};

}  // namespace

RunOutcome run_crash(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;

  const int blocks = std::max(2, static_cast<int>(8 * options.work_scale));
  std::vector<OutputSlot> slots(static_cast<std::size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    slots[static_cast<std::size_t>(i)].payload = i * 13;
  }
  instr::SharedVar<int> blocks_written{0};  ///< consumer progress (racy)
  std::string crash;
  rt::StartGate gate;

  rt::Thread consumer([&] {
    gate.wait();
    try {
      for (int i = 0; i < blocks; ++i) {
        OutputSlot& slot = slots[static_cast<std::size_t>(i)];
        if (i == blocks - 1) {
          // bp1: the consumer is fetching its LAST block; the terminator
          // must make its stale progress read right now.
          ConflictTrigger bp1(kBp1, &slots);
          bp1.trigger_here(/*is_first_action=*/false);
          // bp2: the free must land before this dereference.
          ConflictTrigger bp2(kBp2, &slots);
          bp2.trigger_here(/*is_first_action=*/false);
        }
        if (!slot.allocated.read()) {
          // In pbzip2 this is `OutputBuffer[...]` after free: SIGSEGV.
          throw rt::SimulatedCrash("null pointer dereference: OutputBuffer[" +
                                   std::to_string(i) + "] used after free");
        }
        blocks_written.write(blocks_written.read() + 1);
      }
    } catch (const rt::SimulatedCrash& e) {
      crash = e.what();
    }
  });

  rt::Thread terminator([&] {
    gate.wait();
    // bp1 peer: read the consumer's progress (racily) to decide whether
    // teardown is safe — ordered FIRST so the read is stale.
    ConflictTrigger bp1(kBp1, &slots);
    bp1.trigger_here(/*is_first_action=*/true);
    const int written = blocks_written.read();
    if (written >= blocks - 1) {
      // Believes the consumer is (almost) done: free the slots.
      ConflictTrigger bp2(kBp2, &slots);
      bp2.trigger_here(/*is_first_action=*/true);
      for (auto& slot : slots) slot.allocated.write(false);
    }
  });

  gate.open();
  consumer.join();
  terminator.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!crash.empty()) {
    outcome.artifact = rt::Artifact::kCrash;
    outcome.detail = crash;
  }
  return outcome;
}

}  // namespace cbp::apps::compress
