// Replica of the pbzip2 0.9.4 crash (Table 2 row 1).
//
// In the original, the main thread tears down the output queue while the
// consumer thread is still draining it; the consumer then dereferences a
// freed/null OutputBuffer pointer and crashes.  The replica reproduces
// the exact shape: a producer fills block slots, a consumer drains them,
// and the terminator frees the slot array as soon as it *believes* the
// consumer is done — a belief read racily.  Two concurrent breakpoints
// (#CBR = 2, matching the paper) steer the schedule into the crash:
//   pbzip2-bp1: the terminator's stale "consumer done" read happens
//               right before the consumer's last-block fetch;
//   pbzip2-bp2: the free executes before the consumer's dereference.
#pragma once

#include "apps/replica.h"

namespace cbp::apps::compress {

RunOutcome run_crash(const RunOptions& options);

inline constexpr const char* kBp1 = "pbzip2-bp1";
inline constexpr const char* kBp2 = "pbzip2-bp2";

}  // namespace cbp::apps::compress
