#include "apps/kernels/kernels.h"

#include <cmath>
#include <thread>

#include "core/cbp.h"
#include "instrument/shared_var.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/rng.h"

namespace cbp::apps::kernels {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

/// One unsynchronized read-modify-write on a shared reduction variable,
/// with the breakpoint (bounded per §6.3) widening the racy window.
void racy_accumulate(instr::SharedVar<std::int64_t>& accumulator,
                     const char* breakpoint, std::uint64_t bound,
                     std::int64_t delta) {
  const std::int64_t value = accumulator.read();
  ConflictTrigger trigger(breakpoint, accumulator.address());
  trigger.bound(bound);
  trigger.trigger_here(/*is_first_action=*/true);
  accumulator.write(value + delta);
}

/// Burns a little deterministic floating-point work (the "kernel").
double kernel_work(std::uint64_t seed, int flops) {
  double x = 1.0 + static_cast<double>(seed % 97) * 1e-3;
  for (int i = 0; i < flops; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

/// Two workers each perform `iters` unit contributions into a shared
/// accumulator; every shortfall against the exact count is a lost
/// update, i.e. the racy state manifested.
RunOutcome run_reduction_race(const RunOptions& options,
                              const char* breakpoint, std::uint64_t bound,
                              int iters_base, int flops) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  const int iters =
      std::max(2, static_cast<int>(iters_base * options.work_scale));
  instr::SharedVar<std::int64_t> accumulator{0};
  volatile double sink = 0.0;

  rt::StartGate gate;
  auto worker = [&](std::uint64_t seed) {
    gate.wait();
    for (int i = 0; i < iters; ++i) {
      sink = sink + kernel_work(seed + static_cast<std::uint64_t>(i), flops);
      racy_accumulate(accumulator, breakpoint, bound, 1);
    }
  };
  rt::Thread a(worker, 11);
  rt::Thread b(worker, 23);
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  const std::int64_t expected = 2LL * iters;
  if (accumulator.peek() < expected) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "reduction lost " +
                     std::to_string(expected - accumulator.peek()) +
                     " contributions";
  }
  return outcome;
}

}  // namespace

RunOutcome run_moldyn_race1(const RunOptions& options, std::uint64_t bound) {
  return run_reduction_race(options, kMoldynRace1, bound,
                            /*iters_base=*/60, /*flops=*/12000);
}

RunOutcome run_moldyn_race2(const RunOptions& options, std::uint64_t bound) {
  return run_reduction_race(options, kMoldynRace2, bound,
                            /*iters_base=*/60, /*flops=*/12000);
}

RunOutcome run_montecarlo_race1(const RunOptions& options,
                                std::uint64_t bound) {
  return run_reduction_race(options, kMontecarloRace1, bound,
                            /*iters_base=*/80, /*flops=*/9000);
}

namespace {

/// raytracer: renders a tiny deterministic "image" in two half-frames
/// and accumulates a checksum; the run validates the checksum at the end
/// (the JGF validation step), so lost updates become "test fail".
RunOutcome run_raytracer(const RunOptions& options, const char* breakpoint,
                         bool validated) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  const int rows = std::max(2, static_cast<int>(16 * options.work_scale));
  const int cols = 12;
  instr::SharedVar<std::int64_t> checksum{0};

  // Exact serial checksum for validation.
  std::int64_t expected = 0;
  for (int r = 0; r < 2 * rows; ++r) {
    for (int c = 0; c < cols; ++c) expected += (r * 31 + c * 7) % 255;
  }

  rt::StartGate gate;
  auto render_half = [&](int row_base) {
    gate.wait();
    for (int r = row_base; r < row_base + rows; ++r) {
      std::int64_t row_sum = 0;
      for (int c = 0; c < cols; ++c) row_sum += (r * 31 + c * 7) % 255;
      busy_work(40000);  // per-row shading work
      racy_accumulate(checksum, breakpoint, UINT64_MAX, row_sum);
    }
  };
  rt::Thread a(render_half, 0);
  rt::Thread b(render_half, rows);
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (checksum.peek() != expected) {
    outcome.artifact =
        validated ? rt::Artifact::kWrongResult : rt::Artifact::kRaceObserved;
    outcome.detail = "checksum " + std::to_string(checksum.peek()) +
                     " != expected " + std::to_string(expected);
  }
  return outcome;
}

}  // namespace

RunOutcome run_raytracer_race1(const RunOptions& options) {
  return run_raytracer(options, kRaytracerRace1, /*validated=*/true);
}
RunOutcome run_raytracer_race2(const RunOptions& options) {
  return run_raytracer(options, kRaytracerRace2, /*validated=*/true);
}
RunOutcome run_raytracer_race3(const RunOptions& options) {
  return run_raytracer(options, kRaytracerRace3, /*validated=*/false);
}
RunOutcome run_raytracer_race4(const RunOptions& options) {
  return run_raytracer(options, kRaytracerRace4, /*validated=*/false);
}

}  // namespace cbp::apps::kernels
