// Replicas of the three Java Grande Forum compute kernels of Table 1:
// moldyn (molecular dynamics), montecarlo (option pricing), raytracer.
//
// Each kernel parallelizes a loop over two worker threads that
// accumulate into shared reduction variables with unsynchronized
// read-modify-write — the seeded races.  Because the accumulation sites
// execute hundreds of times per run, the paper bounds the breakpoints
// (`bound=4`, `bound=10`, §6.3) so they stop pausing after the bug has
// been exhibited; the run functions take the bound explicitly so the
// precision bench can ablate it.
//
// raytracer validates its image checksum at the end, so its races
// surface as "test fail" (kWrongResult); moldyn/montecarlo report the
// racy state itself (blank error column -> kRaceObserved).
#pragma once

#include <cstdint>

#include "apps/replica.h"

namespace cbp::apps::kernels {

// moldyn: potential-energy (race1) and virial (race2) reductions.
RunOutcome run_moldyn_race1(const RunOptions& options, std::uint64_t bound);
RunOutcome run_moldyn_race2(const RunOptions& options, std::uint64_t bound);

// montecarlo: global price-sum reduction (race1).
RunOutcome run_montecarlo_race1(const RunOptions& options,
                                std::uint64_t bound);

// raytracer: checksum (race1), pixel counter (race2), depth statistic
// (race3), shared RNG state (race4).
RunOutcome run_raytracer_race1(const RunOptions& options);
RunOutcome run_raytracer_race2(const RunOptions& options);
RunOutcome run_raytracer_race3(const RunOptions& options);
RunOutcome run_raytracer_race4(const RunOptions& options);

inline constexpr const char* kMoldynRace1 = "moldyn-race1";
inline constexpr const char* kMoldynRace2 = "moldyn-race2";
inline constexpr const char* kMontecarloRace1 = "montecarlo-race1";
inline constexpr const char* kRaytracerRace1 = "raytracer-race1";
inline constexpr const char* kRaytracerRace2 = "raytracer-race2";
inline constexpr const char* kRaytracerRace3 = "raytracer-race3";
inline constexpr const char* kRaytracerRace4 = "raytracer-race4";

/// Paper-matching default bounds (Table 1 comments column).
inline constexpr std::uint64_t kMoldynRace1Bound = 4;
inline constexpr std::uint64_t kMoldynRace2Bound = 10;
inline constexpr std::uint64_t kMontecarloBound = 10;

}  // namespace cbp::apps::kernels
