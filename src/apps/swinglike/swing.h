// Replica of the javax.swing deadlock (Table 1 swing deadlock1) and the
// paper's two refinement stories about it:
//   * §6.2 — at T=100ms the deadlock triggers with probability ~0.63,
//     at T=1s with ~0.99 (at much higher runtime overhead);
//   * §6.3 — RepaintManager.addDirtyRegion() is called from many
//     contexts, but the deadlock is only possible when the caller holds
//     the BasicCaret lock; gating the breakpoint's local predicate on
//     isLockTypeHeld("BasicCaret") removes the useless pauses.
//
// Structure: a component thread takes the caret lock and calls
// add_dirty_region (caret -> repaint-manager order) amid many
// caret-free add_dirty_region calls; the event-dispatch thread paints
// (repaint-manager -> caret order).  Crossed -> stall.
#pragma once

#include "apps/replica.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::swinglike {

class RepaintManager {
 public:
  /// Called from many contexts; only deadlocks when the caller already
  /// holds the caret lock.  `refined` selects whether the breakpoint's
  /// local predicate is gated on isLockTypeHeld("BasicCaret").
  void add_dirty_region(std::chrono::milliseconds stall_after, bool armed,
                        bool refined);

  /// The event-dispatch thread's paint pass: repaint-manager lock, then
  /// the caret lock.
  void paint(instr::TrackedMutex& caret_mu,
             std::chrono::milliseconds stall_after, bool armed);

  [[nodiscard]] instr::TrackedMutex& lock() { return rm_mu_; }

 private:
  instr::TrackedMutex rm_mu_{"RepaintManager"};
  int dirty_regions_ = 0;  // guarded by rm_mu_
};

struct SwingOptions {
  RunOptions base;
  bool refined = true;  ///< gate on isLockTypeHeld (the §6.3 refinement)
  int caret_free_calls = 24;  ///< addDirtyRegion calls without the caret
};

RunOutcome run_deadlock1(const SwingOptions& options);

inline constexpr const char* kDeadlock1 = "swing-deadlock1";

/// Arrival-jitter window (multiple of the nominal 100 ms pause) tuned so
/// P(hit) = 1-(1-T/J)^2 gives ~0.63 at T=100ms and ~1 at T=1s.
inline constexpr double kJitterOver100ms = 2.56;

}  // namespace cbp::apps::swinglike
