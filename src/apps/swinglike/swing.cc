#include "apps/swinglike/swing.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/rng.h"
#include "runtime/vclock.h"

namespace cbp::apps::swinglike {
namespace {

// Draws on the *nominal* window and routes the sleep through the clock
// policy (see crawler.cc): same randomness under every clock mode, and
// no raw sleep_for bypassing a virtual clock.
void jitter_sleep(rt::Rng& rng, double multiple_of_100ms) {
  const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(100.0 * multiple_of_100ms));
  const auto ns = window.count();
  if (ns <= 0) return;
  rt::clock_sleep_for(std::chrono::nanoseconds(
      rng.next_below(static_cast<std::uint64_t>(ns) + 1)));
}

}  // namespace

void RepaintManager::add_dirty_region(std::chrono::milliseconds stall_after,
                                      bool armed, bool refined) {
  if (armed) {
    if (refined) {
      // §6.3: the context predicate — only pause when this thread holds
      // a BasicCaret lock, i.e. when the deadlock is actually possible.
      LockTypeHeldRefinement<OrderTrigger> trigger("BasicCaret", kDeadlock1);
      trigger.trigger_here(/*is_first_action=*/true);
    } else {
      OrderTrigger trigger(kDeadlock1);
      trigger.trigger_here(/*is_first_action=*/true);
    }
  }
  rm_mu_.lock_or_stall(stall_after);
  ++dirty_regions_;
  rm_mu_.unlock();
}

void RepaintManager::paint(instr::TrackedMutex& caret_mu,
                           std::chrono::milliseconds stall_after,
                           bool armed) {
  instr::TrackedLock rm(rm_mu_);
  if (armed) {
    OrderTrigger trigger(kDeadlock1);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  caret_mu.lock_or_stall(stall_after);
  // paint the caret region
  caret_mu.unlock();
}

RunOutcome run_deadlock1(const SwingOptions& options) {
  const RunOptions& base = options.base;
  Config::set_enabled(base.breakpoints);
  Config::set_default_timeout(base.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;
  rt::Rng rng(base.seed);

  RepaintManager manager;
  instr::TrackedMutex caret_mu("BasicCaret");
  std::atomic<bool> stalled{false};
  rt::StartGate gate;

  rt::Rng component_rng = rng.split();
  rt::Thread component([&] {
    gate.wait();
    try {
      // Many caret-free contexts first: without the refinement each of
      // these pauses for the full T (the §6.3 overhead story).
      for (int i = 0; i < options.caret_free_calls; ++i) {
        manager.add_dirty_region(base.stall_after, base.breakpoints,
                                 options.refined);
      }
      jitter_sleep(component_rng, kJitterOver100ms);
      // The dangerous context: caret held, then repaint manager.
      instr::TrackedLock caret(caret_mu);
      manager.add_dirty_region(base.stall_after, base.breakpoints,
                               options.refined);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });

  rt::Rng edt_rng = rng.split();
  rt::Thread event_dispatch([&] {
    gate.wait();
    try {
      jitter_sleep(edt_rng, kJitterOver100ms);
      manager.paint(caret_mu, base.stall_after, base.breakpoints);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });

  gate.open();
  component.join();
  event_dispatch.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "caret/repaint-manager lock order crossed";
  }
  return outcome;
}

}  // namespace cbp::apps::swinglike
