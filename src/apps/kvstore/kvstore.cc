#include "apps/kvstore/kvstore.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "apps/kvstore/zipfian.h"
#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::kvstore {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// ---------------------------------------------------------------------------
// Breakpoint triggers
// ---------------------------------------------------------------------------

/// Bug 1 pair: a lock-free lookup (reader side) vs. a shard resize
/// (resizer side) on the same shard.  The reader's local predicate is
/// the shard's resize_pending flag sampled at the call site, so on a
/// quiescent shard an armed get() is a pure local-reject — the path
/// whose cost the high-traffic SLO is about.
class ResizeRaceTrigger : public BTrigger {
 public:
  ResizeRaceTrigger() : BTrigger(kResizeRace) {}

  void set(const void* shard, const void* table, bool reader,
           bool resize_pending) {
    shard_ = shard;
    table_ = table;
    reader_ = reader;
    pending_ = resize_pending;
  }

  [[nodiscard]] bool predicate_local() const override {
    return !reader_ || pending_;
  }
  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    // The reader side carries the table pointer it sampled, the resizer
    // side the table it just retired: only a *genuinely stale* reader
    // matches (phi over both threads' states, paper 3).  A reader that
    // arrived after publication holds the live table and is left alone —
    // matching it would consume the rendezvous on a harmless schedule.
    const auto* o = dynamic_cast<const ResizeRaceTrigger*>(&other);
    return o != nullptr && o->shard_ == shard_ && o->reader_ != reader_ &&
           o->table_ == table_;
  }
  [[nodiscard]] std::string describe() const override {
    return "Conflict: lock-free lookup vs. shard resize";
  }

 private:
  const void* shard_ = nullptr;
  const void* table_ = nullptr;
  bool reader_ = false;
  bool pending_ = false;
};

/// Bug 2 pair: a put (first action: about to write the fresh value) vs.
/// an eviction whose coldness decision has escaped the shard lock
/// (second action: about to erase on that stale decision).
class EvictToctouTrigger : public BTrigger {
 public:
  EvictToctouTrigger() : BTrigger(kEvictToctou) {}

  void set(std::uint64_t key, bool evictor, bool in_window) {
    key_ = key;
    evictor_ = evictor;
    in_window_ = in_window;
  }

  [[nodiscard]] bool predicate_local() const override {
    // The put side only participates while its key sits inside an open
    // eviction window (KvStore::evict_window_key_): a match needs the
    // evictor anyway, so any other put is a pure local-reject — without
    // this filter every one of the workload's ~10^5 puts would postpone
    // the full T hoping for an eviction that never comes.  Keying the
    // predicate on instrumented program state is the paper's own recipe
    // for arming a breakpoint on a hot site (§3's phi over local state).
    return evictor_ || in_window_;
  }
  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    const auto* o = dynamic_cast<const EvictToctouTrigger*>(&other);
    return o != nullptr && o->key_ == key_ && o->evictor_ != evictor_;
  }
  [[nodiscard]] std::string describe() const override {
    return "Atomicity: check-then-erase eviction vs. concurrent put";
  }

 private:
  std::uint64_t key_ = 0;
  bool evictor_ = false;
  bool in_window_ = false;
};

/// Bug 2 as the 3-event pattern (kEvictPatternExpr): check and erase
/// fire from the evictor, put from a writer.  Threads are bound by the
/// pattern's variables, so no predicate_global is needed — but the
/// put side keeps the same window filter as the rendezvous pair (only
/// a put on the key under eviction participates; everything else is a
/// pure local-reject).
class EvictPatternTrigger : public BTrigger {
 public:
  EvictPatternTrigger() : BTrigger(kEvictPattern) {}

  void set(bool evictor, bool in_window) {
    evictor_ = evictor;
    in_window_ = in_window;
  }

  [[nodiscard]] bool predicate_local() const override {
    return evictor_ || in_window_;
  }
  [[nodiscard]] bool predicate_global(const BTrigger&) const override {
    // Unused on the pattern path (thread identity is what the pattern's
    // variables constrain), but BTrigger requires it.
    return true;
  }
  [[nodiscard]] std::string describe() const override {
    return "Pattern: check.put.erase — eviction TOCTOU as 3 ordered events";
  }

 private:
  bool evictor_ = false;
  bool in_window_ = false;
};

// One reusable trigger object per thread: the names exceed the SSO
// buffer, so constructing a trigger per operation would heap-allocate on
// the hot path; a thread_local keeps the interned-record cache warm too.
ResizeRaceTrigger& resize_trigger() {
  thread_local ResizeRaceTrigger t;
  return t;
}
EvictToctouTrigger& evict_trigger() {
  thread_local EvictToctouTrigger t;
  return t;
}
EvictPatternTrigger& pattern_trigger() {
  thread_local EvictPatternTrigger t;
  return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

KvStore::KvStore(const StoreOptions& options)
    : max_load_(options.max_load),
      armed_(options.armed),
      pattern_sites_(options.pattern_sites),
      pause_(options.pause) {
  std::size_t bits = 0;
  while ((1ULL << bits) < options.shard_count) ++bits;
  shard_bits_ = bits;
  shards_.reserve(options.shard_count);
  for (std::size_t i = 0; i < options.shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->live = std::make_unique<Table>(options.initial_capacity);
    shard->table.store(shard->live.get(), std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
}

KvStore::~KvStore() = default;

KvStore::Shard& KvStore::shard_for(std::uint64_t key) {
  if (shard_bits_ == 0) return *shards_[0];
  return *shards_[(key * kGolden) >> (64 - shard_bits_)];
}

std::size_t KvStore::probe_start(std::uint64_t key, std::size_t mask) {
  // Keys are already SplitMix64-finalized (zipfian.h rank_to_key): the
  // low bits are well mixed, so masking is enough.
  return static_cast<std::size_t>(key) & mask;
}

std::int64_t KvStore::get(std::uint64_t key) {
  Shard& shard = shard_for(key);
  // BUG 1, time of check: the bucket-table pointer is sampled WITHOUT
  // the shard lock (that is the whole point of the lock-free read path).
  // From here to the value load the pointer may be one resize stale.
  const Table* table = shard.table.load(std::memory_order_acquire);
  if (armed_) {
    ResizeRaceTrigger& t = resize_trigger();
    t.set(&shard, table, /*reader=*/true,
          shard.resize_pending.load(std::memory_order_relaxed));
    t.trigger_here(/*is_first_action=*/false, pause_);
  }
  std::size_t i = probe_start(key, table->mask);
  for (std::size_t n = 0; n <= table->mask; ++n, i = (i + 1) & table->mask) {
    const std::uint64_t k =
        table->slots[i].key.load(std::memory_order_acquire);
    if (k == kEmptyKey) return kMiss;
    if (k != key) continue;  // other key or tombstone: keep probing
    const std::int64_t v =
        table->slots[i].value.load(std::memory_order_relaxed);
    if (v == kPoison) {
      // BUG 1, time of use: the retired table was poisoned under our
      // feet — the observable stand-in for reading freed memory.
      poisoned_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    return v;
  }
  return kMiss;
}

void KvStore::put(std::uint64_t key, std::int64_t value) {
  Shard& shard = shard_for(key);
  if (armed_) {
    // First action of the TOCTOU pair: the fresh value is about to land.
    EvictToctouTrigger& t = evict_trigger();
    t.set(key, /*evictor=*/false,
          evict_window_key_.load(std::memory_order_acquire) == key);
    t.trigger_here(/*is_first_action=*/true, pause_);
  }
  if (pattern_sites_) {
    // Pattern event 2 of 3: the interleaved put.  Consuming it advances
    // the automaton past the parked erase (the cascade), so the put
    // lands first and the stale erase destroys it — rank order is event
    // order.
    EvictPatternTrigger& t = pattern_trigger();
    t.set(/*evictor=*/false,
          evict_window_key_.load(std::memory_order_acquire) == key);
    t.trigger_here_site("put", pause_);
  }
  std::scoped_lock lock(shard.mu);
  Table& table = *shard.live;
  std::size_t insert_at = table.mask + 1;  // first tombstone seen, if any
  std::size_t i = probe_start(key, table.mask);
  for (std::size_t n = 0; n <= table.mask; ++n, i = (i + 1) & table.mask) {
    const std::uint64_t k =
        table.slots[i].key.load(std::memory_order_relaxed);
    if (k == key) {
      table.slots[i].value.store(value, std::memory_order_relaxed);
      table.slots[i].hot.store(true, std::memory_order_relaxed);
      return;
    }
    if (k == kTombstoneKey) {
      if (insert_at > table.mask) insert_at = i;
      continue;
    }
    if (k == kEmptyKey) {
      const bool reused = insert_at <= table.mask;
      if (!reused) insert_at = i;
      Slot& slot = table.slots[insert_at];
      // Value and hot flag first, key last with release: a lock-free
      // reader that sees the key sees an initialized slot.
      slot.value.store(value, std::memory_order_relaxed);
      slot.hot.store(true, std::memory_order_relaxed);
      slot.key.store(key, std::memory_order_release);
      if (reused) {
        --shard.tombstones;
      }
      ++shard.entries;
      const double load =
          static_cast<double>(shard.entries + shard.tombstones) /
          static_cast<double>(table.mask + 1);
      if (load > max_load_) resize(shard);
      return;
    }
  }
  // Unreachable while resize() keeps the load factor below 1.
}

void KvStore::resize(Shard& shard) {
  // Raised BEFORE the grown table is built: lock-free readers arriving
  // from here on may be holding the pointer this resize retires, and the
  // flag is what lets their armed probe participate (local predicate).
  shard.resize_pending.store(true, std::memory_order_release);
  Table* old = shard.live.get();
  auto grown = std::make_unique<Table>(2 * (old->mask + 1));
  for (const Slot& s : old->slots) {
    const std::uint64_t k = s.key.load(std::memory_order_relaxed);
    if (k >= kTombstoneKey) continue;  // empty or tombstone
    std::size_t j = probe_start(k, grown->mask);
    while (grown->slots[j].key.load(std::memory_order_relaxed) != kEmptyKey) {
      j = (j + 1) & grown->mask;
    }
    grown->slots[j].value.store(s.value.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    grown->slots[j].hot.store(s.hot.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    grown->slots[j].key.store(k, std::memory_order_release);
  }
  shard.retired.push_back(std::move(shard.live));
  shard.live = std::move(grown);
  shard.table.store(shard.live.get(), std::memory_order_release);
  shard.tombstones = 0;
  resizes_.fetch_add(1, std::memory_order_relaxed);
  if (armed_) {
    // First action of the resize-race pair: the retired table is about
    // to be poisoned (the real bug would free() it here).
    ResizeRaceTrigger& t = resize_trigger();
    t.set(&shard, shard.retired.back().get(), /*reader=*/false,
          /*resize_pending=*/true);
    t.trigger_here(/*is_first_action=*/true, pause_);
  }
  Table* dead = shard.retired.back().get();
  for (Slot& s : dead->slots) {
    if (s.key.load(std::memory_order_relaxed) < kTombstoneKey) {
      s.value.store(kPoison, std::memory_order_relaxed);
    }
  }
  shard.resize_pending.store(false, std::memory_order_release);
}

bool KvStore::evict_if_cold(std::uint64_t key) {
  Shard& shard = shard_for(key);
  bool present = false;
  bool cold = false;
  {
    std::scoped_lock lock(shard.mu);
    Table& table = *shard.live;
    std::size_t i = probe_start(key, table.mask);
    for (std::size_t n = 0; n <= table.mask; ++n, i = (i + 1) & table.mask) {
      const std::uint64_t k =
          table.slots[i].key.load(std::memory_order_relaxed);
      if (k == kEmptyKey) break;
      if (k != key) continue;
      present = true;
      cold = !table.slots[i].hot.load(std::memory_order_relaxed);
      break;
    }
  }
  // BUG 2, time of check: the coldness decision has now escaped the
  // lock.  A put landing before we re-acquire marks the entry hot again
  // and writes a value this eviction is about to destroy.
  if (!present || !cold) return false;
  if (armed_) {
    // Open the eviction window: concurrent puts on this key now pass
    // their local predicate and can rendezvous with us mid-window.
    evict_window_key_.store(key, std::memory_order_release);
    EvictToctouTrigger& t = evict_trigger();
    t.set(key, /*evictor=*/true, /*in_window=*/true);
    t.trigger_here(/*is_first_action=*/false, pause_);
  }
  if (pattern_sites_) {
    EvictPatternTrigger& t = pattern_trigger();
    t.set(/*evictor=*/true, /*in_window=*/true);
    // Pattern event 1 of 3: time of check.  The automaton starts a run,
    // binds t1 to this thread, and lets it continue (t1 is needed again
    // for the erase).
    t.trigger_here_site("check", pause_);
    evict_window_key_.store(key, std::memory_order_release);
    // Pattern event 3 of 3: time of use.  Out of order for the run
    // (check.PUT.erase), so this parks pending until a put advances the
    // automaton — the §3 pause that holds the window open.
    t.trigger_here_site("erase", pause_);
  }
  bool erased = false;
  bool lost = false;
  {
    std::scoped_lock lock(shard.mu);
    Table& table = *shard.live;
    std::size_t i = probe_start(key, table.mask);
    for (std::size_t n = 0; n <= table.mask; ++n, i = (i + 1) & table.mask) {
      const std::uint64_t k =
          table.slots[i].key.load(std::memory_order_relaxed);
      if (k == kEmptyKey) break;  // vanished meanwhile
      if (k != key) continue;
      // BUG 2, time of use: the fix would re-check the hot flag here.  We
      // only *observe* it — an erase of a re-hottened entry is precisely
      // the lost update this replica exists to manifest.
      lost = table.slots[i].hot.load(std::memory_order_relaxed);
      table.slots[i].key.store(kTombstoneKey, std::memory_order_release);
      table.slots[i].value.store(0, std::memory_order_relaxed);
      table.slots[i].hot.store(false, std::memory_order_relaxed);
      --shard.entries;
      ++shard.tombstones;
      erased = true;
      break;
    }
  }
  if (lost) lost_updates_.fetch_add(1, std::memory_order_relaxed);
  evict_window_key_.store(kEmptyKey, std::memory_order_release);
  return erased;
}

void KvStore::age_all() {
  for (auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    for (Slot& s : shard->live->slots) {
      if (s.key.load(std::memory_order_relaxed) < kTombstoneKey) {
        s.hot.store(false, std::memory_order_relaxed);
      }
    }
  }
}

std::size_t KvStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    total += shard->entries;
  }
  return total;
}

// ---------------------------------------------------------------------------
// High-traffic workload
// ---------------------------------------------------------------------------

namespace {

std::unordered_map<std::string, SpecOverride> spec_for(
    const WorkloadOptions& options) {
  std::unordered_map<std::string, SpecOverride> spec;
  switch (options.mode) {
    case Mode::kOff:
      break;
    case Mode::kSpecsDisabled:
      spec[kResizeRace].disabled = true;
      spec[kEvictToctou].disabled = true;
      break;
    case Mode::kArmedUnmatched: {
      // The put-side probe participates locally on every call; a spec
      // bound of 0 is the production answer ("this pair already
      // reproduced, stop paying for it") and exercises the sticky
      // bounded-out fast path.  The get-side probe needs no entry: its
      // local predicate (resize_pending) rejects on quiescent shards.
      SpecOverride bounded;
      bounded.bound = 0;
      spec[kEvictToctou] = bounded;
      break;
    }
    case Mode::kArmedMatching: {
      SpecOverride matching;
      matching.bound = options.match_bound;
      matching.pause = options.pause;
      spec[kResizeRace] = matching;
      spec[kEvictToctou] = matching;
      break;
    }
  }
  return spec;
}

}  // namespace

WorkloadResult run_workload(const WorkloadOptions& options) {
  Engine& engine = Engine::current();
  engine.reset();
  Config::set_enabled(true);
  engine.set_spec(spec_for(options));

  const bool armed = options.mode != Mode::kOff;
  const bool matching = options.mode == Mode::kArmedMatching;
  const std::size_t shard_count = 16;
  const std::size_t per_shard =
      (options.keys + shard_count - 1) / shard_count;
  std::size_t capacity = 1;
  while (capacity < per_shard * 2) capacity <<= 1;

  StoreOptions store_options;
  store_options.shard_count = shard_count;
  store_options.initial_capacity = capacity;
  // Matching mode sits the resize threshold just above the prefill so a
  // trickle of fresh inserts crosses it; the other modes leave ample
  // headroom so update-in-place traffic never resizes organically.
  store_options.max_load =
      matching ? (static_cast<double>(per_shard) + 64.0) /
                     static_cast<double>(capacity)
               : 0.75;
  store_options.armed = armed;
  store_options.pause = options.pause;
  KvStore store(store_options);

  const ZipfianGenerator zipf(options.keys, options.theta);
  {
    ScopedBreakpointsDisabled quiesce;
    for (std::uint64_t rank = 0; rank < options.keys; ++rank) {
      store.put(rank_to_key(rank), static_cast<std::int64_t>(rank));
    }
  }

  const int threads = std::max(1, options.threads);
  const std::size_t sessions = std::max<std::size_t>(1, options.sessions);
  std::atomic<std::int64_t> sink{0};
  rt::StartGate gate;
  std::vector<rt::Thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // This worker's slice of the session pool.  Streams are derived
      // from (seed, global session index), so the aggregate key sequence
      // is a function of the seed alone, not of the pool size.
      const std::size_t first = sessions * static_cast<std::size_t>(t) /
                                static_cast<std::size_t>(threads);
      const std::size_t last = sessions * (static_cast<std::size_t>(t) + 1) /
                               static_cast<std::size_t>(threads);
      std::vector<rt::Rng> streams;
      streams.reserve(last - first);
      for (std::size_t s = first; s < last; ++s) {
        streams.push_back(session_rng(options.seed, s));
      }
      std::uint64_t fresh = 0;
      std::int64_t checksum = 0;
      gate.wait();
      for (std::uint64_t i = 0; i < options.ops_per_thread; ++i) {
        rt::Rng& rng = streams[i % streams.size()];
        const std::uint64_t rank = zipf.next(rng);
        const std::uint64_t key = rank_to_key(rank);
        busy_work(options.work_per_op);  // request parse/serialize cost
        if (rng.next_double() < options.get_fraction) {
          checksum += store.get(key);
        } else {
          store.put(key, static_cast<std::int64_t>(i));
        }
        if (matching && t == 0) {
          if ((i & 511) == 511) {
            // Fresh key: pushes some shard toward its resize threshold.
            store.put(rank_to_key(options.keys + (++fresh)),
                      static_cast<std::int64_t>(i));
          }
          if ((i & 32767) == 32767) {
            // Hot-key eviction pass: age everything, then try to evict
            // the hottest ranks — the TOCTOU window meets put traffic.
            store.age_all();
            for (std::uint64_t r = 0; r < 8; ++r) {
              store.evict_if_cold(rank_to_key(r));
            }
          }
        }
      }
      sink.fetch_add(checksum, std::memory_order_relaxed);
    });
  }

  rt::Stopwatch clock;
  gate.open();
  for (rt::Thread& worker : pool) worker.join();

  WorkloadResult result;
  result.seconds = clock.elapsed_seconds();
  result.ops = static_cast<std::uint64_t>(threads) * options.ops_per_thread;
  result.ns_per_op = result.seconds * 1e9 / static_cast<double>(result.ops);
  const BreakpointStats resize_stats = engine.stats(kResizeRace);
  const BreakpointStats evict_stats = engine.stats(kEvictToctou);
  result.hits = resize_stats.hits + evict_stats.hits;
  result.trigger_calls = resize_stats.calls + evict_stats.calls;
  result.poisoned_reads = store.poisoned_reads();
  result.lost_updates = store.lost_updates();
  result.resizes = store.resizes();
  engine.set_spec({});
  return result;
}

// ---------------------------------------------------------------------------
// Repro scenarios
// ---------------------------------------------------------------------------

namespace {

void configure(const RunOptions& options, const char* other_bug) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
  // Each scenario hunts ONE bug; the store's other probe site would
  // otherwise postpone T per call with no complementary thread in the
  // workload (e.g. the writer's puts carry the TOCTOU first action).
  // Disabling it by spec is exactly how the paper's users scope a
  // reproduction to the breakpoint under study.
  std::unordered_map<std::string, SpecOverride> spec;
  spec[other_bug].disabled = true;
  Engine::current().set_spec(std::move(spec));
}

}  // namespace

RunOutcome run_resize_race(const RunOptions& options) {
  configure(options, /*other_bug=*/kEvictToctou);
  RunOutcome outcome;
  rt::Stopwatch clock;

  StoreOptions store_options;
  store_options.shard_count = 1;
  store_options.initial_capacity = 256;
  store_options.max_load = 0.5;  // first resize at 128 entries
  store_options.armed = options.breakpoints;
  store_options.pause = options.pause;
  KvStore store(store_options);

  const int base_keys =
      std::max(32, static_cast<int>(96 * options.work_scale));
  {
    ScopedBreakpointsDisabled quiesce;
    for (int i = 0; i < base_keys; ++i) {
      store.put(rank_to_key(static_cast<std::uint64_t>(i)), i);
    }
  }

  rt::Rng writer_rng(options.seed);
  rt::Rng reader_rng(options.seed ^ 0xabcdef123456ULL);
  std::atomic<bool> done{false};
  rt::StartGate gate;
  rt::Thread writer([&] {
    gate.wait();
    // Enough distinct inserts to cross several doubling thresholds.
    const int inserts = 4 * 128;
    for (int i = 0; i < inserts; ++i) {
      store.put(rank_to_key(1'000'000 + static_cast<std::uint64_t>(i)), i);
      busy_work(static_cast<int>(100 + writer_rng.next_below(200)));
    }
    done.store(true, std::memory_order_release);
  });
  rt::Thread reader([&] {
    gate.wait();
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t rank = reader_rng.next_below(
          static_cast<std::uint64_t>(base_keys));
      (void)store.get(rank_to_key(rank));
    }
  });
  gate.open();
  writer.join();
  reader.join();

  Engine::current().set_spec({});
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (store.poisoned_reads() > 0) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "reader scanned a poisoned (retired) bucket table " +
                     std::to_string(store.poisoned_reads()) + " time(s)";
  }
  return outcome;
}

RunOutcome run_evict_toctou(const RunOptions& options) {
  configure(options, /*other_bug=*/kResizeRace);
  RunOutcome outcome;
  rt::Stopwatch clock;

  StoreOptions store_options;
  store_options.shard_count = 1;
  store_options.initial_capacity = 1024;
  store_options.max_load = 0.9;  // no resizes in this scenario
  store_options.armed = options.breakpoints;
  store_options.pause = options.pause;
  KvStore store(store_options);

  const int keys = std::max(16, static_cast<int>(32 * options.work_scale));
  {
    ScopedBreakpointsDisabled quiesce;
    for (int i = 0; i < keys; ++i) {
      store.put(rank_to_key(static_cast<std::uint64_t>(i)), i);
    }
  }

  const std::uint64_t target = rank_to_key(7);
  // The evictor drives: a fixed number of eviction attempts, with the
  // putter looping until they are done.  (The first version did it the
  // other way round — a fixed put count with a free-running evictor —
  // and TSan's asymmetric slowdown broke it: age_all is pure
  // instrumented atomics over every slot while busy_work is plain
  // arithmetic, so all the puts drained before the evictor sampled its
  // first coldness decision and the window never opened.  Pacing on the
  // evictor makes the choreography slowdown-invariant: every armed
  // attempt that samples cold has a put still coming to meet it.)
  const int attempts = std::max(4, static_cast<int>(12 * options.work_scale));
  rt::Rng put_rng(options.seed);
  std::atomic<bool> done{false};
  rt::StartGate gate;
  rt::Thread evictor([&] {
    gate.wait();
    for (int k = 0; k < attempts; ++k) {
      store.age_all();  // aging pass: even the hot key looks cold...
      // ...then the top eviction candidate is checked and erased; a put
      // in the unlocked window re-hottens it behind our back.  (Only
      // the contended key is scanned: an armed check of a genuinely
      // cold key would postpone the full T waiting for a put that never
      // comes, drowning the run in timeouts without adding coverage.)
      store.evict_if_cold(target);
    }
    done.store(true, std::memory_order_release);
  });
  rt::Thread putter([&] {
    gate.wait();
    for (int i = 1; !done.load(std::memory_order_acquire); ++i) {
      store.put(target, i);
      busy_work(static_cast<int>(200 + put_rng.next_below(400)));
    }
  });
  gate.open();
  evictor.join();
  putter.join();

  Engine::current().set_spec({});
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (store.lost_updates() > 0) {
    outcome.artifact = rt::Artifact::kWrongResult;
    outcome.detail = "eviction destroyed a freshly-written entry " +
                     std::to_string(store.lost_updates()) + " time(s)";
  }
  return outcome;
}

RunOutcome run_evict_pattern(const RunOptions& options) {
  Config::set_enabled(true);
  Config::set_default_timeout(options.pause);
  if (options.breakpoints) {
    // The breakpoint exists ONLY through this spec entry — arming is a
    // text line, exactly the paper's "the spec is the bug report".
    const std::string text =
        std::string(kEvictPattern) + " pattern=" + kEvictPatternExpr +
        " pause=" +
        std::to_string(static_cast<long long>(options.pause.count())) +
        " predicted=" + std::to_string(kEvictPatternPredicted);
    Engine::current().set_spec(BreakpointSpec::parse(text).entries());
  } else {
    // Dormant control: same binary, same site calls, no spec — every
    // trigger_here_site is a no-op.
    Engine::current().set_spec({});
  }
  RunOutcome outcome;
  rt::Stopwatch clock;

  StoreOptions store_options;
  store_options.shard_count = 1;
  store_options.initial_capacity = 1024;
  store_options.max_load = 0.9;  // no resizes in this scenario
  store_options.pattern_sites = true;
  store_options.pause = options.pause;
  KvStore store(store_options);

  const int keys = std::max(16, static_cast<int>(32 * options.work_scale));
  {
    ScopedBreakpointsDisabled quiesce;
    for (int i = 0; i < keys; ++i) {
      store.put(rank_to_key(static_cast<std::uint64_t>(i)), i);
    }
  }

  const std::uint64_t target = rank_to_key(7);
  // Evictor-paced choreography, as in run_evict_toctou: every attempt
  // that samples cold has a put still coming to meet it.
  const int attempts = std::max(4, static_cast<int>(12 * options.work_scale));
  rt::Rng put_rng(options.seed);
  std::atomic<bool> done{false};
  rt::StartGate gate;
  rt::Thread evictor([&] {
    gate.wait();
    for (int k = 0; k < attempts; ++k) {
      store.age_all();
      store.evict_if_cold(target);
      // Aging cadence — and a clock point, so a run of not-cold skips
      // can't monopolize a virtual clock's grant.
      rt::clock_sleep_for(std::chrono::microseconds(100));
    }
    done.store(true, std::memory_order_release);
  });
  rt::Thread putter([&] {
    gate.wait();
    for (int i = 1; !done.load(std::memory_order_acquire); ++i) {
      store.put(target, i);
      // Inter-put think time THROUGH THE CLOCK (run_evict_toctou uses
      // busy_work here): a put outside the eviction window never
      // blocks on the pattern path, so under a virtual clock a pure
      // CPU spin would hold the grant forever and starve the evictor.
      rt::clock_sleep_for(
          std::chrono::microseconds(200 + put_rng.next_below(400)));
    }
  });
  gate.open();
  evictor.join();
  putter.join();

  Engine::current().set_spec({});
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (store.lost_updates() > 0) {
    outcome.artifact = rt::Artifact::kWrongResult;
    outcome.detail = "pattern check.put.erase completed; eviction destroyed "
                     "a freshly-written entry " +
                     std::to_string(store.lost_updates()) + " time(s)";
  }
  return outcome;
}

}  // namespace cbp::apps::kvstore
