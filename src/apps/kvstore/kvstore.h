// Sharded in-memory KV store replica: the "production service at load"
// benchmark subject (DESIGN.md §5i).  A hash map split into
// independently locked shards serves a Zipfian-distributed keyspace for
// a pool of 10^5+ client sessions multiplexed onto a worker pool — the
// shape of a cache/session-store tier, where breakpoint probes sit on
// paths exercised millions of times per second and the armed-but-not-
// matching cost is what production can afford.
//
// Two concurrency bugs are seeded (both real patterns from sharded
// stores), each with a named concurrent breakpoint on its racing pair:
//
//  * kResizeRace — get() reads the shard's bucket-table pointer without
//    the shard lock (lock-free read path); resize() publishes the grown
//    table and then poisons the retired one.  A reader that loaded the
//    old pointer just before publication scans poisoned slots.  The
//    poison value stands in for the real bug's use-after-free so the
//    artifact is observable without undefined behaviour (the retired
//    table's memory is kept alive; see cache.cc's -999 idiom).
//
//  * kEvictToctou — evict_if_cold() samples an entry's hot flag under
//    the shard lock, drops the lock to do eviction bookkeeping, then
//    reacquires and erases WITHOUT re-checking.  A put() that lands in
//    the window marks the entry hot and writes a fresh value; the stale
//    coldness decision then destroys it — a lost update.
//
// Slots are open-addressed and every slot field is an atomic accessed
// relaxed: the seeded races keep their racy *semantics* (stale pointer,
// stale decision) while reads/writes stay torn-free, so the replica is
// clean under TSan/ASan and the artifact detectors (poisoned_reads,
// lost_updates) count real manifestations, not UB fallout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "apps/replica.h"

namespace cbp::apps::kvstore {

/// Breakpoint names for the two seeded bugs.
inline constexpr char kResizeRace[] = "kvstore-resize-race";
inline constexpr char kEvictToctou[] = "kvstore-evict-toctou";

/// Bug 2 as a 3-event pattern breakpoint (core/pattern.h): the same
/// evict TOCTOU, but expressed as the full event chain instead of a
/// single racing pair — time-of-check, the interleaved put, then
/// time-of-use, with the evictor's two events bound to one thread.
/// A 2-site rendezvous cannot state "the SAME thread that checked now
/// erases, with a put in between"; the pattern is the bug report.
inline constexpr char kEvictPattern[] = "kvstore-evict-pattern";
inline constexpr char kEvictPatternExpr[] = "check:t1.put:t2.erase:t1";
/// Predicted per-run hit rate carried on the spec entry (`predicted=`):
/// the evictor-paced choreography holds every window open until a put
/// arrives, so the §3 btrigger bound is near-certain per run; 0.9
/// leaves room for scheduler noise.  The demo gates the observed
/// Wilson interval against this value.
inline constexpr double kEvictPatternPredicted = 0.9;

inline constexpr std::int64_t kMiss = -1;     ///< get(): key absent
inline constexpr std::int64_t kPoison = -999; ///< value read from a retired
                                              ///< table mid-poison (bug 1)

struct StoreOptions {
  std::size_t shard_count = 16;          ///< power of two
  std::size_t initial_capacity = 1024;   ///< slots per shard, power of two
  double max_load = 0.5;                 ///< resize when exceeded
  bool armed = false;                    ///< insert the trigger calls
  /// Insert the kEvictPattern site calls (check/put/erase) instead of
  /// the kEvictToctou rendezvous pair on the eviction path.  Without an
  /// installed `pattern=` spec entry the sites are dormant no-ops, so
  /// the same binary doubles as the demo's 0-hit control.
  bool pattern_sites = false;
  std::chrono::milliseconds pause{100};  ///< T for the armed triggers
};

class KvStore {
 public:
  explicit KvStore(const StoreOptions& options);
  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Lock-free read (bug 1's second action lives here).  Returns the
  /// value, kMiss, or kPoison when the race manifests (also counted in
  /// poisoned_reads()).
  std::int64_t get(std::uint64_t key);

  /// Insert-or-update under the shard lock; marks the entry hot (bug 2's
  /// first action fires just before the write).  Triggers a resize when
  /// the shard's load factor crosses max_load.
  void put(std::uint64_t key, std::int64_t value);

  /// Evicts `key` iff it was sampled cold — with the sampled decision
  /// escaping the shard lock (bug 2's second action sits in the window).
  /// Returns true if an entry was erased.  An erase that destroys an
  /// entry whose hot flag had come back on is counted in lost_updates().
  bool evict_if_cold(std::uint64_t key);

  /// Aging pass: clears every entry's hot flag (the evictor runs this
  /// between scans; a put in between re-marks its key hot).
  void age_all();

  /// Live entries across all shards (locks each shard briefly).
  [[nodiscard]] std::size_t size() const;

  // Artifact / activity counters (relaxed atomics, read after joining).
  [[nodiscard]] std::uint64_t poisoned_reads() const {
    return poisoned_reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lost_updates() const {
    return lost_updates_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t resizes() const {
    return resizes_.load(std::memory_order_relaxed);
  }

 private:
  // Slot sentinels: workload keys have their top two bits cleared
  // (zipfian.h rank_to_key), so neither value can collide with a key.
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::uint64_t kTombstoneKey = ~0ULL - 1;

  struct Slot {
    std::atomic<std::uint64_t> key{kEmptyKey};
    std::atomic<std::int64_t> value{0};
    std::atomic<bool> hot{false};
  };

  /// Fixed-capacity open-addressed table.  Structure is immutable after
  /// construction; only slot fields mutate.  Retired tables are kept
  /// alive (poisoned, never freed mid-run) so the lock-free reader's
  /// stale pointer is always dereferenceable.
  struct Table {
    explicit Table(std::size_t capacity) : slots(capacity), mask(capacity - 1) {}
    std::vector<Slot> slots;
    std::size_t mask;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::atomic<Table*> table{nullptr};  ///< published for lock-free get()
    std::unique_ptr<Table> live;                   // guarded by mu
    std::vector<std::unique_ptr<Table>> retired;   // guarded by mu
    std::size_t entries = 0;                       // live keys; guarded by mu
    std::size_t tombstones = 0;                    // guarded by mu
    /// True while a resize is between publish and poison — the reader-
    /// side breakpoint's local predicate, so an armed get() on a
    /// quiescent shard is a pure local-reject.
    std::atomic<bool> resize_pending{false};
  };

  Shard& shard_for(std::uint64_t key);
  static std::size_t probe_start(std::uint64_t key, std::size_t mask);
  /// Grows shard.live 2x, publishes, then poisons the retired table.
  /// Caller holds shard.mu.
  void resize(Shard& shard);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_bits_;
  double max_load_;
  bool armed_;
  bool pattern_sites_;
  std::chrono::milliseconds pause_;
  std::atomic<std::uint64_t> poisoned_reads_{0};
  std::atomic<std::uint64_t> lost_updates_{0};
  std::atomic<std::uint64_t> resizes_{0};
  /// Key currently inside an armed eviction window (kEmptyKey = none).
  /// The put-side breakpoint's local predicate: a put participates only
  /// while its key is under eviction — every other armed put is a pure
  /// local-reject, which is what keeps kArmedMatching throughput sane
  /// (an unfiltered put probe would postpone T per call).  One window at
  /// a time: the workloads run a single evictor thread.
  std::atomic<std::uint64_t> evict_window_key_{kEmptyKey};
};

// ---------------------------------------------------------------------------
// High-traffic workload (bench/bench_hightraffic.cc and tests drive this)
// ---------------------------------------------------------------------------

/// What the worker pool runs with the breakpoint machinery in.
enum class Mode {
  kOff,             ///< no trigger calls at all (instrumentation-off)
  kSpecsDisabled,   ///< triggers inserted, spec marks both names `off`
  kArmedUnmatched,  ///< armed at full load, predicates/bounds never match
  kArmedMatching,   ///< resizes + evictions on: real hits, small bound
};

struct WorkloadOptions {
  Mode mode = Mode::kOff;
  int threads = 4;                     ///< worker pool size
  std::size_t keys = 1u << 20;         ///< Zipfian keyspace (ranks)
  std::size_t sessions = 1u << 17;     ///< client sessions (10^5+ default)
  std::uint64_t ops_per_thread = 1u << 20;
  double get_fraction = 0.95;
  double theta = 0.99;                 ///< Zipfian skew
  std::uint64_t seed = 1;
  int work_per_op = 32;                ///< busy_work per request (parse cost)
  std::chrono::milliseconds pause{100};  ///< T for kArmedMatching
  std::uint64_t match_bound = 8;       ///< spec bound= for kArmedMatching
};

struct WorkloadResult {
  double seconds = 0.0;
  std::uint64_t ops = 0;
  double ns_per_op = 0.0;
  std::uint64_t hits = 0;            ///< engine hits across both names
  std::uint64_t trigger_calls = 0;   ///< engine calls across both names
  std::uint64_t poisoned_reads = 0;
  std::uint64_t lost_updates = 0;
  std::uint64_t resizes = 0;
};

/// Runs the session-pool workload on the calling thread's engine.
/// Deterministic key streams per (seed, session); installs/clears the
/// spec appropriate for `mode` around the run.
WorkloadResult run_workload(const WorkloadOptions& options);

// ---------------------------------------------------------------------------
// Seeded-bug repro entry points (harness-compatible; see replica.h)
// ---------------------------------------------------------------------------

/// Bug 1: lock-free lookup vs. shard resize.  Artifact: a reader
/// observed kPoison from a retired table (kRaceObserved).
RunOutcome run_resize_race(const RunOptions& options);

/// Bug 2: check-then-erase hot-key eviction vs. put.  Artifact: an
/// eviction destroyed a re-hottened entry — lost update (kWrongResult).
RunOutcome run_evict_toctou(const RunOptions& options);

/// Bug 2 isolated through the 3-event pattern breakpoint: the store is
/// built with pattern_sites and the kEvictPattern `pattern=` spec entry
/// (check·put·erase) is installed when options.breakpoints is set —
/// otherwise the sites stay dormant, the 0-hit control.  Artifact as in
/// run_evict_toctou.
RunOutcome run_evict_pattern(const RunOptions& options);

}  // namespace cbp::apps::kvstore
