// Bounded Zipfian rank generator (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94 — the construction the
// YCSB workload generator uses).  Draws ranks in [0, n) where rank 0 is
// the most popular and popularity decays as 1/(r+1)^theta; theta=0.99 is
// the YCSB default and gives the classic "1% of keys take ~most of the
// traffic" shape the kvstore replica needs to model a hot-key workload.
//
// The generator is deterministic given the rt::Rng it draws from, and
// next() is const: one generator (with its precomputed zeta sums) is
// shared read-only by every session/worker while each session keeps its
// own Rng stream.
#pragma once

#include <cmath>
#include <cstdint>

#include "runtime/rng.h"

namespace cbp::apps::kvstore {

class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n),
        theta_(theta),
        zetan_(zeta(n, theta)),
        alpha_(1.0 / (1.0 - theta)),
        pow_half_theta_(std::pow(0.5, theta)),
        eta_((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta(2, theta) / zetan_)) {}

  /// Next rank in [0, n), drawn from `rng`.
  [[nodiscard]] std::uint64_t next(rt::Rng& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + pow_half_theta_) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;  // clamp pow() edge cases
  }

  /// Partial harmonic sum zeta(n, theta) = sum_{i=1..n} 1/i^theta.
  /// O(n); the constructor calls it once, tests use it to derive the
  /// analytic probability mass of a rank prefix.
  [[nodiscard]] static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }
  [[nodiscard]] double zetan() const { return zetan_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double pow_half_theta_;
  double eta_;
};

/// Maps a Zipf rank to a store key.  SplitMix64 finalizer: bijective, so
/// distinct ranks stay distinct keys, while scattering the hot low ranks
/// across the whole hash space (and therefore across store shards —
/// popularity must not correlate with placement).  The top two bits are
/// cleared so a key can never collide with the store's slot sentinels.
[[nodiscard]] constexpr std::uint64_t rank_to_key(std::uint64_t rank) {
  std::uint64_t z = rank + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return (z ^ (z >> 31)) >> 2;
}

/// Mixes a run seed and a session index into an independent Rng stream.
/// Per-*session* (not per-thread) streams make the aggregate key
/// sequence a function of the seed alone, no matter how sessions are
/// sharded over workers or how many harness trial-jobs run concurrently.
[[nodiscard]] inline rt::Rng session_rng(std::uint64_t seed,
                                         std::uint64_t session) {
  rt::Rng mix(seed ^ (session * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  return mix.split();
}

}  // namespace cbp::apps::kvstore
