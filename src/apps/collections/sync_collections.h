// Replicas of java.util.Collections$SynchronizedList / Map / Set.
//
// Each wrapper synchronizes every individual operation (as the JDK
// does), which leaves two seeded bug patterns:
//   * atomicity1 — compound client operations (size-then-get,
//     contains-then-put/add) are not atomic: a concurrent clear() or
//     put() in the window yields an exception or a stale/lost update.
//   * deadlock1 — add_all(other) locks `this` then `other`; two threads
//     running list_a.add_all(list_b) and list_b.add_all(list_a) cross.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/replica.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::collections {

/// Synchronized vector wrapper (the $SynchronizedList replica).
class SyncList {
 public:
  explicit SyncList(std::string lock_tag = "SynchronizedList")
      : mu_(std::move(lock_tag)) {}

  [[nodiscard]] int size() const;
  [[nodiscard]] int get(int index) const;  ///< throws std::out_of_range
  void add(int value);
  void clear();

  /// Locks this, then source (the crossed-order deadlock seed).  Inner
  /// acquisition declares a stall after `stall_after`.
  void add_all(const SyncList& source, std::chrono::milliseconds stall_after);

  [[nodiscard]] const void* id() const { return this; }

 private:
  mutable instr::TrackedMutex mu_;
  std::vector<int> items_;  // guarded by mu_
};

/// Synchronized map wrapper (the $SynchronizedMap replica).
class SyncMap {
 public:
  [[nodiscard]] bool contains(int key) const;
  [[nodiscard]] int get_or(int key, int fallback) const;
  void put(int key, int value);
  [[nodiscard]] int size() const;

  void put_all(const SyncMap& source, std::chrono::milliseconds stall_after);

 private:
  mutable instr::TrackedMutex mu_{"SynchronizedMap"};
  std::map<int, int> items_;  // guarded by mu_
};

/// Synchronized set wrapper (the $SynchronizedSet replica).  `add`
/// enforces the set invariant strictly: inserting a duplicate throws —
/// the exception artifact of the Table 1 synchronizedSet row.
class SyncSet {
 public:
  [[nodiscard]] bool contains(int value) const;
  void add(int value);  ///< throws std::logic_error on duplicate
  [[nodiscard]] int size() const;

  void add_all(const SyncSet& source, std::chrono::milliseconds stall_after);

 private:
  mutable instr::TrackedMutex mu_{"SynchronizedSet"};
  std::set<int> items_;  // guarded by mu_
};

// ---- Table 1 scenarios ----------------------------------------------------

/// size-then-get vs clear -> std::out_of_range (error: exception).
RunOutcome run_list_atomicity1(const RunOptions& options);
/// crossed add_all -> stall.
RunOutcome run_list_deadlock1(const RunOptions& options);
/// contains-then-put vs put -> lost update (error column blank).
RunOutcome run_map_atomicity1(const RunOptions& options);
/// crossed put_all -> stall.
RunOutcome run_map_deadlock1(const RunOptions& options);
/// contains-then-add vs add -> duplicate insert throws (exception).
RunOutcome run_set_atomicity1(const RunOptions& options);
/// crossed add_all -> stall.
RunOutcome run_set_deadlock1(const RunOptions& options);

inline constexpr const char* kListAtomicity1 = "synclist-atomicity1";
inline constexpr const char* kListDeadlock1 = "synclist-deadlock1";
inline constexpr const char* kMapAtomicity1 = "syncmap-atomicity1";
inline constexpr const char* kMapDeadlock1 = "syncmap-deadlock1";
inline constexpr const char* kSetAtomicity1 = "syncset-atomicity1";
inline constexpr const char* kSetDeadlock1 = "syncset-deadlock1";

}  // namespace cbp::apps::collections
