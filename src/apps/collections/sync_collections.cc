#include "apps/collections/sync_collections.h"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/vclock.h"

namespace cbp::apps::collections {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

}  // namespace

// ---------------------------------------------------------------------------
// SyncList
// ---------------------------------------------------------------------------

int SyncList::size() const {
  instr::TrackedLock lock(mu_);
  return static_cast<int>(items_.size());
}

int SyncList::get(int index) const {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  if (index < 0 || index >= static_cast<int>(items_.size())) {
    throw std::out_of_range("IndexOutOfBounds: " + std::to_string(index) +
                            " size " + std::to_string(items_.size()));
  }
  return items_[static_cast<std::size_t>(index)];
}

void SyncList::add(int value) {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  items_.push_back(value);
}

void SyncList::clear() {
  instr::TrackedLock lock(mu_);
  items_.clear();
}

void SyncList::add_all(const SyncList& source,
                       std::chrono::milliseconds stall_after) {
  instr::TrackedLock outer(mu_);
  DeadlockTrigger trigger(kListDeadlock1, this, &source);
  trigger.trigger_here(/*is_first_action=*/true);
  source.mu_.lock_or_stall(stall_after);
  items_.insert(items_.end(), source.items_.begin(), source.items_.end());
  source.mu_.unlock();
}

// ---------------------------------------------------------------------------
// SyncMap
// ---------------------------------------------------------------------------

bool SyncMap::contains(int key) const {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  return items_.count(key) != 0;
}

int SyncMap::get_or(int key, int fallback) const {
  instr::TrackedLock lock(mu_);
  auto it = items_.find(key);
  return it == items_.end() ? fallback : it->second;
}

void SyncMap::put(int key, int value) {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  items_[key] = value;
}

int SyncMap::size() const {
  instr::TrackedLock lock(mu_);
  return static_cast<int>(items_.size());
}

void SyncMap::put_all(const SyncMap& source,
                      std::chrono::milliseconds stall_after) {
  instr::TrackedLock outer(mu_);
  DeadlockTrigger trigger(kMapDeadlock1, this, &source);
  trigger.trigger_here(/*is_first_action=*/true);
  source.mu_.lock_or_stall(stall_after);
  for (const auto& [key, value] : source.items_) items_[key] = value;
  source.mu_.unlock();
}

// ---------------------------------------------------------------------------
// SyncSet
// ---------------------------------------------------------------------------

bool SyncSet::contains(int value) const {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  return items_.count(value) != 0;
}

void SyncSet::add(int value) {
  instr::TrackedLock lock(mu_);
  // Element work inside the critical section: contributes base runtime
  // without widening the unsynchronized compound-operation window.
  busy_work(2500);
  if (!items_.insert(value).second) {
    throw std::logic_error("duplicate element " + std::to_string(value) +
                           " inserted into set");
  }
}

int SyncSet::size() const {
  instr::TrackedLock lock(mu_);
  return static_cast<int>(items_.size());
}

void SyncSet::add_all(const SyncSet& source,
                      std::chrono::milliseconds stall_after) {
  instr::TrackedLock outer(mu_);
  DeadlockTrigger trigger(kSetDeadlock1, this, &source);
  trigger.trigger_here(/*is_first_action=*/true);
  source.mu_.lock_or_stall(stall_after);
  for (int value : source.items_) items_.insert(value);
  source.mu_.unlock();
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

RunOutcome run_list_atomicity1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  SyncList list;
  const int initial = std::max(4, static_cast<int>(32 * options.work_scale));
  for (int i = 0; i < initial; ++i) list.add(i);

  std::string error;
  rt::StartGate gate;
  rt::Thread reader([&] {
    gate.wait();
    try {
      // Compound client operation: size() then get(size-1) — not atomic.
      // The empty case is handled; only a clear() interleaved between
      // the size check and the get can make this throw.
      const int n = list.size();
      if (n > 0) {
        AtomicityTrigger trigger(kListAtomicity1, &list);
        trigger.trigger_here(/*is_first_action=*/false);
        (void)list.get(n - 1);
      }
    } catch (const std::out_of_range& e) {
      error = e.what();
    }
  });
  rt::Thread clearer([&] {
    gate.wait();
    rt::clock_sleep_for(std::chrono::microseconds(500));
    AtomicityTrigger trigger(kListAtomicity1, &list);
    trigger.trigger_here(/*is_first_action=*/true);
    list.clear();
  });
  gate.open();
  reader.join();
  clearer.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!error.empty()) {
    outcome.artifact = rt::Artifact::kException;
    outcome.detail = error;
  }
  return outcome;
}

namespace {

/// Shared shape of the three crossed-bulk-copy deadlock scenarios.
template <class Collection, class BulkCopy>
RunOutcome run_crossed_deadlock(Collection& a, Collection& b, BulkCopy copy) {
  RunOutcome outcome;
  rt::Stopwatch clock;
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread t1([&] {
    gate.wait();
    try {
      copy(a, b);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread t2([&] {
    gate.wait();
    try {
      copy(b, a);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  gate.open();
  t1.join();
  t2.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "deadlock conditions met (crossed bulk copy)";
  }
  return outcome;
}

}  // namespace

RunOutcome run_list_deadlock1(const RunOptions& options) {
  configure(options);
  SyncList a, b;
  for (int i = 0; i < 8; ++i) {
    a.add(i);
    b.add(100 + i);
  }
  return run_crossed_deadlock(a, b,
                              [&](SyncList& dst, SyncList& src) {
                                dst.add_all(src, options.stall_after);
                              });
}

RunOutcome run_map_atomicity1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  SyncMap map;
  // Ordinary harness traffic before the racy compound operation.
  const int prelude = std::max(4, static_cast<int>(48 * options.work_scale));
  for (int i = 0; i < prelude; ++i) map.put(1000 + i, i);
  constexpr int kKey = 7;
  std::atomic<int> puts{0};
  rt::StartGate gate;
  // Both threads run the same put-if-absent compound.  Executed
  // serially, exactly one put happens; only the interleaving where both
  // stale checks pass yields two.
  auto put_if_absent = [&](int value, std::chrono::microseconds stagger) {
    gate.wait();
    // Natural arrivals are skewed (clients do not start in lockstep);
    // the breakpoint's postponement is what bridges the skew.
    if (stagger.count() > 0) {
      rt::clock_sleep_for(stagger);
    }
    if (!map.contains(kKey)) {
      AtomicityTrigger trigger(kMapAtomicity1, &map);
      trigger.trigger_here(/*is_first_action=*/true);  // symmetric sites
      map.put(kKey, value);
      puts.fetch_add(1);
    }
  };
  rt::Thread t1(put_if_absent, 111, std::chrono::microseconds(0));
  rt::Thread t2(put_if_absent, 222, std::chrono::microseconds(500));
  gate.open();
  t1.join();
  t2.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (puts.load() == 2) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "put-if-absent executed twice: one update clobbered";
  }
  return outcome;
}

RunOutcome run_map_deadlock1(const RunOptions& options) {
  configure(options);
  SyncMap a, b;
  for (int i = 0; i < 8; ++i) {
    a.put(i, i);
    b.put(100 + i, i);
  }
  return run_crossed_deadlock(a, b,
                              [&](SyncMap& dst, SyncMap& src) {
                                dst.put_all(src, options.stall_after);
                              });
}

RunOutcome run_set_atomicity1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  SyncSet set;
  const int prelude = std::max(4, static_cast<int>(48 * options.work_scale));
  for (int i = 0; i < prelude; ++i) set.add(1000 + i);
  constexpr int kValue = 7;
  std::string error;
  std::mutex error_mu;
  rt::StartGate gate;
  // Both threads run the same add-if-absent compound; serially it is
  // safe, interleaved the second add raises the duplicate violation.
  auto add_if_absent = [&](std::chrono::microseconds stagger) {
    gate.wait();
    if (stagger.count() > 0) {
      rt::clock_sleep_for(stagger);
    }
    try {
      if (!set.contains(kValue)) {
        AtomicityTrigger trigger(kSetAtomicity1, &set);
        trigger.trigger_here(/*is_first_action=*/true);  // symmetric sites
        set.add(kValue);
      }
    } catch (const std::logic_error& e) {
      std::scoped_lock lock(error_mu);
      error = e.what();
    }
  };
  rt::Thread t1(add_if_absent, std::chrono::microseconds(0));
  rt::Thread t2(add_if_absent, std::chrono::microseconds(500));
  gate.open();
  t1.join();
  t2.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!error.empty()) {
    outcome.artifact = rt::Artifact::kException;
    outcome.detail = error;
  }
  return outcome;
}

RunOutcome run_set_deadlock1(const RunOptions& options) {
  configure(options);
  SyncSet a, b;
  for (int i = 0; i < 8; ++i) {
    a.add(i);
    b.add(100 + i);
  }
  return run_crossed_deadlock(a, b, [&](SyncSet& dst, SyncSet& src) {
    dst.add_all(src, options.stall_after);
  });
}

}  // namespace cbp::apps::collections
