// Replica of the commons-pool missed-notification stall (Table 1 row
// pool missed-notify1, inserted via Methodology II in the paper).
//
// The pool signals "an object was returned" through a non-latching
// notification gated on a registered waiter: if return_object() runs in
// the window between a borrower's empty-check and its wait
// registration, the wake-up is dropped and the borrower waits forever.
#pragma once

#include <vector>

#include "apps/replica.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::pool {

class ObjectPool {
 public:
  explicit ObjectPool(int objects) : idle_(objects) {}

  /// Takes an object, blocking while the pool is empty.  Throws
  /// rt::StallError if blocked past `stall_after` (the missed notify).
  int borrow(std::chrono::milliseconds stall_after, bool armed);

  /// Returns an object.  SEEDED BUG: the wake-up is only delivered to a
  /// waiter that has already registered.
  void return_object(bool armed);

  [[nodiscard]] int idle() const;

 private:
  mutable instr::TrackedMutex mu_{"GenericObjectPool"};
  instr::TrackedCondVar cv_;
  int idle_;                     // guarded by mu_
  bool waiter_present_ = false;  // guarded by mu_
  bool returned_signal_ = false; // guarded by mu_
};

RunOutcome run_missed_notify1(const RunOptions& options);

inline constexpr const char* kMissedNotify1 = "pool-missed-notify1";

}  // namespace cbp::apps::pool
