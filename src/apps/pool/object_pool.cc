#include "apps/pool/object_pool.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::pool {

int ObjectPool::borrow(std::chrono::milliseconds stall_after, bool armed) {
  bool empty = false;
  {
    instr::TrackedLock lock(mu_);
    if (idle_ > 0) {
      --idle_;
      return idle_ + 1;
    }
    empty = true;
  }
  (void)empty;
  // The decision to wait was made; the registration has not happened yet
  // — a return_object() landing here is dropped.  Ordered SECOND so the
  // breakpoint puts the return into exactly this window.
  if (armed) {
    OrderTrigger trigger(kMissedNotify1);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  instr::TrackedLock lock(mu_);
  waiter_present_ = true;
  cv_.wait_or_stall(mu_, stall_after, [&] { return returned_signal_; });
  returned_signal_ = false;
  waiter_present_ = false;
  --idle_;
  return idle_ + 1;
}

void ObjectPool::return_object(bool armed) {
  if (armed) {
    OrderTrigger trigger(kMissedNotify1);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  instr::TrackedLock lock(mu_);
  ++idle_;
  // SEEDED BUG: signal only reaches an already-registered waiter.
  if (waiter_present_) {
    returned_signal_ = true;
    cv_.notify_all();
  }
}

int ObjectPool::idle() const {
  instr::TrackedLock lock(mu_);
  return idle_;
}

RunOutcome run_missed_notify1(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;
  ObjectPool object_pool(0);  // empty: the borrower must wait
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread borrower([&] {
    gate.wait();
    try {
      (void)object_pool.borrow(options.stall_after, options.breakpoints);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread returner([&] {
    gate.wait();
    object_pool.return_object(options.breakpoints);
  });
  gate.open();
  borrower.join();
  returner.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "return notification dropped before waiter registered";
  }
  return outcome;
}

}  // namespace cbp::apps::pool
