// Common interface of the benchmark replicas.
//
// Each replica in src/apps mirrors one program from the paper's Tables
// 1/2: same synchronization idiom, same conflict structure, same failure
// artifact (see DESIGN.md for the substitution table).  Every replica
// exposes one `run_*` entry point per seeded bug; the harness runs it
// repeatedly to estimate the paper's "Prob." column, runtimes, and MTTE.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "runtime/clock.h"
#include "runtime/sim_crash.h"

namespace cbp::apps {

/// Per-run options shared by all replicas.
struct RunOptions {
  /// Insert/arm the concurrent breakpoints for the selected bug.
  bool breakpoints = true;

  /// Nominal postponement time T for this run's breakpoints (the paper's
  /// Global.TIMEOUT; scaled by rt::TimeScale at wait time).
  std::chrono::milliseconds pause{100};

  /// Resolution order of the conflict.  true = the paper's documented
  /// buggy order; false = the opposite order (Methodology II tries both).
  bool order_forward = true;

  /// Seed for workload randomness (page graphs, request mixes, jitter).
  std::uint64_t seed = 1;

  /// Workload size multiplier (1.0 = defaults chosen for ms-scale runs).
  double work_scale = 1.0;

  /// Nominal stall-detection threshold for lock/condition waits.
  std::chrono::milliseconds stall_after{2000};

  /// Timing policy for the trial (DESIGN.md §5g).  kScaled is the
  /// historical behaviour (kernel waits scaled by rt::TimeScale);
  /// kVirtual runs the trial under a per-trial discrete-event clock
  /// where every nominal wait is free and the schedule is
  /// deterministic; kReal pins the scale to 1.0.
  rt::ClockMode clock = rt::ClockMode::kScaled;
};

/// Deterministic CPU work standing in for the real programs' per-
/// operation computation (hashing, parsing, rendering).  Keeps the
/// replicas' base runtimes large enough relative to the breakpoint
/// machinery that overhead percentages are meaningful, as they are in
/// the paper's seconds-long benchmarks.
inline void busy_work(int iterations) {
  volatile int sink = 0;
  for (int i = 0; i < iterations; ++i) sink = sink + i;
}

/// What one run produced.
struct RunOutcome {
  rt::Artifact artifact = rt::Artifact::kNone;
  double runtime_seconds = 0.0;
  std::string detail;  ///< e.g. exception text, corrupt log line

  [[nodiscard]] bool buggy() const {
    return artifact != rt::Artifact::kNone;
  }
};

}  // namespace cbp::apps
