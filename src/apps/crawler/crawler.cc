#include "apps/crawler/crawler.h"

#include <set>
#include <string>
#include <thread>

#include "core/cbp.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/rng.h"
#include "runtime/vclock.h"

namespace cbp::apps::crawler {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

/// Sleeps a uniform random duration in [0, jitter_multiple * 100ms),
/// clock-adjusted — the synthetic "network".  The draw is on the
/// *nominal* window and only the sleep goes through the clock policy,
/// so a seed consumes the same randomness under real, scaled and
/// virtual clocks (and the old raw sleep_for no longer bypasses the
/// virtual clock).
void network_jitter(rt::Rng& rng, double jitter_multiple) {
  const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(100.0 * jitter_multiple));
  const auto ns = window.count();
  if (ns <= 0) return;
  rt::clock_sleep_for(std::chrono::nanoseconds(
      rng.next_below(static_cast<std::uint64_t>(ns) + 1)));
}

/// A crawl task whose buffer the canceller frees.
struct Task {
  instr::SharedVar<bool> cancelled{false};
  instr::SharedVar<bool> buffer_valid{true};
};

}  // namespace

RunOutcome run_race1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  rt::Rng rng(options.seed);

  Task task;
  bool used_freed_buffer = false;
  rt::StartGate gate;

  rt::Rng worker_rng = rng.split();
  rt::Thread worker([&] {
    gate.wait();
    network_jitter(worker_rng, kRace1JitterOver100ms);
    // Racy read of the cancellation flag — the stale decision is already
    // made; the canceller's invalidation is ordered FIRST from the
    // conflict state so the worker then uses the freed buffer.
    const bool cancelled = task.cancelled.read();
    ConflictTrigger trigger(kRace1, task.cancelled.address());
    trigger.trigger_here(/*is_first_action=*/false);
    if (!cancelled) {
      // Process the task: with the canceller ordered in between, the
      // buffer is gone by now.
      if (!task.buffer_valid.read()) used_freed_buffer = true;
    }
  });

  rt::Rng canceller_rng = rng.split();
  rt::Thread canceller([&] {
    gate.wait();
    network_jitter(canceller_rng, kRace1JitterOver100ms);
    ConflictTrigger trigger(kRace1, task.cancelled.address());
    trigger.trigger_here(/*is_first_action=*/true);
    task.cancelled.write(true);
    task.buffer_valid.write(false);  // free the buffer
  });

  gate.open();
  worker.join();
  canceller.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (used_freed_buffer) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "worker processed a cancelled task's freed buffer";
  }
  return outcome;
}

RunOutcome run_race2(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  rt::Rng rng(options.seed);

  // Visited-set with per-operation locking; the compound check+insert in
  // the workers below is the race.
  instr::TrackedMutex visited_mu("visited-set");
  std::set<std::string> visited;
  instr::SharedVar<int> fetches{0};
  const std::string url = "http://example.org/duplicated";

  rt::StartGate gate;
  auto worker_body = [&](rt::Rng worker_rng) {
    gate.wait();
    network_jitter(worker_rng, kRace2JitterOver100ms);
    bool fresh = false;
    {
      instr::TrackedLock lock(visited_mu);
      fresh = visited.count(url) == 0;
    }
    ConflictTrigger trigger(kRace2, &visited_mu);
    trigger.trigger_here(/*is_first_action=*/true);  // symmetric sites
    if (fresh) {
      {
        instr::TrackedLock lock(visited_mu);
        visited.insert(url);
      }
      fetches.racy_update([](int n) { return n + 1; });
    }
  };
  rt::Thread a(worker_body, rng.split());
  rt::Thread b(worker_body, rng.split());
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (fetches.peek() > 1) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "URL fetched twice (visited-set check was stale)";
  }
  return outcome;
}

}  // namespace cbp::apps::crawler
