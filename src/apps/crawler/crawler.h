// Replica of hedc, the ETH web crawler (Table 1 rows hedc race1/race2).
//
//   race1 — a task's `cancelled` flag is read without synchronization by
//     the worker about to process it while the canceller sets it and
//     invalidates the task's buffer: a stale read makes the worker use a
//     freed buffer (the bug).  This is the paper's §6.2 pause-time-sweep
//     subject: the two sides reach their sites with a random skew, so the
//     hit probability rises from ~0.87 at T=100ms to 1.0 at T=1s.
//   race2 — the visited-set "contains then insert" compound is not
//     atomic: two workers both claim the same URL and fetch it twice.
//
// "Network" latency is synthetic jitter from a seeded RNG; the paper
// itself notes hedc's runtimes fluctuate with the network.
#pragma once

#include <chrono>

#include "apps/replica.h"

namespace cbp::apps::crawler {

/// Nominal site-arrival jitter windows, expressed as multiples of the
/// nominal 100 ms pause so the paper's probabilities are reproduced:
/// P(hit) = 1 - (1 - T/J)^2 for uniform independent arrivals in [0, J].
inline constexpr double kRace1JitterOver100ms = 1.56;  // -> 0.87 at 100 ms
inline constexpr double kRace2JitterOver100ms = 12.0;  // -> 0.96 at 1 s

RunOutcome run_race1(const RunOptions& options);
RunOutcome run_race2(const RunOptions& options);

inline constexpr const char* kRace1 = "hedc-race1";
inline constexpr const char* kRace2 = "hedc-race2";

}  // namespace cbp::apps::crawler
