// Replica of java.lang.StringBuffer and its classic append/setLength
// atomicity violation (paper Fig. 3).
//
// Every public method is individually synchronized (as in the JDK), but
// append(StringBuffer&) reads the source length and then copies the
// characters in two separate critical sections: a concurrent
// set_length(0) in between makes the cached length stale and the copy
// throws — the paper's breakpoint (239, 449, t1.sb == t2.this).
#pragma once

#include <chrono>
#include <string>

#include "apps/replica.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::strbuf {

class StringBuffer {
 public:
  StringBuffer() = default;
  explicit StringBuffer(std::string initial) : data_(std::move(initial)) {}

  /// Synchronized length (JDK line 143).
  [[nodiscard]] int length() const;

  /// Synchronized character copy (JDK line 322).  Throws
  /// std::out_of_range when [begin, end) is not within the buffer — the
  /// StringIndexOutOfBoundsException of the original.
  void get_chars(int begin, int end, std::string& dst) const;

  /// Synchronized append of a single character.
  void append(char c);

  /// Synchronized truncation/extension (JDK line 239 region).
  void set_length(int new_length);

  /// Synchronized append of another buffer (JDK lines 437-449).  This is
  /// the non-atomic victim: length() at "line 444", get_chars at "line
  /// 449" are separate critical sections on `source`.
  void append(const StringBuffer& source);

  /// Uninstrumented snapshot for assertions.
  [[nodiscard]] std::string str() const;

  /// Identity used by breakpoint predicates (the Java `this`).
  [[nodiscard]] const void* id() const { return this; }

 private:
  mutable instr::TrackedMutex mu_{"StringBuffer"};
  std::string data_;  // guarded by mu_
};

/// Runs the paper's atomicity-violation scenario once: one thread
/// appends a shared buffer into an accumulator while another calls
/// set_length(0) on it.  With the breakpoint armed, the interleaving is
/// forced and append throws (Artifact::kException).
RunOutcome run_atomicity1(const RunOptions& options);

/// Breakpoint name used by run_atomicity1 (exposed for stats queries).
inline constexpr const char* kAtomicity1Breakpoint = "strbuf-atomicity1";

}  // namespace cbp::apps::strbuf
