#include "apps/strbuf/string_buffer.h"

#include <stdexcept>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::strbuf {

int StringBuffer::length() const {
  instr::TrackedLock lock(mu_);
  return static_cast<int>(data_.size());
}

void StringBuffer::get_chars(int begin, int end, std::string& dst) const {
  instr::TrackedLock lock(mu_);
  if (begin < 0 || end < begin || end > static_cast<int>(data_.size())) {
    throw std::out_of_range("StringIndexOutOfBounds: end " +
                            std::to_string(end) + " > length " +
                            std::to_string(data_.size()));
  }
  dst.append(data_, static_cast<std::size_t>(begin),
             static_cast<std::size_t>(end - begin));
}

void StringBuffer::append(char c) {
  instr::TrackedLock lock(mu_);
  data_.push_back(c);
}

void StringBuffer::set_length(int new_length) {
  // "Line 239": the interleaver's side of the breakpoint.  The thread
  // reaching here is ordered FIRST (paper §2: the atomicity violation is
  // triggered when setLength executes before the stale getChars).
  AtomicityTrigger trigger(kAtomicity1Breakpoint, this);
  trigger.trigger_here(/*is_first_action=*/true);
  instr::TrackedLock lock(mu_);
  data_.resize(static_cast<std::size_t>(new_length < 0 ? 0 : new_length));
}

void StringBuffer::append(const StringBuffer& source) {
  busy_work(30000);  // formatting work around the append
  // "Line 444": cache the source length in a local.
  const int len = source.length();
  // "Line 449": the victim's side of the breakpoint — about to copy
  // using the (possibly stale) cached length.
  AtomicityTrigger trigger(kAtomicity1Breakpoint, &source);
  trigger.trigger_here(/*is_first_action=*/false);
  std::string chunk;
  source.get_chars(0, len, chunk);
  instr::TrackedLock lock(mu_);
  data_ += chunk;
}

std::string StringBuffer::str() const {
  instr::TrackedLock lock(mu_);
  return data_;
}

RunOutcome run_atomicity1(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);

  RunOutcome outcome;
  rt::Stopwatch clock;

  const int rounds = std::max(1, static_cast<int>(8 * options.work_scale));
  StringBuffer shared("the quick brown fox jumps over the lazy dog");
  StringBuffer accumulator;
  std::string error;
  rt::StartGate gate;

  rt::Thread appender([&] {
    gate.wait();
    try {
      for (int i = 0; i < rounds; ++i) accumulator.append(shared);
    } catch (const std::out_of_range& e) {
      error = e.what();
    }
  });
  rt::Thread truncator([&] {
    gate.wait();
    // A little real work before the truncation, as in the library's
    // normal use; the breakpoint is what creates the overlap.
    for (int i = 0; i < 64; ++i) shared.append('x');
    shared.set_length(0);
  });
  gate.open();
  appender.join();
  truncator.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (!error.empty()) {
    outcome.artifact = rt::Artifact::kException;
    outcome.detail = error;
  }
  return outcome;
}

}  // namespace cbp::apps::strbuf
