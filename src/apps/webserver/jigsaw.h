// Replica of W3C Jigsaw's SocketClientFactory and the five Table 1
// jigsaw bugs:
//
//   deadlock1 — the paper's Fig. 2: killClients holds the factory
//     monitor ("this", line 867) and acquires csList (line 872), while
//     clientConnectionFinished holds csList (line 623) and calls the
//     synchronized decrIdleCount ("this", line 574/626): crossed order.
//   deadlock2 — a second crossing between the admin-config and
//     status-reporting monitors.
//   missed-notify1 — the shutdown event is delivered through a
//     non-latching one-shot event: a notify issued before the waiter
//     registers is dropped, stranding the waiter (Methodology II bug).
//   race1 — a racy read of the `stopping` flag lets a worker enter its
//     idle wait with a stale "not stopping" decision: stall.
//   race2 — unsynchronized request counter: lost updates (blank error).
#pragma once

#include <vector>

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::webserver {

/// Non-latching one-shot event (the missed-notify seed): notify() is
/// dropped unless a waiter has already registered.
class DroppableEvent {
 public:
  /// Registers as waiter and blocks until delivered (or stall).
  void wait(std::chrono::milliseconds stall_after, bool armed);

  /// Delivers the event — ONLY if someone is already waiting (bug).
  void notify(bool armed);

 private:
  instr::TrackedMutex mu_{"shutdown-event"};
  instr::TrackedCondVar cv_;
  bool waiter_present_ = false;  // guarded by mu_
  bool delivered_ = false;       // guarded by mu_
};

class SocketClientFactory {
 public:
  /// Fig. 2 lines 618-626: locks csList, then the factory monitor.
  void client_connection_finished(std::chrono::milliseconds stall_after);

  /// Fig. 2 lines 867-872: locks the factory monitor, then csList.
  void kill_clients(std::chrono::milliseconds stall_after);

  /// deadlock2 legs: admin reconfiguration (config -> status) vs status
  /// reporting (status -> config).
  void reconfigure(std::chrono::milliseconds stall_after);
  void report_status(std::chrono::milliseconds stall_after);

  /// race1: worker idle path — reads `stopping` (racily), then waits for
  /// work; a stale false strands it.  Throws rt::StallError on strand.
  void worker_idle(std::chrono::milliseconds stall_after);
  /// race1: shutdown writes `stopping` and wakes workers.
  void begin_shutdown();

  /// race2: unsynchronized request statistics.
  void count_request();
  [[nodiscard]] std::int64_t requests_counted() const {
    return request_count_.peek();
  }

  /// Which bug's breakpoints are inserted:
  /// "deadlock1", "deadlock2", "race1", "race2", or "".
  void arm(std::string bug) { armed_ = std::move(bug); }

 private:
  std::string armed_;

  instr::TrackedMutex factory_mu_{"this"};
  instr::TrackedMutex cs_list_mu_{"csList"};
  instr::TrackedMutex config_mu_{"config"};
  instr::TrackedMutex status_mu_{"status"};
  int idle_count_ = 0;        // guarded by factory_mu_
  std::vector<int> clients_;  // guarded by cs_list_mu_
  int config_epoch_ = 0;      // guarded by config_mu_ (+ status for report)

  instr::TrackedMutex worker_mu_{"worker-queue"};
  instr::TrackedCondVar worker_cv_;
  int wake_epoch_ = 0;                          // guarded by worker_mu_
  instr::SharedVar<bool> stopping_{false};      // race1: racy flag
  instr::SharedVar<std::int64_t> request_count_{0};  // race2
};

RunOutcome run_deadlock1(const RunOptions& options);
RunOutcome run_deadlock2(const RunOptions& options);
RunOutcome run_missed_notify1(const RunOptions& options);
RunOutcome run_race1(const RunOptions& options);
RunOutcome run_race2(const RunOptions& options);

/// The paper's Jigsaw test harness in miniature: several client threads
/// make simultaneous "web page requests" (request counting + connection
/// teardown through csList) while an admin thread sends the
/// killClients control command mid-run — the Fig. 2 deadlock armed and
/// hit under realistic concurrent load rather than a bare two-thread
/// scenario.
RunOutcome run_server_stress(const RunOptions& options, int clients = 4);

inline constexpr const char* kDeadlock1 = "jigsaw-deadlock1";
inline constexpr const char* kDeadlock2 = "jigsaw-deadlock2";
inline constexpr const char* kMissedNotify1 = "jigsaw-missed-notify1";
inline constexpr const char* kRace1 = "jigsaw-race1";
inline constexpr const char* kRace2 = "jigsaw-race2";

}  // namespace cbp::apps::webserver
