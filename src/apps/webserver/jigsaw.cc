#include "apps/webserver/jigsaw.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::webserver {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

}  // namespace

// ---------------------------------------------------------------------------
// DroppableEvent
// ---------------------------------------------------------------------------

void DroppableEvent::wait(std::chrono::milliseconds stall_after, bool armed) {
  if (armed) {
    // The waiter is between "decided to wait" and "registered": the
    // window in which a notify is dropped.  Ordered SECOND so the
    // notifier fires first into the void.
    OrderTrigger trigger(kMissedNotify1);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  instr::TrackedLock lock(mu_);
  waiter_present_ = true;
  cv_.wait_or_stall(mu_, stall_after, [&] { return delivered_; });
}

void DroppableEvent::notify(bool armed) {
  if (armed) {
    OrderTrigger trigger(kMissedNotify1);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  instr::TrackedLock lock(mu_);
  // SEEDED BUG: a one-shot, non-latching event — if nobody registered
  // yet, the notification is silently dropped.
  if (waiter_present_) {
    delivered_ = true;
    cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// SocketClientFactory
// ---------------------------------------------------------------------------

void SocketClientFactory::client_connection_finished(
    std::chrono::milliseconds stall_after) {
  // "line 623": synchronized (csList)
  instr::TrackedLock cs_list(cs_list_mu_);
  if (armed_ == "deadlock1") {
    DeadlockTrigger trigger(kDeadlock1, &cs_list_mu_, &factory_mu_);
    // This site runs once per connection teardown; one crossing is all
    // the reproduction needs (§6.3 bound refinement).
    trigger.bound(1);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  // "line 626" -> "line 574": synchronized decrIdleCount on the factory.
  factory_mu_.lock_or_stall(stall_after);
  --idle_count_;
  factory_mu_.unlock();
}

void SocketClientFactory::kill_clients(std::chrono::milliseconds stall_after) {
  // "line 867": synchronized (this)
  instr::TrackedLock factory(factory_mu_);
  if (armed_ == "deadlock1") {
    DeadlockTrigger trigger(kDeadlock1, &factory_mu_, &cs_list_mu_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  // "line 872": synchronized (csList)
  cs_list_mu_.lock_or_stall(stall_after);
  clients_.clear();
  cs_list_mu_.unlock();
}

void SocketClientFactory::reconfigure(std::chrono::milliseconds stall_after) {
  instr::TrackedLock config(config_mu_);
  if (armed_ == "deadlock2") {
    DeadlockTrigger trigger(kDeadlock2, &config_mu_, &status_mu_);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  status_mu_.lock_or_stall(stall_after);
  ++config_epoch_;
  status_mu_.unlock();
}

void SocketClientFactory::report_status(
    std::chrono::milliseconds stall_after) {
  instr::TrackedLock status(status_mu_);
  if (armed_ == "deadlock2") {
    DeadlockTrigger trigger(kDeadlock2, &status_mu_, &config_mu_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  config_mu_.lock_or_stall(stall_after);
  (void)config_epoch_;
  config_mu_.unlock();
}

void SocketClientFactory::worker_idle(std::chrono::milliseconds stall_after) {
  // Racy read of the stopping flag: the worker's decision to idle-wait
  // is based on this (possibly stale) value.
  const bool stop_seen = stopping_.read();
  if (armed_ == "race1") {
    ConflictTrigger trigger(kRace1, stopping_.address());
    // The shutdown's write AND its single wake-up are ordered FIRST —
    // they land in the window between the stale read and the wait.
    trigger.trigger_here(/*is_first_action=*/false);
  }
  if (stop_seen) return;  // clean exit
  instr::TrackedLock lock(worker_mu_);
  // SEEDED BUG: the worker waits for the NEXT wake-up epoch.  If the
  // shutdown's (only) wake-up landed in the window above, the epoch it
  // samples here already includes it — it waits for one that never
  // comes.
  const int epoch_seen = wake_epoch_;
  worker_cv_.wait_or_stall(worker_mu_, stall_after,
                           [&] { return wake_epoch_ != epoch_seen; });
}

void SocketClientFactory::begin_shutdown() {
  if (armed_ == "race1") {
    ConflictTrigger trigger(kRace1, stopping_.address());
    trigger.trigger_here(/*is_first_action=*/true);
  }
  stopping_.write(true);
  instr::TrackedLock lock(worker_mu_);
  ++wake_epoch_;             // the one and only wake-up
  worker_cv_.notify_all();
}

void SocketClientFactory::count_request() {
  busy_work(40000);  // request parsing/response work of the original
  const std::int64_t value = request_count_.read();
  if (armed_ == "race2") {
    ConflictTrigger trigger(kRace2, request_count_.address());
    trigger.trigger_here(/*is_first_action=*/true);
  }
  request_count_.write(value + 1);
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

namespace {

template <class Leg1, class Leg2>
RunOutcome run_two_legs(Leg1 leg1, Leg2 leg2) {
  RunOutcome outcome;
  rt::Stopwatch clock;
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread t1([&] {
    gate.wait();
    try {
      leg1();
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread t2([&] {
    gate.wait();
    try {
      leg2();
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  gate.open();
  t1.join();
  t2.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "deadlock/stall conditions met";
  }
  return outcome;
}

}  // namespace

RunOutcome run_deadlock1(const RunOptions& options) {
  configure(options);
  SocketClientFactory factory;
  factory.arm("deadlock1");
  return run_two_legs(
      [&] { factory.client_connection_finished(options.stall_after); },
      [&] { factory.kill_clients(options.stall_after); });
}

RunOutcome run_deadlock2(const RunOptions& options) {
  configure(options);
  SocketClientFactory factory;
  factory.arm("deadlock2");
  return run_two_legs([&] { factory.reconfigure(options.stall_after); },
                      [&] { factory.report_status(options.stall_after); });
}

RunOutcome run_missed_notify1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  DroppableEvent shutdown_event;
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread waiter([&] {
    gate.wait();
    try {
      shutdown_event.wait(options.stall_after, options.breakpoints);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread notifier([&] {
    gate.wait();
    shutdown_event.notify(options.breakpoints);
  });
  gate.open();
  waiter.join();
  notifier.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "shutdown notification dropped before waiter registered";
  }
  return outcome;
}

RunOutcome run_race1(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  SocketClientFactory factory;
  factory.arm("race1");
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread worker([&] {
    gate.wait();
    try {
      factory.worker_idle(options.stall_after);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread shutdown([&] {
    gate.wait();
    factory.begin_shutdown();
  });
  gate.open();
  worker.join();
  shutdown.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "worker idled on a stale 'not stopping' read";
  }
  return outcome;
}

RunOutcome run_server_stress(const RunOptions& options, int clients) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  SocketClientFactory factory;
  factory.arm("deadlock1");
  std::atomic<bool> stalled{false};
  rt::StartGate gate;

  const int requests = std::max(2, static_cast<int>(6 * options.work_scale));
  std::vector<rt::Thread> client_threads;
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&] {
      gate.wait();
      try {
        for (int i = 0; i < requests; ++i) {
          factory.count_request();  // serve a page
          // Connection teardown takes the csList -> factory path.
          factory.client_connection_finished(options.stall_after);
        }
      } catch (const rt::StallError&) {
        stalled = true;
      }
    });
  }
  rt::Thread admin([&] {
    gate.wait();
    try {
      // The administrative command arrives mid-run, while clients are
      // tearing connections down: the factory -> csList path crosses.
      factory.kill_clients(options.stall_after);
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  gate.open();
  for (auto& t : client_threads) t.join();
  admin.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "deadlock under multi-client load (Fig. 2)";
  }
  return outcome;
}

RunOutcome run_race2(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;
  SocketClientFactory factory;
  factory.arm("race2");
  const int ops = std::max(4, static_cast<int>(16 * options.work_scale));
  rt::StartGate gate;
  auto client = [&] {
    gate.wait();
    for (int i = 0; i < ops; ++i) factory.count_request();
  };
  rt::Thread a(client), b(client);
  gate.open();
  a.join();
  b.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (factory.requests_counted() < 2 * ops) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "request counter lost " +
                     std::to_string(2 * ops - factory.requests_counted()) +
                     " updates";
  }
  return outcome;
}

}  // namespace cbp::apps::webserver
