#include "apps/cache/cache.h"

#include <thread>
#include <vector>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::cache {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

/// Read-pause-write increment of an unsynchronized counter: the racy
/// window is widened by the breakpoint when `armed` matches.
void racy_increment(instr::SharedVar<std::int64_t>& counter, bool armed,
                    const char* breakpoint) {
  const std::int64_t value = counter.read();
  if (armed) {
    ConflictTrigger trigger(breakpoint, counter.address());
    trigger.trigger_here(/*is_first_action=*/true);
  }
  counter.write(value + 1);
}

}  // namespace

void Cache::arm(std::string bug, std::uint64_t ignore_first) {
  armed_ = std::move(bug);
  ignore_first_ = ignore_first;
}

void Cache::put(int key, int payload) {
  busy_work(40000);  // serialization/hashing work of the original cache
  auto object = std::make_shared<CacheObject>(key);
  bool inserted = false;
  {
    instr::TrackedLock lock(table_mu_);
    inserted = table_.emplace(key, object).second;
    if (!inserted) table_[key] = object;
    // Capacity check under the lock; eviction bookkeeping is not.
    if (table_.size() > capacity_) {
      table_.erase(table_.begin());
      lock.unlock();
      racy_increment(evictions_, armed_ == "race3", kRace3);  // race3
    }
  }
  // The object is now PUBLISHED but its payload is not yet initialized —
  // the cache4j constructor atomicity violation.
  if (armed_ == "atomicity1") {
    AtomicityTrigger trigger(kAtomicity1, object.get());
    trigger.ignore_first(ignore_first_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  object->payload.write(payload);
  object->ready.write(true);

  if (inserted) {
    racy_increment(size_, armed_ == "race1", kRace1);  // race1
  }
}

int Cache::get(int key) {
  busy_work(40000);
  std::shared_ptr<CacheObject> object;
  {
    instr::TrackedLock lock(table_mu_);
    auto it = table_.find(key);
    if (it == table_.end()) return -1;
    object = it->second;
  }
  if (armed_ == "atomicity1") {
    AtomicityTrigger trigger(kAtomicity1, object.get());
    trigger.ignore_first(ignore_first_);
    // The reader executes FIRST from the conflict state: it observes the
    // published-but-uninitialized object.
    trigger.trigger_here(/*is_first_action=*/true);
  }
  if (!object->ready.read()) return -999;  // half-constructed observation
  const int payload = object->payload.read();
  racy_increment(hits_, armed_ == "race2", kRace2);  // race2
  return payload;
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

namespace {

/// Two-thread put/get mix; returns the outcome classified by comparing
/// exact operation tallies against the unsynchronized counters.
RunOutcome run_race(const RunOptions& options, const std::string& bug) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  const int ops = std::max(4, static_cast<int>(24 * options.work_scale));
  // race3 needs evictions (tight capacity); race1/race2 need the prefill
  // keys to survive so gets are guaranteed hits (ample capacity).
  Cache cache(static_cast<std::size_t>(bug == "race3" ? ops : 8 * ops));
  cache.arm(bug);

  // Pre-fill keys the getters will hit.
  {
    ScopedBreakpointsDisabled quiesce;
    for (int i = 0; i < ops; ++i) cache.put(10'000 + i, i);
  }

  rt::StartGate gate;
  auto worker = [&](int base) {
    gate.wait();
    for (int i = 0; i < ops; ++i) {
      cache.put(base + i, i);       // distinct new keys -> size_ bumps
      (void)cache.get(10'000 + i);  // guaranteed hits -> hits_ bumps
    }
  };
  rt::Thread a(worker, 0);
  rt::Thread b(worker, 1000);
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();

  // Exact expectations: all counters were incremented exactly this many
  // times; any shortfall is a lost update — the racy state manifested.
  const std::int64_t total_new_puts = 2LL * ops + ops;  // workers + prefill
  const std::int64_t total_hits = 2LL * ops;
  bool lost = false;
  std::string what;
  if (bug == "race1" && cache.approx_size() < total_new_puts) {
    lost = true;
    what = "size counter lost " +
           std::to_string(total_new_puts - cache.approx_size()) + " updates";
  } else if (bug == "race2" && cache.hit_count() < total_hits) {
    lost = true;
    what = "hit counter lost " +
           std::to_string(total_hits - cache.hit_count()) + " updates";
  } else if (bug == "race3") {
    // Evictions happen once the table exceeds its capacity; the exact
    // count is (inserted keys) - capacity, all keys being distinct.
    const std::int64_t expected_evictions =
        std::max<std::int64_t>(0, total_new_puts - static_cast<int>(ops));
    if (cache.eviction_count() < expected_evictions) {
      lost = true;
      what = "eviction counter lost " +
             std::to_string(expected_evictions - cache.eviction_count()) +
             " updates";
    }
  }
  if (lost) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = what;
  }
  return outcome;
}

}  // namespace

RunOutcome run_race1(const RunOptions& options) {
  return run_race(options, "race1");
}
RunOutcome run_race2(const RunOptions& options) {
  return run_race(options, "race2");
}
RunOutcome run_race3(const RunOptions& options) {
  return run_race(options, "race3");
}

RunOutcome run_atomicity1(const RunOptions& options,
                          std::uint64_t ignore_first) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  Cache cache(100'000);
  cache.arm("atomicity1", ignore_first);

  // Warm-up: the CacheObject constructor path runs many times with no
  // concurrent reader — each arrival would postpone for the full T
  // unless ignore_first suppresses it (paper §6.3, ignoreFirst=7200).
  for (int i = 0; i < kWarmupConstructions; ++i) cache.put(i, i);

  // Race phase: a put of a fresh key vs a get of that same key.
  constexpr int kKey = 777'777;
  int observed = -1;
  rt::StartGate gate;
  rt::Thread writer([&] {
    gate.wait();
    cache.put(kKey, 42);
  });
  rt::Thread reader([&] {
    gate.wait();
    // Retry until the entry is published, then the breakpoint aligns the
    // read into the publication/initialization window.
    for (int attempt = 0; attempt < 1'000'000; ++attempt) {
      observed = cache.get(kKey);
      if (observed != -1) break;
    }
  });
  gate.open();
  writer.join();
  reader.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (observed == -999) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail = "reader observed half-constructed CacheObject";
  }
  return outcome;
}

}  // namespace cbp::apps::cache
