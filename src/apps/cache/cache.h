// Replica of cache4j, a "fast thread-safe implementation for caching
// Java objects" whose speed comes from leaving some bookkeeping
// unsynchronized — the seeded bugs of the Table 1 cache4j rows:
//
//   race1      — unsynchronized size counter (lost updates in put)
//   race2      — unsynchronized hit statistics (lost updates in get)
//   race3      — unsynchronized eviction counter (lost updates on evict)
//   atomicity1 — CacheObject is published to the table before its
//                payload is initialized; a concurrent get() observes the
//                half-constructed object.  The constructor runs
//                thousands of times during warm-up, which is why the
//                paper refines this breakpoint with ignoreFirst=7200.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::cache {

/// A cached entry.  `ready` is set at the END of initialization; the
/// atomicity bug publishes the object before that.
struct CacheObject {
  explicit CacheObject(int key_in) : key(key_in) {}
  int key = 0;
  instr::SharedVar<int> payload;  ///< initialized after publication (bug)
  instr::SharedVar<bool> ready;   ///< true once payload is valid
};

class Cache {
 public:
  explicit Cache(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts (or replaces) an entry.  The CacheObject is constructed,
  /// PUBLISHED into the table, and only then initialized — the seeded
  /// atomicity violation (paper: constructor of CacheObject).
  void put(int key, int payload);

  /// Looks up an entry; returns the payload or -1 on miss.  Reading a
  /// published-but-uninitialized entry returns the poison value -999.
  int get(int key);

  /// Unsynchronized bookkeeping reads.
  [[nodiscard]] std::int64_t approx_size() const { return size_.peek(); }
  [[nodiscard]] std::int64_t hit_count() const { return hits_.peek(); }
  [[nodiscard]] std::int64_t eviction_count() const {
    return evictions_.peek();
  }

  /// Selects which seeded bug's breakpoint is inserted ("race1",
  /// "race2", "race3", "atomicity1", or "" for none), and the
  /// ignore-first refinement for atomicity1.
  void arm(std::string bug, std::uint64_t ignore_first = 0);

 private:
  const std::size_t capacity_;
  std::string armed_;               // which breakpoint is compiled "in"
  std::uint64_t ignore_first_ = 0;  // §6.3 refinement for atomicity1
  instr::TrackedMutex table_mu_{"cache4j-table"};
  std::unordered_map<int, std::shared_ptr<CacheObject>> table_;  // guarded

  // Deliberately unsynchronized counters (the cache4j "fast" part).
  instr::SharedVar<std::int64_t> size_{0};       // race1
  instr::SharedVar<std::int64_t> hits_{0};       // race2
  instr::SharedVar<std::int64_t> evictions_{0};  // race3
};

/// Multi-threaded put/get mix arming the race1 breakpoint on the size
/// counter update; the artifact is the racy state itself (error column
/// blank in the paper), observed as a lost update.
RunOutcome run_race1(const RunOptions& options);
/// Same workload, race2 breakpoint on the hit counter.
RunOutcome run_race2(const RunOptions& options);
/// Same workload, race3 breakpoint on the last-access timestamp.
RunOutcome run_race3(const RunOptions& options);
/// Warm-up constructs many CacheObjects, then two threads race a put
/// against a get of the same key; with the breakpoint the reader
/// observes the half-constructed object.  `ignore_first` (scaled
/// equivalent of the paper's 7200) suppresses warm-up postponement.
RunOutcome run_atomicity1(const RunOptions& options,
                          std::uint64_t ignore_first);

inline constexpr const char* kRace1 = "cache4j-race1";
inline constexpr const char* kRace2 = "cache4j-race2";
inline constexpr const char* kRace3 = "cache4j-race3";
inline constexpr const char* kAtomicity1 = "cache4j-atomicity1";

/// Number of warm-up constructions run_atomicity1 performs (the scaled
/// analogue of the paper's 7200 constructor calls).
inline constexpr int kWarmupConstructions = 300;

}  // namespace cbp::apps::cache
