// Replica of log4j 1.2.13's AsyncAppender and its missed-notification
// stall — the worked example of the paper's Methodology II (§5).
//
// The appender synchronizes append / setBufferSize / close / the
// dispatcher loop on one buffer lock, with two seeded defects faithful
// to the original bug class:
//   * set_buffer_size() grows the buffer without notifying threads
//     blocked on "buffer full";
//   * the dispatcher's space notification fires only when
//     queue.size() == buffer_size - 1, a threshold computed from the
//     *current* buffer size.
// Consequence: if set_buffer_size acquires the lock between the appender
// blocking on a full buffer and the dispatcher's next pop (the paper's
// "236 -> 309" resolution order), the blocked appender is never woken —
// the system stalls.  In the opposite order the notification fires and
// everything drains.
//
// The four lock-contention site pairs of the paper's §5 table map to the
// four site ids below; arm_contention_pair() inserts a ConflictTrigger
// on the buffer lock before the two chosen sites with a chosen
// resolution order, exactly as Methodology II prescribes.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::logging {

/// The four synchronized sites of the replica, named after the paper's
/// AsyncAppender line numbers.
enum class Site : int {
  kAppend = 100,      ///< append(): wait-for-space / push / notify
  kSetBufferSize = 236,  ///< setBufferSize(): grow WITHOUT notify (bug)
  kClose = 277,       ///< close(): set closed / notify
  kDispatch = 309,    ///< dispatcher: wait-for-items / pop / maybe-notify
};

class AsyncAppender {
 public:
  explicit AsyncAppender(int buffer_size) : buffer_size_(buffer_size) {}

  /// Blocks while the buffer is full; throws rt::StallError if blocked
  /// past `stall_after` (the paper's large-timeout stall detection).
  void append(int event, std::chrono::milliseconds stall_after);

  /// Grows/shrinks the buffer.  Seeded bug: no notification.
  void set_buffer_size(int new_size);

  /// Marks the appender closed and wakes everyone.
  void close();

  /// One dispatcher pass: waits for an item (or close), pops one event,
  /// and issues the (buggy, threshold-based) space notification.
  /// Returns false when closed and drained.
  bool dispatch_one();

  [[nodiscard]] std::vector<int> dispatched() const;

  /// Inserts the Methodology-II breakpoint pair: before the lock
  /// acquisition at `first` and at `second`, resolving the contention so
  /// the `first` site's thread proceeds first.  Pass the same site pair
  /// with swapped arguments to test the opposite resolution order.
  void arm_contention_pair(Site first, Site second);

  /// Identity of the buffer lock (the contended object).
  [[nodiscard]] const void* lock_id() const { return &mu_; }

 private:
  /// Runs the armed breakpoint side for `site` (no-op if not armed).
  void trigger_if_armed(Site site);

  mutable instr::TrackedMutex mu_{"AsyncAppender.buffer"};
  instr::TrackedCondVar cv_;
  std::deque<int> queue_;        // guarded by mu_
  int buffer_size_;              // guarded by mu_
  bool closed_ = false;          // guarded by mu_
  std::vector<int> dispatched_;  // guarded by mu_

  bool armed_ = false;
  Site first_site_{};
  Site second_site_{};
};

/// Options for one Methodology-II experiment run.
struct MethodologyIIOptions {
  bool breakpoints = true;
  Site first = Site::kSetBufferSize;
  Site second = Site::kDispatch;
  std::chrono::milliseconds pause{100};
  std::chrono::milliseconds stall_after{1500};
  std::uint64_t seed = 1;
  int events = 6;
  int initial_buffer = 2;
  int grown_buffer = 10;
  /// Natural scheduling jitter (scaled): the config thread fires
  /// set_buffer_size at a random offset, and the dispatcher dawdles a
  /// little before each pass — this produces the paper's ~5% natural
  /// stall rate without any breakpoint.
  std::chrono::microseconds jitter{400};
  /// Pacing between appends (events arrive at some rate, they are not
  /// an instantaneous burst).  Must exceed the engine's order delay so
  /// a breakpoint-ordered "dispatch before grow" resolution leaves the
  /// appender unblocked when the grow lands.
  std::chrono::milliseconds append_gap{15};
};

struct MethodologyIIOutcome {
  bool stalled = false;
  bool breakpoint_hit = false;
  double runtime_seconds = 0.0;
};

/// One full run of the §5 workload: an appender thread pushing events, a
/// config thread growing the buffer at a random time, a dispatcher
/// draining, and a final close.
MethodologyIIOutcome run_methodology2(const MethodologyIIOptions& options);

/// The breakpoint name used by arm_contention_pair.
inline constexpr const char* kContentionBreakpoint = "log4j-contention";

/// Table 1 row "log4j missed-notify1": the same workload with the
/// (236, 309) breakpoint; stall expected with probability ~1.
RunOutcome run_missed_notify1(const RunOptions& options);

}  // namespace cbp::apps::logging
