#include "apps/logging/loggers.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"

namespace cbp::apps::logging {
namespace {

void configure(const RunOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
}

/// Two threads running the two crossed paths; kStall when either leg
/// declares the deadlock conditions met.
template <class Leg1, class Leg2>
RunOutcome run_two_legs(Leg1 leg1, Leg2 leg2) {
  RunOutcome outcome;
  rt::Stopwatch clock;
  std::atomic<bool> stalled{false};
  rt::StartGate gate;
  rt::Thread t1([&] {
    gate.wait();
    try {
      leg1();
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  rt::Thread t2([&] {
    gate.wait();
    try {
      leg2();
    } catch (const rt::StallError&) {
      stalled = true;
    }
  });
  gate.open();
  t1.join();
  t2.join();
  outcome.runtime_seconds = clock.elapsed_seconds();
  if (stalled.load()) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "deadlock conditions met";
  }
  return outcome;
}

}  // namespace

// ---------------------------------------------------------------------------
// Log4jHierarchy
// ---------------------------------------------------------------------------

void Log4jHierarchy::log(int event, std::chrono::milliseconds stall_after) {
  instr::TrackedLock category(category_mu_);
  if (deadlock_armed_) {
    DeadlockTrigger trigger(kLog4jDeadlock1, &category_mu_, &appender_mu_);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  appender_mu_.lock_or_stall(stall_after);
  sink_ += event;
  appender_mu_.unlock();
}

void Log4jHierarchy::close_appender(std::chrono::milliseconds stall_after) {
  instr::TrackedLock appender(appender_mu_);
  if (deadlock_armed_) {
    DeadlockTrigger trigger(kLog4jDeadlock1, &appender_mu_, &category_mu_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  category_mu_.lock_or_stall(stall_after);
  sink_ = 0;
  category_mu_.unlock();
}

void Log4jHierarchy::count_event(bool armed) {
  busy_work(40000);  // message formatting work of the original
  const std::int64_t value = event_count_.read();
  if (armed) {
    ConflictTrigger trigger(kLog4jRace2, event_count_.address());
    trigger.trigger_here(/*is_first_action=*/true);
  }
  event_count_.write(value + 1);
}

// ---------------------------------------------------------------------------
// JulManager
// ---------------------------------------------------------------------------

void JulManager::add_handler(std::chrono::milliseconds stall_after) {
  instr::TrackedLock logger(logger_mu_);
  if (deadlock_armed_) {
    DeadlockTrigger trigger(kJulDeadlock1, &logger_mu_, &manager_mu_);
    trigger.trigger_here(/*is_first_action=*/true);
  }
  manager_mu_.lock_or_stall(stall_after);
  ++handlers_;
  manager_mu_.unlock();
}

void JulManager::read_configuration(std::chrono::milliseconds stall_after) {
  instr::TrackedLock manager(manager_mu_);
  if (deadlock_armed_) {
    DeadlockTrigger trigger(kJulDeadlock1, &manager_mu_, &logger_mu_);
    trigger.trigger_here(/*is_first_action=*/false);
  }
  logger_mu_.lock_or_stall(stall_after);
  handlers_ = 0;
  logger_mu_.unlock();
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

RunOutcome run_log4j_deadlock1(const RunOptions& options) {
  configure(options);
  Log4jHierarchy hierarchy;
  hierarchy.arm_deadlock(true);
  return run_two_legs(
      [&] { hierarchy.log(1, options.stall_after); },
      [&] { hierarchy.close_appender(options.stall_after); });
}

RunOutcome run_log4j_race2(const RunOptions& options) {
  configure(options);
  RunOutcome outcome;
  rt::Stopwatch clock;

  Log4jHierarchy hierarchy;
  const int ops = std::max(4, static_cast<int>(16 * options.work_scale));
  rt::StartGate gate;
  auto worker = [&] {
    gate.wait();
    for (int i = 0; i < ops; ++i) hierarchy.count_event(true);
  };
  rt::Thread a(worker), b(worker);
  gate.open();
  a.join();
  b.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  if (hierarchy.events_counted() < 2 * ops) {
    outcome.artifact = rt::Artifact::kRaceObserved;
    outcome.detail =
        "event counter lost " +
        std::to_string(2 * ops - hierarchy.events_counted()) + " updates";
  }
  return outcome;
}

RunOutcome run_jul_deadlock1(const RunOptions& options) {
  configure(options);
  JulManager manager;
  manager.arm_deadlock(true);
  return run_two_legs(
      [&] { manager.add_handler(options.stall_after); },
      [&] { manager.read_configuration(options.stall_after); });
}

}  // namespace cbp::apps::logging
