#include "apps/logging/async_appender.h"

#include <atomic>
#include <thread>

#include "core/cbp.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/latch.h"
#include "runtime/vclock.h"
#include "runtime/rng.h"

namespace cbp::apps::logging {

void AsyncAppender::trigger_if_armed(Site site) {
  if (!armed_ || (site != first_site_ && site != second_site_)) return;
  ConflictTrigger trigger(kContentionBreakpoint, &mu_);
  trigger.trigger_here(/*is_first_action=*/site == first_site_);
}

void AsyncAppender::append(int event, std::chrono::milliseconds stall_after) {
  trigger_if_armed(Site::kAppend);
  instr::TrackedLock lock(mu_);
  // The Java idiom: while(full) wait().  The wait is purely
  // notification-driven, so a grow that forgets to notify leaves this
  // thread blocked even though space now exists — the seeded stall.
  while (static_cast<int>(queue_.size()) >= buffer_size_ && !closed_) {
    cv_.wait_notified_or_stall(mu_, stall_after);
  }
  if (closed_) return;
  queue_.push_back(event);
  cv_.notify_all();
}

void AsyncAppender::set_buffer_size(int new_size) {
  trigger_if_armed(Site::kSetBufferSize);
  instr::TrackedLock lock(mu_);
  buffer_size_ = new_size;
  // SEEDED BUG (the log4j defect class): growing the buffer creates
  // space, but nobody blocked on "buffer full" is notified.
}

void AsyncAppender::close() {
  trigger_if_armed(Site::kClose);
  instr::TrackedLock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool AsyncAppender::dispatch_one() {
  trigger_if_armed(Site::kDispatch);
  instr::TrackedLock lock(mu_);
  cv_.wait(mu_, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // closed and drained
  dispatched_.push_back(queue_.front());
  queue_.pop_front();
  // SEEDED BUG: the space notification threshold is computed from the
  // CURRENT buffer size; after a concurrent grow it never fires.
  if (static_cast<int>(queue_.size()) == buffer_size_ - 1) {
    cv_.notify_all();
  }
  return true;
}

std::vector<int> AsyncAppender::dispatched() const {
  instr::TrackedLock lock(mu_);
  return dispatched_;
}

void AsyncAppender::arm_contention_pair(Site first, Site second) {
  armed_ = true;
  first_site_ = first;
  second_site_ = second;
}

MethodologyIIOutcome run_methodology2(const MethodologyIIOptions& options) {
  Config::set_enabled(options.breakpoints);
  Config::set_default_timeout(options.pause);
  auto& engine = Engine::current();
  const std::uint64_t hits_before =
      engine.stats(kContentionBreakpoint).hits;

  MethodologyIIOutcome outcome;
  rt::Stopwatch clock;
  rt::Rng rng(options.seed);

  AsyncAppender appender(options.initial_buffer);
  if (options.breakpoints) {
    appender.arm_contention_pair(options.first, options.second);
  }

  std::atomic<bool> stalled{false};
  std::atomic<bool> appender_done{false};
  rt::StartGate gate;

  rt::Thread appender_thread([&] {
    gate.wait();
    try {
      for (int i = 0; i < options.events; ++i) {
        appender.append(i, options.stall_after);
        rt::clock_sleep_for(options.append_gap);
      }
    } catch (const rt::StallError&) {
      stalled = true;
    }
    appender_done = true;
  });

  rt::Rng config_rng = rng.split();
  rt::Thread config_thread([&] {
    gate.wait();
    // Let the pipeline reach its steady state (buffer full, appender
    // blocked) before reconfiguring, then add random jitter — the grow
    // fires "mid-workload" like the original bug reports describe.
    // The jitter draw is on the nominal window and the whole delay goes
    // through the clock policy: the old code mixed scaled components
    // into a raw sleep_for, which both bypassed a virtual clock and
    // made the RNG stream depend on the time scale.
    const auto max_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(options.jitter)
            .count();
    auto delay = std::chrono::duration_cast<rt::Duration>(options.pause) / 2;
    if (max_ns > 0) {
      delay += std::chrono::nanoseconds(
          config_rng.next_below(static_cast<std::uint64_t>(max_ns) + 1));
    }
    rt::clock_sleep_for(delay);
    appender.set_buffer_size(options.grown_buffer);
  });

  rt::Rng dispatch_rng = rng.split();
  rt::Thread dispatcher([&] {
    gate.wait();
    for (;;) {
      // A little natural dawdle before each pass widens the window in
      // which set_buffer_size can sneak in (the ~5% natural stall).
      // Nominal draw, clock-policy sleep — see the config thread above.
      const auto max_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(options.jitter)
              .count() /
          4;
      if (max_ns > 0) {
        rt::clock_sleep_for(std::chrono::nanoseconds(
            dispatch_rng.next_below(static_cast<std::uint64_t>(max_ns) +
                                    1)));
      }
      if (!appender.dispatch_one()) break;
      if (stalled.load()) break;  // appender gave up: drain is pointless
    }
  });

  gate.open();
  appender_thread.join();
  config_thread.join();
  appender.close();  // wakes the dispatcher out of its item wait
  dispatcher.join();

  outcome.runtime_seconds = clock.elapsed_seconds();
  outcome.stalled = stalled.load();
  outcome.breakpoint_hit =
      engine.stats(kContentionBreakpoint).hits > hits_before;
  return outcome;
}

RunOutcome run_missed_notify1(const RunOptions& options) {
  MethodologyIIOptions m2;
  m2.breakpoints = options.breakpoints;
  m2.first = options.order_forward ? Site::kSetBufferSize : Site::kDispatch;
  m2.second = options.order_forward ? Site::kDispatch : Site::kSetBufferSize;
  m2.pause = options.pause;
  m2.stall_after = options.stall_after;
  m2.seed = options.seed;
  const MethodologyIIOutcome result = run_methodology2(m2);
  RunOutcome outcome;
  outcome.runtime_seconds = result.runtime_seconds;
  if (result.stalled) {
    outcome.artifact = rt::Artifact::kStall;
    outcome.detail = "missed notification: appender stranded on full buffer";
  }
  return outcome;
}

}  // namespace cbp::apps::logging
