// Replicas of the remaining logging bugs of Table 1:
//   * log4j deadlock1 — Category.callAppenders (category -> appender
//     lock order) vs AsyncAppender.close (appender -> category): a
//     classic crossed-lock deadlock.
//   * log4j race2 — an unsynchronized "events logged" counter.
//   * java.util.logging deadlock1 — Logger.addHandler (logger ->
//     manager) vs LogManager.readConfiguration (manager -> logger).
#pragma once

#include "apps/replica.h"
#include "instrument/shared_var.h"
#include "instrument/tracked_mutex.h"

namespace cbp::apps::logging {

/// Minimal log4j category/appender pair with the crossed-lock seed.
class Log4jHierarchy {
 public:
  /// Locks category, then appender (Category.callAppenders).
  void log(int event, std::chrono::milliseconds stall_after);

  /// Locks appender, then category (AsyncAppender.close removing itself
  /// from its category).
  void close_appender(std::chrono::milliseconds stall_after);

  /// Unsynchronized statistics update (race2 seed).
  void count_event(bool armed);

  [[nodiscard]] std::int64_t events_counted() const {
    return event_count_.peek();
  }

  void arm_deadlock(bool on) { deadlock_armed_ = on; }

 private:
  instr::TrackedMutex category_mu_{"Category"};
  instr::TrackedMutex appender_mu_{"Appender"};
  instr::SharedVar<std::int64_t> event_count_{0};
  int sink_ = 0;  // guarded by both locks in the respective paths
  bool deadlock_armed_ = false;
};

/// Minimal java.util.logging manager/logger pair with the crossed seed.
class JulManager {
 public:
  /// Locks logger, then manager (Logger.addHandler).
  void add_handler(std::chrono::milliseconds stall_after);

  /// Locks manager, then logger (LogManager.readConfiguration).
  void read_configuration(std::chrono::milliseconds stall_after);

  void arm_deadlock(bool on) { deadlock_armed_ = on; }

 private:
  instr::TrackedMutex logger_mu_{"Logger"};
  instr::TrackedMutex manager_mu_{"LogManager"};
  int handlers_ = 0;  // guarded by both locks
  bool deadlock_armed_ = false;
};

RunOutcome run_log4j_deadlock1(const RunOptions& options);
RunOutcome run_log4j_race2(const RunOptions& options);
RunOutcome run_jul_deadlock1(const RunOptions& options);

inline constexpr const char* kLog4jDeadlock1 = "log4j-deadlock1";
inline constexpr const char* kLog4jRace2 = "log4j-race2";
inline constexpr const char* kJulDeadlock1 = "jul-deadlock1";

}  // namespace cbp::apps::logging
