#include "core/spec.h"

#include <sstream>
#include <stdexcept>

#include "core/engine.h"

namespace cbp {
namespace {

std::uint64_t parse_number(const std::string& token, const std::string& key) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return static_cast<std::uint64_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("breakpoint spec: bad number for '" + key +
                                "': '" + token + "'");
  }
}

}  // namespace

BreakpointSpec BreakpointSpec::parse(const std::string& text) {
  BreakpointSpec spec;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream tokens(line);
    std::string name;
    if (!(tokens >> name)) continue;  // blank line
    SpecOverride entry;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      const std::string key = token.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? std::string() : token.substr(eq + 1);
      if (key == "off") {
        entry.disabled = true;
      } else if (key == "flip") {
        entry.flip_order = true;
      } else if (key == "pause") {
        entry.pause =
            std::chrono::milliseconds(parse_number(value, "pause"));
      } else if (key == "ignore_first") {
        entry.ignore_first = parse_number(value, "ignore_first");
      } else if (key == "bound") {
        entry.bound = parse_number(value, "bound");
      } else if (key == "confirmed") {
        entry.confirmed = true;
      } else if (key == "predicted") {
        try {
          std::size_t consumed = 0;
          const double p = std::stod(value, &consumed);
          if (consumed != value.size() || p < 0.0 || p > 1.0) {
            throw std::invalid_argument(value);
          }
          entry.predicted = p;
        } catch (const std::exception&) {
          throw std::invalid_argument(
              "breakpoint spec: bad value for 'predicted': '" + value +
              "' (expected a probability in [0, 1])");
        }
      } else if (key == "scope") {
        if (value == "local") {
          entry.scope = SpecScope::kLocal;
        } else if (value == "process-group") {
          entry.scope = SpecScope::kProcessGroup;
        } else {
          throw std::invalid_argument(
              "breakpoint spec: bad value for 'scope': '" + value +
              "' (expected local|process-group)");
        }
      } else if (key == "pattern") {
        // The value is one whitespace-free token (the pattern grammar
        // never needs spaces; the compiler strips them anyway).
        try {
          entry.pattern =
              std::make_shared<const PatternSpec>(PatternSpec::parse(value));
        } catch (const std::invalid_argument& err) {
          throw std::invalid_argument("breakpoint spec: bad pattern for '" +
                                      name + "': " + err.what());
        }
      } else if (key == "from") {
        if (value == "static") {
          entry.from = SpecOrigin::kStatic;
        } else if (value == "dynamic") {
          entry.from = SpecOrigin::kDynamic;
        } else {
          throw std::invalid_argument(
              "breakpoint spec: bad value for 'from': '" + value +
              "' (expected static|dynamic)");
        }
      } else {
        throw std::invalid_argument("breakpoint spec: unknown key '" + key +
                                    "' for breakpoint '" + name + "'");
      }
    }
    if (entry.pattern != nullptr) {
      // Incompatible refinements fail loudly at parse time instead of
      // being silently ignored at trigger time.
      if (entry.flip_order) {
        throw std::invalid_argument(
            "breakpoint spec: 'flip' is undefined for pattern breakpoints "
            "(breakpoint '" +
            name + "'): event order is the pattern itself");
      }
      if (entry.scope == SpecScope::kProcessGroup) {
        throw std::invalid_argument(
            "breakpoint spec: pattern breakpoints are local-scope only for "
            "now (breakpoint '" +
            name + "'): the trigger broker speaks rendezvous, not patterns");
      }
    }
    if (!spec.entries_.emplace(name, std::move(entry)).second) {
      throw std::invalid_argument(
          "breakpoint spec: duplicate breakpoint '" + name + "' at line " +
          std::to_string(line_no) +
          " (each name may be configured only once)");
    }
  }
  return spec;
}

const SpecOverride* BreakpointSpec::find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

void BreakpointSpec::install() const {
  Engine::instance().set_spec(entries_);
}

void BreakpointSpec::clear_installed() { Engine::instance().set_spec({}); }

}  // namespace cbp
