#include "core/pattern.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <deque>
#include <stdexcept>

#include "core/btrigger.h"
#include "runtime/vclock.h"

namespace cbp {

// ---------------------------------------------------------------------------
// PatternSpec: parser / compiler
// ---------------------------------------------------------------------------

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

}  // namespace

/// Recursive-descent compiler over the whitespace-stripped pattern text.
/// Builds a Thompson NFA fragment per production; every fragment has one
/// start and one end state, so composition is pure epsilon plumbing.
struct PatternCompiler {
  explicit PatternCompiler(const std::string& raw) {
    text.reserve(raw.size());
    for (char c : raw) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) text.push_back(c);
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("pattern '" + text + "': " + why +
                                " (at offset " + std::to_string(pos) + ")");
  }

  [[nodiscard]] char peek() const { return pos < text.size() ? text[pos] : 0; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  int new_state() {
    if (states.size() >= PatternSpec::kMaxStates) {
      fail("too many states (limit " +
           std::to_string(PatternSpec::kMaxStates) + ")");
    }
    states.emplace_back();
    return static_cast<int>(states.size() - 1);
  }

  int intern(std::vector<std::string>& table, const std::string& name,
             std::size_t limit, const char* what) {
    auto it = std::find(table.begin(), table.end(), name);
    if (it != table.end()) return static_cast<int>(it - table.begin());
    if (table.size() >= limit) {
      fail(std::string("too many ") + what + " (limit " +
           std::to_string(limit) + ")");
    }
    table.push_back(name);
    return static_cast<int>(table.size() - 1);
  }

  std::string ident() {
    const std::size_t begin = pos;
    while (is_ident_char(peek())) ++pos;
    if (pos == begin) fail("expected an identifier");
    return text.substr(begin, pos - begin);
  }

  /// A site label: an identifier optionally followed by a parenthesized
  /// subject that is part of the label (`acq(A)`), so grouping parens
  /// are only recognized where a label cannot start.
  std::string label() {
    std::string out = ident();
    if (peek() == '(') {
      const std::size_t close = text.find(')', pos);
      if (close == std::string::npos) fail("unterminated '(' in site label");
      out += text.substr(pos, close - pos + 1);
      pos = close + 1;
    }
    return out;
  }

  struct Frag {
    int start = 0;
    int end = 0;
  };

  Frag parse_event() {
    const std::string site = label();
    int var = -1;
    if (eat(':')) {
      var = intern(vars, ident(), PatternSpec::kMaxVars, "thread variables");
    }
    const int sym =
        intern(sites, site, PatternSpec::kMaxSites, "distinct sites");
    Frag f{new_state(), new_state()};
    states[static_cast<std::size_t>(f.start)].out.push_back({sym, var, f.end});
    return f;
  }

  Frag parse_atom() {
    if (eat('(')) {
      Frag inner = parse_alt();
      if (!eat(')')) fail("expected ')'");
      return inner;
    }
    return parse_event();
  }

  Frag parse_term() {
    Frag a = parse_atom();
    if (!eat('*')) return a;
    Frag f{new_state(), new_state()};
    auto eps = [&](int from, int to) {
      states[static_cast<std::size_t>(from)].eps.push_back(to);
    };
    eps(f.start, a.start);
    eps(f.start, f.end);
    eps(a.end, a.start);
    eps(a.end, f.end);
    return f;
  }

  Frag parse_seq() {
    Frag first = parse_term();
    while (pos < text.size() && peek() != '|' && peek() != ')') {
      if (!eat('.')) fail("expected '.', '|' or end of pattern");
      Frag next = parse_term();
      states[static_cast<std::size_t>(first.end)].eps.push_back(next.start);
      first.end = next.end;
    }
    return first;
  }

  Frag parse_alt() {
    Frag first = parse_seq();
    if (peek() != '|') return first;
    Frag f{new_state(), new_state()};
    auto eps = [&](int from, int to) {
      states[static_cast<std::size_t>(from)].eps.push_back(to);
    };
    eps(f.start, first.start);
    eps(first.end, f.end);
    while (eat('|')) {
      Frag next = parse_seq();
      eps(f.start, next.start);
      eps(next.end, f.end);
    }
    return f;
  }

  std::string text;
  std::size_t pos = 0;
  std::vector<PatternSpec::State> states;
  std::vector<std::string> sites;
  std::vector<std::string> vars;
};

PatternSpec PatternSpec::parse(const std::string& text) {
  PatternCompiler compiler(text);
  if (compiler.text.empty()) {
    throw std::invalid_argument("pattern: empty pattern");
  }
  const PatternCompiler::Frag top = compiler.parse_alt();
  if (compiler.pos != compiler.text.size()) compiler.fail("trailing input");

  PatternSpec spec;
  spec.states_ = std::move(compiler.states);
  spec.sites_ = std::move(compiler.sites);
  spec.vars_ = std::move(compiler.vars);
  spec.start_ = top.start;
  spec.accept_ = top.end;
  spec.canonical_ = std::move(compiler.text);

  const std::size_t n = spec.states_.size();
  // Epsilon closures (DFS per state; n <= 64 keeps this trivial).
  for (std::size_t s = 0; s < n; ++s) {
    std::uint64_t seen = 1ull << s;
    std::vector<int> stack{static_cast<int>(s)};
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      for (int next : spec.states_[static_cast<std::size_t>(cur)].eps) {
        const std::uint64_t bit = 1ull << next;
        if ((seen & bit) == 0) {
          seen |= bit;
          stack.push_back(next);
        }
      }
    }
    spec.states_[s].closure = seen;
  }
  // Reachable variables / sites per state: fixed point over the full
  // transition relation (epsilon and symbol edges alike).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < n; ++s) {
      State& st = spec.states_[s];
      std::uint64_t vars = st.vars_reachable;
      std::uint64_t syms = st.syms_reachable;
      for (int e : st.eps) {
        vars |= spec.states_[static_cast<std::size_t>(e)].vars_reachable;
        syms |= spec.states_[static_cast<std::size_t>(e)].syms_reachable;
      }
      for (const Transition& t : st.out) {
        syms |= 1ull << t.sym;
        if (t.var >= 0) vars |= 1ull << t.var;
        vars |= spec.states_[static_cast<std::size_t>(t.to)].vars_reachable;
        syms |= spec.states_[static_cast<std::size_t>(t.to)].syms_reachable;
      }
      if (vars != st.vars_reachable || syms != st.syms_reachable) {
        st.vars_reachable = vars;
        st.syms_reachable = syms;
        changed = true;
      }
    }
  }
  // Shortest accepted word (0-1 BFS: epsilon edges cost 0, events 1).
  std::vector<std::size_t> dist(n, SIZE_MAX);
  std::deque<int> queue;
  dist[static_cast<std::size_t>(spec.start_)] = 0;
  queue.push_back(spec.start_);
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    const std::size_t d = dist[static_cast<std::size_t>(cur)];
    const State& st = spec.states_[static_cast<std::size_t>(cur)];
    for (int e : st.eps) {
      if (d < dist[static_cast<std::size_t>(e)]) {
        dist[static_cast<std::size_t>(e)] = d;
        queue.push_front(e);
      }
    }
    for (const Transition& t : st.out) {
      if (d + 1 < dist[static_cast<std::size_t>(t.to)]) {
        dist[static_cast<std::size_t>(t.to)] = d + 1;
        queue.push_back(t.to);
      }
    }
  }
  spec.min_length_ = dist[static_cast<std::size_t>(spec.accept_)];
  if (spec.min_length_ < 2) {
    throw std::invalid_argument(
        "pattern '" + spec.canonical_ +
        "': a pattern breakpoint needs at least 2 events "
        "(use a plain breakpoint for single sites)");
  }
  return spec;
}

int PatternSpec::site_index(std::string_view label) const {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == label) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// PatternMatcher: run machinery
// ---------------------------------------------------------------------------

PatternMatcher::PatternMatcher(std::shared_ptr<const PatternSpec> spec,
                               std::uint32_t name_id)
    : spec_(std::move(spec)), name_id_(name_id) {
  assert(spec_ != nullptr);
}

bool PatternMatcher::plan_advance(const Run& run, int site, rt::ThreadId tid,
                                  AdvancePlan& plan) const {
  // The thread's existing variable, if an earlier event bound one.
  int tid_var = -1;
  for (std::size_t v = 0; v < run.bind.size(); ++v) {
    if ((run.bound_mask >> v) & 1u) {
      if (run.bind[v] == tid) {
        tid_var = static_cast<int>(v);
        break;
      }
    }
  }
  std::uint64_t next_none = 0;  // transitions needing no new binding
  std::uint64_t next_bind[PatternSpec::kMaxVars] = {};
  std::uint64_t set = run.set;
  while (set != 0) {
    const int s = __builtin_ctzll(set);
    set &= set - 1;
    for (const PatternSpec::Transition& t :
         spec_->states_[static_cast<std::size_t>(s)].out) {
      if (t.sym != site) continue;
      const std::uint64_t target =
          spec_->states_[static_cast<std::size_t>(t.to)].closure;
      if (t.var < 0) {
        next_none |= target;  // unbound site: any thread
      } else if ((run.bound_mask >> t.var) & 1u) {
        // Variable already bound: only its thread may take this edge.
        if (run.bind[static_cast<std::size_t>(t.var)] == tid) {
          next_none |= target;
        }
      } else if (tid_var == -1) {
        // Fresh binding — but distinct vars mean distinct threads, so a
        // thread already bound to another variable cannot take it.
        next_bind[t.var] |= target;
      }
    }
  }
  if (next_none != 0) {
    // Greedy: consistent-binding transitions win over new bindings.
    plan.new_set = next_none;
    plan.bind_var = -1;
    plan.thread_var = tid_var;
    return true;
  }
  for (std::size_t v = 0; v < PatternSpec::kMaxVars; ++v) {
    if (next_bind[v] != 0) {
      plan.new_set = next_bind[v];
      plan.bind_var = static_cast<int>(v);
      plan.thread_var = static_cast<int>(v);
      return true;
    }
  }
  return false;
}

void PatternMatcher::apply_advance(Run& run, rt::ThreadId tid,
                                   const AdvancePlan& plan, int site,
                                   Outcome& out) {
  run.set = plan.new_set;
  if (plan.bind_var >= 0) {
    if (run.bind.size() <= static_cast<std::size_t>(plan.bind_var)) {
      run.bind.resize(static_cast<std::size_t>(plan.bind_var) + 1, 0);
    }
    run.bind[static_cast<std::size_t>(plan.bind_var)] = tid;
    run.bound_mask |= 1ull << plan.bind_var;
  }
  run.progress += 1;
  out.advances.push_back({site, tid, run.progress});
}

bool PatternMatcher::parks_after(int thread_var, std::uint64_t set) const {
  if (thread_var < 0) return true;  // anonymous thread: always park
  std::uint64_t ahead = 0;
  while (set != 0) {
    const int s = __builtin_ctzll(set);
    set &= set - 1;
    ahead |= spec_->states_[static_cast<std::size_t>(s)].vars_reachable;
  }
  return ((ahead >> thread_var) & 1u) == 0;
}

void PatternMatcher::cascade(Run& run, Outcome& out) {
  bool again = true;
  while (again && !accepted(run.set)) {
    again = false;
    for (auto it = run.pending.begin(); it != run.pending.end(); ++it) {
      internal::Waiter* w = *it;
      AdvancePlan plan;
      if (!plan_advance(run, w->site, w->tid, plan)) continue;
      run.pending.erase(it);
      apply_advance(run, w->tid, plan, w->site, out);
      if (accepted(run.set) || parks_after(plan.thread_var, run.set)) {
        // Stays parked: a participant, ranked by consumption order.
        run.participants.push_back(w);
      } else {
        // The pattern still needs this thread at a later site — wake it
        // so it can get there.
        w->resumed = true;
        out.resumed.push_back(w);
      }
      again = true;
      break;  // pending list changed; rescan from the front
    }
  }
}

void PatternMatcher::build_hit(Run& run, std::size_t caller_pos,
                               rt::ThreadId tid, bool scoped, BTrigger& bt,
                               Outcome& out) {
  // Pending events the pattern completed without: wake them, no hit.
  for (internal::Waiter* w : run.pending) {
    w->resumed = true;
    out.resumed.push_back(w);
  }
  run.pending.clear();

  const int arity = static_cast<int>(run.participants.size()) + 1;
  auto group = std::make_shared<internal::GroupState>(arity);
  group->name_id = name_id_;
  group->match_time = rt::clock_now();
  out.info.arity = arity;
  out.info.threads.assign(static_cast<std::size_t>(arity), 0);
  // Release ranks follow event-consumption order; the caller's event
  // was consumed at position `caller_pos`, so participants consumed
  // after it (the cascade) shift one rank down.
  const int caller_rank = static_cast<int>(caller_pos);
  for (std::size_t i = 0; i < run.participants.size(); ++i) {
    internal::Waiter* w = run.participants[i];
    const int r = i < caller_pos ? static_cast<int>(i)
                                 : static_cast<int>(i) + 1;
    w->matched = true;
    w->matched_rank = r;
    w->group = group;
    group->uses_guard[static_cast<std::size_t>(r)] = w->scoped ? 1 : 0;
    out.info.threads[static_cast<std::size_t>(r)] = w->tid;
    out.matched.push_back(w);
  }
  group->uses_guard[static_cast<std::size_t>(caller_rank)] = scoped ? 1 : 0;
  out.info.threads[static_cast<std::size_t>(caller_rank)] = tid;
  out.info.name = bt.name();
  out.info.description = bt.describe();
  out.kind = Outcome::Kind::kHit;
  out.group = std::move(group);
  out.rank = caller_rank;
  out.progress = run.progress;

  const std::uint64_t done = run.id;
  runs_.erase(std::find_if(runs_.begin(), runs_.end(),
                           [done](const Run& r) { return r.id == done; }));
}

PatternMatcher::Outcome PatternMatcher::on_event(int site, rt::ThreadId tid,
                                                 bool scoped, BTrigger& bt,
                                                 internal::Waiter* self) {
  Outcome out;
  Run* run = nullptr;
  AdvancePlan plan;

  // 1. Oldest run that can consume this event right now.
  for (Run& r : runs_) {
    if (plan_advance(r, site, tid, plan)) {
      run = &r;
      break;
    }
  }

  if (run == nullptr) {
    // 2. Park pending on the oldest run that could consume it later —
    // the k-site form of "postpone the first arrival".
    for (Run& r : runs_) {
      std::uint64_t syms = 0;
      std::uint64_t set = r.set;
      while (set != 0) {
        const int s = __builtin_ctzll(set);
        set &= set - 1;
        syms |= spec_->states_[static_cast<std::size_t>(s)].syms_reachable;
      }
      if (((syms >> site) & 1u) == 0) continue;
      if (r.pending.size() >= kMaxPending) continue;
      self->run = r.id;
      self->site = site;
      r.pending.push_back(self);
      out.kind = Outcome::Kind::kPark;
      out.run = r.id;
      out.progress = r.progress;
      return out;
    }
    // 3. Start a new run if the initial state enables this site.
    Run fresh;
    fresh.set = spec_->states_[static_cast<std::size_t>(spec_->start_)].closure;
    if (!plan_advance(fresh, site, tid, plan)) {
      return out;  // kNoMatch: strict pattern order, no pause wasted
    }
    if (runs_.size() >= kMaxRuns) {
      auto victim = std::find_if(runs_.begin(), runs_.end(), [](const Run& r) {
        return r.participants.empty() && r.pending.empty();
      });
      if (victim == runs_.end()) return out;  // every run holds a thread
      out.aborted.push_back(victim->progress);
      runs_.erase(victim);
    }
    fresh.id = next_run_id_++;
    runs_.push_back(std::move(fresh));
    run = &runs_.back();
  }

  const std::size_t caller_pos = run->participants.size();
  apply_advance(*run, tid, plan, site, out);
  const int caller_var = plan.thread_var;
  cascade(*run, out);

  if (accepted(run->set)) {
    build_hit(*run, caller_pos, tid, scoped, bt, out);
    return out;
  }
  if (parks_after(caller_var, run->set)) {
    self->run = run->id;
    self->site = site;
    run->participants.insert(
        run->participants.begin() + static_cast<std::ptrdiff_t>(caller_pos),
        self);
    out.kind = Outcome::Kind::kPark;
    out.run = run->id;
    out.progress = run->progress;
  } else {
    out.kind = Outcome::Kind::kRecorded;
    out.run = run->id;
    out.progress = run->progress;
  }
  return out;
}

PatternMatcher::DetachResult PatternMatcher::detach(std::uint64_t run,
                                                    internal::Waiter* waiter) {
  DetachResult result;
  const auto it = std::find_if(runs_.begin(), runs_.end(),
                               [run](const Run& r) { return r.id == run; });
  if (it == runs_.end()) return result;
  // Stale-id guard: a rebuilt matcher may have reused the id — only a
  // run that actually holds this waiter aborts.
  const bool mine =
      std::find(it->participants.begin(), it->participants.end(), waiter) !=
          it->participants.end() ||
      std::find(it->pending.begin(), it->pending.end(), waiter) !=
          it->pending.end();
  if (!mine) return result;
  result.aborted = true;
  result.progress = it->progress;
  for (internal::Waiter* w : it->participants) {
    if (w != waiter && !w->matched) result.orphans.push_back(w);
  }
  for (internal::Waiter* w : it->pending) {
    if (w != waiter) result.orphans.push_back(w);
  }
  runs_.erase(it);
  return result;
}

// ---------------------------------------------------------------------------
// The degenerate single-step pattern: classic rendezvous selection
// (moved verbatim from Engine::try_match) and the rank-order release
// protocol (moved verbatim from Engine::await_turn).
// ---------------------------------------------------------------------------

bool PatternMatcher::match_rendezvous(
    const std::vector<internal::Waiter*>& postponed, BTrigger& bt, int rank,
    int arity, bool scoped, rt::ThreadId my_tid, std::uint32_t name_id,
    std::shared_ptr<internal::GroupState>& group, int& out_rank, HitInfo& info,
    std::vector<internal::Waiter*>& chosen) {
  // Candidate waiters: same arity, different thread, not yet taken.
  // predicate_global is user code, but it must be evaluated while the
  // peer is quiescent in the Postponed set — the slot mutex is exactly
  // what guarantees that, so predicates are required to be pure and
  // non-blocking (documented in btrigger.h).
  if (arity == 2) {
    for (internal::Waiter* w : postponed) {
      if (w->matched || w->cancelled || w->arity != 2 || w->tid == my_tid) {
        continue;
      }
      if (!bt.predicate_global(*w->trigger)) continue;
      chosen.push_back(w);
      break;
    }
    if (chosen.empty()) return false;
    internal::Waiter* peer = chosen.front();
    // Effective ranks: declared if distinct; otherwise the postponed
    // (earlier) thread is ordered first.
    int peer_rank = peer->rank;
    int mine = rank;
    if (peer_rank == mine) {
      peer_rank = 0;
      mine = 1;
    }
    group = std::make_shared<internal::GroupState>(2);
    // Each rank's scoped-ness is fixed here, before any participant can
    // observe the group: the peer's comes from its Waiter record, ours
    // from the trigger call itself.  await_turn no longer writes it, so
    // a rank can never read a flag the owner hadn't published yet.
    group->uses_guard[static_cast<std::size_t>(peer_rank)] =
        peer->scoped ? 1 : 0;
    group->uses_guard[static_cast<std::size_t>(mine)] = scoped ? 1 : 0;
    peer->matched = true;
    peer->matched_rank = peer_rank;
    peer->group = group;
    out_rank = mine;
    info.arity = 2;
    info.threads.assign(2, 0);
    info.threads[static_cast<std::size_t>(peer_rank)] = peer->tid;
    info.threads[static_cast<std::size_t>(mine)] = my_tid;
  } else {
    // k-ary rendezvous: need one waiter per rank other than ours, all
    // from distinct threads, each compatible with the arriving trigger
    // and pairwise compatible with each other (greedy selection).
    std::vector<internal::Waiter*> by_rank(static_cast<std::size_t>(arity),
                                           nullptr);
    std::vector<rt::ThreadId> used_tids{my_tid};
    for (internal::Waiter* w : postponed) {
      if (w->matched || w->cancelled || w->arity != arity) continue;
      if (w->rank < 0 || w->rank >= arity || w->rank == rank) continue;
      if (by_rank[static_cast<std::size_t>(w->rank)] != nullptr) continue;
      if (std::find(used_tids.begin(), used_tids.end(), w->tid) !=
          used_tids.end()) {
        continue;
      }
      if (!bt.predicate_global(*w->trigger)) continue;
      bool pairwise_ok = true;
      for (internal::Waiter* other : by_rank) {
        if (other != nullptr &&
            !other->trigger->predicate_global(*w->trigger)) {
          pairwise_ok = false;
          break;
        }
      }
      if (!pairwise_ok) continue;
      by_rank[static_cast<std::size_t>(w->rank)] = w;
      used_tids.push_back(w->tid);
    }
    for (int r = 0; r < arity; ++r) {
      if (r != rank && by_rank[static_cast<std::size_t>(r)] == nullptr) {
        return false;
      }
    }
    group = std::make_shared<internal::GroupState>(arity);
    group->uses_guard[static_cast<std::size_t>(rank)] = scoped ? 1 : 0;
    info.arity = arity;
    info.threads.assign(static_cast<std::size_t>(arity), 0);
    info.threads[static_cast<std::size_t>(rank)] = my_tid;
    for (int r = 0; r < arity; ++r) {
      internal::Waiter* w = by_rank[static_cast<std::size_t>(r)];
      if (w == nullptr) continue;
      w->matched = true;
      w->matched_rank = r;
      w->group = group;
      group->uses_guard[static_cast<std::size_t>(r)] = w->scoped ? 1 : 0;
      chosen.push_back(w);
      info.threads[static_cast<std::size_t>(r)] = w->tid;
    }
    out_rank = rank;
  }

  group->name_id = name_id;
  group->match_time = rt::clock_now();
  info.name = bt.name();
  info.description = bt.describe();
  return true;
}

void PatternMatcher::await_turn(internal::GroupState& group, int rank,
                                bool scoped, rt::Duration order_delay,
                                rt::Duration guard_wait_cap) {
  const auto cap_deadline = rt::clock_now() + guard_wait_cap;

  std::unique_lock lock(group.mu);
  // uses_guard was fixed by the matcher before the group was published,
  // so each lower rank's protocol is known up front: a scoped rank is
  // waited on via its guard ack (which implies it released), a plain
  // rank via released[q] plus the order delay.  The old scheme — each
  // rank writing its own flag on entry — let a later rank read
  // uses_guard[q] == 0 for a scoped q that had released but not yet
  // been observed to be scoped, skipping the ack wait entirely.
  for (int q = 0; q < rank; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    if (group.uses_guard[qi]) {
      if (!rt::clock_wait_until(group.cv, lock, cap_deadline,
                                [&] { return group.acked[qi] != 0; })) {
        break;  // cap exceeded: degrade to proceeding (never hang)
      }
      continue;
    }
    if (!rt::clock_wait_until(group.cv, lock, cap_deadline,
                              [&] { return group.released[qi] != 0; })) {
      break;  // cap exceeded: degrade to proceeding (never hang)
    }
    const auto turn_at = group.release_time[qi] + order_delay;
    const auto deadline = std::min(turn_at, cap_deadline);
    // Plain bounded sleep: no event ends it early by design.
    rt::clock_wait_until(group.cv, lock, deadline, [] { return false; });
  }
  group.released[static_cast<std::size_t>(rank)] = 1;
  group.release_time[static_cast<std::size_t>(rank)] = rt::clock_now();
  if (!scoped) group.acked[static_cast<std::size_t>(rank)] = 1;
  lock.unlock();
  rt::clock_notify_all(group.cv);
}

}  // namespace cbp
