#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <iostream>

#include "core/config.h"

namespace cbp {

// ---------------------------------------------------------------------------
// OrderingGuard
// ---------------------------------------------------------------------------

OrderingGuard::OrderingGuard(std::shared_ptr<internal::GroupState> group,
                             int rank)
    : group_(std::move(group)), rank_(rank) {}

OrderingGuard::~OrderingGuard() { release(); }

OrderingGuard::OrderingGuard(OrderingGuard&& other) noexcept
    : group_(std::move(other.group_)), rank_(other.rank_) {
  other.group_.reset();
  other.rank_ = -1;
}

OrderingGuard& OrderingGuard::operator=(OrderingGuard&& other) noexcept {
  if (this != &other) {
    release();
    group_ = std::move(other.group_);
    rank_ = other.rank_;
    other.group_.reset();
    other.rank_ = -1;
  }
  return *this;
}

void OrderingGuard::release() {
  if (!group_) return;
  {
    std::scoped_lock lock(group_->mu);
    group_->acked[static_cast<std::size_t>(rank_)] = 1;
  }
  group_->cv.notify_all();
  group_.reset();
  rank_ = -1;
}

// ---------------------------------------------------------------------------
// BTrigger thin wrappers
// ---------------------------------------------------------------------------

bool BTrigger::trigger_here(bool is_first_action,
                            std::chrono::milliseconds timeout) {
  return Engine::instance()
      .trigger(*this, is_first_action ? 0 : 1, 2,
               std::chrono::duration_cast<std::chrono::microseconds>(timeout),
               /*scoped=*/false)
      .hit;
}

bool BTrigger::trigger_here(bool is_first_action) {
  return Engine::instance()
      .trigger(*this, is_first_action ? 0 : 1, 2, Config::default_timeout(),
               /*scoped=*/false)
      .hit;
}

TriggerResult BTrigger::trigger_here_scoped(bool is_first_action,
                                            std::chrono::milliseconds timeout) {
  return Engine::instance().trigger(
      *this, is_first_action ? 0 : 1, 2,
      std::chrono::duration_cast<std::chrono::microseconds>(timeout),
      /*scoped=*/true);
}

TriggerResult BTrigger::trigger_here_scoped(bool is_first_action) {
  return Engine::instance().trigger(*this, is_first_action ? 0 : 1, 2,
                                    Config::default_timeout(),
                                    /*scoped=*/true);
}

bool BTrigger::trigger_here_ranked(int rank, int arity,
                                   std::chrono::milliseconds timeout) {
  return Engine::instance()
      .trigger(*this, rank, arity,
               std::chrono::duration_cast<std::chrono::microseconds>(timeout),
               /*scoped=*/false)
      .hit;
}

TriggerResult BTrigger::trigger_here_ranked_scoped(
    int rank, int arity, std::chrono::milliseconds timeout) {
  return Engine::instance().trigger(
      *this, rank, arity,
      std::chrono::duration_cast<std::chrono::microseconds>(timeout),
      /*scoped=*/true);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine& Engine::instance() {
  static Engine engine;
  return engine;
}

std::shared_ptr<Engine::Slot> Engine::slot_for(const std::string& name) {
  std::scoped_lock lock(map_mu_);
  auto& slot = slots_[name];
  if (!slot) slot = std::make_shared<Slot>();
  return slot;
}

bool Engine::try_match(Slot& slot, BTrigger& bt, int rank, int arity,
                       bool scoped, std::shared_ptr<internal::GroupState>& group,
                       int& out_rank, HitInfo& info) {
  (void)scoped;
  const rt::ThreadId my_tid = rt::this_thread_id();

  // Candidate waiters: same arity, different thread, not yet taken.
  // predicate_global is user code, but it must be evaluated while the
  // peer is quiescent in the Postponed set — the slot mutex is exactly
  // what guarantees that, so predicates are required to be pure and
  // non-blocking (documented in btrigger.h).
  std::vector<Waiter*> chosen;  // one per needed rank
  if (arity == 2) {
    for (Waiter* w : slot.postponed) {
      if (w->matched || w->cancelled || w->arity != 2 || w->tid == my_tid) {
        continue;
      }
      if (!bt.predicate_global(*w->trigger)) continue;
      chosen.push_back(w);
      break;
    }
    if (chosen.empty()) return false;
    Waiter* peer = chosen.front();
    // Effective ranks: declared if distinct; otherwise the postponed
    // (earlier) thread is ordered first.
    int peer_rank = peer->rank;
    int mine = rank;
    if (peer_rank == mine) {
      peer_rank = 0;
      mine = 1;
    }
    group = std::make_shared<internal::GroupState>(2);
    peer->matched = true;
    peer->matched_rank = peer_rank;
    peer->group = group;
    out_rank = mine;
    info.arity = 2;
    info.threads.assign(2, 0);
    info.threads[static_cast<std::size_t>(peer_rank)] = peer->tid;
    info.threads[static_cast<std::size_t>(mine)] = my_tid;
  } else {
    // k-ary rendezvous: need one waiter per rank other than ours, all
    // from distinct threads, each compatible with the arriving trigger
    // and pairwise compatible with each other (greedy selection).
    std::vector<Waiter*> by_rank(static_cast<std::size_t>(arity), nullptr);
    std::vector<rt::ThreadId> used_tids{my_tid};
    for (Waiter* w : slot.postponed) {
      if (w->matched || w->cancelled || w->arity != arity) continue;
      if (w->rank < 0 || w->rank >= arity || w->rank == rank) continue;
      if (by_rank[static_cast<std::size_t>(w->rank)] != nullptr) continue;
      if (std::find(used_tids.begin(), used_tids.end(), w->tid) !=
          used_tids.end()) {
        continue;
      }
      if (!bt.predicate_global(*w->trigger)) continue;
      bool pairwise_ok = true;
      for (Waiter* other : by_rank) {
        if (other != nullptr &&
            !other->trigger->predicate_global(*w->trigger)) {
          pairwise_ok = false;
          break;
        }
      }
      if (!pairwise_ok) continue;
      by_rank[static_cast<std::size_t>(w->rank)] = w;
      used_tids.push_back(w->tid);
    }
    for (int r = 0; r < arity; ++r) {
      if (r != rank && by_rank[static_cast<std::size_t>(r)] == nullptr) {
        return false;
      }
    }
    group = std::make_shared<internal::GroupState>(arity);
    info.arity = arity;
    info.threads.assign(static_cast<std::size_t>(arity), 0);
    info.threads[static_cast<std::size_t>(rank)] = my_tid;
    for (int r = 0; r < arity; ++r) {
      Waiter* w = by_rank[static_cast<std::size_t>(r)];
      if (w == nullptr) continue;
      w->matched = true;
      w->matched_rank = r;
      w->group = group;
      chosen.push_back(w);
      info.threads[static_cast<std::size_t>(r)] = w->tid;
    }
    out_rank = rank;
  }

  slot.stats.hits += 1;
  info.name = bt.name();
  info.description = bt.describe();
  slot.cv.notify_all();
  return true;
}

void Engine::await_turn(internal::GroupState& group, int rank, bool scoped) {
  const auto order_delay = rt::TimeScale::apply(Config::order_delay());
  const auto cap_deadline =
      rt::Clock::now() + rt::TimeScale::apply(Config::guard_wait_cap());

  std::unique_lock lock(group.mu);
  group.uses_guard[static_cast<std::size_t>(rank)] = scoped ? 1 : 0;
  for (int q = 0; q < rank; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    if (!group.cv.wait_until(lock, cap_deadline,
                             [&] { return group.released[qi] != 0; })) {
      break;  // cap exceeded: degrade to proceeding (never hang)
    }
    if (group.uses_guard[qi]) {
      group.cv.wait_until(lock, cap_deadline,
                          [&] { return group.acked[qi] != 0; });
    } else {
      const auto turn_at = group.release_time[qi] + order_delay;
      const auto deadline = std::min(turn_at, cap_deadline);
      // Plain bounded sleep: no event ends it early by design.
      group.cv.wait_until(lock, deadline, [] { return false; });
    }
  }
  group.released[static_cast<std::size_t>(rank)] = 1;
  group.release_time[static_cast<std::size_t>(rank)] = rt::Clock::now();
  if (!scoped) group.acked[static_cast<std::size_t>(rank)] = 1;
  lock.unlock();
  group.cv.notify_all();
}

TriggerResult Engine::trigger(BTrigger& bt, int rank, int arity,
                              std::chrono::microseconds timeout, bool scoped) {
  assert(arity >= 2 && rank >= 0 && rank < arity);
  if (!Config::enabled()) return {};

  // Spec-file overrides (core/spec.h) compose over the programmatic
  // parameters: they let a shipped bug report be tuned or flipped
  // without recompiling.
  std::uint64_t ignore_first = bt.ignore_first_count();
  std::uint64_t bound = bt.bound_count();
  {
    std::scoped_lock lock(spec_mu_);
    auto it = spec_.find(bt.name());
    if (it != spec_.end()) {
      const SpecOverride& entry = it->second;
      if (entry.disabled) return {};
      if (entry.pause) {
        timeout = std::chrono::duration_cast<std::chrono::microseconds>(
            *entry.pause);
      }
      if (entry.flip_order && arity == 2) rank = 1 - rank;
      if (entry.ignore_first) ignore_first = *entry.ignore_first;
      if (entry.bound) bound = *entry.bound;
    }
  }

  std::shared_ptr<Slot> slot = slot_for(bt.name());

  // User code: evaluate outside the slot lock (it may be arbitrarily
  // expensive, though it must not block).
  const bool local_ok = bt.predicate_local();

  std::shared_ptr<internal::GroupState> group;
  int my_rank = rank;
  HitInfo info;
  bool fire_observer = false;

  {
    std::unique_lock lock(slot->mu);
    slot->stats.calls += 1;
    if (!local_ok) {
      slot->stats.local_rejects += 1;
      return {};
    }
    slot->stats.arrivals += 1;
    if (slot->stats.hits >= bound) {
      slot->stats.bounded += 1;
      return {};
    }

    if (try_match(*slot, bt, rank, arity, scoped, group, my_rank, info)) {
      fire_observer = true;  // last-arriving participant reports the hit
    } else if (slot->stats.arrivals <= ignore_first) {
      slot->stats.ignored += 1;
      return {};
    } else {
      Waiter waiter;
      waiter.trigger = &bt;
      waiter.tid = rt::this_thread_id();
      waiter.rank = rank;
      waiter.arity = arity;
      waiter.scoped = scoped;
      slot->postponed.push_back(&waiter);
      slot->stats.postponed += 1;

      const auto scaled = rt::TimeScale::apply(timeout);
      rt::Stopwatch wait_clock;
      slot->cv.wait_for(lock, scaled,
                        [&] { return waiter.matched || waiter.cancelled; });
      slot->stats.total_wait_us += wait_clock.elapsed_us();

      auto it =
          std::find(slot->postponed.begin(), slot->postponed.end(), &waiter);
      if (it != slot->postponed.end()) slot->postponed.erase(it);

      if (!waiter.matched) {
        if (waiter.cancelled) {
          slot->stats.cancelled += 1;
        } else {
          slot->stats.timeouts += 1;
        }
        return {};
      }
      group = waiter.group;
      my_rank = waiter.matched_rank;
    }
    slot->stats.participants += 1;
  }

  if (fire_observer) {
    std::function<void(const HitInfo&)> observer;
    bool verbose = false;
    {
      std::scoped_lock lock(observer_mu_);
      observer = observer_;
      verbose = verbose_;
    }
    if (verbose) {
      std::cerr << "[cbp] hit: " << info.description << " (breakpoint '"
                << info.name << "')\n";
    }
    if (observer) observer(info);
  }

  await_turn(*group, my_rank, scoped);

  TriggerResult result;
  result.hit = true;
  if (scoped) result.guard = OrderingGuard(group, my_rank);
  return result;
}

BreakpointStats Engine::stats(const std::string& name) const {
  std::shared_ptr<Slot> slot;
  {
    std::scoped_lock lock(map_mu_);
    auto it = slots_.find(name);
    if (it == slots_.end()) return {};
    slot = it->second;
  }
  std::scoped_lock lock(slot->mu);
  return slot->stats;
}

BreakpointStats Engine::total_stats() const {
  BreakpointStats total;
  std::vector<std::shared_ptr<Slot>> snapshot;
  {
    std::scoped_lock lock(map_mu_);
    snapshot.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) snapshot.push_back(slot);
  }
  for (const auto& slot : snapshot) {
    std::scoped_lock lock(slot->mu);
    total += slot->stats;
  }
  return total;
}

std::vector<std::string> Engine::names() const {
  std::scoped_lock lock(map_mu_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void Engine::cancel_all() {
  std::vector<std::shared_ptr<Slot>> snapshot;
  {
    std::scoped_lock lock(map_mu_);
    snapshot.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) snapshot.push_back(slot);
  }
  for (const auto& slot : snapshot) {
    {
      std::scoped_lock lock(slot->mu);
      for (Waiter* w : slot->postponed) w->cancelled = true;
    }
    slot->cv.notify_all();
  }
}

void Engine::reset() {
  cancel_all();
  std::scoped_lock lock(map_mu_);
  // Waiting threads (if any) still hold shared_ptrs to their slots; the
  // map entries can be dropped safely.
  slots_.clear();
}

void Engine::set_hit_observer(std::function<void(const HitInfo&)> observer) {
  std::scoped_lock lock(observer_mu_);
  observer_ = std::move(observer);
}

void Engine::set_verbose(bool on) {
  std::scoped_lock lock(observer_mu_);
  verbose_ = on;
}

void Engine::set_spec(std::unordered_map<std::string, SpecOverride> spec) {
  std::scoped_lock lock(spec_mu_);
  spec_ = std::move(spec);
}

}  // namespace cbp
