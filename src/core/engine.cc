#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <iostream>

#include "core/config.h"
#include "obs/trace.h"

namespace cbp {

// ---------------------------------------------------------------------------
// OrderingGuard
// ---------------------------------------------------------------------------

OrderingGuard::OrderingGuard(std::shared_ptr<internal::GroupState> group,
                             int rank)
    : group_(std::move(group)), rank_(rank) {}

OrderingGuard::OrderingGuard(std::function<void()> on_release, int rank)
    : on_release_(std::move(on_release)), rank_(rank) {}

OrderingGuard::~OrderingGuard() { release(); }

OrderingGuard::OrderingGuard(OrderingGuard&& other) noexcept
    : group_(std::move(other.group_)),
      on_release_(std::move(other.on_release_)),
      rank_(other.rank_) {
  other.group_.reset();
  other.on_release_ = nullptr;
  other.rank_ = -1;
}

OrderingGuard& OrderingGuard::operator=(OrderingGuard&& other) noexcept {
  if (this != &other) {
    release();
    group_ = std::move(other.group_);
    on_release_ = std::move(other.on_release_);
    rank_ = other.rank_;
    other.group_.reset();
    other.on_release_ = nullptr;
    other.rank_ = -1;
  }
  return *this;
}

void OrderingGuard::release() {
  if (on_release_) {
    // Transport-backed guard: completion is a message (DONE to the
    // broker), not a GroupState ack.
    std::function<void()> complete = std::move(on_release_);
    on_release_ = nullptr;
    rank_ = -1;
    complete();
    return;
  }
  if (!group_) return;
  {
    std::scoped_lock lock(group_->mu);
    group_->acked[static_cast<std::size_t>(rank_)] = 1;
  }
  rt::clock_notify_all(group_->cv);
  CBP_OBS_EVENT(obs::EventKind::kGuardAck, group_->name_id, rank_);
  group_.reset();
  rank_ = -1;
}

// ---------------------------------------------------------------------------
// BTrigger thin wrappers
// ---------------------------------------------------------------------------

bool BTrigger::trigger_here(bool is_first_action,
                            std::chrono::milliseconds timeout) {
  return Engine::current()
      .trigger(*this, is_first_action ? 0 : 1, 2,
               std::chrono::duration_cast<std::chrono::microseconds>(timeout),
               /*scoped=*/false)
      .hit;
}

bool BTrigger::trigger_here(bool is_first_action) {
  Engine& engine = Engine::current();
  return engine
      .trigger(*this, is_first_action ? 0 : 1, 2,
               engine.settings().default_timeout(),
               /*scoped=*/false)
      .hit;
}

TriggerResult BTrigger::trigger_here_scoped(bool is_first_action,
                                            std::chrono::milliseconds timeout) {
  return Engine::current().trigger(
      *this, is_first_action ? 0 : 1, 2,
      std::chrono::duration_cast<std::chrono::microseconds>(timeout),
      /*scoped=*/true);
}

TriggerResult BTrigger::trigger_here_scoped(bool is_first_action) {
  Engine& engine = Engine::current();
  return engine.trigger(*this, is_first_action ? 0 : 1, 2,
                        engine.settings().default_timeout(),
                        /*scoped=*/true);
}

bool BTrigger::trigger_here_ranked(int rank, int arity,
                                   std::chrono::milliseconds timeout) {
  return Engine::current()
      .trigger(*this, rank, arity,
               std::chrono::duration_cast<std::chrono::microseconds>(timeout),
               /*scoped=*/false)
      .hit;
}

TriggerResult BTrigger::trigger_here_ranked_scoped(
    int rank, int arity, std::chrono::milliseconds timeout) {
  return Engine::current().trigger(
      *this, rank, arity,
      std::chrono::duration_cast<std::chrono::microseconds>(timeout),
      /*scoped=*/true);
}

TriggerResult BTrigger::trigger_here_site(std::string_view site,
                                          std::chrono::milliseconds timeout) {
  return Engine::current().trigger_site(
      *this, site,
      std::chrono::duration_cast<std::chrono::microseconds>(timeout),
      /*scoped=*/false);
}

TriggerResult BTrigger::trigger_here_site(std::string_view site) {
  Engine& engine = Engine::current();
  return engine.trigger_site(*this, site, engine.settings().default_timeout(),
                             /*scoped=*/false);
}

// ---------------------------------------------------------------------------
// Engine: interned name table
// ---------------------------------------------------------------------------

namespace {

/// Set once instance() has constructed the default engine; null before
/// (and during) that construction.  Engine's constructor reads it to
/// inherit settings without recursing into instance().
std::atomic<Engine*> g_default_engine{nullptr};

}  // namespace

Engine& Engine::instance() {
  static Engine* engine = [] {
    auto* e = new Engine();  // immortal: never destroyed
    g_default_engine.store(e, std::memory_order_release);
    return e;
  }();
  return *engine;
}

namespace {

std::size_t name_hash(std::string_view name) {
  return std::hash<std::string_view>{}(name);
}

/// Engine tags: process-unique, never reused, never zero (a zero
/// engine_tag in a NameRecord would match no engine).
std::atomic<std::uint64_t> g_next_engine_tag{1};

/// Name ids: one global counter across all engines, so an id appearing
/// in the obs trace names exactly one (engine, name) pair even when
/// parallel trial workers intern the same breakpoint names.
std::atomic<std::uint32_t> g_next_name_id{0};

/// Graveyard of records whose engine died.  Records must be immortal —
/// BTriggers cache raw pointers and validate them by reading
/// record->engine_tag, which must stay dereferenceable forever.  A
/// dead engine's tag is never reused, so a graveyard record can fail
/// the validation but never pass it.
std::mutex g_graveyard_mu;
std::vector<std::unique_ptr<internal::NameRecord>>& graveyard() {
  static auto* g = new std::vector<std::unique_ptr<internal::NameRecord>>();
  return *g;
}

}  // namespace

Engine::Engine()
    : tag_(g_next_engine_tag.fetch_add(1, std::memory_order_relaxed)) {
  // Inherit the runtime knobs visible to the creating thread: its bound
  // engine if any, else the process default.  Harness workers create
  // their private engines on unbound threads, so bench-level Config
  // writes made before the pool spawned still reach every worker.
  Engine* parent = nullptr;
  if (void* bound = rt::bound_context()) {
    parent = static_cast<Engine*>(bound);
  } else {
    parent = g_default_engine.load(std::memory_order_acquire);
  }
  if (parent != nullptr && parent != this) settings_.inherit(parent->settings_);
}

Engine::~Engine() {
  // Contract: no thread is inside trigger() on this engine (callers join
  // their trial threads first), but BTriggers that outlive the engine
  // may still hold cached record pointers — retire the records instead
  // of freeing them.  Their spec pointers are nulled because the spec
  // generations they point into die with the engine.
  cancel_all();
  std::scoped_lock lock(intern_mu_, g_graveyard_mu);
  for (auto& record : records_) {
    record->spec.store(nullptr, std::memory_order_relaxed);
    record->cold_bounded.store(nullptr, std::memory_order_relaxed);
    graveyard().push_back(std::move(record));
  }
  records_.clear();
}

const internal::NameRecord* Engine::find_interned(std::string_view name,
                                                  std::size_t hash) const {
  std::size_t i = hash & (kInternCells - 1);
  for (std::size_t probes = 0; probes < kInternCells; ++probes) {
    const internal::NameRecord* record =
        cells_[i].load(std::memory_order_acquire);
    if (record == nullptr) return nullptr;
    if (record->hash == hash && record->name == name) return record;
    i = (i + 1) & (kInternCells - 1);
  }
  return nullptr;
}

const internal::NameRecord* Engine::intern(const std::string& name) {
  const std::size_t hash = name_hash(name);
  if (const internal::NameRecord* record = find_interned(name, hash)) {
    return record;
  }

  std::scoped_lock lock(intern_mu_);
  // Re-check under the lock (another thread may have just published it,
  // or it may live in the overflow map).
  if (const internal::NameRecord* record = find_interned(name, hash)) {
    return record;
  }
  if (auto it = overflow_.find(name); it != overflow_.end()) {
    return it->second;
  }

  auto owned = std::make_unique<internal::NameRecord>();
  internal::NameRecord* record = owned.get();
  record->name = name;
  record->hash = hash;
  record->id = g_next_name_id.fetch_add(1, std::memory_order_relaxed);
  record->engine_tag = tag_;
  // No spec fix-up needed here: set_spec() interns every spec'd name
  // eagerly, so a name first interned by a trigger cannot have a
  // pending override.
  records_.push_back(std::move(owned));

  if (probe_count_ < kInternCells / 2) {
    std::size_t i = hash & (kInternCells - 1);
    while (cells_[i].load(std::memory_order_relaxed) != nullptr) {
      i = (i + 1) & (kInternCells - 1);
    }
    cells_[i].store(record, std::memory_order_release);
    ++probe_count_;
  } else {
    overflow_.emplace(name, record);
  }
#ifndef CBP_DISABLE_OBS
  // Register the id -> name mapping so trace exports can resolve events
  // even if the trace is enabled after interning (cold path, once per
  // name per process).
  obs::Trace::set_name(record->id, name);
#endif
  return record;
}

const internal::NameRecord* Engine::record_for(BTrigger& bt) {
  // The cached pointer may belong to another engine (a trigger object
  // reused across trials, or shared between concurrently-running
  // engines): validate it against this engine's tag.  Records are
  // immortal process-wide and tags are never reused, so the check is a
  // safe dereference and a stale record can only ever *fail* it.  On
  // mismatch we intern here and re-cache; a trigger ping-ponged between
  // two live engines just re-resolves each time, still returning the
  // record of the engine actually running the call.
  const internal::NameRecord* record =
      bt.record_.load(std::memory_order_acquire);
  if (record == nullptr || record->engine_tag != tag_) {
    record = intern(bt.name());
    bt.record_.store(record, std::memory_order_release);
  }
  return record;
}

std::vector<std::uint32_t> Engine::interned_ids() const {
  std::vector<std::uint32_t> ids;
  for (const internal::NameRecord* record : records_snapshot()) {
    ids.push_back(record->id);
  }
  return ids;
}

std::vector<const internal::NameRecord*> Engine::records_snapshot() const {
  std::scoped_lock lock(intern_mu_);
  std::vector<const internal::NameRecord*> snapshot;
  snapshot.reserve(records_.size());
  for (const auto& record : records_) snapshot.push_back(record.get());
  return snapshot;
}

// ---------------------------------------------------------------------------
// Engine: rendezvous
// ---------------------------------------------------------------------------

bool Engine::try_match(internal::Slot& slot, BTrigger& bt, int rank, int arity,
                       bool scoped, std::shared_ptr<internal::GroupState>& group,
                       int& out_rank, HitInfo& info) {
  const rt::ThreadId my_tid = rt::this_thread_id();

  // The selection algorithm lives in core/pattern.cc now (the classic
  // rendezvous is the degenerate single-step pattern); this adapter
  // keeps the slot-side effects: the hits counter, the per-rank obs
  // events, and the wake-up.
  std::vector<internal::Waiter*> chosen;  // one per needed rank
  if (!PatternMatcher::match_rendezvous(slot.postponed, bt, rank, arity,
                                        scoped, my_tid, record_for(bt)->id,
                                        group, out_rank, info, chosen)) {
    return false;
  }

  // Incremented under the slot mutex (match exclusivity), loaded
  // lock-free by trigger()'s bound pre-screen.
  slot.hot.hits.fetch_add(1, std::memory_order_relaxed);
  if (CBP_OBS_ENABLED()) {
    // One kMatch per rank, stamped by the matcher with each
    // participant's tid (the waiters are asleep; their postponement
    // spans close against these events).  detail carries the arity.
    // The k events describe one instant, so one clock read stamps the
    // whole run (Trace::stamp; under a virtual clock each event still
    // gets its own unique deterministic stamp).
    const auto detail = static_cast<std::uint16_t>(info.arity);
    const std::uint64_t stamp = obs::Trace::stamp();
    obs::Trace::record_for_at(stamp, my_tid, obs::EventKind::kMatch,
                              group->name_id, out_rank, detail);
    for (const internal::Waiter* w : chosen) {
      obs::Trace::record_for_at(stamp, w->tid, obs::EventKind::kMatch,
                                group->name_id, w->matched_rank, detail);
    }
  }
  rt::clock_notify_all(slot.cv);
  return true;
}

void Engine::await_turn(internal::GroupState& group, int rank,
                        bool scoped) const {
  // Protocol body in core/pattern.cc; this engine contributes only its
  // clock-adjusted durations.
  PatternMatcher::await_turn(group, rank, scoped,
                             scaled(settings_.order_delay()),
                             scaled(settings_.guard_wait_cap()));
}

TriggerResult Engine::trigger(BTrigger& bt, int rank, int arity,
                              std::chrono::microseconds timeout, bool scoped) {
  assert(arity >= 2 && rank >= 0 && rank < arity);
  // This engine's own knob, not Config::enabled(): the facade would
  // re-resolve Engine::current(), and this is the disabled fast path.
  if (!settings_.is_enabled()) return {};

  const internal::NameRecord* record = record_for(bt);

  // Spec-file overrides (core/spec.h) compose over the programmatic
  // parameters: they let a shipped bug report be tuned or flipped
  // without recompiling.  The override lives in the interned record, so
  // this fast path takes no lock and hashes no strings — a spec-disabled
  // breakpoint costs two dependent atomic loads.
  std::uint64_t ignore_first = bt.ignore_first_count();
  std::uint64_t bound = bt.bound_count();
  bool process_group = false;
  bool spec_bound = false;
  const SpecOverride* entry = record->spec.load(std::memory_order_acquire);
  if (entry != nullptr) {
    if (entry->disabled) return {};
    if (entry->pause) {
      timeout =
          std::chrono::duration_cast<std::chrono::microseconds>(*entry->pause);
    }
    if (entry->flip_order) {
      if (arity == 2) {
        rank = 1 - rank;
      } else {
        // `flip` is defined for binary ranks only; spec parsing rejects
        // flip+pattern, but an arity-k trigger under a flip entry can
        // only be caught here.  Warn once instead of silently ignoring.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true, std::memory_order_relaxed)) {
          std::cerr << "[cbp] warning: spec 'flip' on breakpoint '"
                    << record->name << "' ignored: flip is defined for "
                    << "2-ary breakpoints, this trigger has arity " << arity
                    << "\n";
        }
      }
    }
    if (entry->ignore_first) ignore_first = *entry->ignore_first;
    if (entry->bound) {
      bound = *entry->bound;
      spec_bound = true;
    }
    process_group = entry->scope == SpecScope::kProcessGroup;
    if (entry->pattern != nullptr) {
      // Pattern breakpoint: the declared rank maps onto the pattern's
      // site index, so existing ranked insertions join the automaton.
      if (rank >= static_cast<int>(entry->pattern->site_count())) return {};
      return trigger_pattern(*record, bt, *entry, rank, timeout, scoped,
                             ignore_first, bound, spec_bound);
    }
  }

  // Process-group dispatch (core/transport.h): only a spec entry can ask
  // for it, so purely local breakpoints never read the transport.  A
  // remote park is a kernel wait — under a bound virtual clock (which
  // cannot schedule a foreign process) the entry degrades to local
  // matching, as it does when no transport is attached.
  if (process_group && rt::bound_virtual_clock() == nullptr) {
    if (std::shared_ptr<TransportPolicy> remote_transport = transport()) {
      return trigger_remote(*record, bt, rank, arity, timeout, scoped,
                            ignore_first, bound, *remote_transport);
    }
  }

  internal::Slot* slot = record->slot.get();

  // User code: evaluate outside the slot lock (it may be arbitrarily
  // expensive, though it must not block).
  const bool local_ok = bt.predicate_local();

  // ---- armed fast path: no slot mutex (DESIGN.md §5i) ----------------
  // The three non-matching outcomes account themselves with relaxed
  // atomics and return; only a call that may actually rendezvous pays
  // for the lock.
  internal::HotCounters& hot = slot->hot;
  hot.calls.fetch_add(1, std::memory_order_relaxed);
  if (!local_ok) {
    hot.local_rejects.fetch_add(1, std::memory_order_relaxed);
    CBP_OBS_EVENT(obs::EventKind::kLocalReject, record->id, -1);
    return {};
  }
  const std::uint64_t arrival =
      hot.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  // An arrival and its immediate verdict (ignore) describe one instant:
  // one clock read stamps both (Trace::stamp batching).
  std::uint64_t obs_stamp = 0;
  if (CBP_OBS_ENABLED()) {
    obs_stamp = obs::Trace::stamp();
    obs::Trace::record_at(obs_stamp, obs::EventKind::kArrival, record->id, -1);
  }
  // Cold-spec pre-screen: a previous call in this spec generation saw
  // the spec's hit budget exhausted and published the sticky, so this
  // call can skip even the hits load.  Only spec-derived bounds stick —
  // programmatic bounds may differ between same-name trigger objects.
  if (spec_bound &&
      record->cold_bounded.load(std::memory_order_relaxed) == entry) {
    hot.bounded.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  if (hot.hits.load(std::memory_order_relaxed) >= bound) {
    hot.bounded.fetch_add(1, std::memory_order_relaxed);
    if (spec_bound) {
      record->cold_bounded.store(entry, std::memory_order_relaxed);
    }
    return {};
  }
  if (arrival <= ignore_first) {
    // ignore_first suppresses the arrival entirely (§6.3): it neither
    // postpones *nor* matches a postponed peer.  This check must come
    // before try_match — an arrival inside the ignore window used to
    // be able to complete a match, which made `ignore_first = n` with
    // an exact arrival counter still hit during the warm-up phase.
    hot.ignored.fetch_add(1, std::memory_order_relaxed);
    if (CBP_OBS_ENABLED()) {
      obs::Trace::record_at(obs_stamp, obs::EventKind::kIgnore, record->id, -1);
    }
    return {};
  }

  std::shared_ptr<internal::GroupState> group;
  int my_rank = rank;
  HitInfo info;
  bool fire_observer = false;

  {
    std::unique_lock lock(slot->mu);
    // Exact bound re-check: hits only grows while mu is held, so a call
    // whose lock-free pre-screen read a stale value bounds out here and
    // `bound = n` still means at most n matched groups.
    if (hot.hits.load(std::memory_order_relaxed) >= bound) {
      hot.bounded.fetch_add(1, std::memory_order_relaxed);
      if (spec_bound) {
        record->cold_bounded.store(entry, std::memory_order_relaxed);
      }
      return {};
    }

    if (try_match(*slot, bt, rank, arity, scoped, group, my_rank, info)) {
      fire_observer = true;  // last-arriving participant reports the hit
    } else {
      internal::Waiter waiter;
      waiter.trigger = &bt;
      waiter.tid = rt::this_thread_id();
      waiter.rank = rank;
      waiter.arity = arity;
      waiter.scoped = scoped;
      slot->postponed.push_back(&waiter);
      slot->cold.postponed += 1;
      CBP_OBS_EVENT(obs::EventKind::kPostpone, record->id, rank);

      const auto scaled_timeout = scaled(timeout);
      rt::Stopwatch wait_clock;  // follows the active clock
      rt::clock_wait_for(slot->cv, lock, scaled_timeout,
                         [&] { return waiter.matched || waiter.cancelled; });
      const std::int64_t wait_us = wait_clock.elapsed_us();
      slot->cold.total_wait_us += wait_us;
      slot->cold.wait_hist.record(
          wait_us > 0 ? static_cast<std::uint64_t>(wait_us) : 0);

      auto it =
          std::find(slot->postponed.begin(), slot->postponed.end(), &waiter);
      if (it != slot->postponed.end()) slot->postponed.erase(it);

      if (!waiter.matched) {
        if (waiter.cancelled) {
          slot->cold.cancelled += 1;
          CBP_OBS_EVENT(obs::EventKind::kCancel, record->id, rank);
        } else {
          slot->cold.timeouts += 1;
          CBP_OBS_EVENT(obs::EventKind::kTimeout, record->id, rank);
        }
        return {};
      }
      group = waiter.group;
      my_rank = waiter.matched_rank;
    }
    slot->cold.participants += 1;
  }

  if (fire_observer) {
    std::function<void(const HitInfo&)> observer;
    bool verbose = false;
    {
      std::scoped_lock lock(observer_mu_);
      observer = observer_;
      verbose = verbose_;
    }
    if (verbose) {
      // One formatted string, one stream insertion: concurrent hits used
      // to interleave their three operands mid-line on stderr.
      std::string line;
      line.reserve(info.description.size() + info.name.size() + 32);
      line += "[cbp] hit: ";
      line += info.description;
      line += " (breakpoint '";
      line += info.name;
      line += "')\n";
      std::cerr << line;
    }
    if (observer) observer(info);
  }

  await_turn(*group, my_rank, scoped);
  CBP_OBS_EVENT(obs::EventKind::kRelease, group->name_id, my_rank);

  {
    // Ordering latency: group creation (match) to this rank's release.
    const auto order_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              rt::clock_now() - group->match_time)
                              .count();
    std::scoped_lock lock(slot->mu);
    slot->cold.order_hist.record(
        order_us > 0 ? static_cast<std::uint64_t>(order_us) : 0);
  }

  TriggerResult result;
  result.hit = true;
  if (scoped) result.guard = OrderingGuard(group, my_rank);
  return result;
}

TriggerResult Engine::trigger_site(BTrigger& bt, std::string_view site,
                                   std::chrono::microseconds timeout,
                                   bool scoped) {
  if (!settings_.is_enabled()) return {};
  const internal::NameRecord* record = record_for(bt);
  const SpecOverride* entry = record->spec.load(std::memory_order_acquire);
  // A pattern breakpoint exists only through its spec entry: with no
  // entry (or none carrying a pattern) every site call is a dormant
  // no-op — nothing is counted, which makes the un-spec'd binary the
  // 0-hit control run.
  if (entry == nullptr || entry->pattern == nullptr) return {};
  if (entry->disabled) return {};
  const int index = entry->pattern->site_index(site);
  if (index < 0) return {};
  if (entry->pause) {
    timeout =
        std::chrono::duration_cast<std::chrono::microseconds>(*entry->pause);
  }
  std::uint64_t ignore_first = bt.ignore_first_count();
  std::uint64_t bound = bt.bound_count();
  bool spec_bound = false;
  if (entry->ignore_first) ignore_first = *entry->ignore_first;
  if (entry->bound) {
    bound = *entry->bound;
    spec_bound = true;
  }
  return trigger_pattern(*record, bt, *entry, index, timeout, scoped,
                         ignore_first, bound, spec_bound);
}

TriggerResult Engine::trigger_pattern(const internal::NameRecord& record,
                                      BTrigger& bt, const SpecOverride& entry,
                                      int site,
                                      std::chrono::microseconds timeout,
                                      bool scoped, std::uint64_t ignore_first,
                                      std::uint64_t bound, bool spec_bound) {
  internal::Slot* slot = record.slot.get();

  // Same armed-fast-path counter discipline as trigger(): the three
  // non-matching outcomes account themselves with relaxed atomics and
  // return before the slot mutex (DESIGN.md §5i) — the automaton sits
  // strictly behind the existing early-outs.
  const bool local_ok = bt.predicate_local();
  internal::HotCounters& hot = slot->hot;
  hot.calls.fetch_add(1, std::memory_order_relaxed);
  if (!local_ok) {
    hot.local_rejects.fetch_add(1, std::memory_order_relaxed);
    CBP_OBS_EVENT(obs::EventKind::kLocalReject, record.id, -1);
    return {};
  }
  const std::uint64_t arrival =
      hot.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t obs_stamp = 0;
  if (CBP_OBS_ENABLED()) {
    obs_stamp = obs::Trace::stamp();
    obs::Trace::record_at(obs_stamp, obs::EventKind::kArrival, record.id, -1);
  }
  if (spec_bound &&
      record.cold_bounded.load(std::memory_order_relaxed) == &entry) {
    hot.bounded.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  if (hot.hits.load(std::memory_order_relaxed) >= bound) {
    hot.bounded.fetch_add(1, std::memory_order_relaxed);
    if (spec_bound) {
      record.cold_bounded.store(&entry, std::memory_order_relaxed);
    }
    return {};
  }
  if (arrival <= ignore_first) {
    hot.ignored.fetch_add(1, std::memory_order_relaxed);
    if (CBP_OBS_ENABLED()) {
      obs::Trace::record_at(obs_stamp, obs::EventKind::kIgnore, record.id, -1);
    }
    return {};
  }

  std::shared_ptr<internal::GroupState> group;
  int my_rank = -1;
  HitInfo info;
  bool fire_observer = false;

  {
    std::unique_lock lock(slot->mu);
    // Exact bound re-check, as in trigger().
    if (hot.hits.load(std::memory_order_relaxed) >= bound) {
      hot.bounded.fetch_add(1, std::memory_order_relaxed);
      if (spec_bound) {
        record.cold_bounded.store(&entry, std::memory_order_relaxed);
      }
      return {};
    }
    // (Re)build the matcher when the installed entry changed: new spec
    // generations have new entry addresses, so pointer identity is the
    // epoch — the cold_bounded idiom.
    if (slot->matcher_entry != &entry) {
      slot->matcher = std::make_unique<PatternMatcher>(entry.pattern,
                                                       record.id);
      slot->matcher_entry = &entry;
    }

    internal::Waiter waiter;
    waiter.trigger = &bt;
    waiter.tid = rt::this_thread_id();
    waiter.rank = site;
    waiter.arity = 0;  // pattern waiter: invisible to match_rendezvous
    waiter.scoped = scoped;

    PatternMatcher::Outcome out =
        slot->matcher->on_event(site, waiter.tid, scoped, bt, &waiter);

    for (const PatternMatcher::Outcome::Advance& a : out.advances) {
      slot->cold.pattern_partials += 1;
      if (CBP_OBS_ENABLED()) {
        obs::Trace::record_for(a.tid, obs::EventKind::kPatternAdvance,
                               record.id, a.site,
                               static_cast<std::uint16_t>(a.progress));
      }
    }
    for (int progress : out.aborted) {
      slot->cold.pattern_aborts += 1;
      if (CBP_OBS_ENABLED()) {
        obs::Trace::record(obs::EventKind::kPatternAbort, record.id, site,
                           static_cast<std::uint16_t>(progress));
      }
    }
    const bool woke_resumed = !out.resumed.empty();

    switch (out.kind) {
      case PatternMatcher::Outcome::Kind::kNoMatch:
        slot->cold.pattern_rejects += 1;
        if (woke_resumed) rt::clock_notify_all(slot->cv);
        return {};
      case PatternMatcher::Outcome::Kind::kRecorded:
        // Event consumed, thread runs on: its pause comes at its last
        // pattern event; the advance above is the telemetry record.
        if (woke_resumed) rt::clock_notify_all(slot->cv);
        return {};
      case PatternMatcher::Outcome::Kind::kHit: {
        hot.hits.fetch_add(1, std::memory_order_relaxed);
        group = out.group;
        my_rank = out.rank;
        info = std::move(out.info);
        fire_observer = true;
        if (CBP_OBS_ENABLED()) {
          const auto detail = static_cast<std::uint16_t>(info.arity);
          const std::uint64_t stamp = obs::Trace::stamp();
          obs::Trace::record_for_at(stamp, waiter.tid,
                                    obs::EventKind::kMatch, record.id,
                                    my_rank, detail);
          for (const internal::Waiter* w : out.matched) {
            obs::Trace::record_for_at(stamp, w->tid, obs::EventKind::kMatch,
                                      record.id, w->matched_rank, detail);
          }
        }
        slot->cold.participants += 1;
        rt::clock_notify_all(slot->cv);
        break;
      }
      case PatternMatcher::Outcome::Kind::kPark: {
        slot->postponed.push_back(&waiter);
        slot->cold.postponed += 1;
        CBP_OBS_EVENT(obs::EventKind::kPostpone, record.id, site);
        if (woke_resumed) rt::clock_notify_all(slot->cv);

        const auto scaled_timeout = scaled(timeout);
        rt::Stopwatch wait_clock;
        rt::clock_wait_for(slot->cv, lock, scaled_timeout, [&] {
          return waiter.matched || waiter.cancelled || waiter.resumed;
        });
        const std::int64_t wait_us = wait_clock.elapsed_us();
        slot->cold.total_wait_us += wait_us;
        slot->cold.wait_hist.record(
            wait_us > 0 ? static_cast<std::uint64_t>(wait_us) : 0);

        auto it = std::find(slot->postponed.begin(), slot->postponed.end(),
                            &waiter);
        if (it != slot->postponed.end()) slot->postponed.erase(it);

        if (waiter.matched) {
          group = waiter.group;
          my_rank = waiter.matched_rank;
          slot->cold.participants += 1;
          break;
        }
        if (waiter.resumed) {
          // Consumed mid-pattern (the run needs this thread later) or
          // orphaned by a hit that completed without this event —
          // either way: continue, no hit.
          return {};
        }
        // Timed out or cancelled: this thread's park is over, and the
        // partial match it anchored is dead — abort the whole run.
        if (slot->matcher != nullptr) {
          PatternMatcher::DetachResult detached =
              slot->matcher->detach(waiter.run, &waiter);
          if (detached.aborted) {
            slot->cold.pattern_aborts += 1;
            if (CBP_OBS_ENABLED()) {
              obs::Trace::record(obs::EventKind::kPatternAbort, record.id,
                                 site,
                                 static_cast<std::uint16_t>(detached.progress));
            }
            for (internal::Waiter* orphan : detached.orphans) {
              orphan->cancelled = true;
            }
            if (!detached.orphans.empty()) rt::clock_notify_all(slot->cv);
          }
        }
        if (waiter.cancelled) {
          slot->cold.cancelled += 1;
          CBP_OBS_EVENT(obs::EventKind::kCancel, record.id, site);
        } else {
          slot->cold.timeouts += 1;
          CBP_OBS_EVENT(obs::EventKind::kTimeout, record.id, site);
        }
        return {};
      }
    }
  }

  if (fire_observer) {
    std::function<void(const HitInfo&)> observer;
    bool verbose = false;
    {
      std::scoped_lock lock(observer_mu_);
      observer = observer_;
      verbose = verbose_;
    }
    if (verbose) {
      std::string line;
      line.reserve(info.description.size() + info.name.size() + 32);
      line += "[cbp] hit: ";
      line += info.description;
      line += " (breakpoint '";
      line += info.name;
      line += "')\n";
      std::cerr << line;
    }
    if (observer) observer(info);
  }

  await_turn(*group, my_rank, scoped);
  CBP_OBS_EVENT(obs::EventKind::kRelease, group->name_id, my_rank);

  {
    const auto order_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              rt::clock_now() - group->match_time)
                              .count();
    std::scoped_lock lock(slot->mu);
    slot->cold.order_hist.record(
        order_us > 0 ? static_cast<std::uint64_t>(order_us) : 0);
  }

  TriggerResult result;
  result.hit = true;
  if (scoped) result.guard = OrderingGuard(group, my_rank);
  return result;
}

TriggerResult Engine::trigger_remote(const internal::NameRecord& record,
                                     BTrigger& bt, int rank, int arity,
                                     std::chrono::microseconds timeout,
                                     bool scoped, std::uint64_t ignore_first,
                                     std::uint64_t bound,
                                     TransportPolicy& transport) {
  internal::Slot* slot = record.slot.get();

  // Local refinements stay in-process (core/transport.h): each process
  // keeps its own warm-up window, hit budget and counters, exactly as if
  // the paper's library were loaded into every process separately.  The
  // same lock-free counter discipline as the local path (the remote
  // path is cold — a kernel round-trip follows — but snapshots must see
  // one coherent set of counters).
  const bool local_ok = bt.predicate_local();
  internal::HotCounters& hot = slot->hot;
  hot.calls.fetch_add(1, std::memory_order_relaxed);
  if (!local_ok) {
    hot.local_rejects.fetch_add(1, std::memory_order_relaxed);
    CBP_OBS_EVENT(obs::EventKind::kLocalReject, record.id, -1);
    return {};
  }
  const std::uint64_t arrival =
      hot.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;
  CBP_OBS_EVENT(obs::EventKind::kArrival, record.id, -1);
  {
    std::scoped_lock lock(slot->mu);
    if (hot.hits.load(std::memory_order_relaxed) >= bound) {
      hot.bounded.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    if (arrival <= ignore_first) {
      hot.ignored.fetch_add(1, std::memory_order_relaxed);
      CBP_OBS_EVENT(obs::EventKind::kIgnore, record.id, -1);
      return {};
    }
    slot->cold.postponed += 1;
    CBP_OBS_EVENT(obs::EventKind::kPostpone, record.id, rank);
  }

  RemoteTriggerRequest request;
  request.name = record.name;
  request.rank = rank;
  request.arity = arity;
  request.scoped = scoped;
  // The park is a real kernel wait; apply this engine's scale and floor
  // at 1 ms so the broker always sees a positive bound.
  request.timeout = std::max(
      std::chrono::milliseconds(1),
      std::chrono::duration_cast<std::chrono::milliseconds>(scaled(timeout)));

  rt::Stopwatch wait_clock;
  RemoteTriggerResult remote = transport.trigger_remote(request);
  const std::int64_t wait_us = wait_clock.elapsed_us();

  {
    std::scoped_lock lock(slot->mu);
    slot->cold.total_wait_us += wait_us;
    slot->cold.wait_hist.record(
        wait_us > 0 ? static_cast<std::uint64_t>(wait_us) : 0);
    switch (remote.outcome) {
      case RemoteOutcome::kTimeout:
        slot->cold.timeouts += 1;
        CBP_OBS_EVENT(obs::EventKind::kTimeout, record.id, rank);
        break;
      case RemoteOutcome::kCancelled:
      case RemoteOutcome::kError:
        slot->cold.cancelled += 1;
        CBP_OBS_EVENT(obs::EventKind::kCancel, record.id, rank);
        break;
      case RemoteOutcome::kPeerLost:
        slot->cold.peer_lost += 1;
        [[fallthrough]];
      case RemoteOutcome::kHit:
        // Per-process view: `hits` counts groups this process joined —
        // the value `bound` compares against, so the budget is spent by
        // participation, not by cluster-wide totals.
        hot.hits.fetch_add(1, std::memory_order_relaxed);
        slot->cold.participants += 1;
        if (CBP_OBS_ENABLED()) {
          obs::Trace::record_for(rt::this_thread_id(), obs::EventKind::kMatch,
                                 record.id, remote.rank,
                                 static_cast<std::uint16_t>(arity));
        }
        break;
    }
  }
  if (!remote.hit()) return {};

  // Each participating process reports the hit to its own observer; the
  // peer processes' thread ids are unknowable here, so only this rank's
  // slot in `threads` is filled in.
  HitInfo info;
  info.name = bt.name();
  info.description = bt.describe();
  info.arity = arity;
  info.threads.assign(static_cast<std::size_t>(arity), 0);
  if (remote.rank >= 0 && remote.rank < arity) {
    info.threads[static_cast<std::size_t>(remote.rank)] = rt::this_thread_id();
  }
  std::function<void(const HitInfo&)> observer;
  bool verbose = false;
  {
    std::scoped_lock lock(observer_mu_);
    observer = observer_;
    verbose = verbose_;
  }
  if (verbose) {
    std::string line;
    line.reserve(info.description.size() + info.name.size() + 32);
    line += "[cbp] hit: ";
    line += info.description;
    line += " (breakpoint '";
    line += info.name;
    line += "')\n";
    std::cerr << line;
  }
  if (observer) observer(info);

  CBP_OBS_EVENT(obs::EventKind::kRelease, record.id, remote.rank);

  TriggerResult result;
  result.hit = true;
  result.peer_lost = remote.outcome == RemoteOutcome::kPeerLost;
  if (scoped && remote.complete) {
    result.guard = OrderingGuard(std::move(remote.complete), remote.rank);
  } else if (remote.complete) {
    remote.complete();  // transport completed scoped-ly; honour it now
  }
  return result;
}

// ---------------------------------------------------------------------------
// Engine: aggregation and administration (cold paths)
// ---------------------------------------------------------------------------

namespace {

/// Merges a slot's lock-free hot counters and mutex-guarded slow-path
/// counters into one plain snapshot.
BreakpointStats snapshot_slot(const internal::Slot& slot) {
  BreakpointStats out;
  {
    std::scoped_lock lock(slot.mu);
    out = slot.cold;
  }
  out.calls = slot.hot.calls.load(std::memory_order_relaxed);
  out.local_rejects = slot.hot.local_rejects.load(std::memory_order_relaxed);
  out.arrivals = slot.hot.arrivals.load(std::memory_order_relaxed);
  out.ignored = slot.hot.ignored.load(std::memory_order_relaxed);
  out.bounded = slot.hot.bounded.load(std::memory_order_relaxed);
  out.hits = slot.hot.hits.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

BreakpointStats Engine::stats(const std::string& name) const {
  const internal::NameRecord* record = find_interned(name, name_hash(name));
  if (record == nullptr) {
    std::scoped_lock lock(intern_mu_);
    auto it = overflow_.find(name);
    if (it == overflow_.end()) return {};
    record = it->second;
  }
  return snapshot_slot(*record->slot);
}

BreakpointStats Engine::total_stats() const {
  // Snapshot the record list first, then aggregate: no table-wide lock
  // is held while slot mutexes are taken.
  BreakpointStats total;
  for (const internal::NameRecord* record : records_snapshot()) {
    total += snapshot_slot(*record->slot);
  }
  return total;
}

std::vector<std::string> Engine::names() const {
  // A record exists as soon as a name is interned (e.g. by a spec file);
  // "seen" means the engine actually counted a call for it.
  std::vector<std::string> out;
  for (const internal::NameRecord* record : records_snapshot()) {
    if (record->slot->hot.calls.load(std::memory_order_relaxed) > 0) {
      out.push_back(record->name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Engine::cancel_all() {
  for (const internal::NameRecord* record : records_snapshot()) {
    internal::Slot* slot = record->slot.get();
    {
      std::scoped_lock lock(slot->mu);
      for (internal::Waiter* w : slot->postponed) w->cancelled = true;
    }
    rt::clock_notify_all(slot->cv);
  }
}

void Engine::reset() {
  cancel_all();
  // Records are immortal (BTriggers cache raw pointers to them); a reset
  // zeroes their counters instead of dropping them.  Callers guarantee
  // no thread is concurrently inside trigger().
  for (const internal::NameRecord* record : records_snapshot()) {
    internal::Slot* slot = record->slot.get();
    // The bounded sticky refers to hit budgets that are being zeroed;
    // clear it before old spec generations are freed below so it can
    // never compare equal to (let alone alias) a dead entry.
    record->cold_bounded.store(nullptr, std::memory_order_relaxed);
    std::scoped_lock lock(slot->mu);
    slot->cold = {};
    // Pattern matchers key on spec-entry identity; the generations they
    // point into are about to be freed.
    slot->matcher.reset();
    slot->matcher_entry = nullptr;
    slot->hot.calls.store(0, std::memory_order_relaxed);
    slot->hot.local_rejects.store(0, std::memory_order_relaxed);
    slot->hot.arrivals.store(0, std::memory_order_relaxed);
    slot->hot.ignored.store(0, std::memory_order_relaxed);
    slot->hot.bounded.store(0, std::memory_order_relaxed);
    slot->hot.hits.store(0, std::memory_order_relaxed);
  }
  // Spec generations retired before the current one can only be freed
  // here, when no trigger can be reading them.
  std::scoped_lock lock(spec_mu_);
  if (spec_generations_.size() > 1) {
    spec_generations_.erase(spec_generations_.begin(),
                            spec_generations_.end() - 1);
  }
}

void Engine::set_transport(std::shared_ptr<TransportPolicy> transport) {
  std::scoped_lock lock(transport_mu_);
  transport_ = std::move(transport);
}

std::shared_ptr<TransportPolicy> Engine::transport() const {
  std::scoped_lock lock(transport_mu_);
  return transport_;
}

void Engine::set_hit_observer(std::function<void(const HitInfo&)> observer) {
  std::scoped_lock lock(observer_mu_);
  observer_ = std::move(observer);
}

void Engine::set_verbose(bool on) {
  std::scoped_lock lock(observer_mu_);
  verbose_ = on;
}

void Engine::set_spec(std::unordered_map<std::string, SpecOverride> spec) {
  // Intern every spec'd name first (intern_mu_ nests inside nothing
  // here), so the pointer fix-up below covers all of them.
  for (const auto& [name, entry] : spec) intern(name);

  std::scoped_lock lock(spec_mu_);
  auto generation = std::make_shared<const SpecMap>(std::move(spec));
  {
    std::scoped_lock intern_lock(intern_mu_);
    for (const auto& record : records_) {
      auto it = generation->find(record->name);
      record->spec.store(it == generation->end() ? nullptr : &it->second,
                         std::memory_order_release);
      // The sticky is keyed by spec-entry identity, so installing a new
      // generation (fresh map, fresh addresses) already invalidates it;
      // clearing keeps the protocol explicit and frees a concurrent
      // trigger from ever comparing against a superseded entry.
      record->cold_bounded.store(nullptr, std::memory_order_relaxed);
    }
  }
  // Keep the map (and any predecessors a concurrent trigger might still
  // be reading) alive; reset() garbage-collects old generations.
  spec_generations_.push_back(std::move(generation));
}

}  // namespace cbp
