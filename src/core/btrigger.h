// The concurrent-breakpoint primitive (paper §2, §4).
//
// A concurrent breakpoint (l1, l2, phi) is expressed by inserting two
// calls to `trigger_here` — one just before l1 with is_first_action=true,
// one just before l2 with is_first_action=false — on subclasses of
// BTrigger that carry the thread-local state needed to evaluate phi.
// Two BTrigger instances with the same *name* belong to the same
// breakpoint.  phi is split (paper §3) into:
//   * predicate_local()        — phi_t1 / phi_t2, over this thread only;
//   * predicate_global(other)  — phi_t1t2, over both threads' states.
//
// trigger_here implements BTRIGGER: a thread whose local predicate holds
// is postponed for up to `timeout`; if a complementary thread arrives
// whose joint predicate matches, the breakpoint is *hit*, both calls
// return true, and the pair is ordered (first-action thread executes its
// next instruction first).  A postponed thread always times out
// eventually, so breakpoints never introduce a deadlock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace cbp {

class Engine;

namespace internal {
struct GroupState;
struct NameRecord;
}  // namespace internal

/// RAII marker for the deterministic-ordering API.  A thread that hit a
/// breakpoint through trigger_here_scoped() must keep the guard alive
/// across its "next instruction"; destroying (or release()-ing) it is the
/// signal that lets later-ordered threads proceed.  Without the scoped
/// API, ordering falls back to Config::order_delay().
class [[nodiscard]] OrderingGuard {
 public:
  OrderingGuard() = default;
  OrderingGuard(std::shared_ptr<internal::GroupState> group, int rank);
  /// Transport-backed guard (process-group hits, core/transport.h):
  /// release() invokes `on_release` exactly once — in practice sending
  /// the DONE that lets the next rank's *process* proceed — instead of
  /// acking a local GroupState.
  OrderingGuard(std::function<void()> on_release, int rank);
  ~OrderingGuard();

  OrderingGuard(OrderingGuard&& other) noexcept;
  OrderingGuard& operator=(OrderingGuard&& other) noexcept;
  OrderingGuard(const OrderingGuard&) = delete;
  OrderingGuard& operator=(const OrderingGuard&) = delete;

  /// True if this guard corresponds to an actual breakpoint hit.
  [[nodiscard]] bool active() const {
    return group_ != nullptr || on_release_ != nullptr;
  }

  /// Rank of this thread within the hit (0 executes first).
  [[nodiscard]] int rank() const { return rank_; }

  /// Signals completion of the guarded instruction early.
  void release();

 private:
  std::shared_ptr<internal::GroupState> group_;
  std::function<void()> on_release_;  ///< transport-backed guards only
  int rank_ = -1;
};

/// Result of a scoped trigger call.
struct TriggerResult {
  bool hit = false;
  /// Process-group hits only: the match completed but a peer process
  /// died before finishing the release protocol — the broker released
  /// this side instead of letting it hang (core/transport.h).
  bool peer_lost = false;
  OrderingGuard guard;  ///< active iff hit

  explicit operator bool() const { return hit; }
};

/// Abstract concurrent breakpoint (mirrors the paper's Fig. 5 API).
class BTrigger {
 public:
  explicit BTrigger(std::string name) : name_(std::move(name)) {}
  virtual ~BTrigger() = default;

  // The cached interned-name record may be copied along with the name:
  // records are immortal (see core/engine.h), so the pointer is always
  // dereferenceable, and the engine re-validates it against its own tag
  // on every trigger — a record cached under one engine is re-resolved
  // when the trigger next runs under another.
  BTrigger(const BTrigger& other)
      : name_(other.name_),
        ignore_first_(other.ignore_first_),
        bound_(other.bound_),
        record_(other.record_.load(std::memory_order_relaxed)) {}
  BTrigger& operator=(const BTrigger& other) {
    if (this != &other) {
      name_ = other.name_;
      ignore_first_ = other.ignore_first_;
      bound_ = other.bound_;
      record_.store(other.record_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }
    return *this;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// phi restricted to this thread's local state.  Default: true.
  [[nodiscard]] virtual bool predicate_local() const { return true; }

  /// phi over this thread's and `other`'s states.  The engine guarantees
  /// `other` has the same breakpoint name and belongs to a different,
  /// currently-postponed thread whose state is quiescent.
  [[nodiscard]] virtual bool predicate_global(const BTrigger& other) const = 0;

  /// One-line description for hit reports ("Conflict", "Deadlock", ...).
  [[nodiscard]] virtual std::string describe() const { return name_; }

  // ---- Paper API -------------------------------------------------------

  /// Returns true iff the breakpoint was hit (both local and global
  /// predicates satisfied by this thread and a peer).  `timeout` is the
  /// nominal postponement time T; rt::TimeScale::apply() is applied.
  bool trigger_here(bool is_first_action, std::chrono::milliseconds timeout);

  /// Same, with Config::default_timeout().
  bool trigger_here(bool is_first_action);

  // ---- Deterministic-ordering extension ---------------------------------

  /// Like trigger_here, but on a hit the later-ordered thread is released
  /// only when the earlier thread's OrderingGuard is destroyed, making
  /// the paper's "t1's next instruction executes before t2's" exact.
  TriggerResult trigger_here_scoped(bool is_first_action,
                                    std::chrono::milliseconds timeout);
  TriggerResult trigger_here_scoped(bool is_first_action);

  // ---- k-thread generalization (paper §2: "easily extended") -----------

  /// Breakpoint over `arity` threads; this call declares rank
  /// `rank` in [0, arity).  All `arity` ranks must rendezvous (each from a
  /// distinct thread, jointly satisfying the predicates) for a hit; on a
  /// hit, threads are released in rank order.
  bool trigger_here_ranked(int rank, int arity,
                           std::chrono::milliseconds timeout);
  TriggerResult trigger_here_ranked_scoped(int rank, int arity,
                                           std::chrono::milliseconds timeout);

  // ---- Pattern breakpoints (core/pattern.h) -----------------------------

  /// Declares that this thread just produced pattern event `site` (a
  /// site label from the breakpoint's `pattern=` spec entry).  Without
  /// an installed spec entry carrying a pattern this is a dormant no-op
  /// — the annotated binary runs unchanged, which is the demo's 0-hit
  /// control.  On a hit every paused participant plus the completing
  /// caller is released in event order, same as the rendezvous.
  TriggerResult trigger_here_site(std::string_view site,
                                  std::chrono::milliseconds timeout);
  TriggerResult trigger_here_site(std::string_view site);

  // ---- Local-predicate refinements (paper §6.3) -------------------------

  /// Do not participate for the first `n` arrivals at this breakpoint
  /// name (cache4j's `ignoreFirst=7200`).  An arrival inside the window
  /// is skipped entirely: it neither postpones nor matches a postponed
  /// peer, so an exact arrival counter sees zero hits during warm-up.
  BTrigger& ignore_first(std::uint64_t n) {
    ignore_first_ = n;
    return *this;
  }

  /// Stop participating once this breakpoint name has hit `n` times
  /// (moldyn's `bound=4` / `bound=10`).
  BTrigger& bound(std::uint64_t n) {
    bound_ = n;
    return *this;
  }

  [[nodiscard]] std::uint64_t ignore_first_count() const {
    return ignore_first_;
  }
  [[nodiscard]] std::uint64_t bound_count() const { return bound_; }

 private:
  friend class Engine;

  std::string name_;
  std::uint64_t ignore_first_ = 0;
  std::uint64_t bound_ = UINT64_MAX;

  /// Interned-name record, resolved by the engine on first trigger and
  /// cached so later triggers skip the name lookup entirely.  Atomic so
  /// a trigger object shared between threads stays race-free.  The
  /// record carries its owning engine's tag; Engine::record_for treats
  /// a tag mismatch as a cache miss, so the cache follows the trigger
  /// between engines (multi-engine trials) without ever dangling.
  mutable std::atomic<const internal::NameRecord*> record_{nullptr};
};

}  // namespace cbp
