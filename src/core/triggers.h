// Concrete breakpoint classes (paper §2, §4, Figs. 6 and 8).
//
// Every class here matches only instances of its own dynamic type with
// the same breakpoint name (the engine already scopes matching by name).
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "core/btrigger.h"
#include "runtime/lock_tracker.h"

namespace cbp {

/// Data-race / same-object conflict breakpoint (paper Fig. 6).
/// Two threads match when their recorded object references are equal —
/// the breakpoint (l1, l2, t1.obj == t2.obj).
class ConflictTrigger : public BTrigger {
 public:
  ConflictTrigger(std::string name, const void* obj)
      : BTrigger(std::move(name)), obj_(obj) {}

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    const auto* o = dynamic_cast<const ConflictTrigger*>(&other);
    return o != nullptr && o->obj_ == obj_;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "Conflict on object " << obj_;
    return os.str();
  }

  [[nodiscard]] const void* object() const { return obj_; }

 private:
  const void* obj_;
};

/// Deadlock breakpoint (paper Fig. 8).  `held` is the lock the thread
/// already holds, `wanted` the lock it is about to acquire; two threads
/// match when the locks cross: t1.held == t2.wanted && t1.wanted ==
/// t2.held.
class DeadlockTrigger : public BTrigger {
 public:
  DeadlockTrigger(std::string name, const void* held, const void* wanted)
      : BTrigger(std::move(name)), held_(held), wanted_(wanted) {}

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    const auto* o = dynamic_cast<const DeadlockTrigger*>(&other);
    return o != nullptr && held_ == o->wanted_ && wanted_ == o->held_;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "Deadlock: held " << held_ << ", wanted " << wanted_;
    return os.str();
  }

  [[nodiscard]] const void* held() const { return held_; }
  [[nodiscard]] const void* wanted() const { return wanted_; }

 private:
  const void* held_;
  const void* wanted_;
};

/// Atomicity-violation breakpoint (paper Fig. 3 / StringBuffer).
/// Structurally identical to ConflictTrigger — the first-action thread is
/// the interleaver entering the atomic block's victim object — but kept
/// as its own type so hit reports name the bug class.
class AtomicityTrigger : public BTrigger {
 public:
  AtomicityTrigger(std::string name, const void* obj)
      : BTrigger(std::move(name)), obj_(obj) {}

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    const auto* o = dynamic_cast<const AtomicityTrigger*>(&other);
    return o != nullptr && o->obj_ == obj_;
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "Atomicity violation on object " << obj_;
    return os.str();
  }

  [[nodiscard]] const void* object() const { return obj_; }

 private:
  const void* obj_;
};

/// Pure ordering breakpoint: any two same-name OrderTriggers match.
/// This is the tool for §8's "constrain the thread scheduler" use —
/// missed-notification bugs and schedule-pinning unit tests, where the
/// predicate is just the location pair.
class OrderTrigger : public BTrigger {
 public:
  explicit OrderTrigger(std::string name) : BTrigger(std::move(name)) {}

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    return dynamic_cast<const OrderTrigger*>(&other) != nullptr;
  }

  [[nodiscard]] std::string describe() const override {
    return "Order constraint '" + name() + "'";
  }
};

/// Breakpoint carrying an arbitrary comparable value; matches when the
/// two sides' values satisfy `eq` (defaults to ==).  Use for predicates
/// like t1.csList == t2.csList over non-pointer state.
template <class T>
class ValueTrigger : public BTrigger {
 public:
  using Eq = std::function<bool(const T&, const T&)>;

  ValueTrigger(std::string name, T value)
      : BTrigger(std::move(name)), value_(std::move(value)) {}

  ValueTrigger(std::string name, T value, Eq eq)
      : BTrigger(std::move(name)), value_(std::move(value)),
        eq_(std::move(eq)) {}

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    const auto* o = dynamic_cast<const ValueTrigger<T>*>(&other);
    if (o == nullptr) return false;
    return eq_ ? eq_(value_, o->value_) : value_ == o->value_;
  }

  [[nodiscard]] const T& value() const { return value_; }

 private:
  T value_;
  Eq eq_;
};

/// Fully programmable breakpoint: local and global predicates supplied as
/// callables.  The global predicate receives the peer trigger; use
/// dynamic_cast to reach a peer's payload.
class PredicateTrigger : public BTrigger {
 public:
  using LocalFn = std::function<bool()>;
  using GlobalFn = std::function<bool(const BTrigger& other)>;

  PredicateTrigger(std::string name, GlobalFn global)
      : BTrigger(std::move(name)), global_(std::move(global)) {}

  PredicateTrigger(std::string name, LocalFn local, GlobalFn global)
      : BTrigger(std::move(name)), local_(std::move(local)),
        global_(std::move(global)) {}

  [[nodiscard]] bool predicate_local() const override {
    return local_ ? local_() : true;
  }

  [[nodiscard]] bool predicate_global(const BTrigger& other) const override {
    return global_(other);
  }

 private:
  LocalFn local_;
  GlobalFn global_;
};

/// Mixin-style helper implementing the paper's §6.3 context refinement:
/// wraps any trigger so its local predicate additionally requires that
/// the calling thread holds a lock of the given type tag
/// (isLockTypeHeld(type) — the Swing/BasicCaret case).
template <class Base>
class LockTypeHeldRefinement : public Base {
 public:
  template <class... Args>
  LockTypeHeldRefinement(std::string tag, Args&&... args)
      : Base(std::forward<Args>(args)...), tag_(std::move(tag)) {}

  [[nodiscard]] bool predicate_local() const override {
    return rt::is_lock_type_held(tag_) && Base::predicate_local();
  }

 private:
  std::string tag_;
};

// ---------------------------------------------------------------------------
// One-line insertion helpers mirroring the paper's
//   (new ConflictTrigger("t1", p)).triggerHere(true, Global.TIMEOUT)
// idiom.
// ---------------------------------------------------------------------------

/// Inserts one side of a conflict breakpoint; returns true iff hit.
inline bool conflict_trigger_here(const std::string& name, const void* obj,
                                  bool is_first_action,
                                  std::chrono::milliseconds timeout) {
  ConflictTrigger trigger(name, obj);
  return trigger.trigger_here(is_first_action, timeout);
}

inline bool conflict_trigger_here(const std::string& name, const void* obj,
                                  bool is_first_action) {
  ConflictTrigger trigger(name, obj);
  return trigger.trigger_here(is_first_action);
}

/// Inserts one side of a deadlock breakpoint; returns true iff hit.
inline bool deadlock_trigger_here(const std::string& name, const void* held,
                                  const void* wanted, bool is_first_action,
                                  std::chrono::milliseconds timeout) {
  DeadlockTrigger trigger(name, held, wanted);
  return trigger.trigger_here(is_first_action, timeout);
}

inline bool deadlock_trigger_here(const std::string& name, const void* held,
                                  const void* wanted, bool is_first_action) {
  DeadlockTrigger trigger(name, held, wanted);
  return trigger.trigger_here(is_first_action);
}

/// Inserts one side of a pure ordering breakpoint; returns true iff hit.
inline bool order_trigger_here(const std::string& name, bool is_first_action,
                               std::chrono::milliseconds timeout) {
  OrderTrigger trigger(name);
  return trigger.trigger_here(is_first_action, timeout);
}

inline bool order_trigger_here(const std::string& name, bool is_first_action) {
  OrderTrigger trigger(name);
  return trigger.trigger_here(is_first_action);
}

}  // namespace cbp
