// Schedule pinning (paper §8, Discussion).
//
// "Concurrent breakpoints could be used to constrain the thread
// scheduler of a concurrent program ... to write concurrent unit tests
// that exercise a specific thread schedule."  This header packages that
// use: named rendezvous points that force a chosen resolution order at
// each conflict, so a multithreaded test runs one deterministic
// interleaving.
#pragma once

#include <chrono>
#include <string>

#include "core/triggers.h"

namespace cbp::schedule {

/// Default rendezvous timeout for schedule points: generous, because in
/// a pinned test the peer is expected to arrive (a timeout means the
/// pinned schedule is infeasible — tests should treat a `false` return
/// as a failure).
inline constexpr std::chrono::milliseconds kPinTimeout{5000};

/// Pins a two-point ordering: the call marked `first` executes its next
/// statement before the peer's.  Both calls must use the same name.
/// Returns true when the rendezvous happened (the pin took effect).
inline bool pin(const std::string& name, bool first,
                std::chrono::milliseconds timeout = kPinTimeout) {
  OrderTrigger trigger(name);
  return trigger.trigger_here(first, timeout);
}

/// Deterministic variant: holds later-ordered threads until the guard is
/// destroyed, so "next statement" is exact rather than delay-based.
[[nodiscard]] inline TriggerResult pin_scoped(
    const std::string& name, bool first,
    std::chrono::milliseconds timeout = kPinTimeout) {
  OrderTrigger trigger(name);
  return trigger.trigger_here_scoped(first, timeout);
}

/// Pins a k-point ordering across k threads: rank 0 proceeds first, then
/// rank 1, ... — the n-ary generalization of §2.
inline bool pin_ranked(const std::string& name, int rank, int arity,
                       std::chrono::milliseconds timeout = kPinTimeout) {
  OrderTrigger trigger(name);
  return trigger.trigger_here_ranked(rank, arity, timeout);
}

[[nodiscard]] inline TriggerResult pin_ranked_scoped(
    const std::string& name, int rank, int arity,
    std::chrono::milliseconds timeout = kPinTimeout) {
  OrderTrigger trigger(name);
  return trigger.trigger_here_ranked_scoped(rank, arity, timeout);
}

}  // namespace cbp::schedule
