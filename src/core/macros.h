// Compile-time switch for breakpoints (paper §4: "The breakpoints can be
// turned on or off like traditional assertions").
//
// Building with -DCBP_DISABLE_BREAKPOINTS compiles every macro below to a
// constant-false expression with zero runtime footprint; the runtime
// switch is cbp::Config::set_enabled().
#pragma once

#include "core/triggers.h"

#ifdef CBP_DISABLE_BREAKPOINTS

// Compiled out: `false && ...` never evaluates the call (no engine, no
// side effects, optimized away entirely) but keeps the arguments
// type-checked and "used", like assert(3) does under NDEBUG.
#define CBP_CONFLICT(name, obj, is_first) \
  (false && ::cbp::conflict_trigger_here((name), (obj), (is_first)))
#define CBP_DEADLOCK(name, held, wanted, is_first) \
  (false &&                                        \
   ::cbp::deadlock_trigger_here((name), (held), (wanted), (is_first)))
#define CBP_ORDER(name, is_first) \
  (false && ::cbp::order_trigger_here((name), (is_first)))

#else

/// One side of a data-race breakpoint: (l1, l2, t1.obj == t2.obj).
#define CBP_CONFLICT(name, obj, is_first) \
  (::cbp::conflict_trigger_here((name), (obj), (is_first)))

/// One side of a deadlock breakpoint (held/wanted lock pair).
#define CBP_DEADLOCK(name, held, wanted, is_first) \
  (::cbp::deadlock_trigger_here((name), (held), (wanted), (is_first)))

/// One side of a pure ordering breakpoint.
#define CBP_ORDER(name, is_first) \
  (::cbp::order_trigger_here((name), (is_first)))

#endif  // CBP_DISABLE_BREAKPOINTS
