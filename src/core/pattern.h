// Pattern breakpoints: the k-site event-pattern automaton (DESIGN.md §5j).
//
// The paper's `(l1, l2, phi)` breakpoint is a 2-site rendezvous; this
// layer generalizes it to a *pattern* breakpoint — a small regular
// expression over named trigger events across >= 2 threads, grounded in
// "Predictive Monitoring against Pattern Regular Languages" (PAPERS.md):
//
//   acq(A):t1 . acq(B):t2 . rel(B):t2
//
// `.` sequences events, `|` alternates, `*` closes, parentheses group.
// Each event names a *site* (an identifier, optionally with a
// parenthesized subject: `acq(A)`) and optionally binds a thread
// variable (`:t1`).  Distinct variables must be bound by distinct
// threads; a site with no variable accepts any thread.  Per-site local
// predicates are simply the `predicate_local()` of the BTrigger that
// fires the site — patterns never evaluate `predicate_global`.
//
// A PatternSpec compiles the expression to a Thompson NFA (<= 64
// states, state sets as uint64_t bitsets, epsilon closures and
// reachability precomputed).  A PatternMatcher owns the partial-match
// state — *runs*, each a state set plus variable bindings plus the
// parked threads that produced its events — that used to live only in
// `GroupState`/`Engine::try_match` for the degenerate one-step case.
//
// Matching semantics (all under the owning slot's mutex):
//   * an event that some run can consume advances that run (oldest
//     first; greedy variable binding, preferring already-bound vars);
//   * an event no run can consume yet, but whose site is reachable
//     from a live run's state set, *parks pending* on that run — the
//     k-site generalization of the paper's "postpone the first
//     arrival"; each advance re-tries pending events in arrival order
//     (the cascade), so out-of-order arrivals are forced into pattern
//     order exactly like the 2-site rendezvous forces (l1, l2);
//   * otherwise, if the initial state enables the site, a new run
//     starts; else the event is an immediate pattern-reject (no pause);
//   * after consuming an event, its thread parks iff the pattern may
//     still need it later -- i.e. unless the thread's bound variable
//     appears on a transition reachable from the new state set, in
//     which case the thread is *recorded* and continues (it must stay
//     runnable to produce its later events; its pause happens at its
//     last event);
//   * reaching the accept state is a *hit*: every parked participant
//     plus the completing caller forms a GroupState (arity = number of
//     paused threads) and is released in event order, completer last,
//     through the same await_turn protocol as rendezvous hits — the
//     PR 3 publication-order invariants carry over verbatim because it
//     is literally the same code;
//   * a parked thread that times out (or is cancelled) detaches and
//     aborts its whole run: remaining parked threads are woken
//     cancelled, and the partial match is discarded.
//
// The classic 2-site and k-ary rendezvous are the degenerate
// single-step pattern; their matcher (`match_rendezvous`) and the
// rank-order release protocol (`await_turn`) moved here from engine.cc
// so one matcher serves both and the broker can adopt it later.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"
#include "runtime/clock.h"
#include "runtime/thread_registry.h"

namespace cbp {

class BTrigger;

namespace internal {

/// Shared state of one breakpoint hit (a matched group of k threads).
/// Release protocol: rank r may proceed once, for every q < r,
///   uses_guard[q] ? acked[q]
///                 : released[q] && now >= release_time[q] + order_delay
/// with everything capped by Config::guard_wait_cap() so a leaked guard
/// degrades to a delay, never a hang.
///
/// `uses_guard`, `name_id` and `match_time` are written exactly once, by
/// the matcher while it still holds the slot mutex — i.e. before any
/// participant can observe the group — and are immutable afterwards, so
/// await_turn can never read a stale scoped-ness flag for a rank that has
/// already released (the bug fixed in this file's history: the flag used
/// to be written lazily by each rank's own await_turn).
struct GroupState {
  explicit GroupState(int arity_in)
      : arity(arity_in),
        released(static_cast<std::size_t>(arity_in), 0),
        acked(static_cast<std::size_t>(arity_in), 0),
        uses_guard(static_cast<std::size_t>(arity_in), 0),
        release_time(static_cast<std::size_t>(arity_in)) {}

  std::mutex mu;
  std::condition_variable cv;
  const int arity;
  std::uint32_t name_id = obs::kNoName;     // fixed before publication
  rt::TimePoint match_time{};               // fixed before publication
  std::vector<char> released;               // guarded by mu
  std::vector<char> acked;                  // guarded by mu
  std::vector<char> uses_guard;             // fixed before publication
  std::vector<rt::TimePoint> release_time;  // guarded by mu
};

/// One postponed thread (stack-allocated inside Engine::trigger).  The
/// pattern fields (`run`, `site`, `resumed`) are used only when the
/// waiter was parked by a PatternMatcher; `arity` is 0 for pattern
/// waiters so the rendezvous matcher can never select one.
struct Waiter {
  BTrigger* trigger = nullptr;
  rt::ThreadId tid = 0;
  int rank = 0;
  int arity = 2;
  bool scoped = false;
  bool matched = false;    // guarded by slot mutex
  bool cancelled = false;  // guarded by slot mutex
  /// Pattern waiters only: wake and continue *without* a hit (the run
  /// consumed this event but still needs this thread later, or the run
  /// completed without ever consuming it).  Guarded by the slot mutex.
  bool resumed = false;
  int matched_rank = -1;
  std::shared_ptr<GroupState> group;
  std::uint64_t run = 0;  ///< pattern run id (detach key), 0 = none
  int site = -1;          ///< pattern site index, -1 for rendezvous
};

}  // namespace internal

/// Information passed to the hit observer (one call per hit, made by the
/// last-arriving participant, outside all engine locks).
struct HitInfo {
  std::string name;
  std::string description;
  int arity = 2;
  std::vector<rt::ThreadId> threads;  ///< indexed by rank
};

/// A compiled event pattern.  Immutable after parse(); safe to share
/// between matchers (spec entries hold one via shared_ptr).
class PatternSpec {
 public:
  /// Compile limits.  64 NFA states fit a uint64_t state set; patterns
  /// are tiny regular expressions, so the limits are generous.
  static constexpr std::size_t kMaxStates = 64;
  static constexpr std::size_t kMaxSites = 32;
  static constexpr std::size_t kMaxVars = 16;

  /// Parses and compiles `text`; throws std::invalid_argument with a
  /// position-carrying message on malformed input, on a pattern that
  /// can accept fewer than 2 events, or on one exceeding the limits.
  static PatternSpec parse(const std::string& text);

  /// Canonical form (the input with whitespace stripped); parse() of
  /// this string yields an identical pattern — the spec-file round-trip.
  [[nodiscard]] const std::string& to_string() const { return canonical_; }

  /// Distinct site labels, in first-appearance order.  A site's index
  /// is its rank for `trigger_here_ranked` calls routed to a pattern.
  [[nodiscard]] const std::vector<std::string>& site_names() const {
    return sites_;
  }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Index of `label` among site_names(), or -1 if the pattern never
  /// mentions it.
  [[nodiscard]] int site_index(std::string_view label) const;

  /// Distinct thread-variable names, in first-appearance order.
  [[nodiscard]] const std::vector<std::string>& var_names() const {
    return vars_;
  }

  /// Length of the shortest event sequence the pattern accepts.
  [[nodiscard]] std::size_t min_length() const { return min_length_; }

 private:
  friend class PatternMatcher;
  friend struct PatternCompiler;

  PatternSpec() = default;

  struct Transition {
    int sym = -1;  ///< site index
    int var = -1;  ///< thread-variable index, -1 = unbound
    int to = 0;
  };
  struct State {
    std::vector<Transition> out;
    std::vector<int> eps;
    std::uint64_t closure = 0;         ///< eps-closure bitset (incl. self)
    std::uint64_t vars_reachable = 0;  ///< vars on any reachable transition
    std::uint64_t syms_reachable = 0;  ///< sites on any reachable transition
  };

  std::vector<State> states_;
  int start_ = 0;
  int accept_ = 0;
  std::vector<std::string> sites_;
  std::vector<std::string> vars_;
  std::string canonical_;
  std::size_t min_length_ = 0;
};

/// The matcher: owns partial-match state for one breakpoint name (one
/// per Slot, rebuilt when the installed spec entry changes).  All
/// non-static methods must be called with the owning slot's mutex held.
/// Also home of the two stateless protocols shared with the classic
/// rendezvous path: `match_rendezvous` (the degenerate single-step
/// pattern) and `await_turn` (rank-order release).
class PatternMatcher {
 public:
  /// At most this many concurrent runs; a new run evicts the oldest run
  /// holding no parked thread, or is refused (pattern-reject) if every
  /// run holds one.
  static constexpr std::size_t kMaxRuns = 8;
  /// At most this many pending (not-yet-consumable) parked events per
  /// run; later early arrivals are pattern-rejects.
  static constexpr std::size_t kMaxPending = 8;

  PatternMatcher(std::shared_ptr<const PatternSpec> spec,
                 std::uint32_t name_id);

  struct Outcome {
    enum class Kind {
      kNoMatch,   ///< pattern-reject: no run advanced, parked, or started
      kRecorded,  ///< event consumed; thread continues (needed later)
      kPark,      ///< caller must park (consumed-and-waiting, or pending)
      kHit,       ///< accept reached: group assembled, caller has a rank
    };
    Kind kind = Kind::kNoMatch;
    std::uint64_t run = 0;  ///< run the caller parked on (kPark)
    int progress = 0;       ///< events consumed by the run so far

    /// Events consumed during this call (the caller's, plus any pending
    /// events the cascade consumed), in consumption order — one
    /// kPatternAdvance each.
    struct Advance {
      int site = -1;
      rt::ThreadId tid = 0;
      int progress = 0;
    };
    std::vector<Advance> advances;
    /// Progress of runs evicted to make room (one kPatternAbort each).
    std::vector<int> aborted;
    /// Parked waiters to wake *without* a hit (resumed = true already
    /// set); the engine notifies the slot cv.
    std::vector<internal::Waiter*> resumed;

    // kHit only:
    std::shared_ptr<internal::GroupState> group;
    int rank = -1;  ///< caller's rank within the hit
    HitInfo info;
    std::vector<internal::Waiter*> matched;  ///< parked participants
  };

  /// Feeds one trigger event.  If the outcome is kPark, `self` has been
  /// attached to the run (fields filled in) and the caller must push it
  /// onto the slot's postponed list and wait; on any other outcome
  /// `self` is untouched.
  Outcome on_event(int site, rt::ThreadId tid, bool scoped, BTrigger& bt,
                   internal::Waiter* self);

  struct DetachResult {
    bool aborted = false;  ///< the waiter's run existed and was discarded
    int progress = 0;      ///< events the aborted run had consumed
    /// Other parked waiters of the aborted run; the caller marks them
    /// cancelled and notifies the slot cv.
    std::vector<internal::Waiter*> orphans;
  };

  /// Removes a timed-out or cancelled parked waiter, aborting its run.
  /// Safe against stale ids (matcher rebuilt since the park): a run that
  /// does not actually contain `waiter` is left untouched.
  DetachResult detach(std::uint64_t run, internal::Waiter* waiter);

  [[nodiscard]] const PatternSpec& spec() const { return *spec_; }
  [[nodiscard]] std::size_t live_runs() const { return runs_.size(); }

  // ---- the degenerate single-step pattern: classic rendezvous --------

  /// Tries to assemble a full rendezvous group around `bt` from
  /// `postponed` (moved verbatim from Engine::try_match).  Called with
  /// the slot mutex held.  On success fills `group` (name_id,
  /// match_time and every rank's uses_guard fixed before publication),
  /// marks the selected waiters matched, returns the arriving thread's
  /// rank via `out_rank`, collects hit info for the observer and the
  /// selected waiters in `chosen` (for per-rank obs events).
  static bool match_rendezvous(const std::vector<internal::Waiter*>& postponed,
                               BTrigger& bt, int rank, int arity, bool scoped,
                               rt::ThreadId my_tid, std::uint32_t name_id,
                               std::shared_ptr<internal::GroupState>& group,
                               int& out_rank, HitInfo& info,
                               std::vector<internal::Waiter*>& chosen);

  /// Rank-order release protocol; returns after rank `rank` is allowed
  /// to proceed.  Called with no locks held.  `order_delay` and
  /// `guard_wait_cap` are the *effective* (already clock-adjusted)
  /// durations — the engine applies its time scale before calling.
  static void await_turn(internal::GroupState& group, int rank, bool scoped,
                         rt::Duration order_delay, rt::Duration guard_wait_cap);

 private:
  struct Run {
    std::uint64_t id = 0;
    std::uint64_t set = 0;  ///< current NFA state bitset (eps-closed)
    int progress = 0;       ///< events consumed
    std::uint64_t bound_mask = 0;  ///< which vars are bound
    std::vector<rt::ThreadId> bind;  ///< var index -> thread
    /// Parked waiters whose events were consumed, in consumption order
    /// (their hit ranks).
    std::vector<internal::Waiter*> participants;
    /// Parked early arrivals not yet consumable, in arrival order.
    std::vector<internal::Waiter*> pending;
  };

  struct AdvancePlan {
    std::uint64_t new_set = 0;
    int bind_var = -1;    ///< var to bind to the thread, -1 = none
    int thread_var = -1;  ///< thread's var after the advance, -1 = none
  };

  /// Feasible advance of `run` on (site, tid), or false.  Greedy
  /// binding: transitions needing no new binding win; otherwise the
  /// lowest-indexed bindable variable is chosen.
  bool plan_advance(const Run& run, int site, rt::ThreadId tid,
                    AdvancePlan& plan) const;
  void apply_advance(Run& run, rt::ThreadId tid, const AdvancePlan& plan,
                     int site, Outcome& out);
  /// Re-tries pending events after an advance until none is consumable.
  void cascade(Run& run, Outcome& out);
  /// True iff the thread must park after its event: its variable (if
  /// any) no longer appears on any reachable transition.
  [[nodiscard]] bool parks_after(int thread_var, std::uint64_t set) const;
  [[nodiscard]] bool accepted(std::uint64_t set) const {
    return (set >> spec_->accept_) & 1u;
  }
  void build_hit(Run& run, std::size_t caller_pos, rt::ThreadId tid,
                 bool scoped, BTrigger& bt, Outcome& out);

  std::shared_ptr<const PatternSpec> spec_;
  std::uint32_t name_id_ = obs::kNoName;
  std::vector<Run> runs_;
  std::uint64_t next_run_id_ = 1;
};

}  // namespace cbp
