#include "core/config.h"

#include "core/engine.h"

namespace cbp {

// All Config calls resolve the bound engine first: trials on private
// engines (harness workers) configure themselves without touching the
// process default, and unbound threads keep the historical behaviour of
// configuring Engine::instance().

void Config::set_enabled(bool on) {
  Engine::current().settings().enabled.store(on, std::memory_order_relaxed);
}

bool Config::enabled() {
  return Engine::current().settings().is_enabled();
}

void Config::set_default_timeout(std::chrono::milliseconds t) {
  Engine::current().settings().default_timeout_us.store(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count(),
      std::memory_order_relaxed);
}

std::chrono::microseconds Config::default_timeout() {
  return Engine::current().settings().default_timeout();
}

void Config::set_order_delay(std::chrono::microseconds d) {
  Engine::current().settings().order_delay_us.store(
      d.count(), std::memory_order_relaxed);
}

std::chrono::microseconds Config::order_delay() {
  return Engine::current().settings().order_delay();
}

void Config::set_guard_wait_cap(std::chrono::milliseconds t) {
  Engine::current().settings().guard_wait_cap_us.store(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count(),
      std::memory_order_relaxed);
}

std::chrono::microseconds Config::guard_wait_cap() {
  return Engine::current().settings().guard_wait_cap();
}

}  // namespace cbp
