// Umbrella header for the concurrent-breakpoint library.
#pragma once

#include "core/btrigger.h"   // IWYU pragma: export
#include "core/config.h"     // IWYU pragma: export
#include "core/engine.h"     // IWYU pragma: export
#include "core/macros.h"     // IWYU pragma: export
#include "core/schedule.h"   // IWYU pragma: export
#include "core/spec.h"       // IWYU pragma: export
#include "core/stats.h"      // IWYU pragma: export
#include "core/triggers.h"   // IWYU pragma: export
