// Global configuration for the concurrent-breakpoint runtime.
//
// Breakpoints "can be turned on or off like traditional assertions"
// (paper §4): the `enabled` flag is the runtime switch, and the macros in
// core/macros.h provide the compile-time switch (-DCBP_DISABLE_BREAKPOINTS).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbp {

class Config {
 public:
  /// Runtime on/off switch.  When disabled, trigger_here() is a cheap
  /// no-op returning "not hit".
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Default postponement timeout T (nominal; TimeScale applies on use).
  /// Paper default: 100 ms (Global.TIMEOUT).
  static void set_default_timeout(std::chrono::milliseconds t) {
    default_timeout_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(t).count(),
        std::memory_order_relaxed);
  }
  static std::chrono::microseconds default_timeout() {
    return std::chrono::microseconds(
        default_timeout_us_.load(std::memory_order_relaxed));
  }

  /// How long a later-ordered thread is held after an earlier-ordered
  /// thread returns from a *non-scoped* trigger_here, so that the earlier
  /// thread's "next instruction" actually executes first.
  static void set_order_delay(std::chrono::microseconds d) {
    order_delay_us_.store(d.count(), std::memory_order_relaxed);
  }
  static std::chrono::microseconds order_delay() {
    return std::chrono::microseconds(
        order_delay_us_.load(std::memory_order_relaxed));
  }

  /// Upper bound on how long a later-ordered thread will wait for an
  /// earlier thread's OrderingGuard; a leaked guard therefore degrades to
  /// a delay, never a hang (paper §3: postponement must not deadlock).
  static void set_guard_wait_cap(std::chrono::milliseconds t) {
    guard_wait_cap_us_.store(
        std::chrono::duration_cast<std::chrono::microseconds>(t).count(),
        std::memory_order_relaxed);
  }
  static std::chrono::microseconds guard_wait_cap() {
    return std::chrono::microseconds(
        guard_wait_cap_us_.load(std::memory_order_relaxed));
  }

 private:
  static inline std::atomic<bool> enabled_{true};
  static inline std::atomic<std::int64_t> default_timeout_us_{100'000};
  static inline std::atomic<std::int64_t> order_delay_us_{200};
  static inline std::atomic<std::int64_t> guard_wait_cap_us_{5'000'000};
};

/// RAII disable (e.g. to measure "normal" runtime in benches).
class ScopedBreakpointsDisabled {
 public:
  ScopedBreakpointsDisabled() : previous_(Config::enabled()) {
    Config::set_enabled(false);
  }
  ~ScopedBreakpointsDisabled() { Config::set_enabled(previous_); }
  ScopedBreakpointsDisabled(const ScopedBreakpointsDisabled&) = delete;
  ScopedBreakpointsDisabled& operator=(const ScopedBreakpointsDisabled&) =
      delete;

 private:
  bool previous_;
};

}  // namespace cbp
