// Runtime configuration knobs for the concurrent-breakpoint runtime.
//
// Breakpoints "can be turned on or off like traditional assertions"
// (paper §4): the `enabled` flag is the runtime switch, and the macros in
// core/macros.h provide the compile-time switch (-DCBP_DISABLE_BREAKPOINTS).
//
// The knobs are *engine-scoped*: every Engine owns a RuntimeSettings
// copy, and Config's static API reads/writes the copy of the engine
// bound to the calling thread (Engine::current()).  This is what keeps
// concurrent trials honest — with process-global knobs, one trial's
// prefill quiescing breakpoints (ScopedBreakpointsDisabled) or setting
// its pause time T would silently apply to every trial in flight on
// other workers' engines, losing rendezvous and corrupting measured
// probabilities.  New engines inherit the knobs visible to the creating
// thread, so process-level configuration set before a worker pool
// spawns still reaches the workers' private engines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbp {

/// One engine's copy of the mutable runtime knobs.  Fields are atomics
/// so trial threads may read them while a harness thread reconfigures;
/// all access is relaxed (the knobs are control inputs, not data
/// published between threads).
struct RuntimeSettings {
  std::atomic<bool> enabled{true};
  std::atomic<std::int64_t> default_timeout_us{100'000};
  std::atomic<std::int64_t> order_delay_us{200};
  std::atomic<std::int64_t> guard_wait_cap_us{5'000'000};

  RuntimeSettings() = default;
  RuntimeSettings(const RuntimeSettings&) = delete;
  RuntimeSettings& operator=(const RuntimeSettings&) = delete;

  // Typed readers.  Engine-internal code reads its own settings through
  // these (one relaxed load); the Config facade below adds the
  // Engine::current() dispatch for everyone else — keep that dispatch
  // off the trigger fast path.
  [[nodiscard]] bool is_enabled() const {
    return enabled.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::chrono::microseconds default_timeout() const {
    return std::chrono::microseconds(
        default_timeout_us.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::chrono::microseconds order_delay() const {
    return std::chrono::microseconds(
        order_delay_us.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::chrono::microseconds guard_wait_cap() const {
    return std::chrono::microseconds(
        guard_wait_cap_us.load(std::memory_order_relaxed));
  }

  /// Relaxed field-by-field copy (engine construction inherits the
  /// creator-visible settings).
  void inherit(const RuntimeSettings& from) {
    enabled.store(from.enabled.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    default_timeout_us.store(
        from.default_timeout_us.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    order_delay_us.store(from.order_delay_us.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    guard_wait_cap_us.store(
        from.guard_wait_cap_us.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
};

/// Static facade over the *bound* engine's RuntimeSettings (see the
/// file comment).  Call sites read exactly as they did when the knobs
/// were process-global; the routing is the only change.
class Config {
 public:
  /// Runtime on/off switch.  When disabled, trigger_here() is a cheap
  /// no-op returning "not hit".
  static void set_enabled(bool on);
  static bool enabled();

  /// Default postponement timeout T (nominal; TimeScale applies on use).
  /// Paper default: 100 ms (Global.TIMEOUT).
  static void set_default_timeout(std::chrono::milliseconds t);
  static std::chrono::microseconds default_timeout();

  /// How long a later-ordered thread is held after an earlier-ordered
  /// thread returns from a *non-scoped* trigger_here, so that the earlier
  /// thread's "next instruction" actually executes first.
  static void set_order_delay(std::chrono::microseconds d);
  static std::chrono::microseconds order_delay();

  /// Upper bound on how long a later-ordered thread will wait for an
  /// earlier thread's OrderingGuard; a leaked guard therefore degrades to
  /// a delay, never a hang (paper §3: postponement must not deadlock).
  static void set_guard_wait_cap(std::chrono::milliseconds t);
  static std::chrono::microseconds guard_wait_cap();
};

/// RAII disable (e.g. to measure "normal" runtime in benches).  Scoped
/// to the calling thread's engine: a trial quiescing its own
/// breakpoints leaves concurrent trials untouched.
class ScopedBreakpointsDisabled {
 public:
  ScopedBreakpointsDisabled() : previous_(Config::enabled()) {
    Config::set_enabled(false);
  }
  ~ScopedBreakpointsDisabled() { Config::set_enabled(previous_); }
  ScopedBreakpointsDisabled(const ScopedBreakpointsDisabled&) = delete;
  ScopedBreakpointsDisabled& operator=(const ScopedBreakpointsDisabled&) =
      delete;

 private:
  bool previous_;
};

}  // namespace cbp
