// Breakpoint spec files: the portable form of a reproduced Heisenbug.
//
// The paper's point is that a small set of concurrent breakpoints *is*
// the bug report — "anyone can reproduce the bug deterministically
// without requiring the original testing framework".  A spec file makes
// that report adjustable without recompiling: per breakpoint name it can
// disable the breakpoint, override the pause time, flip the resolution
// order (Methodology II tries both), and set the §6.3 refinements.
//
// Format, one breakpoint per line ('#' comments):
//
//   <name> [off] [pause=<ms>] [flip] [ignore_first=<n>] [bound=<n>]
//          [scope=<local|process-group>] [pattern=<expr>]
//          [from=<static|dynamic>] [predicted=<p>] [confirmed]
//
// e.g.
//   # jigsaw deadlock, resolve in the documented buggy order
//   jigsaw-deadlock1 pause=1000
//   cache4j-atomicity1 ignore_first=7200
//   log4j-contention flip
//   noisy-breakpoint off
//   # candidate: conflict 'counter' cache.cc:23 <-> cache.cc:27 score=135
//   sa-conflict-counter-cache.cc-23-27 from=static
//
// `from=` records the provenance of the (l1, l2) pair — `static` for
// cbp-sa mined candidates, `dynamic` for detector-reported sites; the
// cbp-sa emitter precedes each entry with a `# candidate:` comment
// describing the mined pair (comments are ignored by the parser).
// `predicted=` carries the placement layer's expected hit probability
// (the §3 model's btrigger bound, or the Wilson center of a recorded
// run) and `confirmed` marks entries a dynamic detector or telemetry
// row corroborated — both provenance metadata the engine ignores at
// trigger time but the harness can read back to check predictions.
//
// Overrides are applied inside the engine at trigger time, so they
// compose with (and take precedence over) whatever the inserted code
// passed programmatically.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/pattern.h"

namespace cbp {

/// Where a spec entry's (l1, l2) pair was mined from: a dynamic
/// detector report (Methodology I/II) or the cbp-sa static analyzer.
/// Provenance only — the engine treats both identically at trigger time.
enum class SpecOrigin : std::uint8_t { kUnspecified, kStatic, kDynamic };

/// Matching scope of a breakpoint (core/transport.h).  kLocal is the
/// paper's in-process rendezvous; kProcessGroup forwards the
/// arrival/postpone/match/release protocol to the machine's trigger
/// broker so `(l1, l2, phi)` can match threads living in different
/// processes.  Process-group entries fall back to local matching when
/// no transport is attached (single-process runs of a distributed
/// spec still work).
enum class SpecScope : std::uint8_t { kLocal, kProcessGroup };

/// Per-breakpoint-name overrides.
struct SpecOverride {
  bool disabled = false;                     ///< `off`
  std::optional<std::chrono::milliseconds> pause;  ///< `pause=<ms>`
  bool flip_order = false;                   ///< `flip` (binary ranks only)
  std::optional<std::uint64_t> ignore_first; ///< `ignore_first=<n>`
  std::optional<std::uint64_t> bound;        ///< `bound=<n>`
  SpecScope scope = SpecScope::kLocal;       ///< `scope=<local|process-group>`
  SpecOrigin from = SpecOrigin::kUnspecified;  ///< `from=<static|dynamic>`
  /// `predicted=<p>`: expected hit probability in [0, 1] (provenance
  /// metadata; not consulted at trigger time).
  std::optional<double> predicted;
  /// `confirmed`: a dynamic report or telemetry row corroborated the pair.
  bool confirmed = false;
  /// `pattern=<expr>`: promotes the breakpoint from a rendezvous to a
  /// k-site event-pattern automaton (core/pattern.h).  Compiled once at
  /// parse time and shared by every engine generation holding this
  /// entry.  Mutually exclusive with `flip` and `scope=process-group`
  /// (both rejected at parse time).
  std::shared_ptr<const PatternSpec> pattern;
};

/// Parses spec text; throws std::invalid_argument on malformed input
/// (unknown key, bad number).
class BreakpointSpec {
 public:
  static BreakpointSpec parse(const std::string& text);

  /// Override for `name`, if the spec mentions it.
  [[nodiscard]] const SpecOverride* find(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Installs this spec as the engine's active spec (replacing any
  /// previous one).  Thread-safe; call between experiment runs.
  void install() const;

  /// Removes any active spec.
  static void clear_installed();

  /// All entries, keyed by breakpoint name (demos hand these straight
  /// to Engine::set_spec).
  [[nodiscard]] const std::unordered_map<std::string, SpecOverride>& entries()
      const {
    return entries_;
  }

 private:
  std::unordered_map<std::string, SpecOverride> entries_;
};

}  // namespace cbp
