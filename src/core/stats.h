// Per-breakpoint statistics.
//
// The harness derives the paper's "BP hit (%)" column (§5, Tables 1/2)
// from these counters; the engine also uses `arrivals` and `hits` to
// enforce the ignore_first / bound local-predicate refinements (§6.3).
// The two histograms are the observability layer's latency view
// (DESIGN.md §5d): how long threads actually sat in Postponed, and how
// long a matched participant waited between the match and its rank's
// release — the quantities a user tunes T (§6.2) against.
#pragma once

#include <cstdint>

#include "obs/histogram.h"

namespace cbp {

/// Counters for one breakpoint name.  A snapshot is a plain value; live
/// counters inside the engine are guarded by the owning slot's mutex.
struct BreakpointStats {
  std::uint64_t calls = 0;          ///< trigger_here invocations (enabled)
  std::uint64_t local_rejects = 0;  ///< predicate_local() returned false
  std::uint64_t arrivals = 0;       ///< passed the local predicate
  std::uint64_t ignored = 0;        ///< postponement skipped by ignore_first
  std::uint64_t bounded = 0;        ///< call suppressed by bound
  std::uint64_t postponed = 0;      ///< entered the Postponed set
  std::uint64_t timeouts = 0;       ///< left Postponed without a match
  std::uint64_t cancelled = 0;      ///< woken early by Engine::cancel_all
  std::uint64_t hits = 0;           ///< matched groups (one per pair/k-set)
  std::uint64_t participants = 0;   ///< threads that returned hit == true
  /// Process-group matches whose peer process died mid-protocol: the
  /// broker released this side with a peer-lost grant (core/transport.h).
  /// Always 0 for purely local breakpoints.  Note the per-process view:
  /// a remote `hits` counts groups *this* process participated in.
  std::uint64_t peer_lost = 0;
  /// Pattern breakpoints (core/pattern.h) only; 0 for rendezvous.
  std::uint64_t pattern_partials = 0;  ///< automaton advances (events consumed)
  std::uint64_t pattern_rejects = 0;   ///< events no run could use
  std::uint64_t pattern_aborts = 0;    ///< partial matches torn down
  std::int64_t total_wait_us = 0;   ///< wall time spent in Postponed

  /// Postponed wait time per stay (us), all outcomes (match/timeout/
  /// cancel).
  obs::LogHistogram wait_hist;
  /// Match-to-release ordering latency per participant (us): group
  /// creation in try_match until the participant's rank was released.
  obs::LogHistogram order_hist;

  BreakpointStats& operator+=(const BreakpointStats& o) {
    calls += o.calls;
    local_rejects += o.local_rejects;
    arrivals += o.arrivals;
    ignored += o.ignored;
    bounded += o.bounded;
    postponed += o.postponed;
    timeouts += o.timeouts;
    cancelled += o.cancelled;
    hits += o.hits;
    participants += o.participants;
    peer_lost += o.peer_lost;
    pattern_partials += o.pattern_partials;
    pattern_rejects += o.pattern_rejects;
    pattern_aborts += o.pattern_aborts;
    total_wait_us += o.total_wait_us;
    wait_hist += o.wait_hist;
    order_hist += o.order_hist;
    return *this;
  }
};

}  // namespace cbp
