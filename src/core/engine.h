// The BTRIGGER engine (paper §3).
//
// One Slot per breakpoint name holds the Postponed set.  A thread whose
// local predicate holds either (a) finds complementary postponed threads
// whose joint predicate matches — a *hit*: a GroupState is created and
// every participant is released in rank order — or (b) joins the
// Postponed set itself and waits up to T, then times out and continues.
// Postponement is always bounded, so the mechanism cannot deadlock the
// program (paper §3, "we do not postpone the execution of a thread
// indefinitely").
//
// Fast-path architecture (see DESIGN.md "Lock-free hot paths"): every
// breakpoint name is interned once into an immutable NameRecord that
// bundles the name's Slot and the active SpecOverride.  BTrigger caches
// the record pointer, so the steady-state trigger path performs zero
// global-mutex acquisitions and zero string hashes; the only lock left
// is the per-name slot mutex that guards the Postponed set and its
// counters.  First-time resolution probes an append-only open-addressing
// table with plain atomic loads (no reader lock).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/btrigger.h"
#include "core/config.h"
#include "core/pattern.h"
#include "core/spec.h"
#include "core/stats.h"
#include "core/transport.h"
#include "obs/event.h"
#include "runtime/clock.h"
#include "runtime/context.h"
#include "runtime/thread_registry.h"
#include "runtime/vclock.h"

namespace cbp {

namespace internal {

// GroupState and Waiter — the shared state of a hit and one postponed
// thread — live in core/pattern.h now: the PatternMatcher owns the
// matching machinery and the engine is its caller.

/// Armed-fast-path counters (DESIGN.md §5i).  Every counter a trigger
/// call can bump *without* rendezvousing lives here as a relaxed atomic,
/// so the three non-matching outcomes — local reject, bounded-out,
/// ignore-window — return without touching the slot mutex:
///
///   * `arrivals` doubles as the ignore_first window: fetch_add hands
///     each passing arrival a unique index, so exactly the first
///     `ignore_first` arrivals are ignored, same as the old under-lock
///     counter;
///   * `hits` is only ever *incremented* under the slot mutex (match
///     exclusivity needs it), but is *read* lock-free by the bound
///     pre-screen; trigger() re-checks it under the mutex before
///     matching, so `bound` stays exact — the lock-free read can only
///     send a call to the slow path spuriously, never let an over-budget
///     call match.
///
/// Snapshots (Engine::stats et al.) merge these with the mutex-guarded
/// slow-path counters into a plain BreakpointStats; a snapshot taken
/// while triggers are in flight may catch a call between its calls++ and
/// its outcome counter — quiescent reads (the documented stats contract)
/// are exact.
struct HotCounters {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> local_rejects{0};
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> ignored{0};
  std::atomic<std::uint64_t> bounded{0};
  std::atomic<std::uint64_t> hits{0};  ///< written under mu, read lock-free
};

/// Per-breakpoint-name rendezvous state.  The mutex is per-name: two
/// distinct breakpoints never contend on it.  Counters the fast path
/// bumps live in `hot`; `cold` keeps only the slow-path fields
/// (postponed/timeouts/cancelled/participants/peer_lost/waits/
/// histograms — its fast-path fields stay zero and are overwritten from
/// `hot` when a snapshot is taken).
struct Slot {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::vector<Waiter*> postponed;  // guarded by mu
  HotCounters hot;                 // lock-free (see above)
  BreakpointStats cold;            // guarded by mu; slow-path fields only
  /// Pattern-matching state, built lazily on the first pattern event
  /// and keyed by spec-entry identity (same idiom as cold_bounded): a
  /// new spec generation has new entry addresses, so `matcher_entry !=
  /// entry` detects any pattern change and rebuilds.  Guarded by mu;
  /// reset() clears both before freeing old spec generations.
  std::unique_ptr<PatternMatcher> matcher;
  const SpecOverride* matcher_entry = nullptr;
};

/// An interned breakpoint name.  Created once on first use and never
/// destroyed or moved for the life of the process, so raw pointers to it
/// may be cached freely (BTrigger does): records of a destroyed engine
/// are donated to an immortal graveyard rather than freed.  `spec`
/// points into the currently installed spec map (kept alive by the
/// owning engine) or is null.  `engine_tag` identifies the owning engine
/// (process-unique, never reused); BTrigger's cached pointer is
/// validated against it so a record cached under engine A is never used
/// by a trigger running under engine B.
struct NameRecord {
  std::string name;
  std::size_t hash = 0;       ///< cached std::hash<string_view>(name)
  std::uint32_t id = 0;       ///< process-unique intern id (see next_name_id)
  std::uint64_t engine_tag = 0;  ///< owning engine's tag (immutable)
  std::atomic<const SpecOverride*> spec{nullptr};
  /// Cold-spec pre-screen (DESIGN.md §5i): the spec entry whose `bound`
  /// this name was observed to have exhausted, or null.  A trigger that
  /// reads `spec == cold_bounded` returns bounded-out after its counter
  /// updates without even loading `hot.hits`.  The entry pointer *is*
  /// the epoch: set_spec() installs entries of a fresh generation map
  /// (new addresses — old generations stay alive until reset()), so any
  /// published sticky mismatches the moment an override changes, and
  /// reset() clears it explicitly before freeing old generations —
  /// a stale fast-path reject is impossible by construction.  Mutable:
  /// the hot path publishes it through the const record pointer it
  /// caches.
  mutable std::atomic<const SpecOverride*> cold_bounded{nullptr};
  std::unique_ptr<Slot> slot = std::make_unique<Slot>();
};

}  // namespace internal

// HitInfo moved to core/pattern.h (the matcher fills it).

/// Breakpoint engine.  All public methods are thread-safe.
///
/// Engines are first-class objects: the process-wide default is
/// `instance()`, and harness workers may own private engines so many
/// trials run concurrently with fully isolated intern tables, slots,
/// stats, specs and observers.  Trigger calls route through `current()`:
/// the engine bound to the calling thread (via ScopedEngine /
/// rt::ScopedContext, inherited by rt::Thread children), falling back to
/// the default instance.  A private engine must outlive every thread
/// that triggers under it (join all trial threads before destroying it
/// — the same contract reset() already has); its interned records then
/// retire to an immortal graveyard so raw pointers cached by BTriggers
/// never dangle.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The process-wide default engine (never destroyed).
  static Engine& instance();

  /// The engine bound to the calling thread, or instance() if none.
  static Engine& current() {
    if (void* bound = rt::bound_context()) {
      return *static_cast<Engine*>(bound);
    }
    return instance();
  }

  /// Process-unique identity of this engine (never reused).
  [[nodiscard]] std::uint64_t tag() const { return tag_; }

  /// This engine's runtime knobs (core/config.h).  The static Config
  /// facade reads/writes the *bound* engine's copy, so one trial's
  /// enable/disable or pause-time changes never leak into trials
  /// running concurrently on other workers' engines.
  [[nodiscard]] RuntimeSettings& settings() noexcept { return settings_; }
  [[nodiscard]] const RuntimeSettings& settings() const noexcept {
    return settings_;
  }

  /// Core entry point used by BTrigger::trigger_here*.
  /// `timeout` is nominal; rt::TimeScale is applied internally.
  /// When the active spec entry for this name carries a `pattern=`, the
  /// call is routed to the pattern matcher with `rank` as the site
  /// index (so existing 2-site insertions participate in a pattern
  /// without recompiling).
  TriggerResult trigger(BTrigger& bt, int rank, int arity,
                        std::chrono::microseconds timeout, bool scoped);

  /// Pattern entry point used by BTrigger::trigger_here_site: fires the
  /// named site of this breakpoint's `pattern=` spec entry.  A pattern
  /// breakpoint exists *only* via its spec entry — with no entry (or no
  /// pattern in it) this is a dormant no-op that returns without
  /// counting anything, which is what makes an un-spec'd binary the
  /// 0-hit control.
  TriggerResult trigger_site(BTrigger& bt, std::string_view site,
                             std::chrono::microseconds timeout, bool scoped);

  /// Interns `name`, creating its record on first use.  The returned
  /// pointer is stable for the process lifetime (it survives reset()
  /// and even this engine's destruction — see the graveyard note).
  const internal::NameRecord* intern(const std::string& name);

  /// Process-unique ids of every name interned by this engine (in
  /// registration order).  Lets a collector attribute obs trace events
  /// to one engine: ids are allocated from a global counter, so two
  /// engines never share an id even for equal names.
  [[nodiscard]] std::vector<std::uint32_t> interned_ids() const;

  /// Snapshot of the counters for one breakpoint name.
  [[nodiscard]] BreakpointStats stats(const std::string& name) const;

  /// Sum over all breakpoint names.
  [[nodiscard]] BreakpointStats total_stats() const;

  /// Names that have been seen so far (triggered at least once while
  /// enabled and not spec-disabled).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Wakes every postponed thread with a "cancelled" (no-hit) outcome.
  /// Used by harnesses to cut short in-flight postponements.
  void cancel_all();

  /// cancel_all() plus forgetting all statistics and postponements.
  /// Interned records survive (cached BTrigger pointers stay valid);
  /// their counters restart from zero.  Callers must ensure no thread is
  /// concurrently inside trigger(); the harness calls this between
  /// experiment runs after joining all workers.
  void reset();

  /// Observer invoked once per hit (outside engine locks; CP.22).
  /// Pass nullptr to clear.
  void set_hit_observer(std::function<void(const HitInfo&)> observer);

  /// When true, hits are printed to stderr (the paper's library prints
  /// "Conflict"/"Deadlock" from predicateGlobal).  Default off.
  void set_verbose(bool on);

  /// Installs per-name overrides (see core/spec.h) applied at trigger
  /// time: disable, pause override, order flip, refinement values.
  /// Normally called through BreakpointSpec::install().
  void set_spec(std::unordered_map<std::string, SpecOverride> spec);

  /// Attaches (or, with nullptr, detaches) the transport used by
  /// `scope=process-group` spec entries (core/transport.h).  Local
  /// breakpoints never consult it; with no transport attached a
  /// process-group entry falls back to local matching, so the hot path
  /// is untouched until a spec actually asks for distribution.  The
  /// transport is shared_ptr-held: in-flight remote postponements keep
  /// it alive across a detach.
  void set_transport(std::shared_ptr<TransportPolicy> transport);
  [[nodiscard]] std::shared_ptr<TransportPolicy> transport() const;

  /// Per-engine override of the global rt::TimeScale, applied to every
  /// nominal wait this engine performs (postponement timeout, order
  /// delay, guard cap).  <= 0 (the default) means "follow the global
  /// scale"; a positive value pins this engine regardless of concurrent
  /// TimeScale::set calls from other workers' trials.
  void set_time_scale(double scale) {
    time_scale_.store(scale, std::memory_order_relaxed);
  }
  [[nodiscard]] double time_scale() const {
    return time_scale_.load(std::memory_order_relaxed);
  }

 private:
  using SpecMap = std::unordered_map<std::string, SpecOverride>;

  /// Applies the active clock's policy to a nominal duration, with this
  /// engine's pinned scale (if any) as the hint: under a real/scaled
  /// clock this is the historical TimeScale multiply; under a virtual
  /// clock nominal durations pass through verbatim (waits are free).
  [[nodiscard]] rt::Duration scaled(rt::Duration nominal) const {
    return rt::clock_adjust(nominal,
                            time_scale_.load(std::memory_order_relaxed));
  }

  /// Lock-free find in the open-addressing intern table; null on miss.
  const internal::NameRecord* find_interned(std::string_view name,
                                            std::size_t hash) const;

  /// Record for `bt`, resolving and caching it on first call.
  const internal::NameRecord* record_for(BTrigger& bt);

  /// Snapshot of all records (in registration order) taken under
  /// intern_mu_ and released before any slot mutex is locked, so
  /// aggregation never holds a table-wide lock while locking slots.
  std::vector<const internal::NameRecord*> records_snapshot() const;

  /// Thin adapter over PatternMatcher::match_rendezvous (the matching
  /// algorithm itself lives in core/pattern.cc): on success it also
  /// bumps `hits`, stamps the per-rank obs events and notifies the slot
  /// cv.  Called with slot->mu held.
  bool try_match(internal::Slot& slot, BTrigger& bt, int rank, int arity,
                 bool scoped, std::shared_ptr<internal::GroupState>& group,
                 int& out_rank, HitInfo& info);

  /// Thin adapter over PatternMatcher::await_turn that applies this
  /// engine's time scale to the order delay and guard cap.  Called with
  /// no locks held.
  void await_turn(internal::GroupState& group, int rank, bool scoped) const;

  /// The pattern slow path: counter discipline identical to trigger()'s
  /// (calls/local_rejects/arrivals/ignored/bounded are the same hot
  /// counters), then a matcher dispatch under the slot mutex.  `entry`
  /// must carry a pattern; `site` is its index in the compiled spec.
  TriggerResult trigger_pattern(const internal::NameRecord& record,
                                BTrigger& bt, const SpecOverride& entry,
                                int site, std::chrono::microseconds timeout,
                                bool scoped, std::uint64_t ignore_first,
                                std::uint64_t bound, bool spec_bound);

  /// Process-group dispatch: the whole postponement/match/release
  /// protocol runs through `transport` (the broker), with the local
  /// refinements already applied by trigger().  Called with no locks
  /// held; does its own stats accounting on `record`'s slot.
  TriggerResult trigger_remote(const internal::NameRecord& record,
                               BTrigger& bt, int rank, int arity,
                               std::chrono::microseconds timeout, bool scoped,
                               std::uint64_t ignore_first, std::uint64_t bound,
                               TransportPolicy& transport);

  // ---- interned name table -------------------------------------------
  // Append-only open addressing: readers probe with plain acquire loads
  // (no lock, no RMW); first-time interning publishes under intern_mu_.
  // Past kInternCells/2 names the table stops growing and later names
  // fall back to the mutex-guarded overflow map (a documented, graceful
  // degradation — breakpoint-name sets are small and static in practice).
  static constexpr std::size_t kInternCells = 1u << 14;  // 16384

  std::array<std::atomic<internal::NameRecord*>, kInternCells> cells_{};
  mutable std::mutex intern_mu_;
  std::vector<std::unique_ptr<internal::NameRecord>> records_;  // owner
  std::unordered_map<std::string, internal::NameRecord*>
      overflow_;  // guarded by intern_mu_
  std::size_t probe_count_ = 0;  ///< records published into cells_

  // ---- spec overrides ------------------------------------------------
  // Installed spec maps are kept alive (retired, never freed while
  // triggers may read them) so records can point straight into them and
  // the hot path reads one atomic pointer instead of locking a map.
  mutable std::mutex spec_mu_;
  std::vector<std::shared_ptr<const SpecMap>> spec_generations_;

  mutable std::mutex observer_mu_;
  std::function<void(const HitInfo&)> observer_;
  bool verbose_ = false;  // guarded by observer_mu_

  // ---- process-group transport ----------------------------------------
  // Read once per process-group trigger (cold relative to the local
  // path); local triggers never touch it.
  mutable std::mutex transport_mu_;
  std::shared_ptr<TransportPolicy> transport_;  // guarded by transport_mu_

  const std::uint64_t tag_;          ///< process-unique, assigned at birth
  std::atomic<double> time_scale_{0.0};  ///< <= 0: follow rt::TimeScale
  RuntimeSettings settings_;  ///< engine-scoped knobs (core/config.h)
};

/// RAII binding of an engine to the calling thread: trigger calls made
/// by this thread — and by rt::Thread children spawned while the
/// binding is live — route to `engine` instead of Engine::instance().
class ScopedEngine {
 public:
  explicit ScopedEngine(Engine& engine) : scope_(&engine) {}

 private:
  rt::ScopedContext scope_;
};

}  // namespace cbp
