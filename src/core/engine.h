// The BTRIGGER engine (paper §3).
//
// One Slot per breakpoint name holds the Postponed set.  A thread whose
// local predicate holds either (a) finds complementary postponed threads
// whose joint predicate matches — a *hit*: a GroupState is created and
// every participant is released in rank order — or (b) joins the
// Postponed set itself and waits up to T, then times out and continues.
// Postponement is always bounded, so the mechanism cannot deadlock the
// program (paper §3, "we do not postpone the execution of a thread
// indefinitely").
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/btrigger.h"
#include "core/spec.h"
#include "core/stats.h"
#include "runtime/clock.h"
#include "runtime/thread_registry.h"

namespace cbp {

namespace internal {

/// Shared state of one breakpoint hit (a matched group of k threads).
/// Release protocol: rank r may proceed once, for every q < r,
///   released[q] && (uses_guard[q] ? acked[q]
///                                 : now >= release_time[q] + order_delay)
/// with everything capped by Config::guard_wait_cap() so a leaked guard
/// degrades to a delay, never a hang.
struct GroupState {
  explicit GroupState(int arity_in)
      : arity(arity_in),
        released(static_cast<std::size_t>(arity_in), 0),
        acked(static_cast<std::size_t>(arity_in), 0),
        uses_guard(static_cast<std::size_t>(arity_in), 0),
        release_time(static_cast<std::size_t>(arity_in)) {}

  std::mutex mu;
  std::condition_variable cv;
  const int arity;
  std::vector<char> released;               // guarded by mu
  std::vector<char> acked;                  // guarded by mu
  std::vector<char> uses_guard;             // guarded by mu
  std::vector<rt::TimePoint> release_time;  // guarded by mu
};

}  // namespace internal

/// Information passed to the hit observer (one call per hit, made by the
/// last-arriving participant, outside all engine locks).
struct HitInfo {
  std::string name;
  std::string description;
  int arity = 2;
  std::vector<rt::ThreadId> threads;  ///< indexed by rank
};

/// Process-wide breakpoint engine.  All public methods are thread-safe.
class Engine {
 public:
  static Engine& instance();

  /// Core entry point used by BTrigger::trigger_here*.
  /// `timeout` is nominal; rt::TimeScale is applied internally.
  TriggerResult trigger(BTrigger& bt, int rank, int arity,
                        std::chrono::microseconds timeout, bool scoped);

  /// Snapshot of the counters for one breakpoint name.
  [[nodiscard]] BreakpointStats stats(const std::string& name) const;

  /// Sum over all breakpoint names.
  [[nodiscard]] BreakpointStats total_stats() const;

  /// Names that have been seen so far.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Wakes every postponed thread with a "cancelled" (no-hit) outcome.
  /// Used by harnesses to cut short in-flight postponements.
  void cancel_all();

  /// cancel_all() plus forgetting all slots and statistics.  Callers must
  /// ensure no thread is concurrently inside trigger(); the harness calls
  /// this between experiment runs after joining all workers.
  void reset();

  /// Observer invoked once per hit (outside engine locks; CP.22).
  /// Pass nullptr to clear.
  void set_hit_observer(std::function<void(const HitInfo&)> observer);

  /// When true, hits are printed to stderr (the paper's library prints
  /// "Conflict"/"Deadlock" from predicateGlobal).  Default off.
  void set_verbose(bool on);

  /// Installs per-name overrides (see core/spec.h) applied at trigger
  /// time: disable, pause override, order flip, refinement values.
  /// Normally called through BreakpointSpec::install().
  void set_spec(std::unordered_map<std::string, SpecOverride> spec);

 private:
  Engine() = default;

  struct Waiter {
    BTrigger* trigger = nullptr;
    rt::ThreadId tid = 0;
    int rank = 0;
    int arity = 2;
    bool scoped = false;
    bool matched = false;    // guarded by slot mutex
    bool cancelled = false;  // guarded by slot mutex
    int matched_rank = -1;
    std::shared_ptr<internal::GroupState> group;
  };

  struct Slot {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<Waiter*> postponed;  // guarded by mu
    BreakpointStats stats;           // guarded by mu
  };

  std::shared_ptr<Slot> slot_for(const std::string& name);

  /// Tries to assemble a full group around `bt` from `slot->postponed`.
  /// Called with slot->mu held.  On success fills `group`, marks waiters
  /// matched, notifies them, and returns the arriving thread's rank slot
  /// assignment via `out_rank`; collects hit info for the observer.
  bool try_match(Slot& slot, BTrigger& bt, int rank, int arity, bool scoped,
                 std::shared_ptr<internal::GroupState>& group, int& out_rank,
                 HitInfo& info);

  /// Rank-order release protocol; returns after this thread is allowed to
  /// proceed.  Called with no locks held.
  static void await_turn(internal::GroupState& group, int rank, bool scoped);

  mutable std::mutex map_mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;

  mutable std::mutex observer_mu_;
  std::function<void(const HitInfo&)> observer_;
  bool verbose_ = false;  // guarded by observer_mu_

  mutable std::mutex spec_mu_;
  std::unordered_map<std::string, SpecOverride> spec_;  // guarded by spec_mu_
};

}  // namespace cbp
