// TransportPolicy: the engine/transport seam for distributed breakpoints.
//
// The paper's BTRIGGER coordinates exactly two threads in one process;
// DDB-style source-level debugging of real services needs pause points
// that span *processes*.  The seam is deliberately narrow: local
// dispatch keeps the in-process slot/snapshot path untouched (the
// cached spec-disabled trigger stays two dependent atomic loads), and
// only a spec entry marked `scope=process-group` routes its
// arrival/postpone/match/release protocol through a TransportPolicy —
// in practice broker::BrokerClient, which speaks a length-prefixed
// wire protocol to the per-machine trigger broker (src/broker).
//
// Semantics of a remote trigger, mirroring §3 with the broker playing
// the slot mutex's role:
//
//   * the *local* predicate and the ignore_first/bound refinements are
//     evaluated in-process, against this engine's own counters — each
//     process keeps its own warm-up window and hit budget, exactly as
//     if the paper's library were loaded into each process separately;
//   * the *global* predicate cannot be evaluated across address spaces,
//     so remote matching is by (name, rank, arity) identity alone.
//     Cross-process replicas express their joint condition through
//     local predicates over shared state (shared mmap), which is how
//     the pre-fork httpdlike replica phrases its scoreboard race;
//   * postponement timeouts are enforced broker-side (the pause is
//     bounded even if this process stalls), with a client-side real-
//     time failsafe so a dead broker can never hang the caller;
//   * release is rank-ordered by broker grants.  A scoped hit defers
//     its DONE to the OrderingGuard's release via `complete`; a plain
//     hit completes immediately, so grant order is release order;
//   * a participant whose peer process dies mid-protocol is released
//     with kPeerLost — the distributed failure mode the in-process
//     engine never sees — and the engine records it in
//     BreakpointStats::peer_lost.
//
// Remote waits are kernel waits: a process-group breakpoint requires
// the real or scaled clock (a VirtualClock cannot schedule a foreign
// process).  Engine::trigger falls back to local matching when no
// transport is attached or a virtual clock is bound.
#pragma once

#include <chrono>
#include <functional>
#include <string>

namespace cbp {

/// What the engine asks a transport to coordinate (one postponement).
struct RemoteTriggerRequest {
  std::string name;   ///< breakpoint name (the broker's matching key)
  int rank = 0;       ///< declared rank in [0, arity)
  int arity = 2;
  /// Postponement bound T, already engine-scaled (real milliseconds).
  std::chrono::milliseconds timeout{100};
  bool scoped = false;  ///< defer DONE to the OrderingGuard release
};

/// Terminal outcome of a remote postponement.
enum class RemoteOutcome : unsigned char {
  kTimeout,    ///< parked the full bound without a match
  kHit,        ///< matched and granted in rank order
  kPeerLost,   ///< matched, but a peer process died before completing
  kCancelled,  ///< cancelled (broker shutdown or explicit cancel)
  kError,      ///< transport failure (broker unreachable / protocol)
};

struct RemoteTriggerResult {
  RemoteOutcome outcome = RemoteOutcome::kError;
  int rank = -1;  ///< rank assigned by the matcher (valid on a hit)
  /// Set on a scoped hit: the engine wires it into the OrderingGuard so
  /// destroying/releasing the guard sends the DONE that lets the next
  /// rank's process proceed.  Null otherwise.
  std::function<void()> complete;

  [[nodiscard]] bool hit() const {
    return outcome == RemoteOutcome::kHit ||
           outcome == RemoteOutcome::kPeerLost;
  }
};

/// Abstract transport for process-group breakpoints.  Implementations
/// must be thread-safe: many threads of one engine may hold concurrent
/// remote postponements.
class TransportPolicy {
 public:
  virtual ~TransportPolicy() = default;

  /// Blocks the calling thread through one full remote postponement
  /// (arrive → park → match/timeout → grant).  Never blocks forever:
  /// implementations bound the wait by `request.timeout` plus a grant
  /// slack even when the broker misbehaves.
  virtual RemoteTriggerResult trigger_remote(
      const RemoteTriggerRequest& request) = 0;
};

}  // namespace cbp
