// Experiment driver: repeated runs, empirical bug probability, runtime
// overhead, and mean-time-to-error — the measurements behind the
// paper's Tables 1 and 2 — plus a plain-text table renderer.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "apps/replica.h"

namespace cbp::harness {

using Runner = std::function<apps::RunOutcome(const apps::RunOptions&)>;

/// Aggregate of N independent runs of one experiment configuration.
struct RepeatedResult {
  int runs = 0;
  int buggy_runs = 0;      ///< runs whose artifact matched (or any bug)
  int hit_runs = 0;        ///< runs with >= 1 breakpoint hit
  double mean_runtime_s = 0.0;

  [[nodiscard]] double bug_probability() const {
    return runs == 0 ? 0.0 : static_cast<double>(buggy_runs) / runs;
  }
  [[nodiscard]] double hit_probability() const {
    return runs == 0 ? 0.0 : static_cast<double>(hit_runs) / runs;
  }
};

/// Runs `runner` `runs` times; each run gets a fresh engine (paper runs
/// are fresh processes) and seed base+i.  Counts a run as buggy when its
/// artifact is not kNone.
RepeatedResult run_repeated(const Runner& runner, apps::RunOptions options,
                            int runs);

/// Normal runtime vs with-breakpoints runtime (the paper's columns 3-5).
struct OverheadResult {
  double normal_s = 0.0;
  double with_ctr_s = 0.0;
  [[nodiscard]] double overhead_percent() const {
    return normal_s <= 0.0 ? 0.0
                           : 100.0 * (with_ctr_s - normal_s) / normal_s;
  }
};

OverheadResult measure_overhead(const Runner& runner,
                                apps::RunOptions options, int runs);

/// Mean time to error for the continuously-running server replicas
/// (Table 2): re-executes the workload until `errors` bugs have been
/// observed and averages the elapsed time per error.
struct MtteResult {
  double mtte_s = 0.0;
  int errors = 0;
  int iterations = 0;
};

MtteResult measure_mtte(const Runner& runner, apps::RunOptions options,
                        int errors_wanted, int max_iterations = 1000);

/// Minimal fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a probability like the paper ("1.00", "0.87").
std::string fmt_prob(double p);
/// Formats seconds with ms resolution.
std::string fmt_seconds(double s);
/// Formats a percentage ("5.5", "-6.8").
std::string fmt_percent(double p);

}  // namespace cbp::harness
