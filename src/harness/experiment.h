// Experiment driver: repeated runs, empirical bug probability, runtime
// overhead, and mean-time-to-error — the measurements behind the
// paper's Tables 1 and 2 — plus a plain-text table renderer.
//
// Two execution paths produce the same statistics:
//
//   * serial   — run_repeated / measure_mtte: one trial at a time on the
//     calling thread's engine (Engine::current()), reset between trials;
//   * parallel — run_repeated_parallel / measure_mtte_parallel: a worker
//     pool where every worker owns a *private* cbp::Engine (isolated
//     intern table, slots, stats, specs, observers) and binds it to its
//     thread tree via ScopedEngine + rt::Thread inheritance.
//
// Trial i always runs with seed base + i (base = the seed passed in via
// RunOptions), independent of which worker claims it, so the parallel
// schedule is reproducible and a trial's workload is identical to what
// the serial path would have run for the same index.  Per-trial verdicts
// are recorded in RepeatedResult::trials for seed-by-seed comparison;
// for the timing-sensitive replicas (where hardware contention can
// legitimately flip a marginal race) use the Wilson intervals
// (hit_probability_ci / bug_probability_ci) to compare serial and
// parallel runs statistically instead of exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "apps/replica.h"

namespace cbp::harness {

using Runner = std::function<apps::RunOutcome(const apps::RunOptions&)>;

/// Verdict of one trial (one fresh-engine run of the workload).
struct TrialOutcome {
  std::uint64_t seed = 0;
  bool buggy = false;  ///< artifact != kNone
  bool hit = false;    ///< >= 1 breakpoint hit on the trial's engine
  double runtime_seconds = 0.0;
};

/// Wilson score interval for a binomial proportion.
struct ProbabilityInterval {
  double low = 0.0;
  double high = 1.0;

  /// True when the two intervals intersect — the statistical
  /// "serial and parallel agree" check used by tests and CI.
  [[nodiscard]] bool overlaps(const ProbabilityInterval& other) const {
    return low <= other.high && other.low <= high;
  }
};

/// Wilson score interval for `successes` out of `trials` at normal
/// quantile `z` (1.96 = 95%).  {0, 1} when trials == 0.
ProbabilityInterval wilson_interval(int successes, int trials,
                                    double z = 1.96);

/// Aggregate of N independent runs of one experiment configuration.
struct RepeatedResult {
  int runs = 0;
  int buggy_runs = 0;      ///< runs whose artifact matched (or any bug)
  int hit_runs = 0;        ///< runs with >= 1 breakpoint hit
  double mean_runtime_s = 0.0;
  double wall_clock_s = 0.0;  ///< elapsed time for the whole batch
  std::vector<TrialOutcome> trials;  ///< indexed by trial (seed base + i)

  [[nodiscard]] double bug_probability() const {
    return runs == 0 ? 0.0 : static_cast<double>(buggy_runs) / runs;
  }
  [[nodiscard]] double hit_probability() const {
    return runs == 0 ? 0.0 : static_cast<double>(hit_runs) / runs;
  }
  /// 95% Wilson intervals (see wilson_interval): the statistical form of
  /// the two probabilities, for serial-vs-parallel equivalence checks.
  [[nodiscard]] ProbabilityInterval bug_probability_ci(double z = 1.96) const {
    return wilson_interval(buggy_runs, runs, z);
  }
  [[nodiscard]] ProbabilityInterval hit_probability_ci(double z = 1.96) const {
    return wilson_interval(hit_runs, runs, z);
  }
};

/// Runs `runner` `runs` times serially; each run gets a fresh engine
/// (paper runs are fresh processes) and seed base+i, where base is
/// `options.seed` as passed in.  Counts a run as buggy when its artifact
/// is not kNone.  Uses Engine::current(), so it may itself be run under
/// a ScopedEngine binding.
RepeatedResult run_repeated(const Runner& runner, apps::RunOptions options,
                            int runs);

/// Parallel form: `jobs` workers, each with a private engine, pull trial
/// indices from a shared counter.  Identical seed assignment (base+i by
/// trial index, not by worker), identical per-trial accounting; trials
/// merge into one RepeatedResult at the join barrier.  jobs <= 1 falls
/// back to the serial path.
RepeatedResult run_repeated_parallel(const Runner& runner,
                                     apps::RunOptions options, int runs,
                                     int jobs);

/// Normal runtime vs with-breakpoints runtime (the paper's columns 3-5).
struct OverheadResult {
  double normal_s = 0.0;
  double with_ctr_s = 0.0;
  [[nodiscard]] double overhead_percent() const {
    return normal_s <= 0.0 ? 0.0
                           : 100.0 * (with_ctr_s - normal_s) / normal_s;
  }
};

/// `jobs` > 1 runs each phase's trials through the parallel scheduler.
/// Per-run runtimes are measured inside the runner, so the ratio stays
/// meaningful under parallelism as long as workers don't oversubscribe
/// the machine.
OverheadResult measure_overhead(const Runner& runner,
                                apps::RunOptions options, int runs,
                                int jobs = 1);

/// Mean time to error for the continuously-running server replicas
/// (Table 2): re-executes the workload until `errors` bugs have been
/// observed and averages the elapsed time per error.
struct MtteResult {
  double mtte_s = 0.0;
  int errors = 0;
  int iterations = 0;
};

/// Serial MTTE; iteration i runs with seed base+i (base = options.seed).
MtteResult measure_mtte(const Runner& runner, apps::RunOptions options,
                        int errors_wanted, int max_iterations = 1000);

/// Parallel MTTE: workers with private engines claim iteration indices
/// (seed base+i) until the error budget or the iteration cap is hit.
/// In-flight iterations finish after the budget is reached, so
/// `iterations` may exceed the serial stopping point by up to jobs-1;
/// mtte_s is wall-clock elapsed over errors found, which is exactly what
/// parallelism improves.  jobs <= 1 falls back to the serial path.
MtteResult measure_mtte_parallel(const Runner& runner,
                                 apps::RunOptions options, int errors_wanted,
                                 int max_iterations, int jobs);

/// Minimal fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a probability like the paper ("1.00", "0.87").
std::string fmt_prob(double p);
/// Formats seconds with ms resolution.
std::string fmt_seconds(double s);
/// Formats a percentage ("5.5", "-6.8").
std::string fmt_percent(double p);

}  // namespace cbp::harness
