#include "harness/registry.h"

#include "apps/cache/cache.h"
#include "apps/collections/sync_collections.h"
#include "apps/compress/pbzip2.h"
#include "apps/crawler/crawler.h"
#include "apps/httpdlike/httpd.h"
#include "apps/kernels/kernels.h"
#include "apps/logging/async_appender.h"
#include "apps/logging/loggers.h"
#include "apps/minidb/minidb.h"
#include "apps/pool/object_pool.h"
#include "apps/strbuf/string_buffer.h"
#include "apps/swinglike/swing.h"
#include "apps/textindex/lucene.h"
#include "apps/webserver/jigsaw.h"

namespace cbp::harness {

using namespace std::chrono_literals;
using apps::RunOptions;
using apps::RunOutcome;

std::vector<Table1Case> table1_cases() {
  std::vector<Table1Case> cases;
  auto add = [&](std::string benchmark, std::string loc, std::string bug,
                 std::string error, double prob, std::string comment,
                 std::chrono::milliseconds pause, Runner runner,
                 double work_scale = 1.0) {
    cases.push_back(Table1Case{std::move(benchmark), std::move(loc),
                               std::move(bug), std::move(error), prob,
                               std::move(comment), pause, work_scale,
                               std::move(runner)});
  };

  // --- cache4j -------------------------------------------------------------
  add("cache4j", "3897", "race1", "", 1.00, "", 100ms,
      apps::cache::run_race1, /*work_scale=*/8);
  add("cache4j", "3897", "race2", "", 0.99, "", 100ms,
      apps::cache::run_race2, /*work_scale=*/8);
  add("cache4j", "3897", "race3", "", 1.00, "", 100ms,
      apps::cache::run_race3, /*work_scale=*/8);
  add("cache4j", "3897", "atomicity1", "", 1.00, "ignoreFirst=7200", 100ms,
      [](const RunOptions& options) {
        return apps::cache::run_atomicity1(options,
                                           apps::cache::kWarmupConstructions);
      });

  // --- hedc ----------------------------------------------------------------
  add("hedc", "29,947", "race1", "", 0.87, "wait=100ms", 100ms,
      apps::crawler::run_race1);
  add("hedc", "29,947", "race1", "", 1.00, "wait=1000ms", 1000ms,
      apps::crawler::run_race1);
  add("hedc", "29,947", "race2", "", 0.96, "wait=1000ms", 1000ms,
      apps::crawler::run_race2);

  // --- jigsaw ----------------------------------------------------------
  add("jigsaw", "160K", "deadlock1", "stall", 1.00, "", 100ms,
      apps::webserver::run_deadlock1);
  add("jigsaw", "160K", "deadlock2", "stall", 1.00, "", 100ms,
      apps::webserver::run_deadlock2);
  add("jigsaw", "160K", "missed-notify1", "stall", 1.00, "Meth. II", 100ms,
      apps::webserver::run_missed_notify1);
  add("jigsaw", "160K", "race1", "stall", 1.00, "", 100ms,
      apps::webserver::run_race1);
  add("jigsaw", "160K", "race2", "", 1.00, "", 100ms,
      apps::webserver::run_race2, /*work_scale=*/8);

  // --- log4j -----------------------------------------------------------
  add("log4j 1.2.13", "32,095", "race2", "", 1.00, "", 100ms,
      apps::logging::run_log4j_race2, /*work_scale=*/8);
  add("log4j 1.2.13", "32,095", "deadlock1", "stall", 1.00, "", 100ms,
      apps::logging::run_log4j_deadlock1);
  add("log4j 1.2.13", "32,095", "missed-notify1", "stall", 1.00, "Meth. II",
      100ms, apps::logging::run_missed_notify1);

  // --- java.util.logging -------------------------------------------------
  add("logging", "4250", "deadlock1", "stall", 1.00, "", 100ms,
      apps::logging::run_jul_deadlock1);

  // --- lucene --------------------------------------------------------------
  add("lucene", "171K", "deadlock1", "stall", 1.00, "", 100ms,
      apps::textindex::run_deadlock1);

  // --- moldyn --------------------------------------------------------------
  add("moldyn", "1290", "race1", "", 1.00, "bound=4", 100ms,
      [](const RunOptions& options) {
        return apps::kernels::run_moldyn_race1(
            options, apps::kernels::kMoldynRace1Bound);
      },
      /*work_scale=*/8);
  add("moldyn", "1290", "race2", "", 1.00, "bound=10", 100ms,
      [](const RunOptions& options) {
        return apps::kernels::run_moldyn_race2(
            options, apps::kernels::kMoldynRace2Bound);
      },
      /*work_scale=*/8);

  // --- montecarlo ---------------------------------------------------------
  add("montecarlo", "3560", "race1", "", 1.00, "bound=10", 100ms,
      [](const RunOptions& options) {
        return apps::kernels::run_montecarlo_race1(
            options, apps::kernels::kMontecarloBound);
      },
      /*work_scale=*/8);

  // --- pool ----------------------------------------------------------------
  add("pool", "11,025", "missed-notify1", "stall", 1.00, "Meth. II", 100ms,
      apps::pool::run_missed_notify1);

  // --- raytracer -----------------------------------------------------------
  add("raytracer", "1860", "race1", "test fail", 1.00, "", 100ms,
      apps::kernels::run_raytracer_race1, /*work_scale=*/8);
  add("raytracer", "1860", "race2", "test fail", 1.00, "", 100ms,
      apps::kernels::run_raytracer_race2, /*work_scale=*/8);
  add("raytracer", "1860", "race3", "", 1.00, "", 100ms,
      apps::kernels::run_raytracer_race3, /*work_scale=*/8);
  add("raytracer", "1860", "race4", "", 1.00, "", 100ms,
      apps::kernels::run_raytracer_race4, /*work_scale=*/8);

  // --- stringbuffer --------------------------------------------------------
  add("stringbuffer", "1320", "atomicity1", "exception", 1.00, "", 100ms,
      apps::strbuf::run_atomicity1);

  // --- swing ---------------------------------------------------------------
  add("swing", "422K", "deadlock1", "stall", 0.63, "wait=100ms", 100ms,
      [](const RunOptions& options) {
        apps::swinglike::SwingOptions swing;
        swing.base = options;
        swing.refined = true;
        return apps::swinglike::run_deadlock1(swing);
      });
  add("swing", "422K", "deadlock1", "stall", 0.99, "wait=1000ms", 1000ms,
      [](const RunOptions& options) {
        apps::swinglike::SwingOptions swing;
        swing.base = options;
        swing.refined = true;
        return apps::swinglike::run_deadlock1(swing);
      });

  // --- synchronized collections -------------------------------------------
  add("synchronizedList", "7913", "atomicity1", "exception", 1.00, "", 100ms,
      apps::collections::run_list_atomicity1);
  add("synchronizedList", "7913", "deadlock1", "stall", 1.00, "", 100ms,
      apps::collections::run_list_deadlock1);
  add("synchronizedMap", "8626", "atomicity1", "", 1.00, "", 100ms,
      apps::collections::run_map_atomicity1);
  add("synchronizedMap", "8626", "deadlock1", "stall", 1.00, "", 100ms,
      apps::collections::run_map_deadlock1);
  add("synchronizedSet", "8626", "atomicity1", "exception", 1.00, "", 100ms,
      apps::collections::run_set_atomicity1);
  add("synchronizedSet", "8626", "deadlock1", "stall", 1.00, "", 100ms,
      apps::collections::run_set_deadlock1);

  return cases;
}

std::vector<Table2Case> table2_cases() {
  std::vector<Table2Case> cases;
  cases.push_back(Table2Case{"pbzip2 0.9.4", "2.0K", "program crash", 1.2, 2,
                             "null pointer dereference",
                             apps::compress::run_crash});
  cases.push_back(Table2Case{"Apache httpd 2.0.45", "270K", "log corruption",
                             0.14, 1, "(Bug #25520)",
                             apps::httpdlike::run_log_corruption});
  cases.push_back(Table2Case{"Apache httpd 2.0.45", "270K", "server crash",
                             0.33, 3, "buffer overflow",
                             apps::httpdlike::run_buffer_overflow});
  cases.push_back(Table2Case{"MySQL 4.0.12", "526K", "log omission", 0.12, 2,
                             "(Bug #791)", apps::minidb::run_log_omission});
  cases.push_back(Table2Case{"MySQL 3.23.56", "468K", "log disorder", 0.065,
                             1, "(Bug #169)", apps::minidb::run_log_disorder});
  cases.push_back(Table2Case{"MySQL 4.0.19", "539K", "server crash", 2.67, 3,
                             "null pointer dereference (Bug #3596)",
                             apps::minidb::run_crash});
  return cases;
}

}  // namespace cbp::harness
