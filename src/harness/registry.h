// Registry of the paper's evaluation rows: every Table 1 (Java) and
// Table 2 (C/C++) entry mapped onto the corresponding replica runner,
// with the paper's reported values carried along so benches can print
// paper-vs-measured side by side.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cbp::harness {

/// One row of Table 1.
struct Table1Case {
  std::string benchmark;   ///< e.g. "cache4j"
  std::string paper_loc;   ///< the original program's LoC ("3897", "160K")
  std::string bug;         ///< "race1", "deadlock1", ...
  std::string error;       ///< "", "stall", "exception", "test fail"
  double paper_prob = 1.0; ///< the paper's "Prob." column
  std::string comment;     ///< "wait=100ms", "bound=4", "Meth. II", ...
  std::chrono::milliseconds pause{100};  ///< nominal T for this row
  double work_scale = 1.0;  ///< workload multiplier (longer base runtime)
  Runner runner;
};

/// One row of Table 2.
struct Table2Case {
  std::string benchmark;    ///< e.g. "MySQL 4.0.12"
  std::string paper_loc;
  std::string error;        ///< "program crash", "log omission", ...
  double paper_mtte_s = 0;  ///< the paper's MTTE column (seconds)
  int breakpoints = 1;      ///< the paper's #CBR column
  std::string comment;
  Runner runner;
};

std::vector<Table1Case> table1_cases();
std::vector<Table2Case> table2_cases();

}  // namespace cbp::harness
