#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "core/cbp.h"
#include "runtime/clock.h"

namespace cbp::harness {

RepeatedResult run_repeated(const Runner& runner, apps::RunOptions options,
                            int runs) {
  RepeatedResult result;
  result.runs = runs;
  double total_runtime = 0.0;
  auto& engine = Engine::instance();
  for (int i = 0; i < runs; ++i) {
    engine.reset();  // each run models a fresh process
    options.seed = static_cast<std::uint64_t>(i + 1);
    const apps::RunOutcome outcome = runner(options);
    if (outcome.buggy()) ++result.buggy_runs;
    if (engine.total_stats().hits > 0) ++result.hit_runs;
    total_runtime += outcome.runtime_seconds;
  }
  engine.reset();
  result.mean_runtime_s = runs == 0 ? 0.0 : total_runtime / runs;
  return result;
}

OverheadResult measure_overhead(const Runner& runner,
                                apps::RunOptions options, int runs) {
  OverheadResult result;
  apps::RunOptions normal = options;
  normal.breakpoints = false;
  result.normal_s = run_repeated(runner, normal, runs).mean_runtime_s;
  apps::RunOptions with_ctr = options;
  with_ctr.breakpoints = true;
  result.with_ctr_s = run_repeated(runner, with_ctr, runs).mean_runtime_s;
  return result;
}

MtteResult measure_mtte(const Runner& runner, apps::RunOptions options,
                        int errors_wanted, int max_iterations) {
  MtteResult result;
  auto& engine = Engine::instance();
  rt::Stopwatch clock;
  for (int i = 0; i < max_iterations && result.errors < errors_wanted; ++i) {
    engine.reset();
    options.seed = static_cast<std::uint64_t>(i + 1);
    const apps::RunOutcome outcome = runner(options);
    ++result.iterations;
    if (outcome.buggy()) ++result.errors;
  }
  engine.reset();
  result.mtte_s =
      result.errors == 0 ? 0.0 : clock.elapsed_seconds() / result.errors;
  return result;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 2;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      os << "  " << std::string(total, '-') << '\n';
    }
  }
}

std::string fmt_prob(double p) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%.2f", p);
  return buffer;
}

std::string fmt_seconds(double s) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", s);
  return buffer;
}

std::string fmt_percent(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", p);
  return buffer;
}

}  // namespace cbp::harness
