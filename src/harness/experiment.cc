#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <thread>

#include "core/cbp.h"
#include "model/probability.h"
#include "runtime/clock.h"
#include "runtime/thread_registry.h"
#include "runtime/vclock.h"

namespace cbp::harness {

ProbabilityInterval wilson_interval(int successes, int trials, double z) {
  // One implementation, owned by the model layer (placement shares it).
  const model::Interval w = model::wilson_interval(successes, trials, z);
  return {w.low, w.high};
}

namespace {

/// Shared accounting: folds the per-trial verdicts into the aggregate
/// counters (same arithmetic for the serial and parallel paths).
void finalize(RepeatedResult& result) {
  double total_runtime = 0.0;
  for (const TrialOutcome& trial : result.trials) {
    if (trial.buggy) ++result.buggy_runs;
    if (trial.hit) ++result.hit_runs;
    total_runtime += trial.runtime_seconds;
  }
  result.mean_runtime_s =
      result.runs == 0 ? 0.0 : total_runtime / result.runs;
}

/// Runs the replica under the trial's clock policy (options.clock).
/// kVirtual gets a *fresh* discrete-event clock per trial — trials stay
/// independent and deterministic regardless of which worker runs them —
/// bound to this thread and inherited by the replica's rt::Thread tree.
apps::RunOutcome run_with_clock(const Runner& runner,
                                apps::RunOptions& options) {
  switch (options.clock) {
    case rt::ClockMode::kVirtual: {
      rt::VirtualClock vclock;
      rt::ScopedClock bind(&vclock);
      return runner(options);
    }
    case rt::ClockMode::kReal: {
      rt::ScopedClock bind(&rt::real_clock());
      return runner(options);
    }
    case rt::ClockMode::kScaled:
      break;  // historical behaviour: global TimeScale, no binding
  }
  return runner(options);
}

/// One trial against `engine`: fresh reset, deterministic seed, verdict.
TrialOutcome run_one_trial(Engine& engine, const Runner& runner,
                           apps::RunOptions& options, std::uint64_t seed) {
  engine.reset();  // each trial models a fresh process
  options.seed = seed;
  const apps::RunOutcome outcome = run_with_clock(runner, options);
  TrialOutcome trial;
  trial.seed = seed;
  trial.buggy = outcome.buggy();
  trial.hit = engine.total_stats().hits > 0;
  trial.runtime_seconds = outcome.runtime_seconds;
  return trial;
}

}  // namespace

RepeatedResult run_repeated(const Runner& runner, apps::RunOptions options,
                            int runs) {
  RepeatedResult result;
  result.runs = runs;
  result.trials.resize(static_cast<std::size_t>(std::max(0, runs)));
  Engine& engine = Engine::current();
  const std::uint64_t base = options.seed;
  rt::Stopwatch wall;
  for (int i = 0; i < runs; ++i) {
    result.trials[static_cast<std::size_t>(i)] =
        run_one_trial(engine, runner, options,
                      base + static_cast<std::uint64_t>(i));
  }
  engine.reset();
  result.wall_clock_s = wall.elapsed_seconds();
  finalize(result);
  return result;
}

RepeatedResult run_repeated_parallel(const Runner& runner,
                                     apps::RunOptions options, int runs,
                                     int jobs) {
  jobs = std::min(jobs, runs);
  if (jobs <= 1) return run_repeated(runner, options, runs);

  RepeatedResult result;
  result.runs = runs;
  result.trials.resize(static_cast<std::size_t>(runs));
  const std::uint64_t base = options.seed;
  std::atomic<int> next_trial{0};
  rt::ParallelRegion region;  // pin the thread-id epoch for the duration
  rt::Stopwatch wall;

  // Workers are plain std::threads (no context inheritance wanted here:
  // each binds its own private engine).  Trial index -> seed is fixed
  // before any worker starts, so which worker claims a trial changes
  // nothing about the trial itself.  trials[] slots are written by
  // exactly one worker and read only after the join barrier.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&, options]() mutable {
      Engine engine;
      ScopedEngine bind(engine);
      for (int i = next_trial.fetch_add(1, std::memory_order_relaxed);
           i < runs; i = next_trial.fetch_add(1, std::memory_order_relaxed)) {
        result.trials[static_cast<std::size_t>(i)] =
            run_one_trial(engine, runner, options,
                          base + static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.wall_clock_s = wall.elapsed_seconds();
  finalize(result);
  return result;
}

OverheadResult measure_overhead(const Runner& runner,
                                apps::RunOptions options, int runs,
                                int jobs) {
  OverheadResult result;
  apps::RunOptions normal = options;
  normal.breakpoints = false;
  result.normal_s =
      run_repeated_parallel(runner, normal, runs, jobs).mean_runtime_s;
  apps::RunOptions with_ctr = options;
  with_ctr.breakpoints = true;
  result.with_ctr_s =
      run_repeated_parallel(runner, with_ctr, runs, jobs).mean_runtime_s;
  return result;
}

MtteResult measure_mtte(const Runner& runner, apps::RunOptions options,
                        int errors_wanted, int max_iterations) {
  MtteResult result;
  Engine& engine = Engine::current();
  const std::uint64_t base = options.seed;
  rt::Stopwatch clock;
  for (int i = 0; i < max_iterations && result.errors < errors_wanted; ++i) {
    engine.reset();
    options.seed = base + static_cast<std::uint64_t>(i);
    const apps::RunOutcome outcome = run_with_clock(runner, options);
    ++result.iterations;
    if (outcome.buggy()) ++result.errors;
  }
  engine.reset();
  result.mtte_s =
      result.errors == 0 ? 0.0 : clock.elapsed_seconds() / result.errors;
  return result;
}

MtteResult measure_mtte_parallel(const Runner& runner,
                                 apps::RunOptions options, int errors_wanted,
                                 int max_iterations, int jobs) {
  jobs = std::min(jobs, max_iterations);
  if (jobs <= 1) {
    return measure_mtte(runner, options, errors_wanted, max_iterations);
  }

  MtteResult result;
  const std::uint64_t base = options.seed;
  std::atomic<int> next_iteration{0};
  std::atomic<int> errors{0};
  std::atomic<int> iterations{0};
  rt::ParallelRegion region;
  rt::Stopwatch clock;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&, options]() mutable {
      Engine engine;
      ScopedEngine bind(engine);
      while (errors.load(std::memory_order_relaxed) < errors_wanted) {
        const int i = next_iteration.fetch_add(1, std::memory_order_relaxed);
        if (i >= max_iterations) break;
        engine.reset();
        options.seed = base + static_cast<std::uint64_t>(i);
        const apps::RunOutcome outcome = run_with_clock(runner, options);
        iterations.fetch_add(1, std::memory_order_relaxed);
        if (outcome.buggy()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  result.errors = std::min(errors.load(), errors_wanted);
  result.iterations = iterations.load();
  result.mtte_s =
      result.errors == 0 ? 0.0 : clock.elapsed_seconds() / result.errors;
  return result;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    os << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 2;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
      }
      os << "  " << std::string(total, '-') << '\n';
    }
  }
}

std::string fmt_prob(double p) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%.2f", p);
  return buffer;
}

std::string fmt_seconds(double s) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", s);
  return buffer;
}

std::string fmt_percent(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", p);
  return buffer;
}

}  // namespace cbp::harness
