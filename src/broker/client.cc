#include "broker/client.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "broker/wire.h"

namespace cbp::broker {

using SteadyClock = std::chrono::steady_clock;

struct BrokerClient::Impl {
  /// One in-flight postponement, keyed by token.  All fields guarded by
  /// mu; a single broadcast cv is plenty at breakpoint frequencies.
  struct Pending {
    bool granted = false;
    bool timed_out = false;
    bool cancelled = false;
    bool failed = false;
    int rank = -1;
    GrantOutcome outcome = GrantOutcome::kOk;
  };

  int fd = -1;
  std::thread reader;

  std::mutex write_mu;
  bool write_closed = false;  // guarded by write_mu

  std::mutex mu;
  std::condition_variable cv;
  std::unordered_map<std::uint64_t, Pending> pending;  // guarded by mu
  bool reader_dead = false;                            // guarded by mu
  bool shutting_down = false;                          // guarded by mu

  std::atomic<std::uint64_t> next_token{1};

  bool send(const Message& m) {
    std::scoped_lock lock(write_mu);
    if (write_closed || fd < 0) return false;
    return write_frame(fd, m);
  }

  void reader_loop() {
    for (;;) {
      std::optional<Message> msg = read_frame(fd);
      if (!msg) break;  // EOF, error, or malformed frame
      switch (msg->type) {
        case MsgType::kMatched: {
          // Informational: the grant is what releases the caller.
          std::scoped_lock lock(mu);
          auto it = pending.find(msg->token);
          if (it != pending.end()) it->second.rank = msg->rank;
          break;
        }
        case MsgType::kGrant: {
          bool orphaned = false;
          {
            std::scoped_lock lock(mu);
            auto it = pending.find(msg->token);
            if (it == pending.end()) {
              orphaned = true;  // failsafe already gave up on this token
            } else {
              it->second.granted = true;
              it->second.rank = msg->rank;
              it->second.outcome = static_cast<GrantOutcome>(msg->flags);
              cv.notify_all();
            }
          }
          if (orphaned) {
            // Complete on the group's behalf so the remaining ranks
            // advance instead of waiting for the broker's grant cap.
            Message done;
            done.type = MsgType::kDone;
            done.token = msg->token;
            send(done);
          }
          break;
        }
        case MsgType::kTimeout: {
          std::scoped_lock lock(mu);
          auto it = pending.find(msg->token);
          if (it != pending.end()) {
            it->second.timed_out = true;
            cv.notify_all();
          }
          break;
        }
        case MsgType::kCancelled: {
          std::scoped_lock lock(mu);
          auto it = pending.find(msg->token);
          if (it != pending.end()) {
            it->second.cancelled = true;
            cv.notify_all();
          }
          break;
        }
        default:
          break;  // client-only or unknown: ignore
      }
    }
    // Broker gone: every in-flight and future postponement fails fast.
    std::scoped_lock lock(mu);
    reader_dead = true;
    for (auto& [token, p] : pending) p.failed = true;
    cv.notify_all();
  }
};

std::shared_ptr<BrokerClient> BrokerClient::connect(
    const std::string& socket_path, std::chrono::milliseconds retry_for,
    std::uint64_t engine_tag) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) return nullptr;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const auto deadline = SteadyClock::now() + retry_for;
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    // The broker may simply not be listening yet (workers fork before
    // the parent starts it): retry until the window closes.
    if (SteadyClock::now() >= deadline) return nullptr;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  auto client = std::shared_ptr<BrokerClient>(new BrokerClient());
  client->impl_ = std::make_unique<Impl>();
  client->impl_->fd = fd;

  Message hello;
  hello.type = MsgType::kHello;
  hello.a = static_cast<std::uint64_t>(::getpid());
  hello.b = engine_tag;
  if (!client->impl_->send(hello)) {
    ::close(fd);
    client->impl_->fd = -1;
    return nullptr;
  }

  Impl* impl = client->impl_.get();  // joined before impl_ is destroyed
  impl->reader = std::thread([impl] { impl->reader_loop(); });
  return client;
}

BrokerClient::~BrokerClient() { shutdown(); }

void BrokerClient::shutdown() {
  if (!impl_) return;
  {
    std::scoped_lock lock(impl_->mu);
    if (impl_->shutting_down) return;
    impl_->shutting_down = true;
  }
  {
    std::scoped_lock lock(impl_->write_mu);
    impl_->write_closed = true;
  }
  if (impl_->fd >= 0) ::shutdown(impl_->fd, SHUT_RDWR);  // wakes the reader
  if (impl_->reader.joinable()) impl_->reader.join();
  if (impl_->fd >= 0) {
    ::close(impl_->fd);
    impl_->fd = -1;
  }
}

bool BrokerClient::connected() const {
  if (!impl_) return false;
  std::scoped_lock lock(impl_->mu);
  return !impl_->reader_dead && !impl_->shutting_down;
}

RemoteTriggerResult BrokerClient::trigger_remote(
    const RemoteTriggerRequest& request) {
  RemoteTriggerResult result;  // defaults to kError
  if (!impl_) return result;

  const std::uint64_t token =
      impl_->next_token.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(impl_->mu);
    if (impl_->reader_dead || impl_->shutting_down) return result;
    impl_->pending.emplace(token, Impl::Pending{});
  }

  Message arrive;
  arrive.type = MsgType::kArrive;
  arrive.token = token;
  arrive.a = static_cast<std::uint64_t>(request.timeout.count());
  arrive.rank = request.rank;
  arrive.arity = request.arity;
  arrive.flags = request.scoped ? kFlagScoped : 0;
  arrive.name = request.name;
  if (!impl_->send(arrive)) {
    std::scoped_lock lock(impl_->mu);
    impl_->pending.erase(token);
    return result;
  }

  // Failsafe: the broker owns the timeout, but a wedged broker must
  // turn into kError here, never a hang (core/transport.h).
  const auto deadline = SteadyClock::now() + request.timeout + kGrantSlack;

  Impl::Pending snapshot;
  {
    std::unique_lock lock(impl_->mu);
    const bool terminal = impl_->cv.wait_until(lock, deadline, [&] {
      auto it = impl_->pending.find(token);
      if (it == impl_->pending.end()) return true;  // defensive
      const Impl::Pending& p = it->second;
      return p.granted || p.timed_out || p.cancelled || p.failed;
    });
    auto it = impl_->pending.find(token);
    if (it != impl_->pending.end()) {
      snapshot = it->second;
      impl_->pending.erase(it);
    } else {
      snapshot.failed = true;
    }
    if (!terminal) {
      // Failsafe expired: disown the token (a late GRANT is answered
      // with DONE by the reader) and tell the broker we are gone.
      lock.unlock();
      Message cancel;
      cancel.type = MsgType::kCancel;
      cancel.token = token;
      impl_->send(cancel);
      return result;
    }
  }

  if (snapshot.failed) return result;
  if (snapshot.timed_out) {
    result.outcome = RemoteOutcome::kTimeout;
    return result;
  }
  if (snapshot.cancelled) {
    result.outcome = RemoteOutcome::kCancelled;
    return result;
  }

  result.rank = snapshot.rank;
  result.outcome = snapshot.outcome == GrantOutcome::kPeerLost
                       ? RemoteOutcome::kPeerLost
                       : RemoteOutcome::kHit;
  if (request.scoped) {
    // DONE is deferred to the OrderingGuard release; the callback keeps
    // the client alive even if the engine detaches the transport.
    auto self = shared_from_this();
    result.complete = [self, token] {
      Message done;
      done.type = MsgType::kDone;
      done.token = token;
      self->impl_->send(done);
    };
  } else {
    Message done;
    done.type = MsgType::kDone;
    done.token = token;
    impl_->send(done);
  }
  return result;
}

}  // namespace cbp::broker
