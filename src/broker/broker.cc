#include "broker/broker.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "broker/wire.h"
#include "runtime/channel.h"

namespace cbp::broker {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Sanity bound on declared arity (matches the engine's practical use;
/// a wild value is a protocol error, not a resource commitment).
constexpr int kMaxArity = 64;

/// Idle tick when no deadline is pending: bounds how stale the timer
/// sweep can get if a wakeup is ever lost.
constexpr std::chrono::milliseconds kIdleTick{200};

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

struct Broker::Impl {
  explicit Impl(BrokerOptions opts) : options(std::move(opts)) {}

  // ---- events: IO thread -> match thread --------------------------------

  struct Event {
    enum class Kind : std::uint8_t { kMessage, kDisconnect };
    Kind kind = Kind::kMessage;
    std::uint64_t conn_id = 0;
    Message msg;
  };

  // ---- match-thread protocol state --------------------------------------

  struct Arrival {
    std::uint64_t conn_id = 0;
    std::uint64_t token = 0;
    int rank = 0;
    int arity = 2;
    bool scoped = false;
    SteadyClock::time_point deadline;
    std::uint64_t seq = 0;  ///< arrival order (rank tie-break, like §3)
  };

  struct Member {
    std::uint64_t conn_id = 0;
    std::uint64_t token = 0;
    bool done = false;  ///< sent DONE, was force-advanced past, or lost
    bool lost = false;  ///< its connection died mid-protocol
  };

  struct Group {
    std::string name;
    std::vector<Member> members;  ///< indexed by assigned rank
    int granted = -1;             ///< rank currently holding the grant
    SteadyClock::time_point grant_deadline;
  };

  BrokerOptions options;

  mutable std::mutex stats_mu;
  BrokerStats stats;  // guarded by stats_mu

  int listen_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::atomic<bool> stopping{false};
  bool started = false;

  std::thread io_thread;
  std::thread match_thread;

  rt::Channel<Event> events{1024};

  // Outbound frames queued by the match thread; the IO thread (sole fd
  // owner) drains them into per-connection buffers after each wakeup.
  std::mutex out_mu;
  std::vector<std::pair<std::uint64_t, Message>> pending_out;  // by out_mu

  // ---- helpers shared by both threads -----------------------------------

  void bump(std::uint64_t BrokerStats::* field, std::uint64_t by = 1) {
    std::scoped_lock lock(stats_mu);
    stats.*field += by;
  }

  void wake() {
    const char byte = 0;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    while (::write(wake_w, &byte, 1) < 0 && errno == EINTR) {
    }
  }

  void send_to(std::uint64_t conn_id, const Message& m) {
    {
      std::scoped_lock lock(out_mu);
      pending_out.emplace_back(conn_id, m);
    }
    wake();
  }

  // ---- IO thread ---------------------------------------------------------

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::vector<std::uint8_t> outbuf;
  };

  void io_loop() {
    std::map<std::uint64_t, Conn> conns;
    std::uint64_t next_conn_id = 1;

    auto disconnect = [&](std::uint64_t id) {
      auto it = conns.find(id);
      if (it == conns.end()) return;
      ::close(it->second.fd);
      conns.erase(it);
      events.send(Event{Event::Kind::kDisconnect, id, {}});
    };

    // Parses complete frames out of a connection's input buffer.
    // False on a protocol error (caller disconnects).
    auto drain_frames = [&](std::uint64_t id, Conn& conn) -> bool {
      std::size_t offset = 0;
      while (conn.inbuf.size() - offset >= 4) {
        const std::uint8_t* p = conn.inbuf.data() + offset;
        const std::uint32_t payload =
            static_cast<std::uint32_t>(p[0]) |
            (static_cast<std::uint32_t>(p[1]) << 8) |
            (static_cast<std::uint32_t>(p[2]) << 16) |
            (static_cast<std::uint32_t>(p[3]) << 24);
        if (payload < kHeaderSize || payload > kMaxFrame) {
          bump(&BrokerStats::protocol_errors);
          return false;
        }
        if (conn.inbuf.size() - offset < 4 + payload) break;  // partial
        std::optional<Message> msg = decode(p + 4, payload);
        if (!msg) {
          bump(&BrokerStats::protocol_errors);
          return false;
        }
        events.send(Event{Event::Kind::kMessage, id, std::move(*msg)});
        offset += 4 + payload;
      }
      if (offset > 0) {
        conn.inbuf.erase(conn.inbuf.begin(),
                         conn.inbuf.begin() +
                             static_cast<std::ptrdiff_t>(offset));
      }
      return true;
    };

    auto flush_out = [&](std::uint64_t id, Conn& conn) -> bool {
      while (!conn.outbuf.empty()) {
        const ssize_t n =
            ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
        if (n > 0) {
          conn.outbuf.erase(conn.outbuf.begin(),
                            conn.outbuf.begin() + n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
        return false;  // peer gone mid-write
      }
      (void)id;
      return true;
    };

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_ids;  // parallel to fds; 0 = not a conn

    while (!stopping.load(std::memory_order_acquire)) {
      fds.clear();
      fd_ids.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      fd_ids.push_back(0);
      fds.push_back({wake_r, POLLIN, 0});
      fd_ids.push_back(0);
      for (const auto& [id, conn] : conns) {
        short want = POLLIN;
        if (!conn.outbuf.empty()) want |= POLLOUT;
        fds.push_back({conn.fd, want, 0});
        fd_ids.push_back(id);
      }

      if (::poll(fds.data(), fds.size(), -1) < 0) {
        if (errno == EINTR) continue;
        break;  // unrecoverable poll failure
      }

      // Self-pipe: drain whatever woke us.
      if (fds[1].revents & POLLIN) {
        char buf[64];
        while (::read(wake_r, buf, sizeof(buf)) > 0) {
        }
      }

      // Match-thread output: append to connection buffers, then write
      // eagerly (POLLOUT is only needed for the EAGAIN tail).
      {
        std::vector<std::pair<std::uint64_t, Message>> out;
        {
          std::scoped_lock lock(out_mu);
          out.swap(pending_out);
        }
        for (auto& [id, msg] : out) {
          auto it = conns.find(id);
          if (it == conns.end()) continue;  // recipient already gone
          const std::vector<std::uint8_t> frame = encode(msg);
          it->second.outbuf.insert(it->second.outbuf.end(), frame.begin(),
                                   frame.end());
        }
      }

      if (fds[0].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept(listen_fd, nullptr, nullptr);
          if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN: accepted everything pending
          }
          if (!set_nonblocking(fd)) {
            ::close(fd);
            continue;
          }
          conns[next_conn_id++].fd = fd;
          bump(&BrokerStats::connections);
        }
      }

      std::vector<std::uint64_t> dead;
      for (std::size_t i = 2; i < fds.size(); ++i) {
        const std::uint64_t id = fd_ids[i];
        auto it = conns.find(id);
        if (it == conns.end()) continue;
        Conn& conn = it->second;
        bool alive = true;
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
          bool eof = false;
          for (;;) {
            std::uint8_t buf[4096];
            const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
            if (n > 0) {
              conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
              continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            eof = true;  // EOF or hard error
            break;
          }
          // Drain frames received *before* the EOF even when both land
          // in one poll round: a client that sends its final DONE and
          // immediately closes must complete cleanly, not count as a
          // lost peer (the disconnect event follows the drained frames).
          alive = drain_frames(id, conn) && !eof;
        }
        if (alive && !conn.outbuf.empty()) alive = flush_out(id, conn);
        if (!alive) dead.push_back(id);
      }
      for (std::uint64_t id : dead) disconnect(id);
    }

    // Shutdown: every client sees EOF; closing the event channel is the
    // match thread's stop signal (it drains queued events first).
    for (auto& [id, conn] : conns) ::close(conn.fd);
    conns.clear();
    events.close();
  }

  // ---- match thread ------------------------------------------------------

  void match_loop() {
    std::unordered_map<std::string, std::vector<Arrival>> postponed;
    std::unordered_map<std::uint64_t, Group> groups;
    // (conn_id, token) -> group id, for DONE routing.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> in_group;
    std::uint64_t next_group_id = 1;
    std::uint64_t next_seq = 1;

    auto erase_group = [&](std::uint64_t gid) {
      auto it = groups.find(gid);
      if (it == groups.end()) return;
      for (const Member& m : it->second.members) {
        in_group.erase({m.conn_id, m.token});
      }
      groups.erase(it);
    };

    // Grants the next undone rank (skipping lost/forced members) or
    // retires the group.  `outcome` is what the grantee is told; a lost
    // member anywhere in the group upgrades it to kPeerLost.
    auto grant_next = [&](std::uint64_t gid, GrantOutcome outcome) {
      auto it = groups.find(gid);
      if (it == groups.end()) return;
      Group& g = it->second;
      const bool any_lost = std::any_of(
          g.members.begin(), g.members.end(),
          [](const Member& m) { return m.lost; });
      if (any_lost && outcome == GrantOutcome::kOk) {
        outcome = GrantOutcome::kPeerLost;
      }
      for (int r = g.granted + 1; r < static_cast<int>(g.members.size());
           ++r) {
        Member& m = g.members[static_cast<std::size_t>(r)];
        if (m.done) continue;
        g.granted = r;
        g.grant_deadline = SteadyClock::now() + options.grant_cap;
        Message grant;
        grant.type = MsgType::kGrant;
        grant.token = m.token;
        grant.rank = r;
        grant.flags = static_cast<std::uint8_t>(outcome);
        send_to(m.conn_id, grant);
        return;
      }
      erase_group(gid);
    };

    auto form_group = [&](const std::string& name,
                          std::vector<std::pair<int, Arrival>> ranked) {
      const std::uint64_t gid = next_group_id++;
      Group g;
      g.name = name;
      g.members.resize(ranked.size());
      for (const auto& [r, a] : ranked) {
        Member& m = g.members[static_cast<std::size_t>(r)];
        m.conn_id = a.conn_id;
        m.token = a.token;
        in_group[{a.conn_id, a.token}] = gid;
        Message matched;
        matched.type = MsgType::kMatched;
        matched.token = a.token;
        matched.a = gid;
        matched.rank = r;
        matched.arity = static_cast<std::int32_t>(ranked.size());
        send_to(a.conn_id, matched);
      }
      groups.emplace(gid, std::move(g));
      bump(&BrokerStats::matches);
      grant_next(gid, GrantOutcome::kOk);
    };

    auto handle_arrive = [&](std::uint64_t conn_id, const Message& msg) {
      if (msg.arity < 2 || msg.arity > kMaxArity || msg.rank < 0 ||
          msg.rank >= msg.arity || msg.name.empty()) {
        bump(&BrokerStats::protocol_errors);
        Message nak;
        nak.type = MsgType::kCancelled;
        nak.token = msg.token;
        send_to(conn_id, nak);  // never leave the caller parked
        return;
      }
      bump(&BrokerStats::arrivals);
      Arrival arriving;
      arriving.conn_id = conn_id;
      arriving.token = msg.token;
      arriving.rank = msg.rank;
      arriving.arity = msg.arity;
      arriving.scoped = (msg.flags & kFlagScoped) != 0;
      arriving.deadline =
          SteadyClock::now() + std::chrono::milliseconds(msg.a);
      arriving.seq = next_seq++;

      std::vector<Arrival>& waiting = postponed[msg.name];

      if (msg.arity == 2) {
        // Prefer a peer from a *different* process (the reason the
        // breakpoint is process-group scoped), fall back to any other
        // postponement; earliest-postponed wins ties.
        auto pick = [&](bool other_conn_only) -> std::size_t {
          for (std::size_t i = 0; i < waiting.size(); ++i) {
            if (waiting[i].arity != 2) continue;
            if (other_conn_only && waiting[i].conn_id == conn_id) continue;
            return i;
          }
          return waiting.size();
        };
        std::size_t idx = pick(true);
        if (idx == waiting.size()) idx = pick(false);
        if (idx == waiting.size()) {
          waiting.push_back(arriving);
          return;
        }
        Arrival peer = waiting[idx];
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(idx));
        // Effective ranks mirror the in-process engine: declared if
        // distinct, else the earlier-postponed thread goes first.
        int peer_rank = peer.rank;
        int my_rank = arriving.rank;
        if (peer_rank == my_rank) {
          peer_rank = 0;
          my_rank = 1;
        }
        form_group(msg.name, {{peer_rank, peer}, {my_rank, arriving}});
        return;
      }

      // k-ary: one waiter per rank other than ours, greedy with the
      // different-process preference applied per rank.
      std::vector<std::size_t> chosen;
      std::vector<char> rank_taken(static_cast<std::size_t>(msg.arity), 0);
      rank_taken[static_cast<std::size_t>(arriving.rank)] = 1;
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < waiting.size(); ++i) {
          const Arrival& w = waiting[i];
          if (w.arity != msg.arity) continue;
          if (w.rank < 0 || w.rank >= msg.arity) continue;
          if (rank_taken[static_cast<std::size_t>(w.rank)]) continue;
          if (pass == 0 && w.conn_id == conn_id) continue;
          if (std::find(chosen.begin(), chosen.end(), i) != chosen.end()) {
            continue;
          }
          rank_taken[static_cast<std::size_t>(w.rank)] = 1;
          chosen.push_back(i);
        }
      }
      if (chosen.size() + 1 < static_cast<std::size_t>(msg.arity)) {
        waiting.push_back(arriving);
        return;
      }
      std::vector<std::pair<int, Arrival>> ranked;
      ranked.emplace_back(arriving.rank, arriving);
      // Erase from the back so earlier indices stay valid.
      std::sort(chosen.begin(), chosen.end());
      for (auto it = chosen.rbegin(); it != chosen.rend(); ++it) {
        ranked.emplace_back(waiting[*it].rank, waiting[*it]);
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(*it));
      }
      form_group(msg.name, std::move(ranked));
    };

    auto handle_cancel = [&](std::uint64_t conn_id, const Message& msg) {
      for (auto& [name, waiting] : postponed) {
        auto it = std::find_if(waiting.begin(), waiting.end(),
                               [&](const Arrival& a) {
                                 return a.conn_id == conn_id &&
                                        a.token == msg.token;
                               });
        if (it != waiting.end()) {
          waiting.erase(it);
          bump(&BrokerStats::cancellations);
          Message ack;
          ack.type = MsgType::kCancelled;
          ack.token = msg.token;
          send_to(conn_id, ack);
          return;
        }
      }
      // Already matched (or unknown): the grant path owns it now.
    };

    auto handle_done = [&](std::uint64_t conn_id, const Message& msg) {
      auto it = in_group.find({conn_id, msg.token});
      if (it == in_group.end()) return;  // duplicate / after force-advance
      const std::uint64_t gid = it->second;
      auto git = groups.find(gid);
      if (git == groups.end()) return;
      Group& g = git->second;
      for (int r = 0; r < static_cast<int>(g.members.size()); ++r) {
        Member& m = g.members[static_cast<std::size_t>(r)];
        if (m.conn_id != conn_id || m.token != msg.token) continue;
        if (m.done) return;
        m.done = true;
        if (r == g.granted) grant_next(gid, GrantOutcome::kOk);
        return;
      }
    };

    auto handle_disconnect = [&](std::uint64_t conn_id) {
      for (auto& [name, waiting] : postponed) {
        waiting.erase(std::remove_if(waiting.begin(), waiting.end(),
                                     [&](const Arrival& a) {
                                       return a.conn_id == conn_id;
                                     }),
                      waiting.end());
      }
      std::vector<std::uint64_t> to_advance;
      for (auto& [gid, g] : groups) {
        bool granted_lost = false;
        for (int r = 0; r < static_cast<int>(g.members.size()); ++r) {
          Member& m = g.members[static_cast<std::size_t>(r)];
          if (m.conn_id != conn_id || m.done) continue;
          m.done = true;
          m.lost = true;
          bump(&BrokerStats::peer_lost);
          if (r == g.granted) granted_lost = true;
        }
        if (granted_lost) to_advance.push_back(gid);
      }
      for (std::uint64_t gid : to_advance) {
        grant_next(gid, GrantOutcome::kPeerLost);
      }
    };

    auto run_timers = [&] {
      const auto now = SteadyClock::now();
      for (auto& [name, waiting] : postponed) {
        for (std::size_t i = 0; i < waiting.size();) {
          if (waiting[i].deadline > now) {
            ++i;
            continue;
          }
          bump(&BrokerStats::timeouts);
          Message out;
          out.type = MsgType::kTimeout;
          out.token = waiting[i].token;
          send_to(waiting[i].conn_id, out);
          waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      std::vector<std::uint64_t> capped;
      for (auto& [gid, g] : groups) {
        if (g.granted >= 0 && g.grant_deadline <= now &&
            !g.members[static_cast<std::size_t>(g.granted)].done) {
          capped.push_back(gid);
        }
      }
      for (std::uint64_t gid : capped) {
        // The granted rank overran the cap (leaked guard / stalled
        // process): advance past it so the group degrades to a delay.
        Group& g = groups[gid];
        g.members[static_cast<std::size_t>(g.granted)].done = true;
        bump(&BrokerStats::forced_advances);
        grant_next(gid, GrantOutcome::kCap);
      }
    };

    auto next_wake = [&]() -> std::chrono::milliseconds {
      auto earliest = SteadyClock::now() + kIdleTick;
      for (const auto& [name, waiting] : postponed) {
        for (const Arrival& a : waiting) {
          earliest = std::min(earliest, a.deadline);
        }
      }
      for (const auto& [gid, g] : groups) {
        if (g.granted >= 0) earliest = std::min(earliest, g.grant_deadline);
      }
      const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
          earliest - SteadyClock::now());
      return std::max(std::chrono::milliseconds(1), delta);
    };

    for (;;) {
      std::optional<Event> ev = events.receive_for(next_wake());
      if (!ev) {
        if (events.closed()) break;  // closed and drained: shutdown
      } else if (ev->kind == Event::Kind::kDisconnect) {
        handle_disconnect(ev->conn_id);
      } else {
        switch (ev->msg.type) {
          case MsgType::kHello:
            break;  // identity is informational (pid / engine tag)
          case MsgType::kArrive:
            handle_arrive(ev->conn_id, ev->msg);
            break;
          case MsgType::kCancel:
            handle_cancel(ev->conn_id, ev->msg);
            break;
          case MsgType::kDone:
            handle_done(ev->conn_id, ev->msg);
            break;
          default:
            bump(&BrokerStats::protocol_errors);  // server-only type
            break;
        }
      }
      run_timers();
    }
  }
};

Broker::Broker(BrokerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Broker::~Broker() { stop(); }

bool Broker::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (impl_->options.socket_path.size() >= sizeof(addr.sun_path)) {
    return false;
  }
  std::memcpy(addr.sun_path, impl_->options.socket_path.c_str(),
              impl_->options.socket_path.size() + 1);
  ::unlink(impl_->options.socket_path.c_str());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) return false;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return false;
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    ::close(fd);
    ::unlink(impl_->options.socket_path.c_str());
    return false;
  }

  impl_->listen_fd = fd;
  impl_->wake_r = pipe_fds[0];
  impl_->wake_w = pipe_fds[1];
  impl_->io_thread = std::thread([this] { impl_->io_loop(); });
  impl_->match_thread = std::thread([this] { impl_->match_loop(); });
  impl_->started = true;
  return true;
}

void Broker::stop() {
  if (!impl_->started) return;
  impl_->started = false;
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake();
  impl_->io_thread.join();     // closes conns, then closes the channel...
  impl_->match_thread.join();  // ...which drains and stops the matcher
  ::close(impl_->listen_fd);
  ::close(impl_->wake_r);
  ::close(impl_->wake_w);
  impl_->listen_fd = impl_->wake_r = impl_->wake_w = -1;
  ::unlink(impl_->options.socket_path.c_str());
}

BrokerStats Broker::stats() const {
  std::scoped_lock lock(impl_->stats_mu);
  return impl_->stats;
}

const std::string& Broker::socket_path() const {
  return impl_->options.socket_path;
}

}  // namespace cbp::broker
