// The per-machine trigger broker: §3's matching state machine lifted out
// of the process.
//
// A concurrent breakpoint whose spec entry says `scope=process-group`
// forwards its arrival/postpone/match/release protocol here instead of
// the in-process slot (core/transport.h describes the seam and its
// semantics).  The broker listens on a unix-domain socket; each child
// engine connects at startup (broker::BrokerClient), identifies itself
// with its pid and engine tag, and then each remote postponement is one
// ARRIVE -> {MATCHED+GRANT | TIMEOUT | CANCELLED} exchange (src/broker/
// wire.h).  Matching is by (name, rank, arity) identity — the broker
// plays exactly the role the slot mutex plays in-process: it serializes
// arrivals per name, pairs complementary ones, and releases the matched
// group in rank order (GRANT r+1 follows DONE r).
//
// Two threads:
//
//   * the IO thread owns every fd.  poll() over the listen socket, a
//     self-pipe (for wakeups from stop() and the match thread), and all
//     client connections; nonblocking reads assemble frames into
//     events, nonblocking writes drain per-connection output buffers.
//     EOF on a connection becomes a kDisconnected event.
//
//   * the match thread owns the protocol state (postponed arrivals,
//     matched groups, deadlines).  It consumes events from a bounded
//     rt::Channel — whose close() is the shutdown signal, the exact
//     close semantics tests/test_channel.cc pins down — and emits
//     replies back through the IO thread.
//
// Distributed failure modes handled here, not by callers:
//
//   * arrival timeout: the postponement bound T is enforced broker-side,
//     so a pause ends on time even if the arriving process stalls;
//   * peer death: EOF on a connection drops its postponed arrivals and
//     marks its group memberships lost; survivors parked for a grant
//     get GRANT(kPeerLost) instead of a hang, and the broker counts
//     `peer_lost`;
//   * leaked guard: a granted rank that never sends DONE is force-
//     advanced past after `grant_cap` (GRANT(kCap) to the next rank) —
//     the cross-process analogue of the engine's guard_wait_cap.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace cbp::broker {

struct BrokerOptions {
  /// Filesystem path of the listening unix-domain socket.  An existing
  /// socket file at this path is unlinked on start (stale from a
  /// previous run); the file is unlinked again on stop.
  std::string socket_path;

  /// Cap on how long one granted rank may sit on its turn before the
  /// broker force-advances to the next rank (leaked-guard degradation).
  std::chrono::milliseconds grant_cap{2000};
};

/// Monotonic counters, readable while the broker runs.
struct BrokerStats {
  std::uint64_t connections = 0;      ///< accepted connections, lifetime
  std::uint64_t arrivals = 0;         ///< ARRIVE frames admitted
  std::uint64_t matches = 0;          ///< groups formed
  std::uint64_t timeouts = 0;         ///< arrivals expired unmatched
  std::uint64_t cancellations = 0;    ///< CANCELs honoured
  std::uint64_t peer_lost = 0;        ///< group members lost to peer death
  std::uint64_t forced_advances = 0;  ///< grant-cap expiries
  std::uint64_t protocol_errors = 0;  ///< malformed frames / oversized
};

class Broker {
 public:
  explicit Broker(BrokerOptions options);
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Binds, listens and starts the IO + match threads.  False if the
  /// socket could not be created (path too long, bind failure).
  bool start();

  /// Stops both threads, closes every connection (clients see EOF) and
  /// unlinks the socket.  Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] BrokerStats stats() const;
  [[nodiscard]] const std::string& socket_path() const;

 private:
  struct Impl;  // fd bookkeeping + protocol state live in broker.cc
  std::unique_ptr<Impl> impl_;
};

}  // namespace cbp::broker
