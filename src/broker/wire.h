// Wire protocol of the trigger broker (src/broker/broker.h).
//
// Frames are length-prefixed: a 4-byte little-endian payload length,
// then the payload.  The payload layout is fixed-position (no varints):
//
//   offset  size  field
//        0     1  type       (MsgType)
//        1     8  token      (u64 LE; client-chosen postponement id)
//        9     8  a          (u64 LE; per-type meaning, see below)
//       17     8  b          (u64 LE; per-type meaning)
//       25     4  rank       (i32 LE)
//       29     4  arity      (i32 LE)
//       33     1  flags      (per-type bits)
//       34     2  name_len   (u16 LE)
//       36     n  name       (raw bytes, no NUL)
//
// Per-type field use:
//
//   kHello      client -> broker, once per connection.
//               a = pid, b = engine tag (PR 4 process-unique identity).
//   kArrive     client -> broker: one postponement.  a = timeout in ms,
//               rank/arity declared, flags bit 0 = scoped, name set.
//   kCancel     client -> broker: give up on `token` (failsafe expiry).
//   kDone       client -> broker: `token`'s guarded instruction is over;
//               the broker may grant the next rank.
//   kMatched    broker -> client: `token` matched; rank = assigned rank,
//               a = group id.
//   kGrant      broker -> client: `token` may proceed.  flags =
//               GrantOutcome.
//   kTimeout    broker -> client: `token` parked its full bound unmatched.
//   kCancelled  broker -> client: ack of kCancel.
//
// All multi-byte integers are little-endian on the wire regardless of
// host order (encoded byte-by-byte, so the code is endian-agnostic).
// A frame longer than kMaxFrame is a protocol error and the connection
// is dropped — names are breakpoint identifiers, not payloads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cbp::broker {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kArrive = 2,
  kCancel = 3,
  kDone = 4,
  kMatched = 5,
  kGrant = 6,
  kTimeout = 7,
  kCancelled = 8,
};

/// kGrant's flags byte: how the grantee got its turn.
enum class GrantOutcome : std::uint8_t {
  kOk = 0,        ///< normal rank-ordered grant
  kPeerLost = 1,  ///< a peer process died; the broker released you
  kCap = 2,       ///< a lower rank overran the grant cap; forced advance
};

/// kArrive flags bit 0: the hit is scoped (DONE deferred to the guard).
inline constexpr std::uint8_t kFlagScoped = 0x01;

/// Hard ceiling on payload size (length prefix excluded).
inline constexpr std::size_t kMaxFrame = 4096;

/// Fixed-position payload size before the name bytes.
inline constexpr std::size_t kHeaderSize = 36;

struct Message {
  MsgType type = MsgType::kHello;
  std::uint64_t token = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::int32_t rank = 0;
  std::int32_t arity = 2;
  std::uint8_t flags = 0;
  std::string name;
};

/// Serializes `m` into one frame (length prefix included).
std::vector<std::uint8_t> encode(const Message& m);

/// Decodes one *payload* (prefix already stripped).  nullopt on a
/// truncated or oversized payload or an unknown message type.
std::optional<Message> decode(const std::uint8_t* data, std::size_t size);

// ---- fd helpers ----------------------------------------------------------
// Blocking-fd companions used by the client (the broker's IO loop is
// nonblocking and keeps its own buffers).  Both retry on EINTR and
// resume partial transfers; false means EOF or a hard error.

bool read_exact(int fd, void* buf, std::size_t size);
bool write_exact(int fd, const void* buf, std::size_t size);

/// Reads one full frame from a blocking fd.  nullopt on EOF, error, or
/// a malformed frame.
std::optional<Message> read_frame(int fd);

/// Writes one full frame to a blocking fd.
bool write_frame(int fd, const Message& m);

}  // namespace cbp::broker
