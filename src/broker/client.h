// BrokerClient: the TransportPolicy a child engine attaches to route
// `scope=process-group` breakpoints through the machine's trigger
// broker (src/broker/broker.h).
//
// One connection per client, one client per process (typically created
// right after fork and handed to Engine::set_transport).  A background
// reader thread demultiplexes broker frames to in-flight postponements
// by token; trigger_remote is fully synchronous from the engine's point
// of view: arrive, park, and come back with a terminal outcome.
//
// Liveness guarantees (core/transport.h's contract):
//   * the postponement bound is enforced broker-side, but a client-side
//     failsafe (timeout + kGrantSlack) also runs, so a dead or wedged
//     broker turns into kError, never a hang;
//   * broker EOF fails every in-flight and future postponement with
//     kError immediately (the engine then counts them cancelled);
//   * a GRANT for a token the client no longer tracks (failsafe fired
//     first) is answered with DONE so the rest of the group advances.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/transport.h"

namespace cbp::broker {

class BrokerClient : public TransportPolicy,
                     public std::enable_shared_from_this<BrokerClient> {
 public:
  /// Extra real time past the request timeout before the client-side
  /// failsafe gives up on the broker (covers match + grant latency and
  /// the broker's own grant cap).
  static constexpr std::chrono::milliseconds kGrantSlack{10000};

  /// Connects to the broker socket, retrying for up to `retry_for`
  /// (workers typically start concurrently with the broker).  Sends the
  /// HELLO identity frame and starts the reader thread.  Null on
  /// failure.
  static std::shared_ptr<BrokerClient> connect(
      const std::string& socket_path,
      std::chrono::milliseconds retry_for = std::chrono::milliseconds(5000),
      std::uint64_t engine_tag = 0);

  ~BrokerClient() override;
  BrokerClient(const BrokerClient&) = delete;
  BrokerClient& operator=(const BrokerClient&) = delete;

  /// TransportPolicy: one full remote postponement.  Thread-safe.
  RemoteTriggerResult trigger_remote(
      const RemoteTriggerRequest& request) override;

  /// Closes the connection; all in-flight postponements fail with
  /// kError.  Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] bool connected() const;

 private:
  BrokerClient() = default;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cbp::broker
