#include "broker/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

namespace cbp::broker {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& m) {
  const std::size_t payload = kHeaderSize + m.name.size();
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  out.push_back(static_cast<std::uint8_t>(m.type));
  put_u64(out, m.token);
  put_u64(out, m.a);
  put_u64(out, m.b);
  put_u32(out, static_cast<std::uint32_t>(m.rank));
  put_u32(out, static_cast<std::uint32_t>(m.arity));
  out.push_back(m.flags);
  put_u16(out, static_cast<std::uint16_t>(m.name.size()));
  out.insert(out.end(), m.name.begin(), m.name.end());
  return out;
}

std::optional<Message> decode(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderSize || size > kMaxFrame) return std::nullopt;
  Message m;
  const std::uint8_t type = data[0];
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kCancelled)) {
    return std::nullopt;
  }
  m.type = static_cast<MsgType>(type);
  m.token = get_u64(data + 1);
  m.a = get_u64(data + 9);
  m.b = get_u64(data + 17);
  m.rank = static_cast<std::int32_t>(get_u32(data + 25));
  m.arity = static_cast<std::int32_t>(get_u32(data + 29));
  m.flags = data[33];
  const std::uint16_t name_len = get_u16(data + 34);
  if (kHeaderSize + name_len != size) return std::nullopt;
  m.name.assign(reinterpret_cast<const char*>(data + kHeaderSize), name_len);
  return m;
}

bool read_exact(int fd, void* buf, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n > 0) {
      p += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n > 0) {
      p += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::optional<Message> read_frame(int fd) {
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, sizeof(prefix))) return std::nullopt;
  const std::uint32_t payload = get_u32(prefix);
  if (payload < kHeaderSize || payload > kMaxFrame) return std::nullopt;
  std::vector<std::uint8_t> buf(payload);
  if (!read_exact(fd, buf.data(), buf.size())) return std::nullopt;
  return decode(buf.data(), buf.size());
}

bool write_frame(int fd, const Message& m) {
  const std::vector<std::uint8_t> frame = encode(m);
  return write_exact(fd, frame.data(), frame.size());
}

}  // namespace cbp::broker
