#include "obs/telemetry_io.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace cbp::obs {
namespace {

std::uint64_t get_u64(const json::Value& row, const char* key) {
  const json::Value* v = row.get(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

double get_double(const json::Value& row, const char* key) {
  const json::Value* v = row.get(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

void emit(std::ostringstream& out, const char* key, std::uint64_t value,
          bool first = false) {
  if (!first) out << ',';
  out << '"' << key << "\":" << value;
}

}  // namespace

std::string write_telemetry_json(
    const std::vector<BreakpointTelemetry>& rows) {
  std::ostringstream out;
  out << "{\"telemetry\":\"cbp\",\"version\":1,\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BreakpointTelemetry& r = rows[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << json::escape(r.name) << '"';
    emit(out, "runs", r.runs);
    emit(out, "runs_hit", r.runs_hit);
    emit(out, "n_steps", r.inputs.n_steps);
    emit(out, "m_visits", r.inputs.m_visits);
    emit(out, "big_m_visits", r.inputs.big_m_visits);
    emit(out, "pause_steps", r.inputs.pause_steps);
    emit(out, "step_gap_ns", r.step_gap_ns);
    emit(out, "arrivals", r.stats.arrivals);
    emit(out, "participants", r.stats.participants);
    emit(out, "ignored", r.stats.ignored);
    emit(out, "postponed", r.stats.postponed);
    emit(out, "timeouts", r.stats.timeouts);
    if (r.stats.pattern_partials > 0 || r.stats.pattern_rejects > 0 ||
        r.stats.pattern_aborts > 0) {
      // Pattern rows only; rendezvous dumps stay byte-identical.
      emit(out, "pattern_partials", r.stats.pattern_partials);
      emit(out, "pattern_rejects", r.stats.pattern_rejects);
      emit(out, "pattern_aborts", r.stats.pattern_aborts);
      out << ",\"pattern_stages\":[";
      for (std::size_t s = 0; s < r.pattern_stage_advances.size(); ++s) {
        if (s != 0) out << ',';
        out << r.pattern_stage_advances[s];
      }
      out << ']';
    }
    out << ",\"total_wait_us\":" << r.stats.total_wait_us;
    out << ",\"predicted_btrigger\":" << r.predicted.btrigger;
    out << ",\"observed\":" << r.observed;
    emit(out, "wait_p50_us", r.wait_p50_us);
    emit(out, "wait_p99_us", r.wait_p99_us);
    out << '}';
  }
  out << "]}";
  return out.str();
}

bool read_telemetry_json(const std::string& text,
                         std::vector<BreakpointTelemetry>& rows,
                         std::string& error) {
  const json::ValuePtr root = json::parse(text, error);
  if (root == nullptr) return false;
  const json::Value* marker = root->get("telemetry");
  if (marker == nullptr || !marker->is_string() ||
      marker->string != "cbp") {
    error = "not a cbp telemetry dump (missing \"telemetry\":\"cbp\")";
    return false;
  }
  const json::Value* list = root->get("rows");
  if (list == nullptr || !list->is_array()) {
    error = "missing \"rows\" array";
    return false;
  }
  for (const json::ValuePtr& item : list->array) {
    if (item == nullptr || !item->is_object()) {
      error = "non-object row";
      return false;
    }
    const json::Value* name = item->get("name");
    if (name == nullptr || !name->is_string()) {
      error = "row without a string \"name\"";
      return false;
    }
    BreakpointTelemetry row;
    row.name = name->string;
    row.runs = get_u64(*item, "runs");
    row.runs_hit = get_u64(*item, "runs_hit");
    row.inputs.n_steps = get_u64(*item, "n_steps");
    row.inputs.m_visits = get_u64(*item, "m_visits");
    row.inputs.big_m_visits = get_u64(*item, "big_m_visits");
    row.inputs.pause_steps = get_u64(*item, "pause_steps");
    row.step_gap_ns = get_u64(*item, "step_gap_ns");
    row.stats.arrivals = get_u64(*item, "arrivals");
    row.stats.participants = get_u64(*item, "participants");
    row.stats.ignored = get_u64(*item, "ignored");
    row.stats.postponed = get_u64(*item, "postponed");
    row.stats.timeouts = get_u64(*item, "timeouts");
    row.stats.pattern_partials = get_u64(*item, "pattern_partials");
    row.stats.pattern_rejects = get_u64(*item, "pattern_rejects");
    row.stats.pattern_aborts = get_u64(*item, "pattern_aborts");
    const json::Value* stages = item->get("pattern_stages");
    if (stages != nullptr && stages->is_array()) {
      for (const json::ValuePtr& stage : stages->array) {
        row.pattern_stage_advances.push_back(
            stage != nullptr && stage->is_number() && stage->number >= 0
                ? static_cast<std::uint64_t>(stage->number)
                : 0);
      }
    }
    row.stats.total_wait_us =
        static_cast<std::int64_t>(get_double(*item, "total_wait_us"));
    row.predicted.btrigger = get_double(*item, "predicted_btrigger");
    row.observed = get_double(*item, "observed");
    row.observed_from_runs = row.runs > 0;
    row.wait_p50_us = get_u64(*item, "wait_p50_us");
    row.wait_p99_us = get_u64(*item, "wait_p99_us");
    rows.push_back(std::move(row));
  }
  return true;
}

}  // namespace cbp::obs
