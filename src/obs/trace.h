// Lock-free per-thread event trace (DESIGN.md §5d).
//
// Each thread that records events owns one fixed-capacity ring buffer.
// The writer never takes a lock and never blocks: it stores the event's
// fields with relaxed atomics into its own ring and publishes the new
// head with one release store.  When the ring is full the oldest events
// are overwritten (the trace keeps the most recent window; nothing on
// the hot path ever waits for a collector).  A collector thread may
// drain concurrently: it snapshots the head, copies the retained window,
// then re-reads the head and discards any slot the writer lapped in the
// meantime — overwritten events are *counted* (Ring::dropped), never
// silently lost from the accounting.
//
// Gating:
//   * runtime — Trace::set_enabled(true); disabled recording is one
//     relaxed atomic load (the engine's ns-scale fast paths are reached
//     only behind that check);
//   * compile time — building with -DCBP_DISABLE_OBS turns CBP_OBS_EVENT
//     into a no-op with zero footprint, mirroring core/macros.h.
//
// Rings are immortal once created (a thread may exit while a collector
// is reading its ring); the registry grows by one pointer per recording
// thread per process lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.h"
#include "runtime/clock.h"
#include "runtime/thread_registry.h"

namespace cbp::obs {

namespace internal {

/// Torn-read-safe Event cell: every field is a relaxed atomic, so a
/// collector racing the writer reads garbage-free (possibly stale)
/// values and TSan stays quiet.  Validity is decided by the head
/// re-check in Ring::collect_into, not by the cell itself.
struct AtomicEvent {
  std::atomic<std::uint64_t> time_ns{0};
  std::atomic<std::uint32_t> name_id{kNoName};
  std::atomic<rt::ThreadId> tid{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::int8_t> rank{-1};
  std::atomic<std::uint16_t> detail{0};

  void store(const Event& e) {
    time_ns.store(e.time_ns, std::memory_order_relaxed);
    name_id.store(e.name_id, std::memory_order_relaxed);
    tid.store(e.tid, std::memory_order_relaxed);
    kind.store(static_cast<std::uint8_t>(e.kind), std::memory_order_relaxed);
    rank.store(e.rank, std::memory_order_relaxed);
    detail.store(e.detail, std::memory_order_relaxed);
  }

  [[nodiscard]] Event load() const {
    Event e;
    e.time_ns = time_ns.load(std::memory_order_relaxed);
    e.name_id = name_id.load(std::memory_order_relaxed);
    e.tid = tid.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(kind.load(std::memory_order_relaxed));
    e.rank = rank.load(std::memory_order_relaxed);
    e.detail = detail.load(std::memory_order_relaxed);
    return e;
  }
};

/// Single-writer ring.  `head` is the monotonic count of events ever
/// pushed; slot i holds event number i mod kCapacity.
class Ring {
 public:
  static constexpr std::size_t kCapacity = 1u << 13;  // 8192 events

  void push(const Event& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & (kCapacity - 1)].store(e);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Copies the retained window into `out` and adds the overwritten
  /// count to `dropped`.  Safe concurrently with push().
  void collect_into(std::vector<Event>& out, std::uint64_t& dropped) const;

  /// Moves the collection floor to the current head: already-recorded
  /// events stop being reported (and stop counting as dropped).  Called
  /// by Trace::clear(); only touches collector-side state, so the
  /// owning writer is unaffected.
  void forget() {
    floor_.store(head_.load(std::memory_order_acquire),
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> floor_{0};  ///< events below this are cleared
  std::array<AtomicEvent, kCapacity> slots_{};
};

}  // namespace internal

/// Merged snapshot of every thread's ring.
struct TraceSnapshot {
  std::vector<Event> events;   ///< sorted by (time_ns, tid)
  std::uint64_t dropped = 0;   ///< events overwritten before collection
};

/// Process-wide trace facade.  All methods are thread-safe.
class Trace {
 public:
  /// Master switch for event recording.  Off by default: a disabled
  /// record() call is one relaxed load and a predicted branch.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Additionally record instrumentation-hub dispatches (kHubAccess /
  /// kHubSync).  These are far hotter than trigger events, so they get
  /// their own switch; it has no effect unless the trace is enabled.
  static void set_hub_events(bool on) {
    hub_events_.store(on, std::memory_order_relaxed);
  }
  static bool hub_events() {
    return enabled() && hub_events_.load(std::memory_order_relaxed);
  }

  /// Records an event stamped with the calling thread and the current
  /// monotonic time.  Caller is expected to have checked enabled().
  static void record(EventKind kind, std::uint32_t name_id, int rank,
                     std::uint16_t detail = 0);

  /// Records an event on behalf of another thread (the matcher stamps
  /// kMatch for every selected participant).  Written into the calling
  /// thread's ring; Event::tid carries the participant.
  static void record_for(rt::ThreadId tid, EventKind kind,
                         std::uint32_t name_id, int rank,
                         std::uint16_t detail = 0);

  // ---- batched timestamping (DESIGN.md §5i) ---------------------------
  // A trigger call that records several events describing one instant
  // (the k kMatch events of a match, an arrival and its ignore verdict)
  // reads the clock once via stamp() and hands the value to the *_at
  // overloads, amortizing now_ns() across the run.  Under a bound
  // virtual clock the provided stamp is IGNORED and each event gets its
  // own unique_now_ns() — virtual traces stay strictly monotonic and
  // deterministic, which shared stamps would break.

  /// One clock read usable for a run of record_*_at calls.  Returns 0
  /// under a bound virtual clock (the *_at overloads ignore the stamp
  /// there, and reading would burn a unique virtual tick).
  static std::uint64_t stamp();

  /// record() with a caller-provided timestamp (real clocks only; see
  /// above).
  static void record_at(std::uint64_t stamp_ns, EventKind kind,
                        std::uint32_t name_id, int rank,
                        std::uint16_t detail = 0);

  /// record_for() with a caller-provided timestamp.
  static void record_for_at(std::uint64_t stamp_ns, rt::ThreadId tid,
                            EventKind kind, std::uint32_t name_id, int rank,
                            std::uint16_t detail = 0);

  /// Test hook: appends a fully-specified event (timestamp included)
  /// into the calling thread's ring, bypassing the clock.  Lets golden
  /// tests build deterministic traces.
  static void inject_for_test(const Event& event);

  /// Registers the human-readable name for an interned id (called by
  /// the engine's cold intern path).
  static void set_name(std::uint32_t id, const std::string& name);

  /// Name for an id ("<hub>" for kNoName, "#<id>" if never registered).
  static std::string name_of(std::uint32_t id);

  /// Merged, time-sorted snapshot of all rings.
  static TraceSnapshot collect();

  /// Like collect(), but keeps only events whose name id is in
  /// `name_ids` — the per-engine view.  Name ids are process-unique
  /// (engines allocate them from one global counter), so passing
  /// Engine::interned_ids() yields exactly that engine's events even
  /// while parallel trial workers write into the same per-thread rings.
  /// Hub events (kNoName) are engine-less and always excluded here.
  static TraceSnapshot collect_for(const std::vector<std::uint32_t>& name_ids);

  /// Forgets all recorded events and name registrations.  Only safe when
  /// no thread is concurrently recording (harness boundaries, tests).
  static void clear();

  /// Nanoseconds since the process trace epoch (first use).
  static std::uint64_t now_ns();

 private:
  static inline std::atomic<bool> enabled_{false};
  static inline std::atomic<bool> hub_events_{false};
};

}  // namespace cbp::obs

// Recording macro used at instrumentation points.  Mirrors core/macros.h:
// compiling with -DCBP_DISABLE_OBS removes the layer entirely while
// keeping the operands type-checked.
#ifdef CBP_DISABLE_OBS
#define CBP_OBS_ENABLED() (false)
#define CBP_OBS_EVENT(kind, name_id, rank)                               \
  do {                                                                   \
    if (false) {                                                         \
      ::cbp::obs::Trace::record((kind), (name_id), (rank));              \
    }                                                                    \
  } while (0)
#else
#define CBP_OBS_ENABLED() (::cbp::obs::Trace::enabled())
#define CBP_OBS_EVENT(kind, name_id, rank)                               \
  do {                                                                   \
    if (::cbp::obs::Trace::enabled()) {                                  \
      ::cbp::obs::Trace::record((kind), (name_id), (rank));              \
    }                                                                    \
  } while (0)
#endif  // CBP_DISABLE_OBS
