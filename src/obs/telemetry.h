// Hit-probability telemetry (DESIGN.md §5d).
//
// Folds a breakpoint's live counters and event trace into the §3 model's
// inputs (N, M, m, T), evaluates the closed forms, and renders a
// predicted-vs-observed table.  The estimators are deliberately coarse —
// the model assumes uniformly random visits, which real programs only
// approximate — but they make the gain factor tangible: "the model says
// pausing here multiplies your hit rate by ~40x, and the run agrees".
//
// The caller hands us counters and run outcomes explicitly rather than an
// Engine reference: cbp_core links against cbp_obs, so obs code cannot
// call back into the engine without a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "model/probability.h"
#include "obs/trace.h"

namespace cbp::obs {

/// Everything the telemetry needs about one breakpoint.
struct TelemetryInput {
  std::string name;
  BreakpointStats stats;
  /// Threads exercising the breakpoint (the model's "two threads" N/M/m
  /// are per thread, so totals are divided by this).  Minimum 1.
  unsigned threads = 2;
  /// Run outcomes, when the caller repeated the workload: `runs` total,
  /// `runs_hit` of them with at least one hit.  When runs == 0 the
  /// observed rate falls back to per-arrival frequency.
  std::uint64_t runs = 0;
  std::uint64_t runs_hit = 0;
};

/// One row of the predicted-vs-observed table.
struct BreakpointTelemetry {
  std::string name;
  model::ModelInputs inputs;        ///< estimated (pre-sanitize) N, m, M, T
  model::PredictedRates predicted;  ///< §3 closed forms on the estimates
  double observed = 0.0;            ///< measured hit rate, in [0, 1]
  bool observed_from_runs = false;  ///< true: runs_hit/runs; false: per-arrival
  std::uint64_t runs = 0;
  std::uint64_t runs_hit = 0;
  std::uint64_t wait_p50_us = 0;  ///< median Postponed stay
  std::uint64_t wait_p99_us = 0;
  std::uint64_t order_p99_us = 0;  ///< match-to-release tail latency
  /// Mean gap between successive trigger events on one thread (the
  /// "step" the T estimate divides by); 0 when the trace was too thin.
  /// Exported so the placement layer can convert steps back to wall
  /// time when deriving a pause for a new spec.
  std::uint64_t step_gap_ns = 0;
  /// Pattern breakpoints only (core/pattern.h): how often each stage of
  /// the automaton was reached, from the trace's kPatternAdvance events
  /// (index i = runs that consumed their (i+1)-th event).  A steep
  /// drop-off between stages shows where partial matches die — the
  /// per-stage analogue of predicted-vs-observed.  Empty for rendezvous
  /// breakpoints or when the trace was off.
  std::vector<std::uint64_t> pattern_stage_advances;
  BreakpointStats stats;
};

/// Mean gap (ns) between successive trigger events of the same thread
/// for the named breakpoint; 0 when the trace has no two such events.
std::uint64_t mean_step_gap_ns(const std::string& name,
                               const TraceSnapshot& trace);

/// Estimates the §3 model inputs from counters plus the trace:
///   N ~= calls per thread, M ~= arrivals per thread, m ~= hits (>= 1),
///   T ~= mean Postponed wait divided by the mean gap between successive
///        trigger events for this name (wait expressed in "steps").
/// Events for other breakpoints in `trace` are ignored.
model::ModelInputs estimate_inputs(const TelemetryInput& input,
                                   const TraceSnapshot& trace);

/// Full analysis of one breakpoint: estimates, predictions, observation.
BreakpointTelemetry analyze(const TelemetryInput& input,
                            const TraceSnapshot& trace);

/// Renders the predicted-vs-observed table, one row per breakpoint:
///
///   breakpoint   N      M    m  T(steps)  p(unaided)  p(btrigger)  gain  observed
///   cache.race   52411  96   2  1840      0.0001      0.0721       660x  0.0800
std::string render_report(const std::vector<BreakpointTelemetry>& rows);

}  // namespace cbp::obs
