#include "obs/trace.h"

#include <algorithm>
#include <mutex>

#include "runtime/vclock.h"

namespace cbp::obs {

std::string_view kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kLocalReject: return "local-reject";
    case EventKind::kIgnore: return "ignore";
    case EventKind::kPostpone: return "postpone";
    case EventKind::kMatch: return "match";
    case EventKind::kTimeout: return "timeout";
    case EventKind::kCancel: return "cancel";
    case EventKind::kRelease: return "release";
    case EventKind::kGuardAck: return "guard-ack";
    case EventKind::kHubAccess: return "hub-access";
    case EventKind::kHubSync: return "hub-sync";
    case EventKind::kPatternAdvance: return "pattern-advance";
    case EventKind::kPatternAbort: return "pattern-abort";
  }
  return "unknown";
}

namespace internal {

void Ring::collect_into(std::vector<Event>& out, std::uint64_t& dropped) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t floor = floor_.load(std::memory_order_relaxed);
  std::uint64_t begin = head > kCapacity ? head - kCapacity : 0;
  const std::uint64_t window_begin = begin;
  begin = std::max(begin, floor);
  std::vector<Event> copied;
  copied.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t i = begin; i < head; ++i) {
    copied.push_back(slots_[i & (kCapacity - 1)].load());
  }
  // Re-check: any slot the writer lapped while we copied may be torn;
  // keep only events still inside the retained window and count the
  // rest as dropped alongside the pre-collection overwrites.
  const std::uint64_t head_after = head_.load(std::memory_order_acquire);
  const std::uint64_t safe_begin =
      head_after > kCapacity ? head_after - kCapacity : 0;
  std::uint64_t kept = 0;
  for (std::uint64_t i = begin; i < head; ++i) {
    if (i < safe_begin) continue;  // overwritten mid-copy
    out.push_back(copied[static_cast<std::size_t>(i - begin)]);
    ++kept;
  }
  dropped += (head - begin) - kept;  // lapped mid-copy
  // Events overwritten before collection (cleared ones don't count).
  dropped += window_begin > floor ? window_begin - floor : 0;
}

namespace {

/// Registry of all rings ever created.  Rings are immortal: a collector
/// may still be reading a ring whose owner thread has exited.
struct Registry {
  std::mutex mu;
  std::vector<Ring*> rings;  // guarded by mu (push); read via snapshot
  std::vector<std::string> names;  // guarded by mu
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal (leak on purpose)
  return *r;
}

Ring& this_thread_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    ring = new Ring();  // immortal
    Registry& reg = registry();
    std::scoped_lock lock(reg.mu);
    reg.rings.push_back(ring);
  }
  return *ring;
}

rt::TimePoint trace_epoch() {
  static const rt::TimePoint epoch = rt::Clock::now();
  return epoch;
}

}  // namespace

}  // namespace internal

std::uint64_t Trace::now_ns() {
  // Timestamps follow the *active* clock (DESIGN.md §5g): under a
  // virtual clock a trial's events are stamped with virtual time, and
  // the strictly-monotonic stamp breaks ties by execution order — the
  // serialized schedule makes the resulting event order reproducible
  // run-to-run, which real nanosecond timestamps can never be.
  if (rt::VirtualClock* vc = rt::bound_virtual_clock()) {
    return static_cast<std::uint64_t>(vc->unique_now_ns());
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          rt::Clock::now() - internal::trace_epoch())
          .count());
}

void Trace::record(EventKind kind, std::uint32_t name_id, int rank,
                   std::uint16_t detail) {
  record_for(rt::this_thread_id(), kind, name_id, rank, detail);
}

std::uint64_t Trace::stamp() {
  // Under a virtual clock every unique_now_ns() call consumes a virtual
  // tick; record_for_at re-stamps per event there anyway, so reading the
  // clock here would waste ticks and skew virtual traces.
  return rt::bound_virtual_clock() != nullptr ? 0 : now_ns();
}

void Trace::record_for(rt::ThreadId tid, EventKind kind,
                       std::uint32_t name_id, int rank,
                       std::uint16_t detail) {
  record_for_at(stamp(), tid, kind, name_id, rank, detail);
}

void Trace::record_at(std::uint64_t stamp_ns, EventKind kind,
                      std::uint32_t name_id, int rank, std::uint16_t detail) {
  record_for_at(stamp_ns, rt::this_thread_id(), kind, name_id, rank, detail);
}

void Trace::record_for_at(std::uint64_t stamp_ns, rt::ThreadId tid,
                          EventKind kind, std::uint32_t name_id, int rank,
                          std::uint16_t detail) {
  Event e;
  // Virtual time overrides a shared stamp: determinism needs every event
  // strictly ordered by its own unique virtual nanosecond (trace sorting
  // and cross-run diffs rely on it), and unique_now_ns is a counter
  // bump, not a clock read — there is nothing to amortize.
  if (rt::VirtualClock* vc = rt::bound_virtual_clock()) {
    e.time_ns = static_cast<std::uint64_t>(vc->unique_now_ns());
  } else {
    e.time_ns = stamp_ns;
  }
  e.name_id = name_id;
  e.tid = tid;
  e.kind = kind;
  e.rank = static_cast<std::int8_t>(rank);
  e.detail = detail;
  internal::this_thread_ring().push(e);
}

void Trace::inject_for_test(const Event& event) {
  internal::this_thread_ring().push(event);
}

void Trace::set_name(std::uint32_t id, const std::string& name) {
  internal::Registry& reg = internal::registry();
  std::scoped_lock lock(reg.mu);
  if (reg.names.size() <= id) reg.names.resize(id + 1);
  reg.names[id] = name;
}

std::string Trace::name_of(std::uint32_t id) {
  if (id == kNoName) return "<hub>";
  internal::Registry& reg = internal::registry();
  std::scoped_lock lock(reg.mu);
  if (id < reg.names.size() && !reg.names[id].empty()) return reg.names[id];
  return "#" + std::to_string(id);
}

TraceSnapshot Trace::collect() {
  std::vector<internal::Ring*> rings;
  {
    internal::Registry& reg = internal::registry();
    std::scoped_lock lock(reg.mu);
    rings = reg.rings;
  }
  TraceSnapshot snapshot;
  for (const internal::Ring* ring : rings) {
    ring->collect_into(snapshot.events, snapshot.dropped);
  }
  std::stable_sort(snapshot.events.begin(), snapshot.events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                     return a.tid < b.tid;
                   });
  return snapshot;
}

TraceSnapshot Trace::collect_for(const std::vector<std::uint32_t>& name_ids) {
  TraceSnapshot snapshot = collect();
  // dropped is a ring-level count: overwritten slots can't be attributed
  // to an engine, so the per-engine view keeps the global number as an
  // upper bound on what it may be missing.
  std::erase_if(snapshot.events, [&](const Event& e) {
    return std::find(name_ids.begin(), name_ids.end(), e.name_id) ==
           name_ids.end();
  });
  return snapshot;
}

void Trace::clear() {
  // The writer owns each ring's head, so clearing never touches it;
  // instead every ring's collection floor advances to its current head
  // (collector-side state only).  Name registrations survive, like the
  // engine's interned records survive Engine::reset().  Callers must
  // ensure no thread is concurrently recording, or freshly-recorded
  // events may land below the floor and be cleared too.
  std::vector<internal::Ring*> rings;
  {
    internal::Registry& reg = internal::registry();
    std::scoped_lock lock(reg.mu);
    rings = reg.rings;
  }
  for (internal::Ring* ring : rings) ring->forget();
}

}  // namespace cbp::obs
