#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cbp::obs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  ValuePtr run() {
    skip_ws();
    ValuePtr v = value();
    if (v == nullptr) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after top-level value");
    }
    return v;
  }

 private:
  ValuePtr fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  ValuePtr value() {
    if (depth_ > 256) return fail("nesting too deep");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [](Value& v) {
        v.type = Value::Type::kBool;
        v.boolean = true;
      });
      case 'f': return literal("false", [](Value& v) {
        v.type = Value::Type::kBool;
        v.boolean = false;
      });
      case 'n': return literal("null", [](Value& v) {
        v.type = Value::Type::kNull;
      });
      default: return number();
    }
  }

  template <class Fn>
  ValuePtr literal(const char* word, Fn fill) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) return fail("bad literal");
    }
    auto v = std::make_shared<Value>();
    fill(*v);
    return v;
  }

  ValuePtr number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kNumber;
    v->number = parsed;
    return v;
  }

  /// Consumes exactly four hex digits of a \uXXXX escape.
  bool hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      unsigned digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return false;
      }
      out = (out << 4) | digit;
    }
    return true;
  }

  static void append_utf8(unsigned code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool string_raw(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            if (!hex4(code)) return false;
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00-\uDFFF; the pair combines into one code point.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return false;
              }
              pos_ += 2;
              unsigned low = 0;
              if (!hex4(low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) return false;
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return false;  // unpaired low surrogate
            }
            append_utf8(code, out);
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;
  }

  ValuePtr string_value() {
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kString;
    if (!string_raw(v->string)) return fail("bad string");
    return v;
  }

  ValuePtr array() {
    ++depth_;
    consume('[');
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kArray;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      ValuePtr item = value();
      if (item == nullptr) return nullptr;
      v->array.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']'");
    }
    --depth_;
    return v;
  }

  ValuePtr object() {
    ++depth_;
    consume('{');
    auto v = std::make_shared<Value>();
    v->type = Value::Type::kObject;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string_raw(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      ValuePtr item = value();
      if (item == nullptr) return nullptr;
      v->object.emplace(std::move(key), std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}'");
    }
    --depth_;
    return v;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

ValuePtr parse(const std::string& text, std::string& error) {
  return Parser(text, error).run();
}

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace cbp::obs::json
