// Event vocabulary of the breakpoint observability layer (DESIGN.md §5d).
//
// One Event is recorded per interesting transition in the trigger state
// machine (engine.cc) and, optionally, per instrumentation-hub dispatch.
// Events are fixed-size POD stamped with the interned breakpoint name id
// (core/engine.h NameRecord::id), the acting thread, the rank within the
// hit (when meaningful) and a monotonic timestamp, so a post-hoc reader
// can reconstruct exactly why a breakpoint missed: who arrived, who was
// ignored, who postponed and for how long, who matched whom, and in what
// order the group released.
#pragma once

#include <cstdint>
#include <string_view>

#include "runtime/thread_registry.h"

namespace cbp::obs {

/// Transitions of the BTRIGGER state machine plus hub dispatches.
enum class EventKind : std::uint8_t {
  kArrival = 0,   ///< passed the local predicate (engine "arrivals")
  kLocalReject,   ///< predicate_local() returned false
  kIgnore,        ///< arrival inside the ignore_first window (§6.3)
  kPostpone,      ///< entered the Postponed set
  kMatch,         ///< selected into a matched group (one event per rank)
  kTimeout,       ///< left Postponed without a match
  kCancel,        ///< woken early by Engine::cancel_all, no match
  kRelease,       ///< this rank's turn arrived (await_turn completed)
  kGuardAck,      ///< OrderingGuard released (scoped ordering ack)
  kHubAccess,     ///< instrumentation hub shared-memory access dispatch
  kHubSync,       ///< instrumentation hub sync-operation dispatch
  kPatternAdvance,  ///< pattern run consumed an event; detail = progress
  kPatternAbort,    ///< pattern run torn down mid-match; detail = progress
};

inline constexpr int kEventKindCount = 13;

/// Stable lowercase name for exports ("arrival", "local-reject", ...).
std::string_view kind_name(EventKind kind);

/// Reserved name id meaning "not a breakpoint" (hub events).
inline constexpr std::uint32_t kNoName = 0xffffffffu;

/// One trace record.  `rank` is -1 when the event has no rank (arrival,
/// reject, ignore, hub events).  `detail` is kind-specific: the arity for
/// kMatch, the SyncEvent kind for kHubSync, 0 otherwise.
struct Event {
  std::uint64_t time_ns = 0;  ///< monotonic, relative to the trace epoch
  std::uint32_t name_id = kNoName;
  rt::ThreadId tid = 0;
  EventKind kind = EventKind::kArrival;
  std::int8_t rank = -1;
  std::uint16_t detail = 0;
};

}  // namespace cbp::obs
