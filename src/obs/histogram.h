// Log2-bucket latency histogram (DESIGN.md §5d).
//
// Bucket b counts samples whose value v (in microseconds) satisfies
// 2^(b-1) <= v < 2^b, with bucket 0 holding v == 0.  Recording is one
// bit-scan and one increment, cheap enough to sit on the engine's
// postponement and release paths under the already-held slot mutex.  A
// histogram is a plain value: snapshots copy it, operator+= merges it —
// the same contract as BreakpointStats, which embeds two of these.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace cbp::obs {

struct LogHistogram {
  static constexpr int kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< in the recorded unit (microseconds)
  std::uint64_t max = 0;

  static constexpr int bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : 64 - std::countl_zero(value);
  }

  /// Inclusive upper bound of bucket b (v < 2^b, so 2^b - 1).
  static constexpr std::uint64_t bucket_upper(int b) {
    return b == 0 ? 0
           : b >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t value) {
    const int b = bucket_of(value);
    buckets[static_cast<std::size_t>(b >= kBuckets ? kBuckets - 1 : b)] += 1;
    count += 1;
    sum += value;
    if (value > max) max = value;
  }

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value below which fraction `p` (0..1) of samples fall, estimated as
  /// the upper bound of the bucket containing that quantile.
  [[nodiscard]] std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    const double target = p * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets[static_cast<std::size_t>(b)];
      if (static_cast<double>(seen) >= target && seen > 0) {
        const std::uint64_t upper = bucket_upper(b);
        return upper < max ? upper : max;  // never report past the max seen
      }
    }
    return max;
  }

  LogHistogram& operator+=(const LogHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) {
      buckets[static_cast<std::size_t>(b)] +=
          o.buckets[static_cast<std::size_t>(b)];
    }
    count += o.count;
    sum += o.sum;
    if (o.max > max) max = o.max;
    return *this;
  }
};

}  // namespace cbp::obs
